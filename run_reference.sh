#!/usr/bin/env bash
# Reference experiment runs for EXPERIMENTS.md (small scale, seed 2021).
# Heavy intermediates are cached under results/cache by the harnesses.
set -u
cd "$(dirname "$0")"
LOGS=results/logs
mkdir -p "$LOGS"
run() {
  local name=$1; shift
  echo "=== $name ==="
  ( time cargo run --release -p dfbench --bin "$@" ) >"$LOGS/$name.log" 2>&1
  echo "--- exit $? ($name)"
}
run table6      table6      -- --scale small
run calibrate   calibrate   -- --scale small
run figure1     figure1
run figure3     figure3     -- --scale small
run table7      table7      -- --scale small
run speedup     speedup     -- --scale small
run figure4     figure4     -- --scale small
run table8      table8      -- --scale small
run figure5     figure5     -- --scale small
run figure2     figure2     -- --scale small
run finetune    finetune    -- --scale small
run campaign_sim campaign_sim -- --poses 250000000
run tables2to5_sgcnn    tables2to5 -- --model sgcnn --scale tiny
run tables2to5_coherent tables2to5 -- --model coherent --scale tiny
run ablations   ablations   -- --scale tiny
echo ALL_REFERENCE_RUNS_DONE
