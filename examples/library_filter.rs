//! The ligand-based screening front-end end to end: drug-likeness
//! filters with per-rule rejection accounting, circular fingerprints with
//! Tanimoto triage, the streaming `filter → fingerprint → score` pipeline
//! over bounded-memory chunks, and the campaign prefilter that turns the
//! ranked shortlist into contiguous job ranges.
//!
//! Run with:
//! ```sh
//! cargo run --release --example library_filter
//! ```

use deepfusion::prelude::*;

fn main() {
    let seed = 2021;

    // == 1. Rule filters: Lipinski vs the ZINC druglike gate ==
    println!("== Drug-likeness gates ==");
    for filter in [RuleFilter::lipinski(), RuleFilter::zinc_druglike()] {
        let mut passed = 0u64;
        for i in 0..2_000u64 {
            let c = Compound::materialize_topology(Library::Chembl, i, seed);
            let d = Descriptors::compute(&c.mol);
            if filter.apply(&d).passed {
                passed += 1;
            }
        }
        println!(
            "  {:<14} {:>4}/2000 pass ({} rules, {} violation(s) tolerated)",
            filter.name,
            passed,
            filter.rules.len(),
            filter.max_violations
        );
    }

    // == 2. Streaming screen: 100k compounds through bounded chunks ==
    println!("\n== Streaming screen (100k compounds, 16 Ki-compound chunks) ==");
    let cfg = ScreenConfig::new(Library::Chembl, 100_000, seed);
    let outcome = screen_library(&cfg);
    let f = &outcome.funnel;
    println!(
        "  funnel: {} evaluated -> {} passed filter ({:.1}%) -> {} fingerprinted -> {} hits",
        f.evaluated,
        f.passed_filter,
        100.0 * f.filter_pass_rate(),
        f.fingerprinted,
        f.hits
    );
    println!("  per-rule rejections ({}):", cfg.filter.name);
    for (rule, rejected) in cfg.filter.rules.iter().zip(&outcome.tally.per_rule) {
        println!("    {:<22} {:>6}", rule.label(), rejected);
    }
    println!("  best survivors (ligand-only pseudo-affinity):");
    for r in outcome.top.iter().take(5) {
        println!("    compound {:>6}  score {:.3}", r.index, r.score);
    }

    // == 3. Fingerprint similarity over the shortlist ==
    println!("\n== Tanimoto triage over the top survivors ==");
    let fp_cfg = FingerprintConfig::default();
    let prints: Vec<Fingerprint> = outcome
        .top
        .iter()
        .map(|r| {
            let c = Compound::materialize_topology(Library::Chembl, r.index, seed);
            Fingerprint::compute(&fp_cfg, &c.mol)
        })
        .collect();
    let (mut best, mut pair) = (0.0f64, (0usize, 0usize));
    for i in 0..prints.len() {
        for j in i + 1..prints.len() {
            let t = prints[i].tanimoto(&prints[j]);
            if t > best {
                best = t;
                pair = (i, j);
            }
        }
    }
    println!(
        "  most similar shortlist pair: compounds {} and {} (Tanimoto {:.3})",
        outcome.top[pair.0].index, outcome.top[pair.1].index, best
    );

    // == 4. The campaign prefilter: shortlist -> contiguous job ranges ==
    println!("\n== Campaign prefilter ==");
    let pre = PrefilterConfig::new(Library::Chembl, 20_000, seed, 256);
    let picked = run_prefilter(&pre);
    let ranges = picked.selection_ranges(100); // split dense runs at 100 compounds/job
    println!(
        "  {} evaluated -> {} selected ({:.2}% of the library), {} contiguous job ranges",
        picked.funnel.evaluated,
        picked.shortlist.len(),
        100.0 * picked.reduction(),
        ranges.len()
    );
    let spec = JobSpec {
        job_id: 0,
        target: TargetSite::Spike1,
        library: Library::Chembl,
        first_compound: ranges[0].0,
        num_compounds: ranges[0].1,
        campaign_seed: seed,
        class: TaskClass::Dock,
        attempt: 0,
    };
    println!(
        "  first docking job: compounds [{}, {})",
        spec.first_compound,
        spec.first_compound + spec.num_compounds
    );
}
