//! PB2 hyper-parameter optimization of a real SG-CNN (§3.2), scaled down:
//! a small population of trials trains in parallel, under-performers clone
//! top performers (exploit) and receive GP-bandit-suggested configurations
//! (explore) at every perturbation interval.
//!
//! Run with:
//! ```sh
//! cargo run --release --example hyperparameter_search
//! ```

use deepfusion::data::{DataLoader, LoaderConfig, PdbBind, PdbBindConfig};
use deepfusion::fusion::{train, SgCnn, SgCnnConfig, TrainConfig};
use deepfusion::hpo::{ConfigValues, Pb2, Pb2Config, Range, Space, Trainable};
use deepfusion::tensor::{ParamSnapshot, ParamStore};
use dfchem::featurize::VoxelConfig;
use std::sync::Arc;

/// One PB2 trial: an SG-CNN trained for a few epochs per interval.
struct SgTrial {
    dataset: Arc<PdbBind>,
    train_idx: Vec<usize>,
    val_idx: Vec<usize>,
    model: Option<(SgCnn, ParamStore)>,
    epochs_done: usize,
    seed: u64,
}

impl SgTrial {
    fn config_of(values: &ConfigValues) -> SgCnnConfig {
        SgCnnConfig {
            learning_rate: values["learning_rate"],
            noncovalent_gather_width: values["gather_width"] as usize,
            covalent_gather_width: 8,
            covalent_k: 2,
            noncovalent_k: values["noncovalent_k"] as usize,
            epochs: 0, // driven per interval
            ..SgCnnConfig::table2()
        }
    }

    fn loader(&self, idx: &[usize], shuffle: bool) -> DataLoader {
        DataLoader::new(
            Arc::clone(&self.dataset),
            idx.to_vec(),
            LoaderConfig {
                batch_size: 8,
                num_workers: 2,
                voxel: VoxelConfig { grid_dim: 8, resolution: 2.5 },
                shuffle,
                ..Default::default()
            },
        )
    }
}

impl Trainable for SgTrial {
    fn step(&mut self, values: &ConfigValues) -> f64 {
        let cfg = Self::config_of(values);
        // (Re)build if the architecture changed; PB2 copies weights via
        // save/restore when exploiting, so a width change forces a fresh
        // model (mirrors the paper giving the optimizer the option to
        // re-define structure).
        match &self.model {
            Some((m, _)) if m.config.noncovalent_gather_width != cfg.noncovalent_gather_width => {
                // Width change: new parameter shapes, train from scratch.
                let mut ps = ParamStore::new();
                let m = SgCnn::new(&cfg, &mut ps, "sg", self.seed);
                self.model = Some((m, ps));
                self.epochs_done = 0;
            }
            Some((m, old_ps)) if m.config.noncovalent_k != cfg.noncovalent_k => {
                // K (propagation steps) changed: same parameter shapes, so
                // rebuild the architecture and keep the learned weights.
                let snap = old_ps.snapshot();
                let mut ps = ParamStore::new();
                let m = SgCnn::new(&cfg, &mut ps, "sg", self.seed);
                ps.restore(&snap).expect("k change preserves shapes");
                self.model = Some((m, ps));
            }
            Some(_) => {}
            None => {
                let mut ps = ParamStore::new();
                let m = SgCnn::new(&cfg, &mut ps, "sg", self.seed);
                self.model = Some((m, ps));
                self.epochs_done = 0;
            }
        }
        let train_loader = self.loader(&self.train_idx, true);
        let val_loader = self.loader(&self.val_idx, false);
        let (model, ps) = self.model.as_mut().expect("model built");
        let hist = train(
            model,
            ps,
            &train_loader,
            &val_loader,
            &TrainConfig {
                epochs: 2, // t_ready
                learning_rate: cfg.learning_rate,
                seed: self.seed + self.epochs_done as u64,
                ..Default::default()
            },
        );
        self.epochs_done += 2;
        hist.best_val_mse
    }

    fn save(&self) -> Vec<u8> {
        match &self.model {
            Some((m, ps)) => {
                let snap = ps.snapshot();
                let payload = (m.config.noncovalent_gather_width, self.epochs_done, snap);
                serde_json::to_vec(&payload).expect("serialize checkpoint")
            }
            None => Vec::new(),
        }
    }

    fn restore(&mut self, ckpt: &[u8]) {
        if ckpt.is_empty() {
            return;
        }
        let (width, epochs, snap): (usize, usize, ParamSnapshot) =
            serde_json::from_slice(ckpt).expect("deserialize checkpoint");
        let cfg = SgCnnConfig {
            noncovalent_gather_width: width,
            covalent_gather_width: 8,
            covalent_k: 2,
            noncovalent_k: 2, // K does not change parameter shapes
            ..SgCnnConfig::table2()
        };
        let mut ps = ParamStore::new();
        let m = SgCnn::new(&cfg, &mut ps, "sg", self.seed);
        ps.restore(&snap).expect("restore weights");
        self.model = Some((m, ps));
        self.epochs_done = epochs;
    }
}

fn main() {
    let seed = 11;
    println!("== PB2 hyper-parameter search for the SG-CNN ==\n");
    println!("Generating dataset...");
    let dataset = Arc::new(PdbBind::generate(
        &PdbBindConfig { num_complexes: 80, core_size: 8, ..PdbBindConfig::tiny() },
        seed,
    ));
    let n = dataset.entries.len();
    let train_idx: Vec<usize> = (0..n * 4 / 5).collect();
    let val_idx: Vec<usize> = (n * 4 / 5..n).collect();

    let space = Space::new(vec![
        ("learning_rate", Range::LogUniform { lo: 2e-4, hi: 2e-2 }),
        ("gather_width", Range::Choice(vec![8.0, 16.0, 24.0])),
        ("noncovalent_k", Range::Choice(vec![1.0, 2.0, 3.0])),
    ]);

    let pb2 = Pb2::new(
        Pb2Config {
            population: 6,
            intervals: 4,
            quantile: 0.5,
            threads: 3,
            seed,
            ..Default::default()
        },
        space,
    );

    println!("Running PB2: population 6, 4 perturbation intervals, λ = 0.5 ...\n");
    let ds = Arc::clone(&dataset);
    let ti = train_idx.clone();
    let vi = val_idx.clone();
    let factory = move |i: usize, _c: &ConfigValues| {
        Box::new(SgTrial {
            dataset: Arc::clone(&ds),
            train_idx: ti.clone(),
            val_idx: vi.clone(),
            model: None,
            epochs_done: 0,
            seed: seed + i as u64 * 1000,
        }) as Box<dyn Trainable>
    };
    let result = pb2.run(&factory);

    println!("Best trial: #{} with validation MSE {:.4}", result.best_trial, result.best_objective);
    println!("Optimized hyper-parameters (cf. Table 2):");
    for (k, v) in &result.best_config {
        println!("  {k:<16} {v:.6}");
    }
    let exploits = result.history.iter().filter(|r| r.exploited_from.is_some()).count();
    println!(
        "\nSchedule: {} evaluations, {} exploit/explore events",
        result.history.len(),
        exploits
    );
}
