//! Virtual screening at (simulated) scale: the Figure 3 / Table 7 job
//! architecture end to end — a ligand-only prefilter that shortlists the
//! library before any docking, evaluation jobs over rank threads,
//! MPI-style allgather, parallel `h5lite` output, fault injection and the
//! reschedule-on-failure campaign loop, finishing with the Lassen
//! throughput model.
//!
//! The narrative version of this walkthrough is a *doctest*: the
//! "Screening-funnel walkthrough" section of the `deepfusion` crate docs
//! (`src/lib.rs`) runs the same funnel — rules → streaming screen →
//! prefilter ranges — under `cargo test`, so the prose can never rot.
//! The chemistry behind the front-end (every rule threshold, descriptor
//! formula and the fingerprint algorithm) is in `docs/CHEMISTRY.md`;
//! `examples/library_filter.rs` explores the front-end by itself.
//!
//! Run with:
//! ```sh
//! cargo run --release --example virtual_screen
//! ```

use deepfusion::hts::{read_dir, VinaScorerFactory};
use deepfusion::prelude::*;

fn main() {
    let seed = 7;
    let out_dir = std::env::temp_dir().join("deepfusion_virtual_screen");
    std::fs::remove_dir_all(&out_dir).ok();
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    // One evaluation job: 2 nodes x 4 ranks over a compound block
    // (the paper's shape is 4 nodes x 4 ranks over ~200k compounds).
    let job_cfg = JobConfig {
        nodes: 2,
        ranks_per_node: 4,
        batch_size: 56,
        output_dir: out_dir.clone(),
        faults: FaultConfig { p_bad_metadata: 0.02, p_broken_pipe: 0.1, ..Default::default() },
    };

    println!("== Single evaluation job (Figure 3) ==");
    let spec = JobSpec {
        job_id: 0,
        target: TargetSite::Spike1,
        library: Library::EnamineVirtual,
        first_compound: 0,
        num_compounds: 400,
        campaign_seed: seed,
        class: TaskClass::Dock,
        attempt: 0,
    };
    let out = run_job(
        &job_cfg,
        &spec,
        &VinaScorerFactory,
        &SyntheticPoseSource { poses_per_compound: 5 },
    )
    .expect("job run");
    println!(
        "  evaluated {} poses across {} ranks in {:?} ({:.0} poses/s)",
        out.timing.poses_evaluated,
        job_cfg.num_ranks(),
        out.timing.evaluate,
        out.timing.eval_poses_per_sec()
    );
    println!("  faults logged: {}", out.faults.len());
    let on_disk = read_dir(&out_dir).expect("read rank files");
    println!("  records written across rank files: {}\n", on_disk.len());

    // Ligand-only prefilter: drug-likeness rules + fingerprint scoring
    // shortlist the library before a single pose is generated, so the
    // fault-tolerant campaign below only docks compounds worth docking.
    println!("== Ligand prefilter (filter -> fingerprint -> score) ==");
    let pre_cfg = PrefilterConfig::new(Library::EnamineVirtual, 24_000, seed, 1_200);
    let pre = run_prefilter(&pre_cfg);
    println!(
        "  {} evaluated -> {} pass drug-likeness -> {} shortlisted ({:.1}% of the library)",
        pre.funnel.evaluated,
        pre.funnel.passed_filter,
        pre.shortlist.len(),
        100.0 * pre.reduction()
    );
    let ranges = pre.selection_ranges(100);
    println!(
        "  shortlist splits into {} JobSpec ranges (balanced, \u{2264}100 compounds)\n",
        ranges.len()
    );

    // Many jobs under the fault-tolerant scheduler, built from the
    // prefilter's ranges: each job docks one contiguous shortlist run
    // (split at 100 compounds into balanced pieces), round-robin over
    // the four pockets.
    println!("== Fault-tolerant campaign (prefiltered jobs, node failures on) ==");
    std::fs::remove_dir_all(&out_dir).ok();
    std::fs::create_dir_all(&out_dir).ok();
    let noisy = JobConfig { faults: FaultConfig::noisy(seed), ..job_cfg.clone() };
    let mut specs = pre.job_specs(&TargetSite::ALL, Library::EnamineVirtual, seed, 0, 100);
    specs.truncate(12); // keep the example quick; a campaign would dock all of them
    println!("  {} jobs over {} shortlist ranges", specs.len(), ranges.len());
    let report = run_screening_campaign(
        &SchedulerConfig { max_parallel_jobs: 4, max_attempts: 6, ..Default::default() },
        &noisy,
        specs,
        &VinaScorerFactory,
        &SyntheticPoseSource { poses_per_compound: 3 },
    );
    println!(
        "  {} jobs completed, {} attempts failed & were rescheduled, {} abandoned",
        report.outputs.len(),
        report.failed_attempts,
        report.abandoned.len()
    );
    println!(
        "  campaign throughput: {:.0} poses/s over {:?}\n",
        report.poses_per_sec(),
        report.wall_time
    );

    // Active learning closes the loop between the cheap front-end and the
    // expensive docking core: a fingerprint-MLP surrogate ranks the whole
    // library, only the top slice is docked, and the docked scores retrain
    // the surrogate for the next epoch. One epoch here; `dfbench`'s
    // `surrogate_bench` measures the enrichment a multi-epoch funnel buys.
    println!("== Active-learning epoch (surrogate -> dock top slice -> retrain) ==");
    std::fs::remove_dir_all(&out_dir).ok();
    std::fs::create_dir_all(&out_dir).ok();
    let mut al_cfg = ActiveLearningConfig::tiny(Library::EnamineVirtual, 256, seed);
    al_cfg.epochs = 1;
    al_cfg.train = SurrogateTrainConfig { epochs: 24, ..Default::default() };
    let al_job_cfg = JobConfig { faults: FaultConfig::default(), ..job_cfg.clone() };
    let al = run_active_campaign(
        &al_cfg,
        &al_job_cfg,
        &VinaScorerFactory,
        &SyntheticPoseSource { poses_per_compound: 8 },
        out_dir.join("al_manifest.dfck"),
    )
    .expect("active-learning campaign");
    let ep = &al.epochs[0];
    println!(
        "  surrogate ranked {} compounds, docked the top {} ({:.0}%), retrained on {} labels",
        al_cfg.num_compounds,
        ep.docked,
        100.0 * al_cfg.dock_fraction,
        ep.pool_size
    );
    println!(
        "  retrain loss {:.3} -> {:.3}, published generation {} (snapshot {:016x})",
        ep.train.first_epoch_loss, ep.train.last_epoch_loss, ep.generation, ep.snapshot_hash
    );
    println!(
        "  final ranking fuses {} docked scores with surrogate predictions (digest {:016x})\n",
        al.docked.len(),
        al.ranking_digest
    );

    // The Lassen model behind Table 7.
    println!("== Lassen throughput model (Table 7) ==");
    let model = LassenModel::default();
    println!("  {:<22} {:>12} {:>12}", "Metric", "Single Job", "Peak");
    for row in model.table7() {
        println!("  {:<22} {:>12} {:>12}", row.metric, row.single_job, row.peak);
    }
    let measured_rank_rate = report.poses_per_sec() / (4.0 * noisy.num_ranks() as f64);
    println!(
        "\n  measured CPU rank ≈ {:.1} poses/s → V100-equivalence factor {:.2}",
        measured_rank_rate,
        model.v100_equivalence(measured_rank_rate)
    );

    std::fs::remove_dir_all(&out_dir).ok();
}
