//! The §5 campaign in miniature: train a Coherent Fusion model, screen
//! compounds against the four SARS-CoV-2 targets with all three scoring
//! methods, down-select by the cost function, "test" selections in the
//! simulated assay, and run the retrospective analysis (Figure 4, Table 8,
//! Figure 5, hit rate).
//!
//! Run with:
//! ```sh
//! cargo run --release --example covid_campaign
//! ```

use deepfusion::prelude::*;
use std::sync::Arc;

fn main() {
    let seed = 2020;
    println!("== SARS-CoV-2 screening campaign (seed {seed}) ==\n");

    // 1. Train the Coherent Fusion model on synthetic PDBbind.
    println!("Training Coherent Fusion (scaled-down §3 protocol)...");
    let dataset = Arc::new(PdbBind::generate(
        &PdbBindConfig { num_complexes: 150, core_size: 20, ..PdbBindConfig::tiny() },
        seed,
    ));
    let cfg = WorkflowConfig::small(seed);
    let models = train_all_variants(Arc::clone(&dataset), &cfg);
    let fusion = deepfusion::fusion_scorer_from(&models);
    println!("  best validation MSE: {:.3}\n", models.coherent_history.best_val_mse);

    // 2. Screen + down-select + assay on every target.
    println!("Screening the four targets and testing selected compounds...");
    let campaign_cfg =
        CampaignConfig { screen_pool: 90, tested_per_target: 45, ..CampaignConfig::small(seed) };
    let out = run_assay_campaign(&campaign_cfg, &fusion);
    println!("  tested {} compounds across 4 targets", out.tested.len());
    println!("  hit rate at 33% inhibition: {:.1}% (paper: 10.4%)\n", 100.0 * out.hit_rate(33.0));

    // 3. Figure 4: predicted pK vs % inhibition (binders only).
    println!("Figure 4 — binders (>1% inhibition) per target:");
    for (target, points) in deepfusion::assay::figure4(&out) {
        println!("  {:<10} {} binders", target.name(), points.len());
    }

    // 4. Table 8: correlations on the >1% subset.
    println!("\nTable 8 — correlation of predicted binding and % inhibition (>1%):");
    println!("  {:<17} {:<11} {:>9} {:>9} {:>4}", "Method", "Target", "Pearson", "Spearman", "n");
    for row in deepfusion::assay::table8(&out) {
        println!(
            "  {:<17} {:<11} {:>9.2} {:>9.2} {:>4}",
            row.method.name(),
            row.target.name(),
            row.pearson,
            row.spearman,
            row.n
        );
    }

    // 5. Figure 5: P/R at 33% inhibition with κ vs random.
    println!("\nFigure 5 — classification at 33% inhibition:");
    let panels = deepfusion::assay::figure5(&out, 33.0);
    for panel in &panels {
        println!(
            "  {} ({} positive / {} negative, random precision {:.2}):",
            panel.target.name(),
            panel.positives,
            panel.negatives,
            panel.random_baseline
        );
        for m in &panel.methods {
            println!(
                "    {:<17} F1 {:.3}  AP {:.3}  kappa {:+.3}",
                m.method.name(),
                m.best_f1,
                m.average_precision,
                m.kappa
            );
        }
    }
    println!("\nBest method per target:");
    for (target, method) in deepfusion::assay::best_method_by_f1(&panels) {
        println!("  {:<10} → {}", target.name(), method.name());
    }
}
