//! Quickstart: generate a synthetic PDBbind, train the individual heads
//! and all three fusion variants, and evaluate them on the held-out core
//! set — a miniature of the paper's Table 6.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use deepfusion::prelude::*;
use std::sync::Arc;

fn main() {
    let seed = 42;
    println!("== Deep Fusion quickstart (seed {seed}) ==\n");

    // 1. Synthetic PDBbind-2019: general/refined/core groups, oracle labels.
    println!("Generating synthetic PDBbind (docking every complex)...");
    let dataset = Arc::new(PdbBind::generate(
        &PdbBindConfig { num_complexes: 120, core_size: 16, ..PdbBindConfig::tiny() },
        seed,
    ));
    let core = dataset.indices(Group::Core);
    println!(
        "  {} complexes ({} general / {} refined / {} core)\n",
        dataset.entries.len(),
        dataset.indices(Group::General).len(),
        dataset.indices(Group::Refined).len(),
        core.len()
    );

    // 2. Train SG-CNN + 3D-CNN heads, then Late / Mid-level / Coherent
    //    fusion (§3 protocol, scaled down for a laptop CPU).
    println!("Training all model variants...");
    let cfg = WorkflowConfig::small(seed);
    let mut models = train_all_variants(Arc::clone(&dataset), &cfg);
    println!("  SG-CNN   best val MSE: {:.3}", models.sgcnn_history.best_val_mse);
    println!("  3D-CNN   best val MSE: {:.3}", models.cnn3d_history.best_val_mse);
    println!("  Mid-lvl  best val MSE: {:.3}", models.midlevel_history.best_val_mse);
    println!("  Coherent best val MSE: {:.3}\n", models.coherent_history.best_val_mse);

    // 3. Core-set evaluation (Table 6 metrics).
    println!("Core-set evaluation (cf. Table 6):");
    for (name, which) in [
        ("SG-CNN", EvalModel::SgCnn),
        ("3D-CNN", EvalModel::Cnn3d),
        ("Late Fusion", EvalModel::Late),
        ("Mid-level Fusion", EvalModel::MidLevel),
        ("Coherent Fusion", EvalModel::Coherent),
    ] {
        let report = models.evaluate(&dataset, &core, which);
        println!("  {name:<18} {report}");
    }

    // 4. Score a fresh compound the way the screening pipeline would.
    let scorer_factory = deepfusion::fusion_scorer_from(&models);
    let pocket = BindingPocket::generate(TargetSite::Protease1, seed);
    let compound = Compound::materialize(Library::ZincWorldApproved, 7, seed);
    let poses = dock(&DockConfig::default(), &compound.mol, &pocket, seed);
    let ligs: Vec<Molecule> = poses.iter().map(|p| p.ligand.clone()).collect();
    let mut scorer = scorer_factory.build();
    let preds = scorer.score_poses(&ligs, &pocket);
    let best = preds.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nScreened {} against protease1: {} poses, best predicted pK = {best:.2}",
        compound.id,
        ligs.len()
    );
}
