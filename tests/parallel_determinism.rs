//! Determinism lock for the work-stealing runtime.
//!
//! Every parallelized hot path must produce **bit-identical** output at any
//! thread count: the pool's primitives collect results by input index and
//! the loop restructures preserve per-element floating-point accumulation
//! order, so parallelism is an implementation detail invisible to results.
//! Each test here runs a hot path serially (1 thread) and on pools of 2, 4
//! and 8 threads, comparing outputs with exact equality — no tolerances.

use dfchem::featurize::{build_graph_batch, voxelize_batch, GraphConfig, VoxelConfig};
use dfchem::genmol::{generate_molecule, MolGenConfig};
use dfchem::mol::Molecule;
use dfchem::pocket::{BindingPocket, TargetSite};
use dfdock::search::{dock, DockConfig};
use dfhts::h5lite::ScoreRecord;
use dfhts::job::{run_job, JobConfig, JobSpec, SyntheticPoseSource, TaskClass};
use dfhts::scorer::{FusionScorerFactory, ScorerFactory, VinaScorerFactory};
use dfpool::Pool;
use dftensor::params::ParamStore;
use dftensor::rng::rng;
use dftensor::{Graph, Tensor};

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

/// Runs `f` on a 1-thread (serial) pool, then on pools of 2, 4 and 8
/// threads, asserting every pooled result equals the serial one exactly.
fn assert_thread_invariant<T, F>(what: &str, f: F)
where
    T: PartialEq + std::fmt::Debug,
    F: Fn() -> T,
{
    let serial = Pool::new(1).install(&f);
    for threads in THREAD_COUNTS {
        let pooled = Pool::new(threads).install(&f);
        assert!(serial == pooled, "{what}: {threads}-thread result differs from serial");
    }
}

fn test_ligands(n: u64) -> Vec<Molecule> {
    (0..n)
        .map(|i| {
            generate_molecule(
                &MolGenConfig { min_heavy: 6, max_heavy: 12, ..Default::default() },
                "det",
                i,
            )
        })
        .collect()
}

#[test]
fn matmul_variants_are_bit_identical_across_thread_counts() {
    let mut r = rng(41);
    let a = Tensor::randn(&[23, 17], &mut r); // odd sizes: uneven bands
    let b = Tensor::randn(&[17, 29], &mut r);
    let at = Tensor::randn(&[17, 23], &mut r);
    let bt = Tensor::randn(&[29, 17], &mut r);
    assert_thread_invariant("matmul", || {
        let mut out = a.matmul(&b).data().to_vec();
        out.extend_from_slice(at.matmul_tn(&b).data());
        out.extend_from_slice(a.matmul_nt(&bt).data());
        out.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
    });
}

#[test]
fn conv3d_forward_and_backward_are_bit_identical_across_thread_counts() {
    let mut r = rng(42);
    let x = Tensor::randn(&[2, 3, 6, 6, 6], &mut r);
    let mut store = ParamStore::new();
    let w = store.add("w", Tensor::randn(&[4, 3, 3, 3, 3], &mut r));
    let b = store.add("b", Tensor::randn(&[4], &mut r));
    assert_thread_invariant("conv3d fwd+bwd", || {
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let wv = g.param(&store, w);
        let bv = g.param(&store, b);
        let y = g.conv3d(xv, wv, bv, 1);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        let mut out = g.value(y).data().to_vec();
        for v in [xv, wv, bv] {
            out.extend_from_slice(grads.grad(v).expect("grad present").data());
        }
        out.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
    });
}

#[test]
fn batch_featurization_is_bit_identical_across_thread_counts() {
    let ligands = test_ligands(9);
    let refs: Vec<&Molecule> = ligands.iter().collect();
    let pocket = BindingPocket::generate(TargetSite::Protease1, 11);
    let vcfg = VoxelConfig { grid_dim: 8, resolution: 2.0 };
    let gcfg = GraphConfig::default();
    assert_thread_invariant("featurize batch", || {
        let mut bits: Vec<u32> = Vec::new();
        for v in voxelize_batch(&vcfg, &refs, &pocket) {
            bits.extend(v.data().iter().map(|x| x.to_bits()));
        }
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for mg in build_graph_batch(&gcfg, &refs, &pocket) {
            bits.extend(mg.node_feats.data().iter().map(|x| x.to_bits()));
            edges.extend(mg.covalent_edges.iter().copied());
            edges.extend(mg.noncovalent_edges.iter().copied());
        }
        (bits, edges)
    });
}

#[test]
fn docking_is_bit_identical_across_thread_counts() {
    let lig = &test_ligands(1)[0];
    let pocket = BindingPocket::generate(TargetSite::Spike1, 13);
    let cfg = DockConfig { mc_restarts: 8, mc_steps: 50, ..DockConfig::default() };
    assert_thread_invariant("dock", || {
        dock(&cfg, lig, &pocket, 99)
            .into_iter()
            .map(|p| (p.rank, p.vina.to_bits(), p.ligand))
            .collect::<Vec<(usize, u64, Molecule)>>()
    });
}

#[test]
fn fusion_scoring_is_bit_identical_across_thread_counts() {
    use dffusion::config::{Cnn3dConfig, FusionConfig, FusionKind, SgCnnConfig};
    use dffusion::fusion::FusionModel;

    let mut params = ParamStore::new();
    let voxel = VoxelConfig { grid_dim: 8, resolution: 2.0 };
    let sg = SgCnnConfig {
        covalent_gather_width: 4,
        noncovalent_gather_width: 6,
        covalent_k: 1,
        noncovalent_k: 1,
        ..SgCnnConfig::table2()
    };
    let cnn = Cnn3dConfig {
        conv_filters_1: 4,
        conv_filters_2: 4,
        num_dense_nodes: 8,
        ..Cnn3dConfig::table3()
    };
    let model = FusionModel::new(
        &FusionConfig { num_dense_nodes: 8, ..FusionConfig::small(FusionKind::Coherent) },
        &sg,
        &cnn,
        &voxel,
        &mut params,
        5,
    );
    let factory =
        FusionScorerFactory { model, params, voxel, graph: GraphConfig::default(), batch_size: 3 };
    let poses = test_ligands(7);
    let pocket = BindingPocket::generate(TargetSite::Spike2, 17);
    assert_thread_invariant("fusion scorer", || {
        factory
            .build()
            .score_poses(&poses, &pocket)
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<u64>>()
    });
}

#[test]
fn evaluation_jobs_are_bit_identical_across_thread_counts() {
    let spec = JobSpec {
        job_id: 77,
        target: TargetSite::Spike1,
        library: dfchem::genmol::Library::EnamineVirtual,
        first_compound: 0,
        num_compounds: 10,
        campaign_seed: 5,
        class: TaskClass::Dock,
        attempt: 0,
    };
    assert_thread_invariant("run_job", || {
        let dir = std::env::temp_dir().join(format!(
            "dfdet_job_{}_{}",
            std::process::id(),
            dfpool::current().threads()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = JobConfig {
            nodes: 2,
            ranks_per_node: 2,
            batch_size: 4,
            output_dir: dir.clone(),
            faults: Default::default(),
        };
        let out = run_job(
            &cfg,
            &spec,
            &VinaScorerFactory,
            &SyntheticPoseSource { poses_per_compound: 3 },
        )
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
        // Record identity including score bits; `ScoreRecord: PartialEq`
        // compares `f64` scores exactly.
        out.records.iter().map(|r| (*r, r.score.to_bits())).collect::<Vec<(ScoreRecord, u64)>>()
    });
}
