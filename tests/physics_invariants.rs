//! Physical invariances that every scoring path must respect: rigid
//! motions of the whole complex change nothing (scores depend only on
//! relative geometry), and the spatial-graph featurization is likewise
//! rigid-motion invariant.

use deepfusion::chem::{build_graph, BindingPocket, GraphConfig, Rotation, TargetSite, Vec3};
use deepfusion::data::oracle::oracle_terms;
use deepfusion::dock::{mmgbsa_score, vina_score, MmGbsaConfig};
use deepfusion::prelude::*;

/// Applies one rigid motion to every atom of the ligand and the pocket.
fn transform_complex(
    ligand: &Molecule,
    pocket: &BindingPocket,
    rot: &Rotation,
    shift: Vec3,
) -> (Molecule, BindingPocket) {
    let mut lig = ligand.clone();
    for a in &mut lig.atoms {
        a.pos = rot.apply(a.pos).add(shift);
    }
    let mut poc = pocket.clone();
    for a in &mut poc.atoms {
        a.pos = rot.apply(a.pos).add(shift);
    }
    (lig, poc)
}

fn bound_complex(seed: u64) -> (Molecule, BindingPocket) {
    let pocket = BindingPocket::generate(TargetSite::Protease1, seed);
    let compound = Compound::materialize(Library::Chembl, seed, seed);
    let pose = dock(
        &DockConfig { mc_restarts: 2, mc_steps: 30, ..Default::default() },
        &compound.mol,
        &pocket,
        seed,
    )
    .remove(0)
    .ligand;
    (pose, pocket)
}

#[test]
fn vina_score_is_rigid_motion_invariant() {
    let (lig, pocket) = bound_complex(3);
    let base = vina_score(&lig, &pocket);
    let rot = Rotation::about_axis(Vec3::new(1.0, -2.0, 0.5), 1.1);
    let (lig2, pocket2) = transform_complex(&lig, &pocket, &rot, Vec3::new(5.0, -7.0, 2.0));
    let moved = vina_score(&lig2, &pocket2);
    assert!((base.total - moved.total).abs() < 1e-9, "{} vs {}", base.total, moved.total);
    assert!((base.hbond - moved.hbond).abs() < 1e-9);
    assert!((base.hydrophobic - moved.hydrophobic).abs() < 1e-9);
}

#[test]
fn mmgbsa_score_is_rigid_motion_invariant() {
    let (lig, pocket) = bound_complex(4);
    let cfg = MmGbsaConfig { born_iterations: 3, ..Default::default() };
    let base = mmgbsa_score(&cfg, &lig, &pocket);
    let rot = Rotation::about_axis(Vec3::new(0.0, 1.0, 1.0), -0.7);
    let (lig2, pocket2) = transform_complex(&lig, &pocket, &rot, Vec3::new(-3.0, 11.0, 0.4));
    let moved = mmgbsa_score(&cfg, &lig2, &pocket2);
    assert!((base.total - moved.total).abs() < 1e-6, "{} vs {}", base.total, moved.total);
}

#[test]
fn oracle_terms_are_rigid_motion_invariant() {
    let (lig, pocket) = bound_complex(5);
    let base = oracle_terms(&lig, &pocket);
    let rot = Rotation::about_axis(Vec3::new(2.0, 1.0, -1.0), 2.3);
    let (lig2, pocket2) = transform_complex(&lig, &pocket, &rot, Vec3::new(0.0, 0.0, 42.0));
    let moved = oracle_terms(&lig2, &pocket2);
    assert!((base.shape - moved.shape).abs() < 1e-9);
    assert!((base.interaction - moved.interaction).abs() < 1e-9);
    assert!((base.electrostatic - moved.electrostatic).abs() < 1e-9);
}

#[test]
fn spatial_graph_is_rigid_motion_invariant() {
    let (lig, pocket) = bound_complex(6);
    let cfg = GraphConfig::default();
    let base = build_graph(&cfg, &lig, &pocket);
    let rot = Rotation::about_axis(Vec3::new(1.0, 1.0, 1.0), 0.9);
    let (lig2, pocket2) = transform_complex(&lig, &pocket, &rot, Vec3::new(8.0, -1.0, 3.0));
    let moved = build_graph(&cfg, &lig2, &pocket2);
    assert_eq!(base.num_nodes(), moved.num_nodes());
    assert_eq!(base.covalent_edges, moved.covalent_edges);
    assert_eq!(base.noncovalent_edges, moved.noncovalent_edges);
    assert!(base.node_feats.allclose(&moved.node_feats, 1e-6));
    assert_eq!(base.ligand_mask, moved.ligand_mask);
}

#[test]
fn scores_decay_to_zero_when_complex_separates() {
    let (lig, pocket) = bound_complex(7);
    let mut far = lig.clone();
    far.translate(Vec3::new(500.0, 0.0, 0.0));
    let v = vina_score(&far, &pocket);
    assert_eq!(v.total, 0.0, "Vina has an 8 Å cutoff");
    let g = build_graph(&GraphConfig::default(), &far, &pocket);
    assert_eq!(
        g.num_nodes(),
        far.num_atoms(),
        "no pocket atoms should join a separated complex's graph"
    );
}
