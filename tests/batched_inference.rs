//! Batched-vs-sequential equivalence for fusion inference.
//!
//! The serving path amortizes cost by stacking micro-batches into one
//! forward pass per layer. That optimization must be invisible in the
//! output: every comparison here is `to_bits()` equality, because the
//! batched lowering folds each sample's accumulators in exactly the same
//! order as a single-sample forward (batch rows only add GEMM rows; they
//! never enter another row's fold).

use dfchem::featurize::{build_graph, voxelize, GraphConfig, MolGraph, VoxelConfig};
use dfchem::genmol::{generate_molecule, CompoundId, Library, MolGenConfig};
use dfchem::pocket::{BindingPocket, TargetSite};
use dffusion::{
    score_batch_fusion, Cnn3dConfig, FusionConfig, FusionKind, FusionModel, SgCnnConfig,
};
use dfserve::{ScoreRequest, ScoreService, ServeConfig, SubmitOutcome};
use dftensor::params::ParamStore;
use dftensor::Tensor;

fn tiny_model() -> (FusionModel, ParamStore, VoxelConfig) {
    let voxel = VoxelConfig { grid_dim: 8, resolution: 2.0 };
    let sg = SgCnnConfig {
        covalent_gather_width: 6,
        noncovalent_gather_width: 8,
        covalent_k: 1,
        noncovalent_k: 1,
        ..SgCnnConfig::table2()
    };
    let cnn = Cnn3dConfig {
        conv_filters_1: 4,
        conv_filters_2: 6,
        num_dense_nodes: 8,
        ..Cnn3dConfig::table3()
    };
    let cfg = FusionConfig { num_dense_nodes: 8, ..FusionConfig::small(FusionKind::Coherent) };
    let mut ps = ParamStore::new();
    let m = FusionModel::new(&cfg, &sg, &cnn, &voxel, &mut ps, 17);
    (m, ps, voxel)
}

fn featurized(n: usize, voxel: &VoxelConfig) -> (Vec<Tensor>, Vec<MolGraph>) {
    let pocket = BindingPocket::generate(TargetSite::Spike1, 3);
    let mut voxels = Vec::new();
    let mut graphs = Vec::new();
    for i in 0..n {
        let mut lig = generate_molecule(
            &MolGenConfig { min_heavy: 6, max_heavy: 9, ..Default::default() },
            "m",
            i as u64,
        );
        let c = lig.centroid();
        lig.translate(c.scale(-1.0));
        voxels.push(voxelize(voxel, &lig, &pocket));
        graphs.push(build_graph(&GraphConfig::default(), &lig, &pocket));
    }
    (voxels, graphs)
}

/// Every batch size from 1 up to one past the serving default (max_batch=4,
/// so 5 exercises a ragged tail) yields, per sample, the same bits as a
/// one-sample forward of that compound alone.
#[test]
fn batched_scores_are_bit_identical_to_singles_for_all_batch_sizes() {
    let (mut m, ps, voxel) = tiny_model();
    let (voxels, graphs) = featurized(5, &voxel);
    let singles: Vec<f32> =
        (0..5).map(|i| score_batch_fusion(&mut m, &ps, &[&voxels[i]], &[&graphs[i]])[0]).collect();
    for size in 1..=5usize {
        let vrefs: Vec<&Tensor> = voxels[..size].iter().collect();
        let grefs: Vec<&MolGraph> = graphs[..size].iter().collect();
        let batched = score_batch_fusion(&mut m, &ps, &vrefs, &grefs);
        assert_eq!(batched.len(), size);
        for (i, (&b, &s)) in batched.iter().zip(&singles[..size]).enumerate() {
            assert_eq!(
                b.to_bits(),
                s.to_bits(),
                "batch size {size} sample {i}: batched {b} vs single {s}"
            );
        }
    }
}

/// A sample's score does not depend on which other compounds share its
/// micro-batch: reversing the batch only reverses the output order.
#[test]
fn batch_composition_does_not_leak_between_samples() {
    let (mut m, ps, voxel) = tiny_model();
    let (voxels, graphs) = featurized(4, &voxel);
    let fwd: Vec<&Tensor> = voxels.iter().collect();
    let gfwd: Vec<&MolGraph> = graphs.iter().collect();
    let rev: Vec<&Tensor> = voxels.iter().rev().collect();
    let grev: Vec<&MolGraph> = graphs.iter().rev().collect();
    let a = score_batch_fusion(&mut m, &ps, &fwd, &gfwd);
    let b = score_batch_fusion(&mut m, &ps, &rev, &grev);
    let rebits: Vec<u32> = b.iter().rev().map(|v| v.to_bits()).collect();
    let abits: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
    assert_eq!(abits, rebits);
}

fn request(i: u64) -> ScoreRequest {
    ScoreRequest {
        id: i,
        compound: CompoundId { library: Library::ALL[(i % 4) as usize], index: i },
        target: TargetSite::ALL[(i % 4) as usize],
    }
}

/// Drives two services over the same request stream — one forced to
/// single-item batches, one batching up to 4 — and checks the scores are
/// bit-identical per request while the batched service provably coalesced.
#[test]
fn service_micro_batches_score_identically_to_sequential_service() {
    let run = |max_batch: usize| {
        let mut cfg = ServeConfig::tiny(90);
        cfg.batcher.max_batch = max_batch;
        let mut svc = ScoreService::with_fresh_registry(cfg);
        // Submit everything up front so the batcher actually has a queue
        // to coalesce, then drain to completion.
        let mut responses = Vec::new();
        for i in 0..10u64 {
            match svc.submit(i + 1, request(i)) {
                SubmitOutcome::Completed(r) => responses.push(r),
                SubmitOutcome::Enqueued(_) => {}
                SubmitOutcome::Shed { .. } => panic!("tiny load must not shed"),
            }
        }
        responses.extend(svc.flush(1_000_000));
        let stats = svc.stats();
        let mut scores: Vec<(u64, u32)> =
            responses.iter().map(|r| (r.request_id, r.score.to_bits())).collect();
        scores.sort_unstable();
        (scores, stats)
    };
    let (seq_scores, seq_stats) = run(1);
    let (bat_scores, bat_stats) = run(4);
    assert_eq!(seq_scores.len(), 10);
    assert_eq!(
        seq_scores, bat_scores,
        "micro-batched service must reproduce sequential scores bit-for-bit"
    );
    assert!(
        bat_stats.batches < seq_stats.batches,
        "batched service must coalesce: {} vs {} batches",
        bat_stats.batches,
        seq_stats.batches
    );
}
