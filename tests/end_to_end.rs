//! Cross-crate integration: dataset → training → screening job → result
//! files → retrospective analysis, all at unit-test scale.

use deepfusion::hts::read_dir;
use deepfusion::prelude::*;
use std::sync::Arc;

fn tiny_models(seed: u64) -> (Arc<PdbBind>, TrainedModels) {
    let dataset = Arc::new(PdbBind::generate(&PdbBindConfig::tiny(), seed));
    let cfg = WorkflowConfig::tiny(seed);
    let models = train_all_variants(Arc::clone(&dataset), &cfg);
    (dataset, models)
}

#[test]
fn trained_fusion_model_drives_a_screening_job() {
    let (_, models) = tiny_models(31);
    let fusion = deepfusion::fusion_scorer_from(&models);

    let out_dir = std::env::temp_dir().join(format!("df_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&out_dir).unwrap();
    let job_cfg = JobConfig {
        nodes: 1,
        ranks_per_node: 2,
        batch_size: 8,
        output_dir: out_dir.clone(),
        faults: FaultConfig::default(),
    };
    let spec = JobSpec {
        job_id: 1,
        target: TargetSite::Spike1,
        library: Library::EnamineVirtual,
        first_compound: 0,
        num_compounds: 6,
        campaign_seed: 31,
        class: TaskClass::Dock,
        attempt: 0,
    };
    let out = run_job(&job_cfg, &spec, &fusion, &SyntheticPoseSource { poses_per_compound: 2 })
        .expect("job runs");
    assert_eq!(out.records.len(), 12);
    // Predictions are pK-like values, not garbage.
    for r in &out.records {
        assert!(r.score.is_finite());
        assert!((-5.0..20.0).contains(&r.score), "implausible pK {}", r.score);
    }
    // The h5lite files round-trip the records.
    let on_disk = read_dir(&out_dir).unwrap();
    assert_eq!(on_disk.len(), out.records.len());
    std::fs::remove_dir_all(out_dir).ok();
}

#[test]
fn campaign_analysis_runs_on_trained_model() {
    let (_, models) = tiny_models(32);
    let fusion = deepfusion::fusion_scorer_from(&models);
    let cfg = CampaignConfig::tiny(32);
    let out = run_assay_campaign(&cfg, &fusion);
    assert_eq!(out.tested.len(), 4 * cfg.tested_per_target);

    // Analyses execute and produce well-formed output even at tiny scale.
    let fig4 = deepfusion::assay::figure4(&out);
    assert_eq!(fig4.len(), 4);
    let t8 = deepfusion::assay::table8(&out);
    assert_eq!(t8.len(), 12, "3 methods x 4 targets");
    for row in &t8 {
        assert!(row.pearson.abs() <= 1.0 + 1e-12);
        assert!(row.spearman.abs() <= 1.0 + 1e-12);
    }
    let hit = out.hit_rate(33.0);
    assert!((0.0..=1.0).contains(&hit));
}

#[test]
fn core_set_metrics_are_reasonable_for_all_variants() {
    let (dataset, mut models) = tiny_models(33);
    let core = dataset.indices(Group::Core);
    for which in [EvalModel::Late, EvalModel::MidLevel, EvalModel::Coherent] {
        let r = models.evaluate(&dataset, &core, which);
        // Tiny training: just demand sanity, not paper-grade numbers.
        assert!(r.rmse > 0.0 && r.rmse < 10.0, "{which:?} rmse {}", r.rmse);
        assert!(r.pearson.abs() <= 1.0);
    }
}
