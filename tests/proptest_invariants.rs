//! Property-based tests over cross-crate invariants.

use deepfusion::chem::{centered_rmsd, rmsd, Rotation, Vec3};
use deepfusion::hts::{read_file, H5Writer, ScoreRecord};
use deepfusion::metrics::{pearson, ranks, spearman, PrCurve};
use deepfusion::prelude::*;
use deepfusion::tensor::rng::rng;
use deepfusion::tensor::{GradCheck, Graph, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // ------------------------------------------------------------------
    // Tensor / autodiff
    // ------------------------------------------------------------------

    /// matmul agrees with the transpose identity (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn matmul_transpose_identity(seed in 0u64..1000, m in 1usize..5, k in 1usize..5, n in 1usize..5) {
        let mut r = rng(seed);
        let a = Tensor::randn(&[m, k], &mut r);
        let b = Tensor::randn(&[k, n], &mut r);
        let left = a.matmul(&b).transpose2();
        let right = b.transpose2().matmul(&a.transpose2());
        prop_assert!(left.allclose(&right, 1e-4));
    }

    /// Autodiff gradients of a random two-layer network match finite
    /// differences.
    #[test]
    fn autodiff_matches_finite_differences(seed in 0u64..500) {
        let mut r = rng(seed);
        let x = Tensor::randn(&[2, 3], &mut r);
        let w = Tensor::randn(&[3, 2], &mut r).scale(0.5);
        GradCheck { eps: 1e-2, tol: 5e-2 }
            .check(&[x, w], |g, v| {
                let h = g.matmul(v[0], v[1]);
                let h = g.tanh(h);
                let sq = g.square(h);
                g.mean_all(sq)
            })
            .map_err(TestCaseError::fail)?;
    }

    /// Dropout in eval mode is exactly the identity for any rate.
    #[test]
    fn dropout_eval_identity(seed in 0u64..500, rate in 0.0f32..0.95) {
        let mut r = rng(seed);
        let x = Tensor::randn(&[17], &mut r);
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let y = g.dropout(xv, rate, false, &mut r);
        prop_assert!(g.value(y).allclose(&x, 0.0));
    }

    // ------------------------------------------------------------------
    // Chemistry / geometry
    // ------------------------------------------------------------------

    /// RMSD is a translation-respecting metric: shifting one conformer by
    /// d changes plain RMSD to exactly d, while centered RMSD is zero.
    #[test]
    fn rmsd_translation_behaviour(seed in 0u64..500, dx in -10.0f64..10.0, dy in -10.0..10.0, dz in -10.0..10.0) {
        let m = deepfusion::chem::generate_molecule(&Default::default(), "m", seed);
        let mut shifted = m.clone();
        shifted.translate(Vec3::new(dx, dy, dz));
        let d = (dx * dx + dy * dy + dz * dz).sqrt();
        prop_assert!((rmsd(&m, &shifted) - d).abs() < 1e-9);
        prop_assert!(centered_rmsd(&m, &shifted) < 1e-9);
    }

    /// Rotation about the centroid preserves all pairwise distances.
    #[test]
    fn rotation_preserves_internal_distances(seed in 0u64..200, angle in 0.0f64..std::f64::consts::TAU) {
        let m = deepfusion::chem::generate_molecule(&Default::default(), "m", seed);
        let mut rotated = m.clone();
        rotated.rotate_about_centroid(&Rotation::about_axis(Vec3::new(1.0, 2.0, 3.0), angle));
        for i in 0..m.num_atoms().min(6) {
            for j in (i + 1)..m.num_atoms().min(6) {
                let a = m.atoms[i].pos.dist(m.atoms[j].pos);
                let b = rotated.atoms[i].pos.dist(rotated.atoms[j].pos);
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    /// Generated molecules always respect valence limits.
    #[test]
    fn generated_molecules_are_valence_correct(seed in 0u64..500) {
        let m = deepfusion::chem::generate_molecule(&Default::default(), "m", seed);
        let used = m.used_valence();
        for (i, a) in m.atoms.iter().enumerate() {
            prop_assert!(used[i] <= a.element.max_valence());
        }
        prop_assert!(m.is_connected());
    }

    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    /// Pearson/Spearman stay within [-1, 1] and Spearman is invariant to
    /// monotone transforms.
    #[test]
    fn correlation_bounds_and_monotone_invariance(values in proptest::collection::vec(-100.0f64..100.0, 3..40)) {
        let other: Vec<f64> = values.iter().map(|v| v * 2.0 - 3.0).collect();
        let p = pearson(&values, &other);
        prop_assert!(p.abs() <= 1.0 + 1e-12);
        let monotone: Vec<f64> = values.iter().map(|v| (v / 10.0).exp()).collect();
        let s1 = spearman(&values, &other);
        let s2 = spearman(&monotone, &other);
        prop_assert!((s1 - s2).abs() < 1e-9);
    }

    /// Midranks are a permutation-invariant bijection onto [1, n] sums.
    #[test]
    fn ranks_sum_invariant(values in proptest::collection::vec(-50.0f64..50.0, 1..50)) {
        let r = ranks(&values);
        let n = values.len() as f64;
        let expect = n * (n + 1.0) / 2.0;
        prop_assert!((r.iter().sum::<f64>() - expect).abs() < 1e-9);
    }

    /// PR curves are well-formed for any scores with mixed labels.
    #[test]
    fn pr_curve_wellformed(
        scores in proptest::collection::vec(-10.0f64..10.0, 4..60),
        flip in 0usize..4,
    ) {
        let labels: Vec<bool> = (0..scores.len()).map(|i| (i + flip) % 3 == 0).collect();
        prop_assume!(labels.iter().any(|&l| l));
        let curve = PrCurve::compute(&scores, &labels);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&curve.average_precision));
        for w in curve.points.windows(2) {
            prop_assert!(w[1].recall >= w[0].recall);
        }
        let best = curve.best_f1();
        prop_assert!((0.0..=1.0).contains(&best.f1));
    }

    // ------------------------------------------------------------------
    // HTS substrate
    // ------------------------------------------------------------------

    /// h5lite round-trips arbitrary record sets.
    #[test]
    fn h5lite_round_trip(
        seeds in proptest::collection::vec(0u64..1_000_000, 0..50),
    ) {
        let records: Vec<ScoreRecord> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| ScoreRecord {
                compound: CompoundId {
                    library: Library::ALL[(s % 4) as usize],
                    index: s,
                },
                target: TargetSite::ALL[i % 4],
                pose_rank: (s % 10) as u16,
                score: (s as f64) * 0.001 - 300.0,
            })
            .collect();
        let path = std::env::temp_dir().join(format!(
            "df_prop_{}_{}.dfh5",
            std::process::id(),
            seeds.len()
        ));
        let mut w = H5Writer::create(&path).unwrap();
        w.write_chunk("p", &records).unwrap();
        w.finish().unwrap();
        let back = read_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(&back[0].1, &records);
    }
}
