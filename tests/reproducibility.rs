//! Workspace-wide determinism: every stochastic stage is seeded, so two
//! identical runs must agree bit-for-bit — the property that made the
//! paper's fault-tolerant rescheduling safe (a re-run job reproduces the
//! same predictions for the unaffected compounds).

use deepfusion::prelude::*;
use std::sync::Arc;

#[test]
fn dataset_generation_is_identical_across_runs() {
    let a = PdbBind::generate(&PdbBindConfig::tiny(), 77);
    let b = PdbBind::generate(&PdbBindConfig::tiny(), 77);
    for (x, y) in a.entries.iter().zip(&b.entries) {
        assert_eq!(x.pk, y.pk);
        assert_eq!(x.ligand, y.ligand);
        assert_eq!(x.pocket, y.pocket);
    }
}

#[test]
fn training_is_identical_across_runs() {
    let run = || {
        let dataset = Arc::new(PdbBind::generate(&PdbBindConfig::tiny(), 78));
        let cfg = WorkflowConfig::tiny(78);
        let models = train_all_variants(Arc::clone(&dataset), &cfg);
        models.coherent_params.snapshot()
    };
    let a = run();
    let b = run();
    assert_eq!(a.params.len(), b.params.len());
    for (x, y) in a.params.iter().zip(&b.params) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.data, y.data, "weights differ for {}", x.name);
    }
}

#[test]
fn docking_and_scoring_are_identical_across_runs() {
    let pocket = BindingPocket::generate(TargetSite::Protease2, 79);
    let compound = Compound::materialize(Library::Chembl, 3, 79);
    let run = || {
        let poses = dock(&DockConfig::default(), &compound.mol, &pocket, 79);
        poses
            .iter()
            .map(|p| {
                (
                    p.vina,
                    mmgbsa_score(
                        &MmGbsaConfig { born_iterations: 3, ..Default::default() },
                        &p.ligand,
                        &pocket,
                    )
                    .total,
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_give_different_worlds() {
    let a = PdbBind::generate(&PdbBindConfig::tiny(), 1);
    let b = PdbBind::generate(&PdbBindConfig::tiny(), 2);
    assert_ne!(a.labels(), b.labels());
}
