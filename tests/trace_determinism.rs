//! Determinism lock and cross-thread merge tests for `dftrace`.
//!
//! The tracer's contract is that telemetry is write-only: enabling it must
//! not change a single result bit, at any thread count. These tests run
//! the pooled hot paths traced and untraced and compare outputs exactly,
//! and verify that counters recorded from inside pool workers merge to
//! exact totals.
//!
//! The enable toggle and shard registry are process-global, so every test
//! in this binary serializes on [`trace_lock`].

use dfchem::featurize::{voxelize_batch, VoxelConfig};
use dfchem::genmol::{generate_molecule, MolGenConfig};
use dfchem::mol::Molecule;
use dfchem::pocket::{BindingPocket, TargetSite};
use dfdock::search::{dock, DockConfig};
use dfpool::Pool;
use dftensor::rng::rng;
use dftensor::Tensor;

fn trace_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn test_ligands(n: u64) -> Vec<Molecule> {
    (0..n)
        .map(|i| {
            generate_molecule(
                &MolGenConfig { min_heavy: 6, max_heavy: 12, ..Default::default() },
                "trace",
                i,
            )
        })
        .collect()
}

/// One pass over the pooled hot paths: matmul, batch voxelization and MC
/// docking, all on a 4-thread pool. Returns every produced float as bits.
fn hot_path_bits() -> Vec<u64> {
    Pool::new(4).install(|| {
        let mut bits: Vec<u64> = Vec::new();

        let mut r = rng(7);
        let a = Tensor::randn(&[19, 13], &mut r);
        let b = Tensor::randn(&[13, 21], &mut r);
        bits.extend(a.matmul(&b).data().iter().map(|v| v.to_bits() as u64));

        let ligands = test_ligands(6);
        let refs: Vec<&Molecule> = ligands.iter().collect();
        let pocket = BindingPocket::generate(TargetSite::Protease1, 3);
        let vcfg = VoxelConfig { grid_dim: 8, resolution: 2.0 };
        for v in voxelize_batch(&vcfg, &refs, &pocket) {
            bits.extend(v.data().iter().map(|x| x.to_bits() as u64));
        }

        let dcfg = DockConfig { mc_restarts: 6, mc_steps: 40, ..DockConfig::default() };
        for pose in dock(&dcfg, &ligands[0], &pocket, 55) {
            bits.push(pose.vina.to_bits());
            for atom in &pose.ligand.atoms {
                bits.push(atom.pos.x.to_bits());
                bits.push(atom.pos.y.to_bits());
                bits.push(atom.pos.z.to_bits());
            }
        }
        bits
    })
}

#[test]
fn traced_run_is_bit_identical_to_untraced_run() {
    let _g = trace_lock();
    dftrace::set_enabled(false);
    let untraced = hot_path_bits();

    dftrace::set_enabled(true);
    dftrace::reset();
    let traced = hot_path_bits();
    let report = dftrace::snapshot();
    dftrace::set_enabled(false);

    assert_eq!(untraced, traced, "enabling DFTRACE changed computed bits");
    // The traced pass must actually have recorded something — otherwise
    // this lock proves nothing.
    assert!(report.span("tensor.matmul").is_some(), "matmul span missing");
    assert!(report.span("dock.search").is_some(), "dock span missing");
    assert!(report.counter("dock.mc.steps") > 0, "MC step counter missing");
    assert!(report.counter("pool.jobs") > 0, "pool job counter missing");
    assert!(report.histogram("pool.queue_wait_us").is_some(), "queue-wait histogram missing");
}

#[test]
fn counters_recorded_inside_pool_workers_merge_exactly() {
    let _g = trace_lock();
    dftrace::set_enabled(true);
    dftrace::reset();
    let n = 10_000usize;
    Pool::new(4).install(|| {
        dfpool::current().parallel_for(0..n, |i| {
            dftrace::counter_add("test.pool_merge", 1);
            if i % 2 == 0 {
                dftrace::counter_add("test.pool_merge_even", 1);
            }
        });
    });
    let report = dftrace::snapshot();
    dftrace::set_enabled(false);
    assert_eq!(report.counter("test.pool_merge"), n as u64);
    assert_eq!(report.counter("test.pool_merge_even"), n as u64 / 2);
}

#[test]
fn histograms_recorded_inside_pool_workers_merge_exactly() {
    let _g = trace_lock();
    dftrace::set_enabled(true);
    dftrace::reset();
    let n = 4_096usize;
    Pool::new(4).install(|| {
        dfpool::current().parallel_for(0..n, |i| {
            dftrace::observe_us("test.pool_hist", i as u64);
        });
    });
    let report = dftrace::snapshot();
    dftrace::set_enabled(false);
    let h = report.histogram("test.pool_hist").expect("histogram recorded");
    assert_eq!(h.count, n as u64);
    assert_eq!(h.sum_us, (n as u64 - 1) * n as u64 / 2);
    assert_eq!(h.min_us, 0);
    assert_eq!(h.max_us, n as u64 - 1);
    assert_eq!(h.overflow, 0);
    let bucket_total: u64 = h.buckets.iter().map(|b| b.count).sum();
    assert_eq!(bucket_total, n as u64, "every sample lands in exactly one bucket");
}

#[test]
fn disabled_tracing_records_nothing_from_the_hot_paths() {
    let _g = trace_lock();
    dftrace::set_enabled(false);
    dftrace::reset();
    let _ = hot_path_bits();
    let report = dftrace::snapshot();
    assert!(report.spans.is_empty(), "spans recorded while disabled: {:?}", report.spans);
    assert!(report.counters.is_empty(), "counters recorded while disabled");
    assert!(report.histograms.is_empty(), "histograms recorded while disabled");
}
