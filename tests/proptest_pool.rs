//! Property-based tests for the `dfpool` work-stealing runtime.
//!
//! The pool's determinism contract — ordered collection, serial in-order
//! reduction — must hold for **every** combination of input length, chunk
//! granularity and thread count, not just the sizes the hot paths happen
//! to use. These properties drive the primitives across that whole space
//! and require exact equality with the serial reference.

use dfpool::Pool;
use proptest::prelude::*;

/// A deliberately ugly per-index value: non-monotonic, sign-flipping and
/// irrational-ish, so reordered float accumulation would actually differ.
fn probe(i: usize) -> f64 {
    let x = i as f64;
    (x * 0.7391 + 1.3).sin() * (x + 0.5).sqrt() * if i.is_multiple_of(3) { -1.0 } else { 1.0 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `parallel_map_reduce` equals the serial fold **bit-for-bit** for
    /// arbitrary lengths, chunk sizes and thread counts, even though
    /// float addition is non-associative.
    #[test]
    fn map_reduce_equals_serial_fold(
        len in 0usize..400,
        min_chunk in 1usize..64,
        threads in 1usize..5,
    ) {
        let serial = (0..len).map(probe).fold(0.125f64, |a, v| a + v);
        let pooled = Pool::new(threads)
            .parallel_map_reduce(len, min_chunk, probe, 0.125f64, |a, v| a + v);
        prop_assert_eq!(serial.to_bits(), pooled.to_bits());
    }

    /// The fold is applied left-to-right by index: with a non-commutative
    /// fold the result encodes the exact visit order.
    #[test]
    fn map_reduce_folds_in_index_order(
        len in 0usize..200,
        min_chunk in 1usize..32,
        threads in 1usize..5,
    ) {
        let pooled = Pool::new(threads).parallel_map_reduce(
            len,
            min_chunk,
            |i| i,
            Vec::new(),
            |mut acc: Vec<usize>, v| { acc.push(v); acc },
        );
        let serial: Vec<usize> = (0..len).collect();
        prop_assert_eq!(pooled, serial);
    }

    /// `parallel_map` returns results positioned by input index.
    #[test]
    fn map_is_ordered_by_index(
        len in 0usize..200,
        min_chunk in 1usize..64,
        threads in 1usize..5,
    ) {
        let out = Pool::new(threads).parallel_map(len, min_chunk, |i| i * i + 1);
        prop_assert_eq!(out, (0..len).map(|i| i * i + 1).collect::<Vec<usize>>());
    }

    /// `parallel_for_chunked` covers 0..len exactly once with contiguous,
    /// non-overlapping ranges regardless of granularity and thread count.
    #[test]
    fn chunked_ranges_partition_the_input(
        len in 0usize..200,
        min_chunk in 1usize..64,
        threads in 1usize..5,
    ) {
        use std::sync::Mutex;
        let ranges: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::new());
        Pool::new(threads).parallel_for_chunked(len, min_chunk, |r| {
            ranges.lock().unwrap().push((r.start, r.end));
        });
        let mut got = ranges.into_inner().unwrap();
        got.sort_unstable();
        let mut next = 0usize;
        for (s, e) in got {
            prop_assert_eq!(s, next, "gap or overlap at {}", s);
            prop_assert!(e > s, "empty chunk");
            next = e;
        }
        prop_assert_eq!(next, len, "coverage stops early");
    }
}
