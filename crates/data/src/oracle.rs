//! The hidden binding-affinity oracle behind the synthetic PDBbind.
//!
//! Real PDBbind labels come from wet-lab measurements; our substitute needs
//! a ground-truth function that (a) is physically structured, (b) carries
//! signal visible to *both* model families but with complementary emphasis,
//! and (c) has label noise matching the heterogeneity of mixing K_i, K_d
//! and IC50 measurements (Equation 1 treats them as one label).
//!
//! The oracle combines three standardized terms computed on the bound pose:
//!
//! * **shape** — surface-contact complementarity minus clash penalty; this
//!   is the component a voxelized 3D-CNN sees most directly;
//! * **interaction** — hydrogen-bond and hydrophobic contact patterns over
//!   ligand–pocket atom pairs; the component a spatial-graph model sees
//!   most directly;
//! * **electrostatic** — long-range charge complementarity.
//!
//! Because no single representation exposes every term perfectly, fusing
//! the two model families genuinely helps — which is the paper's own
//! explanation of why Deep Fusion works.

use dfchem::mol::Molecule;
use dfchem::pocket::BindingPocket;
use serde::{Deserialize, Serialize};

/// Oracle weights and noise.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OracleConfig {
    /// Mean pK of the synthetic distribution (PDBbind-2019 sits near 6.4).
    pub base_pk: f64,
    pub w_shape: f64,
    pub w_interaction: f64,
    pub w_electrostatic: f64,
    /// Std-dev of Gaussian label noise in pK units (experimental
    /// heterogeneity; bounds every model's achievable accuracy).
    pub label_noise: f64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        Self {
            base_pk: 6.4,
            w_shape: 1.35,
            w_interaction: 1.15,
            w_electrostatic: 0.55,
            label_noise: 0.65,
        }
    }
}

/// The oracle's term decomposition (before weighting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OracleTerms {
    pub shape: f64,
    pub interaction: f64,
    pub electrostatic: f64,
}

/// Computes the standardized oracle terms for a bound pose.
pub fn oracle_terms(ligand: &Molecule, pocket: &BindingPocket) -> OracleTerms {
    let nl = ligand.num_atoms().max(1) as f64;
    let mut contacts = 0.0f64;
    let mut clashes = 0.0f64;
    let mut hbonds = 0.0f64;
    let mut hydrophobic = 0.0f64;
    let mut electro = 0.0f64;

    for la in &ligand.atoms {
        let mut best_ds = f64::INFINITY;
        for pa in &pocket.atoms {
            let d = la.pos.dist(pa.pos);
            if d > 9.0 {
                continue;
            }
            let ds = d - (la.element.vdw_radius() + pa.element.vdw_radius());
            best_ds = best_ds.min(ds);
            // Pairwise pattern terms inside the first shell.
            if ds < 1.0 {
                let donor_acceptor = (la.element.is_hbond_donor()
                    && pa.element.is_hbond_acceptor())
                    || (la.element.is_hbond_acceptor() && pa.element.is_hbond_donor());
                if donor_acceptor && ds > -0.8 {
                    hbonds += 1.0;
                }
                if la.element.is_hydrophobic() && pa.element.is_hydrophobic() && ds > -0.5 {
                    hydrophobic += 1.0;
                }
            }
            electro += -la.partial_charge * pa.partial_charge / d.max(1.0);
        }
        // Per-atom contact classification from the nearest pocket surface.
        if best_ds < 1.2 && best_ds > -0.4 {
            contacts += 1.0;
        }
        if best_ds <= -0.8 {
            clashes += 1.0;
        }
    }

    OracleTerms {
        // Centered so a half-buried, clash-free pose sits near zero.
        shape: 2.2 * (contacts / nl - 0.45) - 3.0 * (clashes / nl),
        interaction: (0.30 * hbonds + 0.10 * hydrophobic) / nl.sqrt() - 0.55,
        // The raw pairwise charge sum is numerically small (fractional
        // charges, 1/d damping, sign cancellation); the gain is calibrated
        // so this term's spread matches the other two (see the `calibrate`
        // harness).
        electrostatic: (180.0 * electro / nl.sqrt()).tanh(),
    }
}

/// The noiseless latent affinity of a bound pose.
pub fn latent_pk(cfg: &OracleConfig, ligand: &Molecule, pocket: &BindingPocket) -> f64 {
    let t = oracle_terms(ligand, pocket);
    let pk = cfg.base_pk
        + cfg.w_shape * t.shape
        + cfg.w_interaction * t.interaction
        + cfg.w_electrostatic * t.electrostatic;
    pk.clamp(1.5, 11.8)
}

/// A measured label: latent pK plus experimental noise. The noise RNG is
/// the caller's so each complex gets exactly one measurement.
pub fn measured_pk(
    cfg: &OracleConfig,
    ligand: &Molecule,
    pocket: &BindingPocket,
    rng: &mut impl rand::Rng,
) -> f64 {
    let pk = latent_pk(cfg, ligand, pocket) + dftensor::rng::normal_with(rng, 0.0, cfg.label_noise);
    pk.clamp(1.0, 12.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfchem::genmol::{generate_molecule, MolGenConfig};
    use dfchem::geom::Vec3;
    use dfchem::pocket::TargetSite;
    use dfdock::search::{dock, DockConfig};
    use dftensor::rng::rng;

    fn docked(seed: u64) -> (Molecule, BindingPocket) {
        let lig = generate_molecule(
            &MolGenConfig { min_heavy: 10, max_heavy: 18, ..Default::default() },
            "lig",
            seed,
        );
        let pocket = BindingPocket::generate(TargetSite::Protease1, seed);
        let pose = dock(
            &DockConfig { mc_restarts: 3, mc_steps: 50, ..Default::default() },
            &lig,
            &pocket,
            seed,
        )
        .remove(0);
        (pose.ligand, pocket)
    }

    #[test]
    fn latent_pk_is_in_physical_range_and_deterministic() {
        for seed in 0..8 {
            let (lig, pocket) = docked(seed);
            let pk = latent_pk(&OracleConfig::default(), &lig, &pocket);
            assert!((1.5..=11.8).contains(&pk), "pk {pk}");
            assert_eq!(pk, latent_pk(&OracleConfig::default(), &lig, &pocket));
        }
    }

    #[test]
    fn docked_poses_beat_displaced_poses() {
        // The oracle must reward real binding geometry.
        let mut wins = 0;
        for seed in 0..6 {
            let (lig, pocket) = docked(seed);
            let bound = latent_pk(&OracleConfig::default(), &lig, &pocket);
            let mut displaced = lig.clone();
            displaced.translate(Vec3::new(25.0, 0.0, 0.0));
            let apart = latent_pk(&OracleConfig::default(), &displaced, &pocket);
            if bound > apart {
                wins += 1;
            }
        }
        assert!(wins >= 5, "bound pose should usually score higher ({wins}/6)");
    }

    #[test]
    fn labels_vary_across_complexes() {
        let pks: Vec<f64> = (0..10)
            .map(|s| {
                let (lig, pocket) = docked(s);
                latent_pk(&OracleConfig::default(), &lig, &pocket)
            })
            .collect();
        let mean = pks.iter().sum::<f64>() / pks.len() as f64;
        let var = pks.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / pks.len() as f64;
        assert!(var.sqrt() > 0.3, "labels need spread, got std {:.3}", var.sqrt());
    }

    #[test]
    fn measured_labels_are_noisy_versions_of_latent() {
        let (lig, pocket) = docked(3);
        let cfg = OracleConfig::default();
        let latent = latent_pk(&cfg, &lig, &pocket);
        let mut r = rng(1);
        let n = 400;
        let measured: Vec<f64> = (0..n).map(|_| measured_pk(&cfg, &lig, &pocket, &mut r)).collect();
        let mean = measured.iter().sum::<f64>() / n as f64;
        assert!((mean - latent).abs() < 0.15, "noise must be centred: {mean} vs {latent}");
        let std = (measured.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>() / n as f64).sqrt();
        assert!((std - cfg.label_noise).abs() < 0.15, "noise std {std}");
    }

    #[test]
    fn clashing_pose_is_penalized() {
        let (lig, pocket) = docked(5);
        let bound = latent_pk(&OracleConfig::default(), &lig, &pocket);
        // Ram the ligand into the pocket wall.
        let mut clashed = lig.clone();
        let dir = pocket.atoms[0].pos.normalized();
        let c = clashed.centroid();
        clashed.translate(dir.scale(pocket.atoms[0].pos.norm() - c.dot(dir)));
        let rammed = latent_pk(&OracleConfig::default(), &clashed, &pocket);
        assert!(rammed < bound, "clash {rammed} should score below bound {bound}");
    }
}
