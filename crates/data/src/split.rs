//! Quintile sub-sampling of training/validation splits.
//!
//! §3.1: "Quintile sub-sampling guarantees both the training and validation
//! sets to represent the full range of binding affinity values across
//! PDBbind, where simple random sampling holds the risk of training and
//! validating models on different sub-spaces of affinity values." The
//! split is applied *independently* to the general and refined groups, with
//! 10% of each withdrawn for validation.

use dftensor::rng::{permutation, rng};

/// Splits `indices` into (train, validation) by stratifying on the label
/// quintiles: each fifth of the sorted label range contributes `val_frac`
/// of its members to the validation set.
pub fn quintile_split(
    indices: &[usize],
    labels: &[f64],
    val_frac: f64,
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    assert!((0.0..1.0).contains(&val_frac), "val_frac must be in [0,1)");
    if indices.is_empty() {
        return (Vec::new(), Vec::new());
    }
    // Sort the candidate indices by label.
    let mut sorted: Vec<usize> = indices.to_vec();
    sorted.sort_by(|&a, &b| labels[a].partial_cmp(&labels[b]).unwrap_or(std::cmp::Ordering::Equal));

    let mut train = Vec::new();
    let mut val = Vec::new();
    let n = sorted.len();
    let mut r = rng(seed);
    for q in 0..5 {
        let lo = q * n / 5;
        let hi = ((q + 1) * n / 5).min(n);
        if lo >= hi {
            continue;
        }
        let bucket = &sorted[lo..hi];
        let n_val = ((bucket.len() as f64) * val_frac).round() as usize;
        let perm = permutation(&mut r, bucket.len());
        for (k, &p) in perm.iter().enumerate() {
            if k < n_val {
                val.push(bucket[p]);
            } else {
                train.push(bucket[p]);
            }
        }
    }
    train.sort_unstable();
    val.sort_unstable();
    (train, val)
}

/// The paper's train/val construction: quintile sub-sampling applied
/// independently to the general and refined groups, 10% validation each.
pub fn paper_split(
    general: &[usize],
    refined: &[usize],
    labels: &[f64],
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    let (gt, gv) = quintile_split(general, labels, 0.10, seed ^ 0x6E6);
    let (rt, rv) = quintile_split(refined, labels, 0.10, seed ^ 0x4EF);
    let mut train = gt;
    train.extend(rt);
    let mut val = gv;
    val.extend(rv);
    train.sort_unstable();
    val.sort_unstable();
    (train, val)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<f64> {
        (0..n).map(|i| 2.0 + 9.0 * (i as f64) / (n as f64)).collect()
    }

    #[test]
    fn split_is_a_partition() {
        let l = labels(100);
        let idx: Vec<usize> = (0..100).collect();
        let (train, val) = quintile_split(&idx, &l, 0.1, 3);
        assert_eq!(train.len() + val.len(), 100);
        let mut all: Vec<usize> = train.iter().chain(val.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, idx);
    }

    #[test]
    fn validation_fraction_is_respected() {
        let l = labels(200);
        let idx: Vec<usize> = (0..200).collect();
        let (_, val) = quintile_split(&idx, &l, 0.1, 5);
        assert_eq!(val.len(), 20);
    }

    #[test]
    fn every_quintile_is_represented_in_validation() {
        let l = labels(100);
        let idx: Vec<usize> = (0..100).collect();
        let (_, val) = quintile_split(&idx, &l, 0.1, 7);
        // With sorted labels 0..100, quintiles are index ranges of 20.
        for q in 0..5 {
            let present = val.iter().any(|&i| i >= q * 20 && i < (q + 1) * 20);
            assert!(present, "quintile {q} missing from validation");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let l = labels(60);
        let idx: Vec<usize> = (0..60).collect();
        assert_eq!(quintile_split(&idx, &l, 0.1, 9), quintile_split(&idx, &l, 0.1, 9));
        assert_ne!(quintile_split(&idx, &l, 0.1, 9).1, quintile_split(&idx, &l, 0.1, 10).1);
    }

    #[test]
    fn paper_split_keeps_groups_independent() {
        let l = labels(100);
        let general: Vec<usize> = (0..50).collect();
        let refined: Vec<usize> = (50..100).collect();
        let (train, val) = paper_split(&general, &refined, &l, 1);
        assert_eq!(train.len() + val.len(), 100);
        // Validation contains members of both groups.
        assert!(val.iter().any(|&i| i < 50));
        assert!(val.iter().any(|&i| i >= 50));
    }

    #[test]
    fn empty_input_is_fine() {
        let (t, v) = quintile_split(&[], &[], 0.1, 1);
        assert!(t.is_empty() && v.is_empty());
    }
}
