//! `dfdata` — synthetic PDBbind-2019 and data loading.
//!
//! Replaces the licensed PDBbind dataset with a generated equivalent whose
//! labels come from a hidden, physically structured oracle ([`oracle`]),
//! arranged into general/refined/core groups with the paper's rules
//! ([`pdbbind`]), split by quintile sub-sampling ([`split`]) and served by
//! a multi-worker prefetching loader ([`loader`]).

pub mod loader;
pub mod oracle;
pub mod pdbbind;
pub mod split;

pub use loader::{
    featurize_entry, flip_voxel_axis, Batch, BatchStream, DataLoader, FeaturizedSample,
    LoaderConfig,
};
pub use oracle::{latent_pk, measured_pk, oracle_terms, OracleConfig, OracleTerms};
pub use pdbbind::{ComplexEntry, Group, Measurement, PdbBind, PdbBindConfig};
pub use split::{paper_split, quintile_split};
