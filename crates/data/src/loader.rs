//! Multi-worker, prefetching data loader.
//!
//! The paper's training ran "24 data workers running in parallel to
//! pre-load future batches" per rank (§3.2). This loader reproduces that
//! architecture: a pool of worker threads pulls batch specifications from a
//! queue, featurizes complexes (voxel grid + spatial graph), and pushes
//! finished batches through a bounded channel; the consumer re-orders them
//! so iteration is deterministic regardless of worker scheduling.
//!
//! Training-set augmentation follows §3.3.1: each voxel grid is flipped in
//! X, Y and Z independently with 10% probability (the spatial graph is
//! distance-based and therefore flip-invariant).

use crate::pdbbind::{ComplexEntry, PdbBind};
use dfchem::featurize::{build_graph, voxelize, GraphConfig, MolGraph, VoxelConfig};
use dftensor::rng::{derive_seed, permutation, rng};
use dftensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::Arc;

/// One featurized complex.
#[derive(Debug, Clone)]
pub struct FeaturizedSample {
    /// `[C, D, H, W]` voxel grid.
    pub voxel: Tensor,
    pub graph: MolGraph,
    pub label: f32,
    pub entry_index: usize,
}

/// Featurizes one dataset entry (no augmentation).
pub fn featurize_entry(
    voxel_cfg: &VoxelConfig,
    graph_cfg: &GraphConfig,
    entry: &ComplexEntry,
    entry_index: usize,
) -> FeaturizedSample {
    FeaturizedSample {
        voxel: voxelize(voxel_cfg, &entry.ligand, &entry.pocket),
        graph: build_graph(graph_cfg, &entry.ligand, &entry.pocket),
        label: entry.pk as f32,
        entry_index,
    }
}

/// A training batch: stacked voxels, per-sample graphs, labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// `[B, C, D, H, W]`.
    pub voxels: Tensor,
    pub graphs: Vec<MolGraph>,
    /// `[B, 1]`.
    pub labels: Tensor,
    pub entry_indices: Vec<usize>,
}

impl Batch {
    pub fn len(&self) -> usize {
        self.entry_indices.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entry_indices.is_empty()
    }

    fn from_samples(samples: Vec<FeaturizedSample>) -> Batch {
        assert!(!samples.is_empty(), "empty batch");
        let vshape = samples[0].voxel.shape().to_vec();
        let b = samples.len();
        let mut shape = vec![b];
        shape.extend_from_slice(&vshape);
        let per = samples[0].voxel.numel();
        let mut voxels = Tensor::zeros(&shape);
        let mut labels = Tensor::zeros(&[b, 1]);
        let mut graphs = Vec::with_capacity(b);
        let mut entry_indices = Vec::with_capacity(b);
        for (i, s) in samples.into_iter().enumerate() {
            assert_eq!(s.voxel.shape(), vshape.as_slice(), "inconsistent voxel shapes");
            voxels.data_mut()[i * per..(i + 1) * per].copy_from_slice(s.voxel.data());
            labels.data_mut()[i] = s.label;
            graphs.push(s.graph);
            entry_indices.push(s.entry_index);
        }
        Batch { voxels, graphs, labels, entry_indices }
    }
}

/// Flips a `[C, D, H, W]` voxel tensor along a spatial axis (0 = D, 1 = H,
/// 2 = W).
pub fn flip_voxel_axis(t: &Tensor, axis: usize) -> Tensor {
    let s = t.shape();
    assert_eq!(s.len(), 4, "expected [C,D,H,W], got {s:?}");
    assert!(axis < 3, "axis must be 0..3");
    let (c, d, h, w) = (s[0], s[1], s[2], s[3]);
    let mut out = Tensor::zeros(s);
    let src = t.data();
    let dst = out.data_mut();
    for ci in 0..c {
        for zi in 0..d {
            for yi in 0..h {
                for xi in 0..w {
                    let (fz, fy, fx) = match axis {
                        0 => (d - 1 - zi, yi, xi),
                        1 => (zi, h - 1 - yi, xi),
                        _ => (zi, yi, w - 1 - xi),
                    };
                    dst[((ci * d + fz) * h + fy) * w + fx] = src[((ci * d + zi) * h + yi) * w + xi];
                }
            }
        }
    }
    out
}

/// Loader configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoaderConfig {
    pub batch_size: usize,
    /// Worker threads featurizing batches (paper: 24 per rank).
    pub num_workers: usize,
    /// Bounded prefetch depth (batches in flight).
    pub prefetch: usize,
    pub voxel: VoxelConfig,
    pub graph: GraphConfig,
    /// Random 10%-per-axis voxel flips (training only).
    pub flip_augment: bool,
    /// Shuffle sample order each epoch.
    pub shuffle: bool,
}

impl Default for LoaderConfig {
    fn default() -> Self {
        Self {
            batch_size: 8,
            num_workers: 4,
            prefetch: 4,
            voxel: VoxelConfig::default(),
            graph: GraphConfig::default(),
            flip_augment: false,
            shuffle: true,
        }
    }
}

/// Multi-worker loader over a subset of a [`PdbBind`] dataset.
pub struct DataLoader {
    dataset: Arc<PdbBind>,
    indices: Vec<usize>,
    cfg: LoaderConfig,
}

impl DataLoader {
    pub fn new(dataset: Arc<PdbBind>, indices: Vec<usize>, cfg: LoaderConfig) -> Self {
        assert!(cfg.batch_size > 0, "batch_size must be positive");
        assert!(cfg.num_workers > 0, "need at least one worker");
        for &i in &indices {
            assert!(i < dataset.entries.len(), "index {i} out of range");
        }
        Self { dataset, indices, cfg }
    }

    pub fn num_samples(&self) -> usize {
        self.indices.len()
    }

    pub fn num_batches(&self) -> usize {
        self.indices.len().div_ceil(self.cfg.batch_size)
    }

    /// Streams one epoch of batches, featurized by the worker pool, in
    /// deterministic order. `epoch_seed` drives shuffling and augmentation.
    pub fn epoch(&self, epoch_seed: u64) -> BatchStream {
        // Epoch ordering.
        let order: Vec<usize> = if self.cfg.shuffle {
            let mut r = rng(derive_seed(epoch_seed, 0x5FF1E));
            permutation(&mut r, self.indices.len()).into_iter().map(|p| self.indices[p]).collect()
        } else {
            self.indices.clone()
        };
        let specs: Vec<(usize, Vec<usize>)> = order
            .chunks(self.cfg.batch_size)
            .enumerate()
            .map(|(bi, chunk)| (bi, chunk.to_vec()))
            .collect();
        let total = specs.len();

        // Work queue and bounded output channel.
        let (spec_tx, spec_rx) = crossbeam::channel::unbounded::<(usize, Vec<usize>)>();
        for s in specs {
            spec_tx.send(s).expect("queue open");
        }
        drop(spec_tx);
        let (out_tx, out_rx) = mpsc::sync_channel::<(usize, Batch)>(self.cfg.prefetch.max(1));

        let mut handles = Vec::new();
        for _ in 0..self.cfg.num_workers.min(total.max(1)) {
            let spec_rx = spec_rx.clone();
            let out_tx = out_tx.clone();
            let dataset = Arc::clone(&self.dataset);
            let cfg = self.cfg.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok((bi, idxs)) = spec_rx.recv() {
                    let samples: Vec<FeaturizedSample> = idxs
                        .iter()
                        .map(|&i| {
                            let mut s =
                                featurize_entry(&cfg.voxel, &cfg.graph, &dataset.entries[i], i);
                            if cfg.flip_augment {
                                // Seeded per (epoch, entry): deterministic.
                                let mut fr = rng(derive_seed(epoch_seed, 0xF11B ^ i as u64));
                                for axis in 0..3 {
                                    if fr.gen::<f64>() < 0.10 {
                                        s.voxel = flip_voxel_axis(&s.voxel, axis);
                                    }
                                }
                            }
                            s
                        })
                        .collect();
                    // A closed receiver means the consumer dropped early.
                    if out_tx.send((bi, Batch::from_samples(samples))).is_err() {
                        break;
                    }
                }
            }));
        }
        drop(out_tx);

        BatchStream { rx: out_rx, buffer: BTreeMap::new(), next: 0, total, _workers: handles }
    }
}

/// In-order iterator over one epoch's batches.
pub struct BatchStream {
    rx: mpsc::Receiver<(usize, Batch)>,
    buffer: BTreeMap<usize, Batch>,
    next: usize,
    total: usize,
    _workers: Vec<std::thread::JoinHandle<()>>,
}

impl Iterator for BatchStream {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        if self.next >= self.total {
            return None;
        }
        loop {
            if let Some(b) = self.buffer.remove(&self.next) {
                self.next += 1;
                return Some(b);
            }
            match self.rx.recv() {
                Ok((bi, b)) => {
                    self.buffer.insert(bi, b);
                }
                Err(_) => return None, // workers gone; nothing more coming
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdbbind::PdbBindConfig;

    fn tiny_dataset() -> Arc<PdbBind> {
        Arc::new(PdbBind::generate(&PdbBindConfig::tiny(), 3))
    }

    fn tiny_cfg() -> LoaderConfig {
        LoaderConfig {
            batch_size: 5,
            num_workers: 3,
            voxel: VoxelConfig { grid_dim: 8, resolution: 2.0 },
            ..Default::default()
        }
    }

    #[test]
    fn epoch_covers_every_sample_once() {
        let ds = tiny_dataset();
        let indices: Vec<usize> = (0..ds.entries.len()).collect();
        let loader = DataLoader::new(Arc::clone(&ds), indices.clone(), tiny_cfg());
        let mut seen: Vec<usize> = loader.epoch(1).flat_map(|b| b.entry_indices).collect();
        seen.sort_unstable();
        assert_eq!(seen, indices);
    }

    #[test]
    fn batch_shapes_are_consistent() {
        let ds = tiny_dataset();
        let loader = DataLoader::new(Arc::clone(&ds), (0..7).collect(), tiny_cfg());
        let batches: Vec<Batch> = loader.epoch(2).collect();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].voxels.shape()[0], 5);
        assert_eq!(batches[1].voxels.shape()[0], 2);
        assert_eq!(batches[0].labels.shape(), &[5, 1]);
        assert_eq!(batches[0].graphs.len(), 5);
    }

    #[test]
    fn epochs_are_deterministic_given_seed() {
        let ds = tiny_dataset();
        let loader = DataLoader::new(Arc::clone(&ds), (0..10).collect(), tiny_cfg());
        let a: Vec<Vec<usize>> = loader.epoch(5).map(|b| b.entry_indices).collect();
        let b: Vec<Vec<usize>> = loader.epoch(5).map(|b| b.entry_indices).collect();
        assert_eq!(a, b);
        let c: Vec<Vec<usize>> = loader.epoch(6).map(|b| b.entry_indices).collect();
        assert_ne!(a, c, "different epochs shuffle differently");
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let ds = tiny_dataset();
        let one = DataLoader::new(
            Arc::clone(&ds),
            (0..8).collect(),
            LoaderConfig { num_workers: 1, ..tiny_cfg() },
        );
        let many = DataLoader::new(
            Arc::clone(&ds),
            (0..8).collect(),
            LoaderConfig { num_workers: 4, ..tiny_cfg() },
        );
        let a: Vec<Batch> = one.epoch(9).collect();
        let b: Vec<Batch> = many.epoch(9).collect();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.entry_indices, y.entry_indices);
            assert!(x.voxels.allclose(&y.voxels, 0.0));
        }
    }

    #[test]
    fn flip_augmentation_changes_some_voxels_deterministically() {
        let ds = tiny_dataset();
        let plain = DataLoader::new(
            Arc::clone(&ds),
            (0..20).collect(),
            LoaderConfig { shuffle: false, ..tiny_cfg() },
        );
        let aug = DataLoader::new(
            Arc::clone(&ds),
            (0..20).collect(),
            LoaderConfig { shuffle: false, flip_augment: true, ..tiny_cfg() },
        );
        let pv: Vec<Batch> = plain.epoch(1).collect();
        let av1: Vec<Batch> = aug.epoch(1).collect();
        let av2: Vec<Batch> = aug.epoch(1).collect();
        // Deterministic across runs of the same epoch.
        for (x, y) in av1.iter().zip(&av2) {
            assert!(x.voxels.allclose(&y.voxels, 0.0));
        }
        // With 20 samples × 3 axes at 10%, some flips should occur.
        let changed = pv.iter().zip(&av1).any(|(p, a)| !p.voxels.allclose(&a.voxels, 0.0));
        assert!(changed, "expected at least one augmented sample");
    }

    #[test]
    fn flip_is_an_involution() {
        let ds = tiny_dataset();
        let s = featurize_entry(
            &VoxelConfig { grid_dim: 6, resolution: 2.0 },
            &GraphConfig::default(),
            &ds.entries[0],
            0,
        );
        for axis in 0..3 {
            let back = flip_voxel_axis(&flip_voxel_axis(&s.voxel, axis), axis);
            assert!(back.allclose(&s.voxel, 0.0), "axis {axis}");
        }
    }

    #[test]
    fn early_drop_of_stream_does_not_hang() {
        let ds = tiny_dataset();
        let loader = DataLoader::new(Arc::clone(&ds), (0..20).collect(), tiny_cfg());
        let mut stream = loader.epoch(1);
        let _first = stream.next();
        drop(stream); // workers must shut down, not deadlock
    }
}
