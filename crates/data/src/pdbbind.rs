//! Synthetic PDBbind-2019: complex generation, general/refined grouping and
//! core-set extraction.
//!
//! Mirrors §3.1 of the paper. Each entry is a (pocket, bound ligand, pK)
//! triple:
//!
//! * pockets are drawn from a continuous "protein family" space (radius,
//!   chemistry fractions) so the collection is structurally diverse like
//!   the PDB;
//! * the bound pose comes from a thorough docking run (the crystal pose);
//! * the label is the hidden oracle's latent pK plus measurement noise,
//!   tagged as K_i, K_d or IC50;
//! * grouping follows PDBbind's rules — *refined* requires MW ≤ 1000 Da,
//!   a K_i/K_d measurement (no bare IC50) and crystal resolution < 2.5 Å;
//!   everything else is *general*;
//! * the *core* set is extracted from refined by farthest-point clustering
//!   on a pocket descriptor, standing in for the protein-sequence
//!   clustering protocol ("sufficiently different from the general and
//!   refined sets").

use crate::oracle::{latent_pk, OracleConfig};
use dfchem::element::Element;
use dfchem::genmol::{generate_molecule, MolGenConfig};
use dfchem::geom::Vec3;
use dfchem::mol::{Atom, Molecule};
use dfchem::pocket::{BindingPocket, TargetSite};
use dfdock::search::{dock, DockConfig};
use dftensor::rng::{derive_seed, normal_with, rng, uniform};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the binding constant was "measured" (Equation 1 treats them as one
/// label, but the refined-set rule excludes bare IC50 entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Measurement {
    Ki,
    Kd,
    Ic50,
}

/// Which PDBbind grouping an entry belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Group {
    General,
    Refined,
    Core,
}

/// One synthetic protein–ligand complex.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComplexEntry {
    /// PDB-style identifier.
    pub id: String,
    pub group: Group,
    pub pocket: BindingPocket,
    /// The crystal (bound) ligand pose.
    pub ligand: Molecule,
    /// Measured binding affinity label (pK units).
    pub pk: f64,
    pub measurement: Measurement,
    /// Simulated crystal resolution in Å.
    pub resolution: f64,
    /// Pocket descriptor used by the core-set clustering.
    pub descriptor: [f64; 4],
}

/// Dataset generation configuration. Defaults are scaled from the paper's
/// 15,631 / 1,731 / 290 to stay CPU-tractable; every size is configurable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PdbBindConfig {
    /// Total complexes generated before grouping.
    pub num_complexes: usize,
    /// Core-set size extracted from refined (paper: 290).
    pub core_size: usize,
    pub oracle: OracleConfig,
    /// Docking effort for crystal-pose creation.
    pub dock: DockConfig,
    pub ligand_gen: MolGenConfig,
}

impl Default for PdbBindConfig {
    fn default() -> Self {
        Self {
            num_complexes: 600,
            core_size: 48,
            oracle: OracleConfig::default(),
            dock: DockConfig { mc_restarts: 4, mc_steps: 80, ..Default::default() },
            ligand_gen: MolGenConfig { min_heavy: 8, max_heavy: 26, ..Default::default() },
        }
    }
}

impl PdbBindConfig {
    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            num_complexes: 24,
            core_size: 4,
            dock: DockConfig { mc_restarts: 2, mc_steps: 25, ..Default::default() },
            ligand_gen: MolGenConfig { min_heavy: 7, max_heavy: 14, ..MolGenConfig::default() },
            ..Default::default()
        }
    }
}

/// The generated dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PdbBind {
    pub entries: Vec<ComplexEntry>,
}

impl PdbBind {
    /// Generates the full synthetic dataset. Deterministic given the seed.
    pub fn generate(cfg: &PdbBindConfig, seed: u64) -> PdbBind {
        let mut entries: Vec<ComplexEntry> =
            (0..cfg.num_complexes).map(|i| generate_entry(cfg, seed, i)).collect();
        assign_core(&mut entries, cfg.core_size);
        PdbBind { entries }
    }

    /// Indices of entries in a grouping.
    pub fn indices(&self, group: Group) -> Vec<usize> {
        self.entries.iter().enumerate().filter(|(_, e)| e.group == group).map(|(i, _)| i).collect()
    }

    /// All labels, in entry order.
    pub fn labels(&self) -> Vec<f64> {
        self.entries.iter().map(|e| e.pk).collect()
    }
}

/// Generates one complex: diverse pocket, ligand, crystal pose, label.
fn generate_entry(cfg: &PdbBindConfig, seed: u64, index: usize) -> ComplexEntry {
    let eseed = derive_seed(seed, 0x9DB_0000 ^ index as u64);
    let mut r = rng(eseed);

    // --- Diverse pocket from a continuous family space. ---
    let radius = uniform(&mut r, 6.0, 12.0);
    let num_atoms = (radius * radius * uniform(&mut r, 0.9, 1.4)) as usize;
    let hydrophobic_frac = uniform(&mut r, 0.20, 0.60);
    let acceptor_frac = uniform(&mut r, 0.15, 0.45).min(0.95 - hydrophobic_frac);
    let openness = uniform(&mut r, 0.25, 0.70);
    let pocket = generate_family_pocket(
        radius,
        num_atoms,
        hydrophobic_frac,
        acceptor_frac,
        openness,
        &mut r,
    );

    // --- Ligand and crystal pose. ---
    let ligand =
        generate_molecule(&cfg.ligand_gen, format!("pdb{index:05}"), derive_seed(eseed, 1));
    let poses = dock(&cfg.dock, &ligand, &pocket, derive_seed(eseed, 2));
    let crystal = poses.into_iter().next().map(|p| p.ligand).unwrap_or(ligand);

    // --- Label and metadata. ---
    let measurement = match r.gen_range(0..3) {
        0 => Measurement::Ki,
        1 => Measurement::Kd,
        _ => Measurement::Ic50,
    };
    let resolution = uniform(&mut r, 1.4, 3.3);
    let pk = (latent_pk(&cfg.oracle, &crystal, &pocket)
        + normal_with(&mut r, 0.0, cfg.oracle.label_noise))
    .clamp(1.0, 12.0);

    let descriptor = [radius / 12.0, hydrophobic_frac, acceptor_frac, openness];

    let group = if crystal.molecular_weight() <= 1000.0
        && measurement != Measurement::Ic50
        && resolution < 2.5
    {
        Group::Refined
    } else {
        Group::General
    };

    ComplexEntry {
        id: format!("S{index:05}"),
        group,
        pocket,
        ligand: crystal,
        pk,
        measurement,
        resolution,
        descriptor,
    }
}

/// Pocket generator over the continuous family space (the four SARS
/// targets in `dfchem::pocket` are fixed points of the same process).
fn generate_family_pocket(
    radius: f64,
    num_atoms: usize,
    hydrophobic_frac: f64,
    acceptor_frac: f64,
    openness: f64,
    r: &mut impl Rng,
) -> BindingPocket {
    let z_cap = 1.0 - 2.0 * openness;
    let mut atoms = Vec::with_capacity(num_atoms);
    while atoms.len() < num_atoms {
        let z = uniform(r, -1.0, 1.0);
        if z > z_cap {
            continue;
        }
        let phi = uniform(r, 0.0, std::f64::consts::TAU);
        let xy = (1.0 - z * z).sqrt();
        let dir = Vec3::new(xy * phi.cos(), xy * phi.sin(), z);
        let rad = radius + normal_with(r, 1.2, 0.5).abs();
        let u: f64 = r.gen();
        let element = if u < hydrophobic_frac {
            Element::C
        } else if u < hydrophobic_frac + acceptor_frac {
            if r.gen::<f64>() < 0.6 {
                Element::O
            } else {
                Element::N
            }
        } else {
            Element::C
        };
        let mut atom = Atom::new(element, dir.scale(rad));
        atom.partial_charge = match element {
            Element::O => normal_with(r, -0.45, 0.08),
            Element::N => normal_with(r, -0.30, 0.10),
            _ => normal_with(r, 0.05, 0.05),
        };
        atoms.push(atom);
    }
    BindingPocket {
        // Family pockets reuse the TargetSite type for its metadata slot;
        // they are not one of the four campaign targets.
        target: TargetSite::Protease1,
        atoms,
        radius,
        entrance: Vec3::new(0.0, 0.0, 1.0),
    }
}

/// Farthest-point selection of the core set among refined entries: the
/// chosen entries are mutually distant in descriptor space and therefore
/// "sufficiently different" from the rest, mirroring the paper's
/// protein-similarity clustering.
fn assign_core(entries: &mut [ComplexEntry], core_size: usize) {
    let refined: Vec<usize> = entries
        .iter()
        .enumerate()
        .filter(|(_, e)| e.group == Group::Refined)
        .map(|(i, _)| i)
        .collect();
    if refined.is_empty() || core_size == 0 {
        return;
    }
    let dist = |a: &[f64; 4], b: &[f64; 4]| -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
    };
    // Start from the refined entry farthest from the descriptor centroid.
    let mut centroid = [0.0f64; 4];
    for &i in &refined {
        for (c, d) in centroid.iter_mut().zip(&entries[i].descriptor) {
            *c += d / refined.len() as f64;
        }
    }
    let first = *refined
        .iter()
        .max_by(|&&a, &&b| {
            dist(&entries[a].descriptor, &centroid)
                .partial_cmp(&dist(&entries[b].descriptor, &centroid))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("refined non-empty");
    let mut core = vec![first];
    while core.len() < core_size.min(refined.len()) {
        // Pick the refined entry maximizing min-distance to the chosen set.
        let next = refined
            .iter()
            .filter(|i| !core.contains(i))
            .max_by(|&&a, &&b| {
                let da = core
                    .iter()
                    .map(|&c| dist(&entries[a].descriptor, &entries[c].descriptor))
                    .fold(f64::INFINITY, f64::min);
                let db = core
                    .iter()
                    .map(|&c| dist(&entries[b].descriptor, &entries[c].descriptor))
                    .fold(f64::INFINITY, f64::min);
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .copied();
        match next {
            Some(i) => core.push(i),
            None => break,
        }
    }
    for i in core {
        entries[i].group = Group::Core;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PdbBind {
        PdbBind::generate(&PdbBindConfig::tiny(), 7)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.entries.len(), b.entries.len());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.pk, y.pk);
            assert_eq!(x.group, y.group);
        }
    }

    #[test]
    fn groups_partition_and_follow_rules() {
        let d = tiny();
        assert_eq!(d.entries.len(), 24);
        let core = d.indices(Group::Core);
        assert_eq!(core.len(), 4);
        for e in &d.entries {
            match e.group {
                Group::Refined | Group::Core => {
                    assert!(e.resolution < 2.5, "{}: refined needs res < 2.5", e.id);
                    assert_ne!(e.measurement, Measurement::Ic50, "{}: no IC50 in refined", e.id);
                    assert!(e.ligand.molecular_weight() <= 1000.0);
                }
                Group::General => {}
            }
        }
    }

    #[test]
    fn labels_span_a_range() {
        let d = tiny();
        let pks = d.labels();
        let min = pks.iter().copied().fold(f64::INFINITY, f64::min);
        let max = pks.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 1.5, "pK range [{min:.2}, {max:.2}] too narrow");
        assert!(pks.iter().all(|p| (1.0..=12.0).contains(p)));
    }

    #[test]
    fn core_set_is_descriptor_diverse() {
        // Use a slightly larger dataset so the farthest-point property is
        // statistically visible above sampling noise.
        let d = PdbBind::generate(
            &PdbBindConfig { num_complexes: 60, core_size: 6, ..PdbBindConfig::tiny() },
            11,
        );
        let core = d.indices(Group::Core);
        let non_core: Vec<usize> =
            d.indices(Group::Refined).into_iter().chain(d.indices(Group::General)).collect();
        assert!(!non_core.is_empty());
        // Core entries are pairwise farther apart (on average) than random
        // refined/general pairs — the farthest-point property.
        let dist = |a: usize, b: usize| -> f64 {
            d.entries[a]
                .descriptor
                .iter()
                .zip(&d.entries[b].descriptor)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        let mut core_d = 0.0;
        let mut core_n = 0;
        for i in 0..core.len() {
            for j in (i + 1)..core.len() {
                core_d += dist(core[i], core[j]);
                core_n += 1;
            }
        }
        let mut all_d = 0.0;
        let mut all_n = 0;
        for i in 0..non_core.len() {
            for j in (i + 1)..non_core.len() {
                all_d += dist(non_core[i], non_core[j]);
                all_n += 1;
            }
        }
        assert!(core_d / core_n as f64 > all_d / all_n as f64, "core should be more spread out");
    }

    #[test]
    fn pockets_are_diverse() {
        let d = tiny();
        let radii: Vec<f64> = d.entries.iter().map(|e| e.pocket.radius).collect();
        let min = radii.iter().copied().fold(f64::INFINITY, f64::min);
        let max = radii.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 2.0, "pocket radii should vary: [{min:.1}, {max:.1}]");
    }
}
