//! Scoped (non-`'static`) job spawning.
//!
//! The one `unsafe` trick in this crate lives here: a spawned closure may
//! borrow from the caller's stack (`'env`), but the pool's queues hold
//! `'static` jobs, so the lifetime is erased with a transmute. Soundness
//! rests on a single invariant, enforced by [`run_scoped`]'s wait guard:
//! **the scope does not return — even by unwinding — until its latch says
//! every spawned job has finished.** Borrowed data therefore strictly
//! outlives every job that references it.

use crate::latch::CountLatch;
use crate::{Job, Pool};
use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

struct ScopeState {
    latch: CountLatch,
    /// First panic payload from any job; re-thrown when the scope closes.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl ScopeState {
    fn store_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = self.panic.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// Spawn handle passed to the closure of [`Pool::scoped`]. Jobs may borrow
/// anything that outlives the `scoped` call (`'env`).
pub struct Scope<'pool, 'env> {
    pool: &'pool Pool,
    state: Arc<ScopeState>,
    /// Invariant over 'env, like std's scoped threads.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Queues `f` on the pool. On a one-lane pool it runs inline, so the
    /// serial fallback has identical semantics (including panic capture).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        if self.pool.threads() == 1 {
            if let Err(p) = catch_unwind(AssertUnwindSafe(f)) {
                self.state.store_panic(p);
            }
            return;
        }
        self.state.latch.increment();
        let state = Arc::clone(&self.state);
        let pool = self.pool.clone();
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(p) = catch_unwind(AssertUnwindSafe(f)) {
                state.store_panic(p);
            }
            if state.latch.decrement() {
                pool.wake_waiters();
            }
        });
        // SAFETY: lifetime erasure. run_scoped's wait guard keeps the
        // 'env frame alive until this job's latch decrement, so the
        // borrows inside `job` never dangle. Fat-pointer layout of
        // Box<dyn FnOnce> is lifetime-independent.
        let job: Job = unsafe { std::mem::transmute(job) };
        self.pool.push_job(job);
    }

    /// The pool this scope spawns onto.
    pub fn pool(&self) -> &Pool {
        self.pool
    }
}

pub(crate) fn run_scoped<'pool, 'env, R>(
    pool: &'pool Pool,
    f: impl FnOnce(&Scope<'pool, 'env>) -> R,
) -> R {
    let scope: Scope<'pool, 'env> = Scope {
        pool,
        state: Arc::new(ScopeState { latch: CountLatch::new(), panic: Mutex::new(None) }),
        _env: PhantomData,
    };

    /// Waits for all spawned jobs on drop — the normal path *and* the
    /// unwind path when `f` itself panics (the soundness invariant).
    struct WaitGuard<'a> {
        pool: &'a Pool,
        state: &'a ScopeState,
    }
    impl Drop for WaitGuard<'_> {
        fn drop(&mut self) {
            let state = self.state;
            self.pool.help_until(&|| state.latch.is_zero());
        }
    }

    let result = {
        let _guard = WaitGuard { pool, state: &scope.state };
        f(&scope)
        // _guard drops here: helps until every spawned job completed.
    };

    let first_panic = scope.state.panic.lock().unwrap_or_else(|p| p.into_inner()).take();
    if let Some(p) = first_panic {
        resume_unwind(p);
    }
    result
}
