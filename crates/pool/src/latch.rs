//! Completion counting for scoped jobs.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts outstanding jobs; waiters poll [`CountLatch::is_zero`] while
/// helping (see `Pool::help_until`), so the latch itself never blocks.
pub(crate) struct CountLatch {
    count: AtomicUsize,
}

impl CountLatch {
    pub(crate) fn new() -> CountLatch {
        CountLatch { count: AtomicUsize::new(0) }
    }

    pub(crate) fn increment(&self) {
        self.count.fetch_add(1, Ordering::SeqCst);
    }

    /// Returns true when this decrement released the last job, i.e. the
    /// caller should wake any parked waiters.
    pub(crate) fn decrement(&self) -> bool {
        self.count.fetch_sub(1, Ordering::SeqCst) == 1
    }

    pub(crate) fn is_zero(&self) -> bool {
        self.count.load(Ordering::SeqCst) == 0
    }
}
