//! Work-stealing thread pool for the screening hot paths.
//!
//! Design goals, in order:
//!
//! 1. **Determinism.** Every primitive that combines results does so in
//!    item-index order, never completion order, so pooled execution is
//!    bit-identical to serial execution regardless of thread count or
//!    interleaving. [`Pool::parallel_map`] writes each result into its own
//!    pre-allocated slot; [`Pool::parallel_map_reduce`] folds those slots
//!    serially left-to-right.
//! 2. **No blocked waiters.** Threads that wait for work to finish
//!    (the caller of a parallel primitive, or a worker executing a nested
//!    one) *help*: they pull queued jobs and run them instead of blocking.
//!    This makes nested parallelism deadlock-free by construction.
//! 3. **Zero heavy dependencies.** Built on `std::thread` plus the
//!    crossbeam deque types (injector + per-worker LIFO deques with
//!    stealers).
//!
//! A pool of `n` threads means *total* parallelism `n`: it spawns `n - 1`
//! workers and the submitting thread is the n-th lane. `Pool::new(1)` spawns
//! nothing and every primitive degenerates to the serial loop.
//!
//! ## Pool selection
//!
//! Hot paths call [`current`], which resolves to the pool installed on this
//! thread by [`Pool::install`], else the process-global pool ([`global`]),
//! whose size comes from `DFPOOL_THREADS` (default:
//! `std::thread::available_parallelism`). Worker threads run with their own
//! pool pre-installed, so nested primitives reuse it. Code that hands work
//! to raw `std::thread`s (rank simulations, loader workers) captures
//! `current()` and re-`install`s it inside each spawned thread.
//!
//! ## Determinism contract
//!
//! Callers may rely on the following, for any thread count and any
//! scheduling interleaving:
//!
//! * [`Pool::parallel_map`] returns results in item-index order;
//! * [`Pool::parallel_map_reduce`] folds mapped values serially
//!   left-to-right by index, so floating-point accumulation order — and
//!   hence the result bits — never depends on which thread ran what;
//! * [`Pool::parallel_rows`] hands each row band to exactly one job, so a
//!   per-row computation is bit-identical to the serial loop;
//! * [`Pool::parallel_for`] / [`Pool::parallel_for_chunked`] guarantee
//!   nothing about cross-iteration ordering — callers must only touch
//!   disjoint state per index.
//!
//! `tests/parallel_determinism.rs` at the workspace root locks serial ==
//! 2/4/8-thread execution bit-exactly for every hot path built on these
//! primitives.
//!
//! ## Environment variables
//!
//! * `DFPOOL_THREADS` — total parallelism of the process-global pool
//!   (default: `std::thread::available_parallelism`); values < 1 clamp
//!   to 1.
//! * `DFTRACE` — when set to `1`/`true`/`on`, the pool records telemetry
//!   through `dftrace`: `pool.queue_wait_us` and `pool.run_us` histograms
//!   per job, `pool.jobs` / `pool.steal.deque` / `pool.steal.injector`
//!   counters, and per-lane `pool.lane.*.busy_ns` counters from which
//!   per-thread utilization is derived. Tracing is write-only telemetry:
//!   it never changes scheduling or results (see `dftrace`'s determinism
//!   contract).

#![warn(missing_docs)]

mod latch;
mod scope;

pub use scope::Scope;

use crossbeam::deque::{Injector, Stealer, Worker};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A unit of queued work. Jobs are `'static` at the queue boundary; scoped
/// lifetimes are erased (and re-guaranteed by completion latches) in
/// [`scope`].
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

static NEXT_POOL_ID: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// Pool installed on this thread by `Pool::install` (or worker startup).
    static CURRENT: RefCell<Option<Pool>> = const { RefCell::new(None) };
    /// Set inside workers: (owning pool id, worker index).
    static WORKER: RefCell<Option<(usize, usize)>> = const { RefCell::new(None) };
}

struct Shared {
    id: usize,
    threads: usize,
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    /// Pending-job signal for parked workers.
    idle_mutex: Mutex<()>,
    idle_cv: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Takes one queued job: own deque first (LIFO, cache-warm), then the
    /// injector, then steals from other workers.
    fn find_job(&self, local: Option<&Worker<Job>>, self_index: Option<usize>) -> Option<Job> {
        if let Some(w) = local {
            if let Some(job) = w.pop() {
                return Some(job);
            }
        }
        loop {
            let steal = self.injector.steal();
            if let crossbeam::deque::Steal::Success(job) = steal {
                dftrace::counter_add("pool.steal.injector", 1);
                return Some(job);
            }
            if !steal.is_retry() {
                break;
            }
        }
        for (i, s) in self.stealers.iter().enumerate() {
            if Some(i) == self_index {
                continue;
            }
            loop {
                let steal = s.steal();
                if let crossbeam::deque::Steal::Success(job) = steal {
                    dftrace::counter_add("pool.steal.deque", 1);
                    return Some(job);
                }
                if !steal.is_retry() {
                    break;
                }
            }
        }
        None
    }

    fn notify(&self) {
        let _g = self.idle_mutex.lock().unwrap_or_else(|p| p.into_inner());
        self.idle_cv.notify_all();
    }
}

/// A work-stealing thread pool. Cheap to clone (shared handle); the worker
/// threads shut down when the last handle drops.
#[derive(Clone)]
pub struct Pool {
    shared: Arc<Shared>,
    /// Join handles live in a separate Arc so `Pool` clones stay cheap and
    /// the drop of the last handle can join the workers.
    workers: Arc<WorkerHandles>,
}

struct WorkerHandles {
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Drop for WorkerHandles {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.notify();
        for h in self.handles.lock().unwrap_or_else(|p| p.into_inner()).drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("threads", &self.shared.threads).finish()
    }
}

impl Pool {
    /// Creates a pool with total parallelism `threads` (>= 1): `threads - 1`
    /// workers plus the submitting thread.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let id = NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed);
        let worker_deques: Vec<Worker<Job>> =
            (0..threads - 1).map(|_| Worker::new_lifo()).collect();
        let stealers = worker_deques.iter().map(Worker::stealer).collect();
        let shared = Arc::new(Shared {
            id,
            threads,
            injector: Injector::new(),
            stealers,
            idle_mutex: Mutex::new(()),
            idle_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let pool = Pool {
            shared: Arc::clone(&shared),
            workers: Arc::new(WorkerHandles {
                shared: Arc::clone(&shared),
                handles: Mutex::new(Vec::new()),
            }),
        };
        let mut handles = Vec::with_capacity(threads - 1);
        for (index, deque) in worker_deques.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let pool_for_worker = pool.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("dfpool-{id}-{index}"))
                    .spawn(move || worker_main(shared, deque, index, pool_for_worker))
                    .expect("spawn pool worker"),
            );
        }
        *pool.workers.handles.lock().unwrap_or_else(|p| p.into_inner()) = handles;
        pool
    }

    /// Total parallelism (worker threads + the submitting thread).
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Runs `f` with this pool installed as the thread's current pool, so
    /// every `dfpool`-aware hot path inside `f` uses it.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(self.clone()));
        struct Restore(Option<Pool>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0.take();
                CURRENT.with(|c| *c.borrow_mut() = prev);
            }
        }
        let _restore = Restore(prev);
        f()
    }

    pub(crate) fn push_job(&self, job: Job) {
        // Telemetry wrapping happens at the queue boundary so queue-wait
        // (push -> execution start) and run time are both visible; with
        // tracing off the job is enqueued untouched.
        let job = if dftrace::enabled() { instrumented_job(job) } else { job };
        // From inside one of this pool's workers, push to its own LIFO
        // deque (depth-first, cache-warm); otherwise through the injector.
        let local = WORKER.with(|w| *w.borrow());
        match local {
            Some((pool_id, _)) if pool_id == self.shared.id => {
                LOCAL_DEQUE.with(|d| {
                    let d = d.borrow();
                    match d.as_ref() {
                        Some(w) => w.push(job),
                        None => self.shared.injector.push(job),
                    }
                });
            }
            _ => self.shared.injector.push(job),
        }
        self.shared.notify();
    }

    /// Runs queued jobs until `done()`; never blocks while work remains.
    pub(crate) fn help_until(&self, done: &dyn Fn() -> bool) {
        let self_index =
            WORKER.with(|w| w.borrow().and_then(|(pid, i)| (pid == self.shared.id).then_some(i)));
        while !done() {
            let job = LOCAL_DEQUE.with(|d| {
                let d = d.borrow();
                let local = if self_index.is_some() { d.as_ref() } else { None };
                self.shared.find_job(local, self_index)
            });
            match job {
                Some(job) => job(),
                None => {
                    // Nothing runnable: our outstanding jobs are being
                    // executed elsewhere. Park briefly; the timeout guards
                    // against a wakeup racing the final decrement.
                    let g = self.shared.idle_mutex.lock().unwrap_or_else(|p| p.into_inner());
                    if done() {
                        return;
                    }
                    let _ = self.shared.idle_cv.wait_timeout(g, Duration::from_micros(100));
                }
            }
        }
    }

    pub(crate) fn wake_waiters(&self) {
        self.shared.notify();
    }

    // -----------------------------------------------------------------
    // Parallel primitives
    // -----------------------------------------------------------------

    /// Runs `f` with a [`Scope`] in which non-`'static` jobs can be
    /// spawned; returns after every spawned job has finished. The first
    /// job panic (or a panic in `f`) resumes on the caller.
    pub fn scoped<'env, R>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        scope::run_scoped(self, f)
    }

    /// Calls `f(i)` for every `i` in `range`, in parallel. No ordering of
    /// side effects between iterations — `f` must only touch disjoint state
    /// per index.
    pub fn parallel_for<F>(&self, range: std::ops::Range<usize>, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let start = range.start;
        self.parallel_for_chunked(range.len(), 1, |chunk| {
            for i in chunk {
                f(start + i);
            }
        });
    }

    /// Splits `0..len` into contiguous chunks of at least `min_chunk`
    /// items (one chunk per thread-lane at most) and runs `f(chunk)` in
    /// parallel.
    pub fn parallel_for_chunked<F>(&self, len: usize, min_chunk: usize, f: F)
    where
        F: Fn(std::ops::Range<usize>) + Sync,
    {
        if len == 0 {
            return;
        }
        let chunk = chunk_size(len, min_chunk, self.threads());
        if self.threads() == 1 || chunk >= len {
            f(0..len);
            return;
        }
        self.scoped(|s| {
            let mut start = 0;
            while start < len {
                let end = (start + chunk).min(len);
                let f = &f;
                s.spawn(move || f(start..end));
                start = end;
            }
        });
    }

    /// Maps `f` over `0..len` into a `Vec` whose order is by index —
    /// deterministic regardless of scheduling.
    pub fn parallel_map<T, F>(&self, len: usize, min_chunk: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if len == 0 {
            return Vec::new();
        }
        if self.threads() == 1 {
            return (0..len).map(f).collect();
        }
        let mut slots: Vec<Option<T>> = Vec::with_capacity(len);
        slots.resize_with(len, || None);
        let slots_ptr = SlotWriter { ptr: slots.as_mut_ptr() };
        self.parallel_for_chunked(len, min_chunk, |chunk| {
            for i in chunk {
                // SAFETY: each index is written by exactly one chunk, and
                // parallel_for_chunked does not return until all chunks are
                // done, so writes are disjoint and complete before reads.
                unsafe { slots_ptr.write(i, f(i)) };
            }
        });
        slots.into_iter().map(|s| s.expect("slot filled by its chunk")).collect()
    }

    /// Splits a flat `rows * row_len` buffer into contiguous row bands and
    /// runs `f(first_row, band)` on each in parallel. Each row is written
    /// by exactly one job, so results are identical to the serial loop
    /// whenever `f`'s per-row work is order-independent across rows.
    pub fn parallel_rows<T, F>(&self, data: &mut [T], row_len: usize, min_rows: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        self.parallel_rows_aligned(data, row_len, min_rows, 1, f)
    }

    /// [`Pool::parallel_rows`] with a band-granularity hint for blocked
    /// kernels: every band (except possibly the last) covers a multiple of
    /// `align` rows, so a cache-blocked kernel whose register/cache tiles
    /// span `align` rows never sees a tile split across two jobs. Band
    /// boundaries are a scheduling choice only — each row is still written
    /// by exactly one job, so results are unchanged by `align`.
    pub fn parallel_rows_aligned<T, F>(
        &self,
        data: &mut [T],
        row_len: usize,
        min_rows: usize,
        align: usize,
        f: F,
    ) where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if row_len == 0 || data.is_empty() {
            return;
        }
        assert_eq!(data.len() % row_len, 0, "buffer not a whole number of rows");
        let rows = data.len() / row_len;
        let align = align.max(1);
        let band = chunk_size(rows, min_rows, self.threads()).div_ceil(align) * align;
        if self.threads() == 1 || band >= rows {
            f(0, data);
            return;
        }
        self.scoped(|s| {
            let mut rest = data;
            let mut row0 = 0;
            while !rest.is_empty() {
                let take = band.min(rows - row0) * row_len;
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                let f = &f;
                let first = row0;
                s.spawn(move || f(first, head));
                row0 += band;
            }
        });
    }

    /// Splits a flat `rows * row_len` buffer into a 2-D grid of disjoint
    /// rectangular tiles and runs `f(tile)` on each in parallel.
    ///
    /// `row_splits` / `col_splits` are ascending boundary lists that must
    /// start at 0 and end at the row / column count; consecutive pairs
    /// delimit the tiles, so `[0, 64, 97]` × `[0, 16, 37]` yields four
    /// tiles. Each element of `data` belongs to exactly one tile, so — as
    /// with [`Pool::parallel_rows`] — results are identical to the serial
    /// loop whenever `f`'s per-element work is order-independent across
    /// tiles. Unlike row bands, tiles let a kernel with few rows but many
    /// columns (or vice versa) still feed every lane.
    ///
    /// A single-tile grid (or a one-thread pool) runs inline on the
    /// calling thread without touching the queues at all.
    pub fn parallel_tiles<T, F>(
        &self,
        data: &mut [T],
        row_len: usize,
        row_splits: &[usize],
        col_splits: &[usize],
        f: F,
    ) where
        T: Send,
        F: Fn(Tile<'_, T>) + Sync,
    {
        if data.is_empty() || row_len == 0 {
            return;
        }
        assert_eq!(data.len() % row_len, 0, "buffer not a whole number of rows");
        let rows = data.len() / row_len;
        validate_splits(row_splits, rows, "row");
        validate_splits(col_splits, row_len, "col");
        let tiles = (row_splits.len() - 1) * (col_splits.len() - 1);
        if tiles == 1 || self.threads() == 1 {
            f(Tile::full(data, row_len));
            return;
        }
        let base = TileBase { ptr: data.as_mut_ptr() };
        self.scoped(|s| {
            for rw in row_splits.windows(2) {
                for cw in col_splits.windows(2) {
                    let (r0, r1, c0, c1) = (rw[0], rw[1], cw[0], cw[1]);
                    let f = &f;
                    let base = &base;
                    s.spawn(move || {
                        // SAFETY: validated splits make every (row, col)
                        // range disjoint from every other tile's, and the
                        // scope joins before `data`'s borrow ends.
                        let tile =
                            unsafe { Tile::from_raw(base.ptr, row_len, r0, r1 - r0, c0, c1 - c0) };
                        f(tile);
                    });
                }
            }
        });
    }

    /// Parallel map + **serial, in-order** fold: exactly equivalent to
    /// `(0..len).map(f).fold(init, fold)` for any thread count, because the
    /// mapped values are folded left-to-right by index. This is the
    /// primitive the hot paths use to stay bit-identical to serial
    /// execution (floating-point accumulation order never changes).
    pub fn parallel_map_reduce<T, A, F, G>(
        &self,
        len: usize,
        min_chunk: usize,
        f: F,
        init: A,
        mut fold: G,
    ) -> A
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        G: FnMut(A, T) -> A,
    {
        if self.threads() == 1 || len <= min_chunk.max(1) {
            return (0..len).map(f).fold(init, fold);
        }
        let mapped = self.parallel_map(len, min_chunk, f);
        let mut acc = init;
        for v in mapped {
            acc = fold(acc, v);
        }
        acc
    }
}

/// Wraps a job with `dftrace` telemetry: queue-wait and run-time
/// histograms, a job counter, and per-lane busy time (the lane is resolved
/// at execution time — `workerN` inside a pool worker, `caller` on a
/// submitting/helping thread). Only built when tracing is enabled.
fn instrumented_job(job: Job) -> Job {
    let queued = std::time::Instant::now();
    Box::new(move || {
        dftrace::observe_duration("pool.queue_wait_us", queued.elapsed());
        let run0 = std::time::Instant::now();
        job();
        let run = run0.elapsed();
        dftrace::observe_duration("pool.run_us", run);
        dftrace::counter_add("pool.jobs", 1);
        let busy_ns = run.as_nanos().min(u64::MAX as u128) as u64;
        match WORKER.with(|w| *w.borrow()) {
            Some((_, index)) => {
                dftrace::counter_add(&format!("pool.lane.worker{index}.busy_ns"), busy_ns)
            }
            None => dftrace::counter_add("pool.lane.caller.busy_ns", busy_ns),
        }
    })
}

/// A mutable view of one rectangular tile of a flat `rows × row_len`
/// buffer, handed to [`Pool::parallel_tiles`] jobs. Rows within the tile
/// are *not* contiguous in the underlying buffer (the tile may cover a
/// column sub-range), so access goes through [`Tile::row`] /
/// [`Tile::row_mut`], which return the tile's slice of one buffer row.
pub struct Tile<'a, T> {
    base: *mut T,
    row_len: usize,
    first_row: usize,
    rows: usize,
    first_col: usize,
    cols: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: a Tile is an exclusive view of a disjoint rectangle (enforced by
// `parallel_tiles`' validated splits), so moving it to another thread moves
// exclusive access to that rectangle with it.
unsafe impl<T: Send> Send for Tile<'_, T> {}

impl<'a, T> Tile<'a, T> {
    /// A tile covering the entire buffer — the inline/serial view.
    pub fn full(data: &'a mut [T], row_len: usize) -> Tile<'a, T> {
        assert_eq!(data.len() % row_len.max(1), 0, "buffer not a whole number of rows");
        let rows = data.len().checked_div(row_len).unwrap_or(0);
        Tile {
            base: data.as_mut_ptr(),
            row_len,
            first_row: 0,
            rows,
            first_col: 0,
            cols: row_len,
            _marker: std::marker::PhantomData,
        }
    }

    /// # Safety
    /// The rectangle must be in-bounds for the buffer behind `base`, and no
    /// other live reference (or tile) may overlap it for `'a`.
    unsafe fn from_raw(
        base: *mut T,
        row_len: usize,
        first_row: usize,
        rows: usize,
        first_col: usize,
        cols: usize,
    ) -> Tile<'a, T> {
        Tile { base, row_len, first_row, rows, first_col, cols, _marker: std::marker::PhantomData }
    }

    /// First buffer row covered by this tile.
    pub fn first_row(&self) -> usize {
        self.first_row
    }

    /// Number of rows in the tile.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// First buffer column covered by this tile.
    pub fn first_col(&self) -> usize {
        self.first_col
    }

    /// Number of columns in the tile.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The tile's portion of tile-relative row `r`.
    pub fn row(&self, r: usize) -> &[T] {
        assert!(r < self.rows, "tile row {r} out of {} rows", self.rows);
        // SAFETY: in-bounds by construction; shared borrow of self.
        unsafe {
            std::slice::from_raw_parts(
                self.base.add((self.first_row + r) * self.row_len + self.first_col),
                self.cols,
            )
        }
    }

    /// Mutable access to the tile's portion of tile-relative row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        assert!(r < self.rows, "tile row {r} out of {} rows", self.rows);
        // SAFETY: in-bounds by construction; exclusive borrow of self, and
        // the tile's rectangle is disjoint from every other tile's.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.base.add((self.first_row + r) * self.row_len + self.first_col),
                self.cols,
            )
        }
    }
}

/// Shared base pointer for `parallel_tiles` jobs (tiles are disjoint).
struct TileBase<T> {
    ptr: *mut T,
}

// SAFETY: jobs only dereference through disjoint Tile rectangles.
unsafe impl<T: Send> Sync for TileBase<T> {}
unsafe impl<T: Send> Send for TileBase<T> {}

/// Asserts a split boundary list is ascending, starts at 0 and ends at
/// `total`.
fn validate_splits(splits: &[usize], total: usize, axis: &str) {
    assert!(
        splits.len() >= 2 && splits[0] == 0 && *splits.last().expect("len checked") == total,
        "{axis} splits must run 0..={total}, got {splits:?}"
    );
    assert!(
        splits.windows(2).all(|w| w[0] < w[1]),
        "{axis} splits must be strictly ascending, got {splits:?}"
    );
}

/// Raw-pointer slot writer for `parallel_map`. Soundness contract: callers
/// write disjoint indices and join before the owner reads.
struct SlotWriter<T> {
    ptr: *mut Option<T>,
}

unsafe impl<T: Send> Sync for SlotWriter<T> {}
unsafe impl<T: Send> Send for SlotWriter<T> {}

impl<T> SlotWriter<T> {
    unsafe fn write(&self, index: usize, value: T) {
        unsafe { *self.ptr.add(index) = Some(value) };
    }
}

/// Chunk size balancing grain (`min_chunk`) against one-chunk-per-lane
/// splitting; at most `4 * threads` chunks for cheap stealing without
/// queue flooding.
fn chunk_size(len: usize, min_chunk: usize, threads: usize) -> usize {
    let target_chunks = threads.saturating_mul(4).max(1);
    len.div_ceil(target_chunks).max(min_chunk.max(1))
}

thread_local! {
    /// The worker's own LIFO deque, reachable from nested `push_job` calls.
    static LOCAL_DEQUE: RefCell<Option<Worker<Job>>> = const { RefCell::new(None) };
}

fn worker_main(shared: Arc<Shared>, deque: Worker<Job>, index: usize, pool: Pool) {
    WORKER.with(|w| *w.borrow_mut() = Some((shared.id, index)));
    LOCAL_DEQUE.with(|d| *d.borrow_mut() = Some(deque));
    // Nested primitives inside jobs resolve `current()` to this pool.
    pool.install(|| loop {
        let job = LOCAL_DEQUE.with(|d| shared.find_job(d.borrow().as_ref(), Some(index)));
        match job {
            Some(job) => {
                // A panicking job must not kill the worker; the panic is
                // captured and re-thrown at the scope that spawned it.
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            None => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Park until notified. `push_job` notifies under the same
                // mutex, but `find_job` ran outside it, so a job pushed in
                // that window could slip past the notify — the timeout is
                // the backstop for that race, not a polling interval. It is
                // deliberately long: on small hosts a short poll makes every
                // idle worker wake at kHz rates and steal cycles from the
                // thread doing actual work.
                let g = shared.idle_mutex.lock().unwrap_or_else(|p| p.into_inner());
                let _ = shared.idle_cv.wait_timeout(g, Duration::from_millis(50));
            }
        }
    });
    LOCAL_DEQUE.with(|d| *d.borrow_mut() = None);
    WORKER.with(|w| *w.borrow_mut() = None);
}

// ---------------------------------------------------------------------
// Global / current pool
// ---------------------------------------------------------------------

/// Reads `DFPOOL_THREADS` (>= 1) or falls back to the machine parallelism.
fn default_threads() -> usize {
    if let Ok(v) = std::env::var("DFPOOL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The process-global pool, sized on first use from `DFPOOL_THREADS` (or
/// available parallelism when unset).
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| Pool::new(default_threads()))
}

/// The pool hot paths should use: the innermost [`Pool::install`]ed pool on
/// this thread, else the global one.
pub fn current() -> Pool {
    CURRENT.with(|c| c.borrow().clone()).unwrap_or_else(|| global().clone())
}

/// A one-lane pool: every primitive runs the plain serial loop.
pub fn serial() -> Pool {
    Pool::new(1)
}

/// CPUs visible to this process (cached after the first call; 1 when the
/// query fails). Band-granularity policies clamp their fan-out with this:
/// a pool configured with more threads than the host has cores gains
/// nothing from extra bands of uniform work, it only pays scheduling
/// overhead. Purely a performance hint — band boundaries never affect
/// results (each output element's accumulation order is band-invariant),
/// so consulting host topology keeps runs bit-identical across machines.
pub fn host_parallelism() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_map_matches_serial_for_all_thread_counts() {
        let expected: Vec<u64> = (0..1000u64).map(|i| i * i + 1).collect();
        for threads in [1, 2, 3, 4, 8] {
            let pool = Pool::new(threads);
            let got = pool.parallel_map(1000, 1, |i| (i as u64) * (i as u64) + 1);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn map_reduce_is_order_preserving() {
        // Non-commutative fold: order changes the result, so equality with
        // the serial fold proves index order.
        let serial: String = (0..200).map(|i| format!("{i},")).fold(String::new(), |a, b| a + &b);
        for threads in [1, 2, 4, 7] {
            let pool = Pool::new(threads);
            let got =
                pool.parallel_map_reduce(200, 3, |i| format!("{i},"), String::new(), |a, b| a + &b);
            assert_eq!(got, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..257, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunked_covers_range_without_overlap() {
        let pool = Pool::new(3);
        let sum = AtomicU64::new(0);
        pool.parallel_for_chunked(10_000, 64, |chunk| {
            let local: u64 = chunk.map(|i| i as u64).sum();
            sum.fetch_add(local, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 9_999u64 * 10_000 / 2);
    }

    #[test]
    fn scoped_borrows_stack_data() {
        let pool = Pool::new(4);
        let data = vec![1u64, 2, 3, 4, 5];
        let total = AtomicU64::new(0);
        pool.scoped(|s| {
            for v in &data {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(*v, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn job_panic_resumes_on_caller() {
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let caught = catch_unwind(AssertUnwindSafe(|| {
                pool.scoped(|s| {
                    s.spawn(|| panic!("boom-from-job"));
                    s.spawn(|| {}); // healthy sibling still completes
                });
            }));
            let payload = caught.expect_err("panic should propagate");
            let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
            assert_eq!(msg, "boom-from-job", "threads={threads}");
        }
    }

    #[test]
    fn nested_parallelism_completes() {
        let pool = Pool::new(4);
        let out = pool.parallel_map(8, 1, |i| {
            // Nested primitive on the same pool from inside a job.
            current().parallel_map_reduce(16, 1, |j| (i * j) as u64, 0u64, |a, b| a + b)
        });
        let expect: Vec<u64> = (0..8).map(|i| (0..16).map(|j| (i * j) as u64).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn install_overrides_current() {
        let pool = Pool::new(2);
        let inside = pool.install(|| current().threads());
        assert_eq!(inside, 2);
        // Workers resolve current() to their own pool.
        let via_worker = pool.install(|| current().parallel_map(4, 1, |_| current().threads()));
        assert!(via_worker.iter().all(|&t| t == 2));
    }

    #[test]
    fn parallel_rows_band_decomposition_is_exact() {
        for threads in [1, 2, 4] {
            let pool = Pool::new(threads);
            let row_len = 7;
            let rows = 23;
            let mut data = vec![0u64; rows * row_len];
            pool.parallel_rows(&mut data, row_len, 2, |first_row, band| {
                for (r, row) in band.chunks_mut(row_len).enumerate() {
                    for (c, v) in row.iter_mut().enumerate() {
                        *v = ((first_row + r) * 100 + c) as u64;
                    }
                }
            });
            for r in 0..rows {
                for c in 0..row_len {
                    assert_eq!(data[r * row_len + c], (r * 100 + c) as u64, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn aligned_bands_cover_all_rows_and_respect_alignment() {
        for threads in [1, 2, 4] {
            for align in [1, 3, 4, 7] {
                let pool = Pool::new(threads);
                let row_len = 5;
                let rows = 29;
                let mut data = vec![0u64; rows * row_len];
                let starts = Mutex::new(Vec::new());
                pool.parallel_rows_aligned(&mut data, row_len, 1, align, |first_row, band| {
                    starts.lock().unwrap_or_else(|p| p.into_inner()).push(first_row);
                    for (r, row) in band.chunks_mut(row_len).enumerate() {
                        for v in row.iter_mut() {
                            *v += (first_row + r + 1) as u64;
                        }
                    }
                });
                // Every row written exactly once, with its own value.
                for r in 0..rows {
                    for c in 0..row_len {
                        assert_eq!(
                            data[r * row_len + c],
                            (r + 1) as u64,
                            "threads={threads} align={align}"
                        );
                    }
                }
                // Every band starts on an alignment boundary.
                for s in starts.lock().unwrap_or_else(|p| p.into_inner()).iter() {
                    assert_eq!(s % align, 0, "threads={threads} align={align} start={s}");
                }
            }
        }
    }

    #[test]
    fn parallel_tiles_cover_the_grid_without_overlap() {
        for threads in [1, 2, 4] {
            let pool = Pool::new(threads);
            let (rows, cols) = (13, 11);
            let mut data = vec![0u64; rows * cols];
            let row_splits = [0usize, 4, 8, 13];
            let col_splits = [0usize, 8, 11];
            pool.parallel_tiles(&mut data, cols, &row_splits, &col_splits, |mut tile| {
                for r in 0..tile.rows() {
                    let (fr, fc) = (tile.first_row(), tile.first_col());
                    for (c, v) in tile.row_mut(r).iter_mut().enumerate() {
                        *v += ((fr + r) * 100 + fc + c + 1) as u64;
                    }
                }
            });
            for r in 0..rows {
                for c in 0..cols {
                    assert_eq!(data[r * cols + c], (r * 100 + c + 1) as u64, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn single_tile_grid_runs_inline() {
        let pool = Pool::new(4);
        let tid = std::thread::current().id();
        let mut data = vec![0u64; 6];
        let ran_on = Mutex::new(None);
        pool.parallel_tiles(&mut data, 3, &[0, 2], &[0, 3], |_tile| {
            *ran_on.lock().unwrap_or_else(|p| p.into_inner()) = Some(std::thread::current().id());
        });
        assert_eq!(ran_on.into_inner().unwrap_or_else(|p| p.into_inner()), Some(tid));
    }

    #[test]
    fn tile_rows_expose_the_right_region() {
        let mut data: Vec<u64> = (0..20).collect(); // 4 rows × 5 cols
        let pool = Pool::new(2);
        pool.parallel_tiles(&mut data, 5, &[0, 2, 4], &[0, 2, 5], |tile| {
            for r in 0..tile.rows() {
                let row = tile.row(r);
                for (c, &v) in row.iter().enumerate() {
                    let expect = ((tile.first_row() + r) * 5 + tile.first_col() + c) as u64;
                    assert_eq!(v, expect);
                }
            }
        });
    }

    #[test]
    #[should_panic(expected = "row splits")]
    fn tiles_reject_bad_splits() {
        let pool = Pool::new(1);
        let mut data = vec![0u64; 12];
        pool.parallel_tiles(&mut data, 4, &[0, 2], &[0, 4], |_| {});
    }

    #[test]
    fn serial_pool_spawns_no_threads_and_runs_inline() {
        let pool = serial();
        assert_eq!(pool.threads(), 1);
        let tid = std::thread::current().id();
        let ran_on = pool.parallel_map(3, 1, |_| std::thread::current().id());
        assert!(ran_on.iter().all(|&t| t == tid));
    }
}
