//! PB2 [`Trainable`] adapters for the real models, used by the
//! `tables2to5` harness to re-run the paper's hyper-parameter
//! optimizations at CPU scale.

use dfchem::featurize::VoxelConfig;
use dfdata::loader::{DataLoader, LoaderConfig};
use dfdata::pdbbind::PdbBind;
use dffusion::{
    train, Cnn3d, Cnn3dConfig, FusionConfig, FusionKind, FusionModel, SgCnn, SgCnnConfig,
    TrainConfig,
};
use dfhpo::{ConfigValues, Range, Space, Trainable};
use dftensor::nn::Activation;
use dftensor::optim::OptimizerKind;
use dftensor::params::{ParamSnapshot, ParamStore};
use std::sync::Arc;

/// Which model a PB2 run optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    SgCnn,
    Cnn3d,
    MidFusion,
    Coherent,
}

impl ModelKind {
    pub fn parse(s: &str) -> Option<ModelKind> {
        match s {
            "sgcnn" => Some(ModelKind::SgCnn),
            "cnn3d" => Some(ModelKind::Cnn3d),
            "midfusion" => Some(ModelKind::MidFusion),
            "coherent" => Some(ModelKind::Coherent),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            ModelKind::SgCnn => "SG-CNN (Table 2)",
            ModelKind::Cnn3d => "3D-CNN (Table 3)",
            ModelKind::MidFusion => "Mid-level Fusion (Table 4)",
            ModelKind::Coherent => "Coherent Fusion (Table 5)",
        }
    }

    /// CPU-scaled subset of the Table 1 search space for this model: the
    /// dimensions that matter most, with ranges trimmed to tractable model
    /// sizes.
    pub fn space(self) -> Space {
        match self {
            ModelKind::SgCnn => Space::new(vec![
                ("learning_rate", Range::LogUniform { lo: 2e-4, hi: 2e-2 }),
                ("noncovalent_k", Range::Choice(vec![1.0, 2.0, 3.0])),
                ("covalent_k", Range::Choice(vec![1.0, 2.0, 3.0])),
                ("noncovalent_gather_width", Range::Choice(vec![8.0, 16.0, 24.0, 32.0])),
                ("covalent_gather_width", Range::Choice(vec![8.0, 16.0])),
            ]),
            ModelKind::Cnn3d => Space::new(vec![
                ("learning_rate", Range::LogUniform { lo: 1e-5, hi: 3e-3 }),
                ("num_dense_nodes", Range::Choice(vec![16.0, 32.0, 48.0])),
                ("conv_filters_1", Range::Choice(vec![4.0, 8.0, 12.0])),
                ("conv_filters_2", Range::Choice(vec![8.0, 12.0, 16.0])),
                ("residual_1", Range::Bool),
                ("residual_2", Range::Bool),
                ("batch_norm", Range::Bool),
            ]),
            ModelKind::MidFusion | ModelKind::Coherent => Space::new(vec![
                ("learning_rate", Range::LogUniform { lo: 1e-5, hi: 1e-3 }),
                ("optimizer", Range::Choice(vec![0.0, 1.0, 2.0, 3.0])),
                ("activation", Range::Choice(vec![0.0, 1.0, 2.0])),
                ("num_fusion_layers", Range::Choice(vec![3.0, 4.0, 5.0])),
                ("num_dense_nodes", Range::Choice(vec![8.0, 16.0, 24.0])),
                ("dropout_1", Range::Uniform { lo: 0.0, hi: 0.5 }),
                ("dropout_2", Range::Uniform { lo: 0.0, hi: 0.25 }),
                ("dropout_3", Range::Uniform { lo: 0.0, hi: 0.125 }),
                ("residual_fusion", Range::Bool),
                ("model_specific_layers", Range::Bool),
                ("batch_norm", Range::Bool),
            ]),
        }
    }
}

fn optimizer_of(v: f64) -> OptimizerKind {
    OptimizerKind::fusion_options()[(v as usize).min(3)]
}

fn activation_of(v: f64) -> Activation {
    Activation::all()[(v as usize).min(2)]
}

/// Shared data context for every trial of one PB2 run.
pub struct TrialData {
    pub dataset: Arc<PdbBind>,
    pub train_idx: Vec<usize>,
    pub val_idx: Vec<usize>,
    pub voxel: VoxelConfig,
    /// Epochs per perturbation interval (`t_ready`).
    pub epochs_per_interval: usize,
}

impl TrialData {
    fn loader(&self, idx: &[usize], shuffle: bool) -> DataLoader {
        DataLoader::new(
            Arc::clone(&self.dataset),
            idx.to_vec(),
            LoaderConfig {
                batch_size: 8,
                num_workers: 2,
                voxel: self.voxel,
                shuffle,
                ..Default::default()
            },
        )
    }
}

/// Generic PB2 trial over any of the four models.
pub struct ModelTrial {
    kind: ModelKind,
    data: Arc<TrialData>,
    seed: u64,
    state: Option<TrialState>,
    intervals_done: usize,
    /// Checkpoint received before the model was built (PB2's
    /// interruption-resume path); applied lazily at the next `step`.
    pending_checkpoint: Option<Vec<u8>>,
}

enum TrialState {
    Sg(SgCnn, ParamStore, SgCnnConfig),
    Cnn(Cnn3d, ParamStore, Cnn3dConfig),
    Fusion(Box<FusionModel>, ParamStore, FusionConfig),
}

impl ModelTrial {
    pub fn new(kind: ModelKind, data: Arc<TrialData>, seed: u64) -> ModelTrial {
        ModelTrial { kind, data, seed, state: None, intervals_done: 0, pending_checkpoint: None }
    }

    /// An architecture signature: trials can only exchange weights when it
    /// matches (PB2 restore across different shapes re-initializes).
    fn signature(values: &ConfigValues, kind: ModelKind) -> String {
        let keys: &[&str] = match kind {
            ModelKind::SgCnn => &["noncovalent_gather_width", "covalent_gather_width"],
            ModelKind::Cnn3d => &["num_dense_nodes", "conv_filters_1", "conv_filters_2"],
            ModelKind::MidFusion | ModelKind::Coherent => {
                &["num_fusion_layers", "num_dense_nodes", "model_specific_layers"]
            }
        };
        keys.iter()
            .map(|k| format!("{k}={}", values.get(*k).copied().unwrap_or(0.0)))
            .collect::<Vec<_>>()
            .join(",")
    }

    fn build(&self, values: &ConfigValues) -> TrialState {
        match self.kind {
            ModelKind::SgCnn => {
                let cfg = SgCnnConfig {
                    learning_rate: values["learning_rate"],
                    noncovalent_k: values["noncovalent_k"] as usize,
                    covalent_k: values["covalent_k"] as usize,
                    noncovalent_gather_width: values["noncovalent_gather_width"] as usize,
                    covalent_gather_width: values["covalent_gather_width"] as usize,
                    ..SgCnnConfig::table2()
                };
                let mut ps = ParamStore::new();
                let m = SgCnn::new(&cfg, &mut ps, "sg", self.seed);
                TrialState::Sg(m, ps, cfg)
            }
            ModelKind::Cnn3d => {
                let cfg = Cnn3dConfig {
                    learning_rate: values["learning_rate"],
                    num_dense_nodes: values["num_dense_nodes"] as usize,
                    conv_filters_1: values["conv_filters_1"] as usize,
                    conv_filters_2: values["conv_filters_2"] as usize,
                    residual_1: values["residual_1"] > 0.5,
                    residual_2: values["residual_2"] > 0.5,
                    batch_norm: values["batch_norm"] > 0.5,
                    ..Cnn3dConfig::table3()
                };
                let mut ps = ParamStore::new();
                let m = Cnn3d::new(&cfg, &self.data.voxel, &mut ps, "cnn", self.seed);
                TrialState::Cnn(m, ps, cfg)
            }
            ModelKind::MidFusion | ModelKind::Coherent => {
                let kind = if self.kind == ModelKind::Coherent {
                    FusionKind::Coherent
                } else {
                    FusionKind::MidLevel
                };
                let cfg = FusionConfig {
                    kind,
                    learning_rate: values["learning_rate"],
                    optimizer: optimizer_of(values["optimizer"]),
                    activation: activation_of(values["activation"]),
                    num_fusion_layers: values["num_fusion_layers"] as usize,
                    num_dense_nodes: values["num_dense_nodes"] as usize,
                    dropout_1: values["dropout_1"],
                    dropout_2: values["dropout_2"],
                    dropout_3: values["dropout_3"],
                    residual_fusion: values["residual_fusion"] > 0.5,
                    model_specific_layers: values["model_specific_layers"] > 0.5,
                    batch_norm: values["batch_norm"] > 0.5,
                    ..FusionConfig::small(kind)
                };
                let heads_sg = SgCnnConfig {
                    noncovalent_gather_width: 16,
                    covalent_gather_width: 8,
                    covalent_k: 2,
                    noncovalent_k: 2,
                    ..SgCnnConfig::table2()
                };
                let heads_cnn = Cnn3dConfig {
                    conv_filters_1: 6,
                    conv_filters_2: 8,
                    num_dense_nodes: 16,
                    ..Cnn3dConfig::table3()
                };
                let mut ps = ParamStore::new();
                let m = FusionModel::new(
                    &cfg,
                    &heads_sg,
                    &heads_cnn,
                    &self.data.voxel,
                    &mut ps,
                    self.seed,
                );
                TrialState::Fusion(Box::new(m), ps, cfg)
            }
        }
    }
}

impl Trainable for ModelTrial {
    fn step(&mut self, values: &ConfigValues) -> f64 {
        // Rebuild when the architecture signature changed.
        let needs_rebuild = match &self.state {
            None => true,
            Some(state) => {
                let current = match state {
                    TrialState::Sg(_, _, c) => {
                        Self::signature(&space_values_sg(c), ModelKind::SgCnn)
                    }
                    TrialState::Cnn(_, _, c) => {
                        Self::signature(&space_values_cnn(c), ModelKind::Cnn3d)
                    }
                    TrialState::Fusion(_, _, c) => {
                        Self::signature(&space_values_fusion(c), self.kind)
                    }
                };
                current != Self::signature(values, self.kind)
            }
        };
        if needs_rebuild {
            self.state = Some(self.build(values));
        }
        // Apply a checkpoint that arrived before the model existed (the
        // scheduler-interruption path rebuilds trials from factories).
        if let Some(ckpt) = self.pending_checkpoint.take() {
            self.restore(&ckpt);
        }

        let train_loader = self.data.loader(&self.data.train_idx, true);
        let val_loader = self.data.loader(&self.data.val_idx, false);
        let tc = |lr: f64, opt: OptimizerKind, seed: u64| TrainConfig {
            epochs: self.data.epochs_per_interval,
            learning_rate: lr,
            optimizer: opt,
            seed,
            ..Default::default()
        };
        let seed = self.seed + self.intervals_done as u64 * 97;
        let objective = match self.state.as_mut().expect("state built") {
            TrialState::Sg(m, ps, _) => {
                train(
                    m,
                    ps,
                    &train_loader,
                    &val_loader,
                    &tc(values["learning_rate"], OptimizerKind::Adam, seed),
                )
                .best_val_mse
            }
            TrialState::Cnn(m, ps, _) => {
                train(
                    m,
                    ps,
                    &train_loader,
                    &val_loader,
                    &tc(values["learning_rate"], OptimizerKind::Adam, seed),
                )
                .best_val_mse
            }
            TrialState::Fusion(m, ps, _) => {
                train(
                    m.as_mut(),
                    ps,
                    &train_loader,
                    &val_loader,
                    &tc(values["learning_rate"], optimizer_of(values["optimizer"]), seed),
                )
                .best_val_mse
            }
        };
        self.intervals_done += 1;
        objective
    }

    fn save(&self) -> Vec<u8> {
        let Some(state) = &self.state else { return Vec::new() };
        let (sig, snap): (String, ParamSnapshot) = match state {
            TrialState::Sg(_, ps, c) => {
                (Self::signature(&space_values_sg(c), ModelKind::SgCnn), ps.snapshot())
            }
            TrialState::Cnn(_, ps, c) => {
                (Self::signature(&space_values_cnn(c), ModelKind::Cnn3d), ps.snapshot())
            }
            TrialState::Fusion(_, ps, c) => {
                (Self::signature(&space_values_fusion(c), self.kind), ps.snapshot())
            }
        };
        serde_json::to_vec(&(sig, self.intervals_done, snap)).expect("serialize trial")
    }

    fn restore(&mut self, ckpt: &[u8]) {
        if ckpt.is_empty() {
            self.state = None;
            self.intervals_done = 0;
            return;
        }
        // Not built yet (interruption-resume rebuilds trials cold): keep
        // the checkpoint and apply it after the next build.
        if self.state.is_none() {
            self.pending_checkpoint = Some(ckpt.to_vec());
            return;
        }
        let (sig, intervals, snap): (String, usize, ParamSnapshot) =
            serde_json::from_slice(ckpt).expect("deserialize trial");
        // Only adopt weights when the current architecture matches;
        // otherwise exploitation degenerates to a fresh start (the PB2
        // paper's behaviour for incompatible architectures).
        if let Some(state) = &mut self.state {
            let ps = match state {
                TrialState::Sg(_, ps, c) => {
                    if Self::signature(&space_values_sg(c), ModelKind::SgCnn) != sig {
                        return;
                    }
                    ps
                }
                TrialState::Cnn(_, ps, c) => {
                    if Self::signature(&space_values_cnn(c), ModelKind::Cnn3d) != sig {
                        return;
                    }
                    ps
                }
                TrialState::Fusion(_, ps, c) => {
                    if Self::signature(&space_values_fusion(c), self.kind) != sig {
                        return;
                    }
                    ps
                }
            };
            if ps.restore(&snap).is_ok() {
                self.intervals_done = intervals;
            }
        }
    }
}

fn space_values_sg(c: &SgCnnConfig) -> ConfigValues {
    [
        ("noncovalent_gather_width".to_string(), c.noncovalent_gather_width as f64),
        ("covalent_gather_width".to_string(), c.covalent_gather_width as f64),
    ]
    .into_iter()
    .collect()
}

fn space_values_cnn(c: &Cnn3dConfig) -> ConfigValues {
    [
        ("num_dense_nodes".to_string(), c.num_dense_nodes as f64),
        ("conv_filters_1".to_string(), c.conv_filters_1 as f64),
        ("conv_filters_2".to_string(), c.conv_filters_2 as f64),
    ]
    .into_iter()
    .collect()
}

fn space_values_fusion(c: &FusionConfig) -> ConfigValues {
    [
        ("num_fusion_layers".to_string(), c.num_fusion_layers as f64),
        ("num_dense_nodes".to_string(), c.num_dense_nodes as f64),
        ("model_specific_layers".to_string(), if c.model_specific_layers { 1.0 } else { 0.0 }),
    ]
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfdata::pdbbind::PdbBindConfig;

    fn data() -> Arc<TrialData> {
        let dataset = Arc::new(PdbBind::generate(&PdbBindConfig::tiny(), 50));
        let n = dataset.entries.len();
        Arc::new(TrialData {
            dataset,
            train_idx: (0..n * 3 / 4).collect(),
            val_idx: (n * 3 / 4..n).collect(),
            voxel: VoxelConfig { grid_dim: 8, resolution: 2.5 },
            epochs_per_interval: 1,
        })
    }

    #[test]
    fn all_model_kinds_step_and_checkpoint() {
        let data = data();
        for kind in [ModelKind::SgCnn, ModelKind::Cnn3d, ModelKind::MidFusion, ModelKind::Coherent]
        {
            let space = kind.space();
            let mut r = dftensor::rng::rng(3);
            let cfg = space.sample(&mut r);
            let mut trial = ModelTrial::new(kind, Arc::clone(&data), 3);
            let obj = trial.step(&cfg);
            assert!(obj.is_finite() && obj > 0.0, "{kind:?} objective {obj}");
            let ckpt = trial.save();
            assert!(!ckpt.is_empty());
            // Restore into a twin with the same config.
            let mut twin = ModelTrial::new(kind, Arc::clone(&data), 3);
            twin.step(&cfg); // builds the same architecture
            twin.restore(&ckpt);
            assert_eq!(twin.intervals_done, 1);
        }
    }

    #[test]
    fn incompatible_restore_is_a_safe_noop() {
        let data = data();
        let space = ModelKind::SgCnn.space();
        let mut r = dftensor::rng::rng(4);
        let mut a_cfg = space.sample(&mut r);
        a_cfg.insert("noncovalent_gather_width".into(), 8.0);
        let mut b_cfg = a_cfg.clone();
        b_cfg.insert("noncovalent_gather_width".into(), 24.0);

        let mut a = ModelTrial::new(ModelKind::SgCnn, Arc::clone(&data), 4);
        a.step(&a_cfg);
        let ckpt = a.save();
        let mut b = ModelTrial::new(ModelKind::SgCnn, Arc::clone(&data), 4);
        b.step(&b_cfg);
        b.restore(&ckpt); // widths differ: must not panic or corrupt
        let obj = b.step(&b_cfg);
        assert!(obj.is_finite());
    }
}
