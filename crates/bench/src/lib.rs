//! `dfbench` — harnesses that regenerate every table and figure of the
//! paper's evaluation (see DESIGN.md's experiment index) plus Criterion
//! micro-benchmarks of the substrates.
//!
//! Each `src/bin/*` binary reproduces one artifact:
//!
//! | binary | artifact |
//! |--------|----------|
//! | `table1` | PB2 search-space definition |
//! | `tables2to5` | PB2-optimized hyper-parameters per model |
//! | `table6` | core-set regression metrics for all fusion variants |
//! | `figure2` | docking-space correlations + strong/weak P/R curves |
//! | `table7` | single-job vs peak throughput (measured + Lassen model) |
//! | `figure4` | predicted pK vs % inhibition scatter |
//! | `table8` | >1%-inhibition correlations per method × target |
//! | `figure5` | P/R + F1 + κ at 33% inhibition per target |
//! | `speedup` | fusion vs Vina vs MM/GBSA per-pose cost |
//!
//! Heavy intermediates (trained models, campaign outputs) are cached under
//! `results/` so the binaries compose without re-running the expensive
//! stages.

pub mod trainables;

use dfassay::{run_campaign, CampaignConfig, CampaignOutput};
use dfdata::pdbbind::{PdbBind, PdbBindConfig};
use dffusion::{train_all_variants, TrainedModels, WorkflowConfig};
use dfhts::FusionScorerFactory;
use std::path::PathBuf;
use std::sync::Arc;

/// Experiment scale, selectable with `--scale tiny|small|full` on every
/// binary. `full` is still CPU-sized — it trades minutes of runtime for
/// tighter statistics; the paper's absolute GPU-scale numbers come from
/// the calibrated Lassen model, not from scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Tiny,
    Small,
    Full,
}

impl Scale {
    pub fn parse(args: &[String]) -> Scale {
        match arg_value(args, "--scale").as_deref() {
            Some("tiny") => Scale::Tiny,
            Some("full") => Scale::Full,
            _ => Scale::Small,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Full => "full",
        }
    }
}

/// Returns the value following a `--flag` argument.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

/// The campaign seed every harness shares by default (override with
/// `--seed N`).
pub const DEFAULT_SEED: u64 = 2021;

pub fn seed_from(args: &[String]) -> u64 {
    arg_value(args, "--seed").and_then(|s| s.parse().ok()).unwrap_or(DEFAULT_SEED)
}

/// Root of the results/cache tree (override with `DF_RESULTS`).
pub fn results_dir() -> PathBuf {
    std::env::var("DF_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"))
}

/// Dataset sizing per scale.
pub fn dataset_config(scale: Scale) -> PdbBindConfig {
    match scale {
        Scale::Tiny => PdbBindConfig { num_complexes: 60, core_size: 12, ..PdbBindConfig::tiny() },
        Scale::Small => PdbBindConfig { num_complexes: 260, core_size: 36, ..Default::default() },
        Scale::Full => PdbBindConfig { num_complexes: 700, core_size: 72, ..Default::default() },
    }
}

/// Workflow sizing per scale.
pub fn workflow_config(scale: Scale, seed: u64) -> WorkflowConfig {
    match scale {
        Scale::Tiny => WorkflowConfig::tiny(seed),
        Scale::Small => WorkflowConfig::small(seed),
        Scale::Full => {
            let mut cfg = WorkflowConfig::small(seed);
            cfg.sgcnn.epochs = 48;
            cfg.sgcnn.noncovalent_gather_width = 48;
            cfg.sgcnn.covalent_gather_width = 16;
            cfg.cnn3d.epochs = 36;
            cfg.cnn3d.conv_filters_1 = 12;
            cfg.cnn3d.conv_filters_2 = 16;
            cfg.cnn3d.num_dense_nodes = 48;
            cfg.midlevel.epochs = 24;
            cfg.midlevel.num_dense_nodes = 32;
            cfg.coherent.epochs = 18;
            cfg.coherent.num_dense_nodes = 32;
            cfg
        }
    }
}

/// The shared synthetic PDBbind for a scale/seed.
pub fn dataset(scale: Scale, seed: u64) -> Arc<PdbBind> {
    Arc::new(PdbBind::generate(&dataset_config(scale), seed))
}

/// Trains (or loads from cache) the full set of model variants.
pub fn trained_models(scale: Scale, seed: u64) -> (Arc<PdbBind>, TrainedModels) {
    let ds = dataset(scale, seed);
    let cfg = workflow_config(scale, seed);
    let cache = results_dir().join(format!("cache/models_{}_{}", scale.name(), seed));
    if let Some(models) = TrainedModels::load(&cfg, &cache) {
        eprintln!("[dfbench] loaded trained models from {}", cache.display());
        return (ds, models);
    }
    eprintln!("[dfbench] training models at scale {} (cached afterwards)...", scale.name());
    let models = train_all_variants(Arc::clone(&ds), &cfg);
    if let Err(e) = models.save(&cache) {
        eprintln!("[dfbench] warning: could not cache models: {e}");
    }
    (ds, models)
}

/// A screening-ready fusion scorer from the trained coherent model.
pub fn fusion_scorer(models: &TrainedModels) -> FusionScorerFactory {
    FusionScorerFactory {
        model: models.coherent.clone(),
        params: models.coherent_params.clone(),
        voxel: models.voxel,
        graph: models.config.sgcnn.graph_config(),
        batch_size: 56,
    }
}

/// Campaign sizing per scale.
pub fn campaign_config(scale: Scale, seed: u64) -> CampaignConfig {
    match scale {
        Scale::Tiny => CampaignConfig::tiny(seed),
        Scale::Small => CampaignConfig::small(seed),
        Scale::Full => CampaignConfig {
            screen_pool: 600,
            tested_per_target: 250,
            threads: 8,
            ..CampaignConfig::small(seed)
        },
    }
}

/// Runs (or loads from cache) the reference assay campaign.
pub fn campaign(scale: Scale, seed: u64) -> CampaignOutput {
    let cache = results_dir().join(format!("cache/campaign_{}_{}.json", scale.name(), seed));
    if let Ok(raw) = std::fs::read_to_string(&cache) {
        if let Ok(out) = serde_json::from_str::<CampaignOutput>(&raw) {
            eprintln!("[dfbench] loaded campaign from {}", cache.display());
            return out;
        }
    }
    let (_, models) = trained_models(scale, seed);
    let fusion = fusion_scorer(&models);
    eprintln!("[dfbench] running campaign at scale {}...", scale.name());
    let out = run_campaign(&campaign_config(scale, seed), &fusion);
    if let Some(parent) = cache.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    if let Ok(json) = serde_json::to_string(&out) {
        std::fs::write(&cache, json).ok();
    }
    out
}

/// Writes a CSV/text artifact under `results/`, logging its path.
pub fn write_artifact(name: &str, contents: &str) {
    let path = results_dir().join(name);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    match std::fs::write(&path, contents) {
        Ok(()) => eprintln!("[dfbench] wrote {}", path.display()),
        Err(e) => eprintln!("[dfbench] could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(Scale::parse(&args(&["--scale", "tiny"])), Scale::Tiny);
        assert_eq!(Scale::parse(&args(&["--scale", "full"])), Scale::Full);
        assert_eq!(Scale::parse(&args(&[])), Scale::Small);
        assert_eq!(seed_from(&args(&["--seed", "7"])), 7);
        assert_eq!(seed_from(&args(&[])), DEFAULT_SEED);
    }

    #[test]
    fn configs_scale_monotonically() {
        assert!(
            dataset_config(Scale::Tiny).num_complexes < dataset_config(Scale::Small).num_complexes
        );
        assert!(
            dataset_config(Scale::Small).num_complexes < dataset_config(Scale::Full).num_complexes
        );
        let s = workflow_config(Scale::Small, 1);
        let f = workflow_config(Scale::Full, 1);
        assert!(f.sgcnn.epochs >= s.sgcnn.epochs);
    }
}
