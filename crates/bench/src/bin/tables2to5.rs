//! Tables 2–5: PB2-optimized hyper-parameters for the SG-CNN, 3D-CNN,
//! Mid-level Fusion and Coherent Fusion models.
//!
//! The paper ran populations of 90/90/180/270 trials on Lassen; this
//! harness runs the same optimization loop (quantile-gated exploit +
//! GP-bandit explore, checkpointed trials) over CPU-scaled populations,
//! printing the converged configuration next to the paper's values.
//!
//! ```sh
//! cargo run --release -p dfbench --bin tables2to5 -- --model sgcnn
//! cargo run --release -p dfbench --bin tables2to5 -- --model cnn3d --scale tiny
//! ```

use dfbench::trainables::{ModelKind, ModelTrial, TrialData};
use dfbench::{arg_value, dataset, seed_from, Scale};
use dfchem::featurize::VoxelConfig;
use dfhpo::{ConfigValues, Pb2, Pb2Config, Trainable};
use std::sync::Arc;

fn paper_reference(kind: ModelKind) -> &'static [(&'static str, &'static str)] {
    match kind {
        ModelKind::SgCnn => &[
            ("Epochs", "213"),
            ("Batch size", "16"),
            ("Learning rate", "2.66e-3"),
            ("Non-covalent K", "3"),
            ("Covalent K", "6"),
            ("Non-covalent threshold", "5.22 Å"),
            ("Covalent threshold", "2.24 Å"),
            ("Non-covalent gather width", "128"),
            ("Covalent gather width", "24"),
        ],
        ModelKind::Cnn3d => &[
            ("Epochs", "75"),
            ("Batch size", "12"),
            ("Learning rate", "4.90e-5"),
            ("Batch norm", "F"),
            ("# dense nodes", "128"),
            ("Conv filters 1", "32"),
            ("Conv filters 2", "64"),
            ("Residual 1", "F"),
            ("Residual 2", "T"),
        ],
        ModelKind::MidFusion => &[
            ("Epochs", "64"),
            ("Batch size", "1"),
            ("Learning rate", "4.03e-4"),
            ("Batch norm", "F"),
            ("Optimizer", "Adam"),
            ("Activation", "SELU"),
            ("Residual fusion layers", "T"),
            ("Dropout 1/2/3", "0.251 / 0.125 / ~0"),
            ("# fusion layers", "5"),
        ],
        ModelKind::Coherent => &[
            ("Pre-trained", "T"),
            ("Epochs", "18"),
            ("Batch size", "48"),
            ("Learning rate", "1.08e-4"),
            ("Batch norm", "F"),
            ("Optimizer", "Adam"),
            ("Activation", "SELU"),
            ("Residual fusion layers", "F"),
            ("Dropout 1/2/3", "0.386 / 0.247 / 0.055"),
            ("# fusion layers", "4"),
        ],
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let seed = seed_from(&args);
    let kind =
        arg_value(&args, "--model").and_then(|s| ModelKind::parse(&s)).unwrap_or(ModelKind::SgCnn);

    println!("== PB2 optimization of the {} ==", kind.name());
    println!("scale {}, seed {}\n", scale.name(), seed);

    // Shared data context for all trials.
    let ds = dataset(scale, seed);
    let n = ds.entries.len();
    let (population, intervals, epochs_per_interval) = match scale {
        Scale::Tiny => (4, 3, 1),
        Scale::Small => (8, 4, 2),
        Scale::Full => (12, 6, 3),
    };
    let data = Arc::new(TrialData {
        dataset: ds,
        train_idx: (0..n * 4 / 5).collect(),
        val_idx: (n * 4 / 5..n).collect(),
        voxel: VoxelConfig { grid_dim: 10, resolution: 2.2 },
        epochs_per_interval,
    });

    let pb2 = Pb2::new(
        Pb2Config {
            population,
            intervals,
            quantile: 0.5,
            threads: population.min(8),
            seed,
            ..Default::default()
        },
        kind.space(),
    );
    println!(
        "population {population}, {intervals} perturbation intervals × {epochs_per_interval} epochs, λ% = 0.5"
    );
    println!("(paper: populations of 90/90/180/270 trials with t_ready = 100 epochs)\n");

    let data_for_factory = Arc::clone(&data);
    let factory = move |i: usize, _c: &ConfigValues| {
        Box::new(ModelTrial::new(kind, Arc::clone(&data_for_factory), seed + 31 * i as u64))
            as Box<dyn Trainable>
    };
    let start = std::time::Instant::now();
    let result = pb2.run(&factory);
    let elapsed = start.elapsed();

    println!("Converged in {elapsed:?}.\n");
    println!("## Optimized hyper-parameters (this run)");
    println!("{:<28} {:>12}", "Hyper-parameter", "Value");
    for (k, v) in &result.best_config {
        if k == "learning_rate" {
            println!("{k:<28} {v:>12.3e}");
        } else {
            println!("{k:<28} {v:>12.4}");
        }
    }
    println!("{:<28} {:>12.4}", "(best val MSE)", result.best_objective);

    println!("\n## Paper values (GPU scale)");
    for (k, v) in paper_reference(kind) {
        println!("{k:<28} {v:>12}");
    }

    let exploits = result.history.iter().filter(|r| r.exploited_from.is_some()).count();
    println!(
        "\nSchedule: {} evaluations, {} exploit/explore events across {} trials",
        result.history.len(),
        exploits,
        population
    );

    // Persist the schedule for inspection.
    let json = serde_json::to_string_pretty(&result.history).expect("serialize history");
    dfbench::write_artifact(
        &format!(
            "tables2to5_{}_{}_{}.json",
            kind.name().split(' ').next().unwrap_or("model").to_lowercase(),
            scale.name(),
            seed
        ),
        &json,
    );
}
