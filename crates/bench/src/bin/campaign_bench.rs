//! Heterogeneous campaign-scheduler benchmark, as JSON.
//!
//! Exercises the task-class scheduler (`dfhts::scheduler`) the way the
//! paper's campaign driver does — a funnel-shaped mix of filter,
//! surrogate, dock and rescore jobs pulled from weighted class lanes —
//! and writes `BENCH_campaign.json` at the repo root:
//!
//! * a strong-scaling ladder (1/2/4/8 workers) over a 10M+-pose
//!   heterogeneous campaign, with per-class lane accounting
//!   (dispatches, bundles, peak occupancy, busy time);
//! * bundled vs unbundled dispatch on a flood of short filter jobs —
//!   the amortization the bundler buys when per-job work is smaller
//!   than per-dispatch overhead;
//! * bounded vs unbounded lane occupancy under `lane_capacity`
//!   backpressure (the prefilter→dock seam: a fast upstream class must
//!   not flood a slow downstream lane's queue);
//! * the discrete-event heterogeneous campaign simulation
//!   ([`dfhts::simulate`]) against the dock-only paper shape.
//!
//! ```sh
//! cargo run --release -p dfbench --bin campaign_bench            # full: 15M poses
//! cargo run --release -p dfbench --bin campaign_bench -- --smoke # CI mode
//! ```
//!
//! Jobs are scripted: a deterministic spin proportional to
//! [`JobSpec::est_cost`] stands in for real scoring, so the bench
//! isolates *scheduler* behaviour (dispatch, bundling, lane fairness,
//! backpressure) from kernel throughput. Wall-clock speedups across the
//! worker ladder are recorded but **not** asserted: on a single-CPU host
//! every rung sits near 1.0 and that is the honest number
//! (`host_cpus` is recorded alongside).
//!
//! `--smoke` shrinks the campaign and asserts the contract: every job
//! completes at every worker count, pose totals conserved, bundling
//! strictly reduces dispatches and is no slower than unbundled dispatch
//! (best-of-3), bounded lanes never exceed `lane_capacity`, and — when
//! `DFTRACE=1` — the `hts.sched.*` counters are live.

use dfhts::job::{JobError, JobOutput, JobSpec, JobTiming, TaskClass};
use dfhts::scheduler::{run_campaign_with, CampaignReport, LaneStats, SchedulerConfig};
use dfhts::simulate::{simulate_campaign, CampaignSim};
use serde::Serialize;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Synthetic poses per compound — the scripted stand-in for the docking
/// ensemble, so pose totals are exact and conserved.
const POSES_PER_COMPOUND: u64 = 100;

/// The funnel-shaped class mix, per 20 jobs: mostly cheap filter work,
/// a dock core, surrogate and rescore trickles (mirrors
/// `CampaignSim::heterogeneous_shape`'s 55/15/20/10).
fn class_of(i: u64) -> TaskClass {
    match i % 20 {
        0..=10 => TaskClass::Filter,
        11..=13 => TaskClass::Surrogate,
        14..=17 => TaskClass::Dock,
        _ => TaskClass::Rescore,
    }
}

fn mixed_specs(num_jobs: u64, compounds_per_job: u64, seed: u64) -> Vec<JobSpec> {
    use dfchem::genmol::Library;
    use dfchem::pocket::TargetSite;
    (0..num_jobs)
        .map(|j| JobSpec {
            job_id: j,
            target: TargetSite::ALL[(j % TargetSite::ALL.len() as u64) as usize],
            library: Library::EnamineVirtual,
            first_compound: j * compounds_per_job,
            num_compounds: compounds_per_job,
            campaign_seed: seed,
            class: class_of(j),
            attempt: 0,
        })
        .collect()
}

/// Deterministic FNV-1a spin: the scripted job "work".
fn spin(iters: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for i in 0..iters {
        h ^= i;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn scripted_output(spec: &JobSpec, evaluate: Duration) -> JobOutput {
    JobOutput {
        job_id: spec.job_id,
        records: Vec::new(),
        files: Vec::new(),
        faults: Vec::new(),
        write_retries: 0,
        timing: JobTiming {
            startup: Duration::ZERO,
            evaluate,
            output: Duration::ZERO,
            poses_evaluated: (spec.num_compounds * POSES_PER_COMPOUND) as usize,
        },
    }
}

/// Runs the mixed campaign once: each job spins proportionally to its
/// estimated cost (`work_scale` hash folds per cost unit).
fn run_mixed(sched: &SchedulerConfig, specs: &[JobSpec], work_scale: u64) -> CampaignReport {
    run_campaign_with(sched, specs.to_vec(), &|spec: &JobSpec| -> Result<JobOutput, JobError> {
        let t = Instant::now();
        black_box(spin((spec.est_cost() as u64).saturating_mul(work_scale)));
        Ok(scripted_output(spec, t.elapsed()))
    })
}

#[derive(Serialize)]
struct LaneRow {
    class: String,
    dispatches: u64,
    jobs_dispatched: u64,
    bundles: u64,
    bundled_jobs: u64,
    peak_occupancy: usize,
    completed: u64,
    busy_ms: f64,
}

impl From<&LaneStats> for LaneRow {
    fn from(l: &LaneStats) -> Self {
        LaneRow {
            class: l.class.name().to_string(),
            dispatches: l.dispatches,
            jobs_dispatched: l.jobs_dispatched,
            bundles: l.bundles,
            bundled_jobs: l.bundled_jobs,
            peak_occupancy: l.peak_occupancy,
            completed: l.completed,
            busy_ms: l.busy.as_secs_f64() * 1e3,
        }
    }
}

#[derive(Serialize)]
struct ScalingRun {
    workers: usize,
    ms: f64,
    poses: usize,
    poses_per_sec: f64,
    dispatches: u64,
    bundled_jobs: u64,
    /// 1-worker time / this time. Near 1.0 on a single-CPU host — recorded,
    /// never asserted.
    speedup_vs_serial: f64,
}

#[derive(Serialize)]
struct DispatchReport {
    /// Short filter-class jobs flooded through one worker.
    jobs: u64,
    bundle_max: usize,
    bundled_ms: f64,
    unbundled_ms: f64,
    bundled_dispatches: u64,
    unbundled_dispatches: u64,
    /// Unbundled dispatches / bundled dispatches (≫1 = amortized).
    dispatch_amortization: f64,
    /// Unbundled time / bundled time (≥1 = bundling no slower).
    bundling_speedup: f64,
}

#[derive(Serialize)]
struct LanePeak {
    class: String,
    bounded: usize,
    unbounded: usize,
}

#[derive(Serialize)]
struct BackpressureReport {
    lane_capacity: usize,
    peaks: Vec<LanePeak>,
}

#[derive(Serialize)]
struct ClassJobs {
    class: String,
    jobs: u64,
}

#[derive(Serialize)]
struct SimReport {
    total_poses: u64,
    jobs_completed: u64,
    jobs_rescheduled: u64,
    wall_hours: f64,
    /// Dock-only paper shape at the same pose count — the heterogeneous
    /// funnel must finish faster.
    dock_only_wall_hours: f64,
    mean_poses_per_sec: f64,
    per_class_jobs: Vec<ClassJobs>,
}

#[derive(Serialize)]
struct CampaignBench {
    host_cpus: usize,
    smoke: bool,
    worker_counts: Vec<usize>,
    total_jobs: u64,
    /// Poses evaluated per scaling rung (conserved across worker counts).
    total_poses: usize,
    scaling: Vec<ScalingRun>,
    /// Per-class lane accounting of the 1-worker rung.
    lanes: Vec<LaneRow>,
    dispatch: DispatchReport,
    backpressure: BackpressureReport,
    sim: SimReport,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!("== heterogeneous campaign scheduler ({host_cpus} host CPUs, smoke: {smoke}) ==");

    // -------- strong-scaling ladder over the heterogeneous mix --------
    // Full: 1500 jobs × 100 compounds × 100 poses = 15 M poses per rung.
    let (num_jobs, compounds_per_job, work_scale) =
        if smoke { (240u64, 20u64, 4u64) } else { (1_500, 100, 24) };
    let specs = mixed_specs(num_jobs, compounds_per_job, 2021);
    let want_poses = (num_jobs * compounds_per_job * POSES_PER_COMPOUND) as usize;

    let mut scaling = Vec::new();
    let mut lanes: Vec<LaneRow> = Vec::new();
    let mut serial_ms = 0.0f64;
    for &workers in &WORKER_COUNTS {
        // Cost cap above the filter-class job cost (compounds × weight 1)
        // so the funnel's cheap majority rides in bundles while dock jobs
        // keep dedicated dispatches.
        let sched = SchedulerConfig {
            max_parallel_jobs: workers,
            bundle_cost_cap: compounds_per_job as f64 + 1.0,
            ..SchedulerConfig::default()
        };
        let t = Instant::now();
        let report = run_mixed(&sched, &specs, work_scale);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(report.outputs.len() as u64, num_jobs, "jobs lost at {workers} workers");
        assert!(report.abandoned.is_empty(), "scripted jobs never fail");
        assert_eq!(report.total_poses(), want_poses, "poses not conserved at {workers} workers");
        if workers == 1 {
            serial_ms = ms;
            lanes = report.lanes.iter().map(LaneRow::from).collect();
        }
        let run = ScalingRun {
            workers,
            ms,
            poses: report.total_poses(),
            poses_per_sec: dftrace::rate::per_sec(report.total_poses() as f64, ms / 1e3),
            dispatches: report.dispatches(),
            bundled_jobs: report.bundled_jobs(),
            speedup_vs_serial: if ms > 0.0 { serial_ms / ms } else { 1.0 },
        };
        eprintln!(
            "  campaign @ {workers} workers: {:.1} ms ({:.0} poses/s, {} dispatches, {} bundled)",
            run.ms, run.poses_per_sec, run.dispatches, run.bundled_jobs
        );
        scaling.push(run);
    }

    // -------- bundled vs unbundled dispatch on short filter jobs --------
    // Zero-work jobs: wall-clock is pure dispatch overhead, which
    // bundling amortizes `bundle_max`-fold on the claim path.
    let (flood_jobs, bundle_max, reps) =
        if smoke { (4_000u64, 32usize, 3) } else { (20_000, 32, 3) };
    let flood: Vec<JobSpec> = (0..flood_jobs)
        .map(|j| JobSpec {
            job_id: j,
            first_compound: j * 4,
            num_compounds: 4,
            class: TaskClass::Filter,
            ..specs[0].clone()
        })
        .collect();
    let bundled_cfg =
        SchedulerConfig { max_parallel_jobs: 1, bundle_max, ..SchedulerConfig::default() };
    let unbundled_cfg = SchedulerConfig { bundle_max: 1, ..bundled_cfg };
    let noop = |spec: &JobSpec| -> Result<JobOutput, JobError> {
        Ok(scripted_output(spec, Duration::ZERO))
    };
    // Interleaved best-of-N: external steal only adds time.
    let (mut bundled_ms, mut unbundled_ms) = (f64::INFINITY, f64::INFINITY);
    let (mut bundled_disp, mut unbundled_disp) = (0u64, 0u64);
    for _ in 0..reps {
        let t = Instant::now();
        let r = run_campaign_with(&bundled_cfg, flood.clone(), &noop);
        bundled_ms = bundled_ms.min(t.elapsed().as_secs_f64() * 1e3);
        bundled_disp = r.dispatches();
        assert_eq!(r.outputs.len() as u64, flood_jobs);
        let t = Instant::now();
        let r = run_campaign_with(&unbundled_cfg, flood.clone(), &noop);
        unbundled_ms = unbundled_ms.min(t.elapsed().as_secs_f64() * 1e3);
        unbundled_disp = r.dispatches();
        assert_eq!(r.outputs.len() as u64, flood_jobs);
    }
    let dispatch = DispatchReport {
        jobs: flood_jobs,
        bundle_max,
        bundled_ms,
        unbundled_ms,
        bundled_dispatches: bundled_disp,
        unbundled_dispatches: unbundled_disp,
        dispatch_amortization: unbundled_disp as f64 / bundled_disp.max(1) as f64,
        bundling_speedup: if bundled_ms > 0.0 { unbundled_ms / bundled_ms } else { 1.0 },
    };
    eprintln!(
        "  dispatch: {} jobs — bundled {:.1} ms / {} dispatches, unbundled {:.1} ms / {} \
         dispatches ({:.1}x amortized, {:.2}x faster)",
        flood_jobs,
        bundled_ms,
        bundled_disp,
        unbundled_ms,
        unbundled_disp,
        dispatch.dispatch_amortization,
        dispatch.bundling_speedup,
    );

    // -------- lane-capacity backpressure --------
    let cap = 64usize;
    let bounded_cfg =
        SchedulerConfig { max_parallel_jobs: 2, lane_capacity: cap, ..SchedulerConfig::default() };
    let unbounded_cfg = SchedulerConfig { lane_capacity: 0, ..bounded_cfg };
    let bounded = run_mixed(&bounded_cfg, &specs, 1);
    let unbounded = run_mixed(&unbounded_cfg, &specs, 1);
    let peaks: Vec<LanePeak> = bounded
        .lanes
        .iter()
        .zip(&unbounded.lanes)
        .map(|(b, u)| LanePeak {
            class: b.class.name().to_string(),
            bounded: b.peak_occupancy,
            unbounded: u.peak_occupancy,
        })
        .collect();
    for p in &peaks {
        eprintln!(
            "  backpressure[{}]: peak occupancy {} bounded (cap {cap}) vs {} unbounded",
            p.class, p.bounded, p.unbounded
        );
    }
    let backpressure = BackpressureReport { lane_capacity: cap, peaks };

    // -------- discrete-event heterogeneous campaign simulation --------
    let mut het = CampaignSim::heterogeneous_shape();
    het.total_poses = if smoke { 50_000_000 } else { 500_000_000 };
    let het_r = simulate_campaign(&het);
    let mut dock = CampaignSim::paper_shape();
    dock.total_poses = het.total_poses;
    let dock_r = simulate_campaign(&dock);
    let sim = SimReport {
        total_poses: het_r.total_poses,
        jobs_completed: het_r.jobs_completed,
        jobs_rescheduled: het_r.jobs_rescheduled,
        wall_hours: het_r.wall_hours,
        dock_only_wall_hours: dock_r.wall_hours,
        mean_poses_per_sec: het_r.mean_poses_per_sec,
        per_class_jobs: TaskClass::ALL
            .iter()
            .map(|c| ClassJobs {
                class: c.name().to_string(),
                jobs: het_r.per_class_jobs[c.lane()],
            })
            .collect(),
    };
    eprintln!(
        "  sim: {} poses in {:.1} h heterogeneous vs {:.1} h dock-only ({} jobs, {} rescheduled)",
        sim.total_poses,
        sim.wall_hours,
        sim.dock_only_wall_hours,
        sim.jobs_completed,
        sim.jobs_rescheduled
    );

    let report = CampaignBench {
        host_cpus,
        smoke,
        worker_counts: WORKER_COUNTS.to_vec(),
        total_jobs: num_jobs,
        total_poses: want_poses,
        scaling,
        lanes,
        dispatch,
        backpressure,
        sim,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize campaign bench");
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_campaign.json");
    std::fs::write(&out, &json).expect("write BENCH_campaign.json");
    eprintln!("wrote {}", out.display());
    println!("{json}");

    if !smoke {
        assert!(report.total_poses >= 10_000_000, "full campaign must push 10M+ poses per rung");
    }
    if smoke {
        // Lane accounting partitions the job set.
        assert_eq!(report.lanes.iter().map(|l| l.completed).sum::<u64>(), num_jobs);
        for l in &report.lanes {
            assert!(l.completed > 0, "class {} never scheduled", l.class);
            assert_eq!(l.jobs_dispatched, l.completed, "no scripted job retries");
        }
        // Bundling must amortize dispatch: strictly fewer dispatches, and
        // no slower than per-job dispatch on pure-overhead jobs.
        assert!(
            report.dispatch.bundled_dispatches < report.dispatch.unbundled_dispatches,
            "bundling did not reduce dispatches: {} vs {}",
            report.dispatch.bundled_dispatches,
            report.dispatch.unbundled_dispatches
        );
        assert!(
            report.dispatch.bundling_speedup >= 1.0,
            "bundled dispatch slower than unbundled: {:.2}x",
            report.dispatch.bundling_speedup
        );
        // The backpressure bound holds on every lane (no retries here, so
        // the admitted queue never exceeds the capacity exactly).
        for p in &report.backpressure.peaks {
            assert!(p.bounded <= cap, "lane {} breached capacity: {} > {cap}", p.class, p.bounded);
        }
        // The simulated heterogeneous funnel beats dock-only wall time.
        assert!(report.sim.wall_hours < report.sim.dock_only_wall_hours);
        for c in &report.sim.per_class_jobs {
            assert!(c.jobs > 0, "sim drew no {} jobs", c.class);
        }
        if dftrace::enabled() {
            let trace = dftrace::snapshot();
            assert!(trace.counter("hts.sched.dispatches") > 0, "no scheduler telemetry");
            assert!(trace.counter("hts.sched.bundled_jobs") > 0, "no bundling telemetry");
            assert!(trace.counter("hts.sched.lane.filter.dispatched") > 0, "no per-lane telemetry");
            eprintln!(
                "smoke: {} dispatches, {} bundles, {} bundled jobs traced",
                trace.counter("hts.sched.dispatches"),
                trace.counter("hts.sched.bundles"),
                trace.counter("hts.sched.bundled_jobs"),
            );
        }
        eprintln!("smoke assertions passed");
    }
}
