//! Ligand-screening front-end benchmark, as JSON.
//!
//! Streams a generated compound library through `dfchem`'s
//! `filter → fingerprint → score` pipeline (`dfchem::screen`) across pools
//! of 1, 2, 4 and 8 threads and writes `BENCH_chem.json` at the repo root:
//! a compounds/sec ladder, the funnel split (evaluated → passed filter →
//! fingerprinted → hits), the per-rule rejection tally of the ZINC
//! druglike gate, and `bit_identical` — an FNV-1a digest over every
//! surviving record (index, violation mask, fingerprint words, score
//! bits) compared across all thread counts. The digest is the determinism
//! contract: pooled screens must reproduce the serial stream bit for bit.
//!
//! ```sh
//! cargo run --release -p dfbench --bin chem_bench            # full: 1M compounds
//! cargo run --release -p dfbench --bin chem_bench -- --smoke # CI mode
//! ```
//!
//! Memory stays bounded by `chunk_size` regardless of library size — the
//! full run pushes a million compounds through 16 Ki-compound chunks and
//! retains only the running tally, the digest and a small top-k list.
//!
//! The thread ladder is measured **interleaved** (like `kernel_bench`):
//! every rep times all four pool sizes back-to-back so clock drift and
//! host steal land on every rung equally.
//!
//! `--smoke` shrinks the library and asserts the contract: digests
//! bit-identical across thread counts, no pooled rung below 0.9x of the
//! serial screen (timer-noise floor), a funnel that actually narrows, and
//! — when `DFTRACE=1` — the `chem.filter.*` / `chem.fp.*` counters and
//! per-stage chunk histograms.

use dfchem::genmol::Library;
use dfchem::screen::{screen_library_with, FunnelStats, RankedCompound, ScreenConfig};
use dfpool::Pool;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[derive(Serialize)]
struct LaneRun {
    threads: usize,
    ms: f64,
    compounds_per_sec: f64,
    /// Single-thread screen time / this time (1.0 = no pooled regression).
    pooled_speedup: f64,
    /// FNV-1a digest over the surviving record stream at this lane count.
    digest: String,
}

#[derive(Serialize)]
struct RuleRejection {
    rule: String,
    rejected: u64,
}

#[derive(Serialize)]
struct ChemBench {
    host_cpus: usize,
    thread_counts: Vec<usize>,
    library: String,
    num_compounds: u64,
    /// Compounds per streamed chunk — the peak-memory bound.
    chunk_size: usize,
    filter: String,
    /// Survivor streams carried identical bits at every thread count.
    bit_identical: bool,
    funnel: FunnelStats,
    filter_pass_rate: f64,
    hit_rate: f64,
    /// Per-rule rejection counts of the drug-likeness gate (a compound
    /// can violate several rules; `rejected` counts it once per rule).
    rejections: Vec<RuleRejection>,
    /// Best-scoring survivors (ligand-only pseudo-affinity, most negative
    /// first).
    top: Vec<RankedCompound>,
    runs: Vec<LaneRun>,
}

/// FNV-1a 64-bit fold.
fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// One full streaming screen on the current pool: returns the funnel, the
/// tally, a digest over every surviving record, and the running top-k.
fn run_screen(
    cfg: &ScreenConfig,
) -> (FunnelStats, dfchem::RejectionTally, u64, Vec<RankedCompound>) {
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut top: Vec<RankedCompound> = Vec::new();
    let (funnel, tally) = screen_library_with(cfg, |r| {
        fnv(&mut digest, &r.index.to_le_bytes());
        fnv(&mut digest, &r.verdict.violations.to_le_bytes());
        for w in r.fingerprint.words() {
            fnv(&mut digest, &w.to_le_bytes());
        }
        fnv(&mut digest, &r.score.to_bits().to_le_bytes());
        top.push(RankedCompound { index: r.index, score: r.score });
        if top.len() >= cfg.top_k * 2 {
            rank_truncate(&mut top, cfg.top_k);
        }
    });
    rank_truncate(&mut top, cfg.top_k);
    (funnel, tally, digest, top)
}

fn rank_truncate(top: &mut Vec<RankedCompound>, k: usize) {
    top.sort_by(|a, b| {
        a.score.partial_cmp(&b.score).expect("finite scores").then(a.index.cmp(&b.index))
    });
    top.truncate(k);
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!("== ligand-screening baseline ({host_cpus} host CPUs, smoke: {smoke}) ==");

    let (num_compounds, chunk_size, reps) =
        if smoke { (30_000u64, 4_096usize, 3usize) } else { (1_000_000, 16_384, 1) };
    let mut cfg = ScreenConfig::new(Library::Chembl, num_compounds, 2021);
    cfg.chunk_size = chunk_size;
    cfg.top_k = 16;

    let pools: Vec<Pool> = THREAD_COUNTS.iter().map(|&t| Pool::new(t)).collect();

    // Interleaved thread ladder: every rep times all pool sizes
    // back-to-back (keep the minimum — external steal only adds time).
    // Every timed run also yields the record-stream digest, so the
    // determinism cross-check costs no extra screens.
    let mut best = [f64::INFINITY; THREAD_COUNTS.len()];
    let mut digests = [0u64; THREAD_COUNTS.len()];
    let mut serial = None;
    for rep in 0..reps.max(1) {
        for (i, pool) in pools.iter().enumerate() {
            let t = Instant::now();
            let out = pool.install(|| run_screen(&cfg));
            best[i] = best[i].min(t.elapsed().as_secs_f64() * 1e3);
            if rep == 0 {
                digests[i] = out.2;
            } else {
                assert_eq!(digests[i], out.2, "screen digest unstable across reps");
            }
            if rep == 0 && i == 0 {
                serial = Some(out);
            }
        }
    }
    let (funnel, tally, want_digest, top) = serial.expect("serial rung always runs");
    let bit_identical = digests.iter().all(|&d| d == want_digest);

    let serial_ms = best[0];
    let mut runs = Vec::new();
    for (i, &threads) in THREAD_COUNTS.iter().enumerate() {
        let ms = best[i];
        let compounds_per_sec = dftrace::rate::per_sec(num_compounds as f64, ms / 1e3);
        let pooled_speedup = if ms > 0.0 { serial_ms / ms } else { 1.0 };
        eprintln!(
            "  screen @ {threads} threads: {ms:.1} ms ({compounds_per_sec:.0} compounds/s, \
             pooled speedup {pooled_speedup:.2})"
        );
        runs.push(LaneRun {
            threads,
            ms,
            compounds_per_sec,
            pooled_speedup,
            digest: format!("{:016x}", digests[i]),
        });
    }
    eprintln!(
        "  funnel: {} evaluated -> {} passed ({:.1}%) -> {} hits ({:.2}%), bit_identical {}",
        funnel.evaluated,
        funnel.passed_filter,
        100.0 * funnel.filter_pass_rate(),
        funnel.hits,
        100.0 * funnel.hit_rate(),
        bit_identical,
    );

    let rejections = cfg
        .filter
        .rules
        .iter()
        .zip(&tally.per_rule)
        .map(|(rule, &rejected)| RuleRejection { rule: rule.label(), rejected })
        .collect();

    let report = ChemBench {
        host_cpus,
        thread_counts: THREAD_COUNTS.to_vec(),
        library: format!("{:?}", cfg.library),
        num_compounds,
        chunk_size,
        filter: cfg.filter.name.clone(),
        bit_identical,
        funnel,
        filter_pass_rate: funnel.filter_pass_rate(),
        hit_rate: funnel.hit_rate(),
        rejections,
        top,
        runs,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize chem baseline");
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_chem.json");
    std::fs::write(&out, &json).expect("write BENCH_chem.json");
    eprintln!("wrote {}", out.display());
    println!("{json}");

    if smoke {
        assert!(report.bit_identical, "pooled screens diverged from the serial record stream");
        for run in &report.runs {
            assert!(
                run.pooled_speedup >= 0.9,
                "screen regressed under the pool: {:.2}x at {} threads",
                run.pooled_speedup,
                run.threads
            );
        }
        assert_eq!(report.funnel.evaluated, num_compounds);
        assert_eq!(report.funnel.passed_filter, report.funnel.fingerprinted);
        assert!(
            report.funnel.passed_filter > 0 && report.funnel.passed_filter < num_compounds,
            "the druglike gate must narrow the funnel without closing it"
        );
        assert!(!report.top.is_empty(), "the screen must rank some survivors");
        if dftrace::enabled() {
            let trace = dftrace::snapshot();
            assert!(trace.counter("chem.filter.evaluated") > 0, "no filter telemetry");
            assert!(trace.counter("chem.fp.computed") > 0, "no fingerprint telemetry");
            assert_eq!(
                trace.counter("chem.filter.passed") + trace.counter("chem.filter.rejected"),
                trace.counter("chem.filter.evaluated"),
                "filter counters must partition the evaluated stream"
            );
            for h in ["chem.filter.chunk_us", "chem.fp.chunk_us"] {
                assert!(
                    trace.histograms.iter().any(|x| x.name == h),
                    "missing per-stage histogram {h}"
                );
            }
            eprintln!(
                "smoke: {} evaluated, {} fingerprints, {} hits traced",
                trace.counter("chem.filter.evaluated"),
                trace.counter("chem.fp.computed"),
                trace.counter("chem.screen.hits"),
            );
        }
        eprintln!("smoke assertions passed");
    }
}
