//! Figure 5: precision/recall curves and F1 at the 33% experimental
//! inhibition threshold per target, with Cohen's κ against a random
//! classifier and the overall hit rate.
//!
//! Paper reference points: positives 30/20/32/26 per target, κ > 0 for
//! every model except Vina on spike1, and a 10.4% hit rate at 33%.
//!
//! ```sh
//! cargo run --release -p dfbench --bin figure5 -- --scale full
//! ```

use dfassay::{best_method_by_f1, figure5, Method};
use dfbench::{arg_value, campaign, seed_from, write_artifact, Scale};
use dfchem::pocket::TargetSite;
use dfhts::enrichment::{enrichment_factor, FunnelReport, ScreenItem};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let seed = seed_from(&args);
    let threshold: f64 =
        arg_value(&args, "--threshold").and_then(|s| s.parse().ok()).unwrap_or(33.0);

    println!(
        "== Figure 5: classification at {threshold}% inhibition (scale {}, seed {seed}) ==\n",
        scale.name()
    );
    let out = campaign(scale, seed);
    let panels = figure5(&out, threshold);
    if panels.is_empty() {
        println!("no target produced both positives and negatives; rerun with --scale full");
        return;
    }

    let mut csv = String::from("target,method,recall,precision\n");
    for panel in &panels {
        println!(
            "## {} — {} positive / {} negative (random precision {:.3})",
            panel.target.name(),
            panel.positives,
            panel.negatives,
            panel.random_baseline
        );
        for m in &panel.methods {
            println!(
                "  {:<17} best F1 {:.3}   AP {:.3}   kappa {:+.3} {}",
                m.method.name(),
                m.best_f1,
                m.average_precision,
                m.kappa,
                if m.kappa > 0.0 { "(beats random ✓)" } else { "(≤ random)" }
            );
            for (r, p) in &m.curve {
                csv.push_str(&format!(
                    "{},{},{:.5},{:.5}\n",
                    panel.target.name(),
                    m.method.name(),
                    r,
                    p
                ));
            }
        }
        println!();
    }

    println!("## Winner per target by F1 (paper pattern in parentheses)");
    for (target, method) in best_method_by_f1(&panels) {
        let expect = match target {
            TargetSite::Protease1 => "AMPL MM/GBSA",
            TargetSite::Protease2 => "Coherent Fusion",
            TargetSite::Spike1 => "Coherent Fusion",
            TargetSite::Spike2 => "Vina",
        };
        let hit = if method.name() == expect { "✓" } else { "✗" };
        println!("  {:<11} → {:<17} (paper: {expect}) {hit}", target.name(), method.name());
    }

    // Screening economics: enrichment factor of each method over the
    // tested set, plus the funnel arithmetic the paper headlines.
    println!("\n## Enrichment factor at 20% of the tested set (EF=1 ⇔ random)");
    for method in Method::ALL {
        let items: Vec<ScreenItem> = out
            .tested
            .iter()
            .map(|t| ScreenItem { score: method.strength(t), active: t.inhibition > threshold })
            .collect();
        println!("  {:<17} EF@20% = {:.2}", method.name(), enrichment_factor(&items, 0.2));
    }

    let hit_rate = out.hit_rate(threshold);
    let paper = FunnelReport::paper();
    println!(
        "\nhit rate at {threshold}%: {:.1}% of {} tested compounds (paper: {:.1}% of {})",
        100.0 * hit_rate,
        out.tested.len(),
        100.0 * paper.hit_rate(),
        paper.tested
    );
    write_artifact(&format!("figure5_pr_{}_{}.csv", scale.name(), seed), &csv);
}
