//! Campaign-scale simulation (§4): the full 5-billion-pose screen played
//! through the calibrated Lassen model with the paper's allotment shape —
//! a 10-job baseline punctuated by 500-node peak windows — including job
//! failures and rescheduling.
//!
//! ```sh
//! cargo run --release -p dfbench --bin campaign_sim
//! cargo run --release -p dfbench --bin campaign_sim -- --poses 1000000000
//! ```

use dfbench::{arg_value, seed_from};
use dfhts::simulate::{simulate_campaign, CampaignSim};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = seed_from(&args);
    let mut sim = CampaignSim { seed, ..CampaignSim::paper_shape() };
    if let Some(p) = arg_value(&args, "--poses").and_then(|s| s.parse().ok()) {
        sim.total_poses = p;
    }

    println!("== Campaign simulation: {} poses on the Lassen model ==\n", sim.total_poses);
    println!("allotment schedule:");
    for w in &sim.schedule {
        println!(
            "  t = {:>5.1} h : {:>3} nodes ({} parallel 4-node jobs)",
            w.start_hours,
            w.nodes,
            w.nodes / sim.model.nodes_per_job
        );
    }
    println!("job failure probability per attempt: {:.1}%\n", 100.0 * sim.p_job_failure);

    let r = simulate_campaign(&sim);
    println!("poses evaluated        {:>16}", r.total_poses);
    println!("jobs completed         {:>16}", r.jobs_completed);
    println!("jobs rescheduled       {:>16}", r.jobs_rescheduled);
    println!("campaign wall time     {:>13.1} h  ({:.1} days)", r.wall_hours, r.wall_hours / 24.0);
    println!("mean throughput        {:>13.0} poses/s", r.mean_poses_per_sec);
    println!(
        "peak sustained hour    {:>13.0} poses/s  (model peak: {:.0})",
        r.peak_poses_per_sec,
        sim.model.poses_per_sec_peak()
    );
    println!("job-slot utilization   {:>15.1}%", 100.0 * r.slot_utilization);
    println!(
        "\n(paper: \"during several hours of evaluation at scale, the Coherent Fusion\n model ... screen[ed] nearly 5 million compounds per hour\" — the peak hour\n above corresponds to {:.2} M compounds/h)",
        r.peak_poses_per_sec * 3600.0 / sim.model.poses_per_compound as f64 / 1e6
    );
}
