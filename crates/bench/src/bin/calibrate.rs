//! Diagnostic: oracle signal-to-noise and baseline correlations on the
//! synthetic PDBbind. Answers "what is the best Pearson any model could
//! reach on this dataset?" — the ceiling against which Table 6 results
//! should be read.
//!
//! ```sh
//! cargo run --release -p dfbench --bin calibrate -- --scale small
//! ```

use dfbench::{dataset, seed_from, Scale};
use dfdata::oracle::{latent_pk, oracle_terms, OracleConfig};
use dfdock::vina::vina_score;
use dfmetrics::pearson;

fn std_of(v: &[f64]) -> f64 {
    let m = v.iter().sum::<f64>() / v.len() as f64;
    (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let seed = seed_from(&args);
    let ds = dataset(scale, seed);
    let oracle = OracleConfig::default();

    let labels: Vec<f64> = ds.entries.iter().map(|e| e.pk).collect();
    let latents: Vec<f64> =
        ds.entries.iter().map(|e| latent_pk(&oracle, &e.ligand, &e.pocket)).collect();
    let vina: Vec<f64> =
        ds.entries.iter().map(|e| -vina_score(&e.ligand, &e.pocket).total).collect();

    let shapes: Vec<f64> =
        ds.entries.iter().map(|e| oracle_terms(&e.ligand, &e.pocket).shape).collect();
    let inters: Vec<f64> =
        ds.entries.iter().map(|e| oracle_terms(&e.ligand, &e.pocket).interaction).collect();
    let elecs: Vec<f64> =
        ds.entries.iter().map(|e| oracle_terms(&e.ligand, &e.pocket).electrostatic).collect();

    println!("== Oracle calibration (scale {}, {} complexes) ==\n", scale.name(), ds.entries.len());
    println!(
        "label (measured pK):  mean {:.2}  std {:.3}",
        labels.iter().sum::<f64>() / labels.len() as f64,
        std_of(&labels)
    );
    println!("latent pK:            std {:.3}", std_of(&latents));
    println!("label noise (config): {:.3}", oracle.label_noise);
    println!(
        "\nterm std: shape {:.3}  interaction {:.3}  electrostatic {:.3}",
        std_of(&shapes),
        std_of(&inters),
        std_of(&elecs)
    );

    let ceiling = pearson(&latents, &labels);
    println!("\ncorr(latent, label) = {ceiling:.3}   ← Pearson ceiling for ANY model");
    println!("corr(vina, label)   = {:.3}   ← untrained physics baseline", pearson(&vina, &labels));
    println!(
        "corr(shape, label)  = {:.3}   corr(inter, label) = {:.3}   corr(elec, label) = {:.3}",
        pearson(&shapes, &labels),
        pearson(&inters, &labels),
        pearson(&elecs, &labels)
    );
    println!(
        "\n(paper: Coherent Fusion reached 0.807 Pearson on the real core set;\n our reproduction targets the same fraction of this dataset's ceiling)"
    );
}
