//! Table 8: correlation of predicted binding and percent inhibition on
//! compounds with > 1% inhibition, per scoring method and target.
//!
//! Paper reference (all deliberately near zero — "the interpretation of
//! near-zero correlation coefficients is unavailing"), with the per-target
//! best method being AMPL MM/GBSA (protease1), Coherent Fusion (protease2,
//! spike1) and Vina (spike2).
//!
//! ```sh
//! cargo run --release -p dfbench --bin table8 -- --scale full
//! ```

use dfassay::{table8, Method};
use dfbench::{campaign, seed_from, write_artifact, Scale};
use dfchem::pocket::TargetSite;
use dfmetrics::pearson_ci;

fn paper_value(method: Method, target: TargetSite) -> (f64, f64) {
    match (method, target) {
        (Method::Vina, TargetSite::Protease1) => (0.03, -0.08),
        (Method::AmplMmGbsa, TargetSite::Protease1) => (0.08, 0.01),
        (Method::CoherentFusion, TargetSite::Protease1) => (-0.06, -0.04),
        (Method::Vina, TargetSite::Protease2) => (-0.08, -0.14),
        (Method::AmplMmGbsa, TargetSite::Protease2) => (-0.05, -0.07),
        (Method::CoherentFusion, TargetSite::Protease2) => (0.04, 0.04),
        (Method::Vina, TargetSite::Spike1) => (-0.02, 0.06),
        (Method::AmplMmGbsa, TargetSite::Spike1) => (0.15, 0.22),
        (Method::CoherentFusion, TargetSite::Spike1) => (0.22, 0.30),
        (Method::Vina, TargetSite::Spike2) => (0.13, 0.27),
        (Method::AmplMmGbsa, TargetSite::Spike2) => (-0.02, -0.05),
        (Method::CoherentFusion, TargetSite::Spike2) => (-0.02, -0.01),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let seed = seed_from(&args);

    println!("== Table 8: >1%-inhibition correlations (scale {}, seed {seed}) ==\n", scale.name());
    let out = campaign(scale, seed);
    let rows = table8(&out);

    println!(
        "{:<17} {:<11} {:>9} {:>16} {:>9} {:>5}   {:>14}",
        "Method", "Target/Site", "Pearson", "95% CI", "Spearman", "n", "(paper P / S)"
    );
    let mut csv = String::from("method,target,pearson,ci_lo,ci_hi,spearman,n\n");
    for row in &rows {
        let (pp, ps) = paper_value(row.method, row.target);
        // Bootstrap CI over the same >1% subset (small n → wide CIs, the
        // paper's "unavailing" point made quantitative).
        let binders: Vec<&dfassay::TestedCompound> =
            out.for_target(row.target).into_iter().filter(|t| t.inhibition > 1.0).collect();
        let preds: Vec<f64> = binders.iter().map(|t| row.method.strength(t)).collect();
        let inh: Vec<f64> = binders.iter().map(|t| t.inhibition).collect();
        let ci = pearson_ci(&preds, &inh, 400, 0.95, seed);
        println!(
            "{:<17} {:<11} {:>9.2} [{:>5.2}, {:>5.2}] {:>9.2} {:>5}   ({pp:>5.2} / {ps:>5.2})",
            row.method.name(),
            row.target.name(),
            row.pearson,
            ci.lo,
            ci.hi,
            row.spearman,
            row.n
        );
        csv.push_str(&format!(
            "{},{},{:.4},{:.4},{:.4},{:.4},{}\n",
            row.method.name(),
            row.target.name(),
            row.pearson,
            ci.lo,
            ci.hi,
            row.spearman,
            row.n
        ));
    }

    // Winner pattern check.
    println!("\n## Best method per target by Pearson (paper pattern in parentheses)");
    for target in TargetSite::ALL {
        let best = rows
            .iter()
            .filter(|r| r.target == target)
            .max_by(|a, b| a.pearson.partial_cmp(&b.pearson).unwrap())
            .expect("rows per target");
        let expect = match target {
            TargetSite::Protease1 => "AMPL MM/GBSA",
            TargetSite::Protease2 => "Coherent Fusion",
            TargetSite::Spike1 => "Coherent Fusion",
            TargetSite::Spike2 => "Vina",
        };
        let hit = if best.method.name() == expect { "✓" } else { "✗" };
        println!("  {:<11} → {:<17} (paper: {expect}) {hit}", target.name(), best.method.name());
    }
    println!(
        "\nall correlations low, as in the paper: max |Pearson| = {:.2}",
        rows.iter().map(|r| r.pearson.abs()).fold(0.0, f64::max)
    );

    write_artifact(&format!("table8_{}_{}.csv", scale.name(), seed), &csv);
}
