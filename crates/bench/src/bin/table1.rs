//! Table 1: the hyper-parameter search space handed to PB2 for each model.
//!
//! ```sh
//! cargo run --release -p dfbench --bin table1
//! ```

use dffusion::{ParamRange, SearchSpace};

fn render(space: &SearchSpace) {
    println!("## {} search space", space.model);
    println!("{:<32} Range", "Hyper-parameter");
    for dim in &space.dims {
        let range = match &dim.range {
            ParamRange::Bool => "T/F".to_string(),
            ParamRange::Choice(opts) => opts
                .iter()
                .map(|v| if v.fract() == 0.0 { format!("{v:.0}") } else { format!("{v}") })
                .collect::<Vec<_>>()
                .join(","),
            ParamRange::Uniform { lo, hi } => format!("{lo} - {hi} (uniform)"),
            ParamRange::LogUniform { lo, hi } => format!("{lo:e} - {hi:e} (log-uniform)"),
        };
        println!("{:<32} {range}", dim.name);
    }
    println!();
}

fn main() {
    println!("== Table 1: PB2 hyper-parameter ranges per model ==\n");
    render(&SearchSpace::sgcnn());
    render(&SearchSpace::cnn3d());
    render(&SearchSpace::fusion());
    println!(
        "(Fixed per Table 1: 3D-CNN dropout 0.25/0.125, SG-CNN dropout 0, \
         heads use Adam; fusion optimizer options are Adam/AdamW/RMSprop/Adadelta.)"
    );
}
