//! Ablations over the design choices the paper highlights:
//!
//! * **pre-trained heads** — Table 5 reports that loading the individually
//!   trained heads "led to a significant improvement in validation loss"
//!   for Coherent Fusion;
//! * **coherent back-propagation** — the paper's core claim (vs frozen
//!   heads, i.e. Mid-level Fusion with the same architecture);
//! * **model-specific fusion layers / residual fusion layers** — the
//!   Figure 1 options PB2 toggled (Coherent converged to excluding them);
//! * **flip augmentation** — §3.3.1's 10%-per-axis voxel flips.
//!
//! Each ablation trains the same model with one knob changed and reports
//! validation MSE and core-set metrics.
//!
//! ```sh
//! cargo run --release -p dfbench --bin ablations -- --scale small
//! ```

use dfbench::{dataset, seed_from, workflow_config, write_artifact, Scale};
use dfdata::Group;
use dffusion::{train_all_variants, EvalModel, WorkflowConfig};
use std::sync::Arc;

struct AblationResult {
    name: &'static str,
    val_mse: f64,
    rmse: f64,
    pearson: f64,
}

fn run_variant(
    name: &'static str,
    ds: &Arc<dfdata::PdbBind>,
    cfg: WorkflowConfig,
    which: EvalModel,
) -> AblationResult {
    eprintln!("[ablations] training variant: {name}");
    let mut models = train_all_variants(Arc::clone(ds), &cfg);
    let core = ds.indices(Group::Core);
    let report = models.evaluate(ds, &core, which);
    let val_mse = match which {
        EvalModel::Coherent => models.coherent_history.best_val_mse,
        EvalModel::MidLevel => models.midlevel_history.best_val_mse,
        _ => f64::NAN,
    };
    AblationResult { name, val_mse, rmse: report.rmse, pearson: report.pearson }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let seed = seed_from(&args);
    println!("== Ablations (scale {}, seed {seed}) ==\n", scale.name());

    let ds = dataset(scale, seed);
    let base = workflow_config(scale, seed);
    let mut results = Vec::new();

    // Baseline: the paper's Coherent Fusion setup.
    results.push(run_variant("coherent (baseline)", &ds, base.clone(), EvalModel::Coherent));

    // 1. Heads from scratch instead of pre-trained.
    {
        let mut cfg = base.clone();
        cfg.coherent.pretrained = false;
        results.push(run_variant("coherent, scratch heads", &ds, cfg, EvalModel::Coherent));
    }

    // 2. Frozen heads with the coherent architecture (≈ Mid-level).
    {
        let mut cfg = base.clone();
        cfg.midlevel = dffusion::FusionConfig {
            kind: dffusion::FusionKind::MidLevel,
            ..base.coherent.clone()
        };
        results.push(run_variant("frozen heads (mid-level arch)", &ds, cfg, EvalModel::MidLevel));
    }

    // 3. Model-specific fusion layers on (Coherent converged to off).
    {
        let mut cfg = base.clone();
        cfg.coherent.model_specific_layers = true;
        results.push(run_variant(
            "coherent + model-specific layers",
            &ds,
            cfg,
            EvalModel::Coherent,
        ));
    }

    // 4. Residual fusion layers on.
    {
        let mut cfg = base.clone();
        cfg.coherent.residual_fusion = true;
        results.push(run_variant("coherent + residual fusion", &ds, cfg, EvalModel::Coherent));
    }

    // 5. No flip augmentation for the 3D head.
    {
        let mut cfg = base.clone();
        cfg.cnn3d.flip_augment = false;
        results.push(run_variant("no flip augmentation", &ds, cfg, EvalModel::Coherent));
    }

    println!("\n{:<34} {:>10} {:>8} {:>9}", "Variant", "val MSE", "RMSE", "Pearson");
    let mut csv = String::from("variant,val_mse,core_rmse,core_pearson\n");
    for r in &results {
        println!("{:<34} {:>10.3} {:>8.3} {:>9.3}", r.name, r.val_mse, r.rmse, r.pearson);
        csv.push_str(&format!("{},{:.4},{:.4},{:.4}\n", r.name, r.val_mse, r.rmse, r.pearson));
    }
    let baseline = results[0].val_mse;
    let scratch = results[1].val_mse;
    println!(
        "\npre-trained heads {} scratch heads on validation ({:.3} vs {:.3}) — paper: pre-trained significantly better",
        if baseline < scratch { "beat" } else { "did not beat" },
        baseline,
        scratch
    );
    write_artifact(&format!("ablations_{}_{}.csv", scale.name(), seed), &csv);
}
