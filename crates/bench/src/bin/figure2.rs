//! Figure 2 and the §3.4 docking-space evaluation: re-dock the core-set
//! complexes with the ConveyorLC-style pipeline, filter to complexes whose
//! best pose is close to the crystal pose, then compare Vina, MM/GBSA and
//! Coherent Fusion — Pearson correlation against the true labels, plus the
//! strong-binder (pK > 8) vs weak-binder (pK < 6) precision/recall curves.
//!
//! Paper reference points: Vina 0.579, MM/GBSA 0.591, Coherent Fusion
//! 0.745 Pearson on docked poses; Fusion's P/R curve dominates.
//!
//! ```sh
//! cargo run --release -p dfbench --bin figure2 -- --scale full
//! ```

use dfbench::{arg_value, fusion_scorer, seed_from, trained_models, write_artifact, Scale};
use dfchem::rmsd::rmsd;
use dfdock::mmgbsa::{mmgbsa_score, MmGbsaConfig};
use dfdock::search::{dock, DockConfig};
use dfhts::scorer::ScorerFactory;
use dfmetrics::{pearson, PrCurve};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let seed = seed_from(&args);
    let rmsd_cut: f64 = arg_value(&args, "--rmsd").and_then(|s| s.parse().ok()).unwrap_or(2.0);

    println!("== Figure 2: docking-space evaluation (scale {}, seed {seed}) ==\n", scale.name());
    let (ds, models) = trained_models(scale, seed);
    let fusion_factory = fusion_scorer(&models);
    let mut fusion = fusion_factory.build();
    let core = ds.indices(dfdata::Group::Core);
    println!("re-docking {} core complexes (RMSD filter < {rmsd_cut} Å)...", core.len());

    let dock_cfg = DockConfig::default();
    let mmgbsa_cfg = MmGbsaConfig { born_iterations: 5, ..Default::default() };

    let mut labels = Vec::new();
    let mut vina_best = Vec::new();
    let mut mmgbsa_best = Vec::new();
    let mut fusion_best = Vec::new();
    let mut kept = 0usize;
    for &i in &core {
        let entry = &ds.entries[i];
        let poses = dock(&dock_cfg, &entry.ligand, &entry.pocket, seed ^ (i as u64) << 3);
        if poses.is_empty() {
            continue;
        }
        // Keep the complex only when some pose recovered the crystal
        // geometry (the paper filters at RMSD < 1 Å on real structures;
        // the CLI default is looser because our MC search is smaller).
        let recovered = poses.iter().any(|p| rmsd(&p.ligand, &entry.ligand) < rmsd_cut);
        if !recovered {
            continue;
        }
        kept += 1;
        let ligs: Vec<_> = poses.iter().map(|p| p.ligand.clone()).collect();
        labels.push(entry.pk);
        vina_best.push(poses.iter().map(|p| p.vina).fold(f64::INFINITY, f64::min));
        mmgbsa_best.push(
            ligs.iter()
                .map(|l| mmgbsa_score(&mmgbsa_cfg, l, &entry.pocket).total)
                .fold(f64::INFINITY, f64::min),
        );
        let preds = fusion.score_poses(&ligs, &entry.pocket);
        fusion_best.push(preds.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }
    println!("{kept}/{} complexes passed the pose-recovery filter\n", core.len());
    if kept < 8 {
        println!("too few complexes for statistics; rerun with --scale full or a looser --rmsd");
        return;
    }

    // Docking-space correlations (higher-is-stronger orientation).
    let vina_strength: Vec<f64> = vina_best.iter().map(|v| -v).collect();
    let mmgbsa_strength: Vec<f64> = mmgbsa_best.iter().map(|v| -v).collect();
    println!("## Pearson correlation with experimental pK on docked poses");
    println!("{:<18} {:>8}   (paper)", "Method", "Pearson");
    println!("{:<18} {:>8.3}   (0.579)", "Vina", pearson(&vina_strength, &labels));
    println!("{:<18} {:>8.3}   (0.591)", "MM/GBSA", pearson(&mmgbsa_strength, &labels));
    println!("{:<18} {:>8.3}   (0.745)", "Coherent Fusion", pearson(&fusion_best, &labels));

    // Binary strong (pK > threshold_hi) vs weak (pK < threshold_lo).
    // The paper uses >8 / <6 on PDBbind's label scale; the synthetic label
    // distribution is narrower, so thresholds sit at its tertiles.
    let mut sorted = labels.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let lo = sorted[sorted.len() / 3];
    let hi = sorted[2 * sorted.len() / 3];
    println!("\n## Strong/weak classification (strong: pK > {hi:.2}, weak: pK < {lo:.2})");
    let mut csv = String::from("method,threshold,precision,recall,f1\n");
    for (name, scores) in
        [("vina", &vina_strength), ("mmgbsa", &mmgbsa_strength), ("fusion", &fusion_best)]
    {
        let mut cls_scores = Vec::new();
        let mut cls_labels = Vec::new();
        for ((&s, &l), _) in scores.iter().zip(&labels).zip(0..) {
            if l > hi {
                cls_scores.push(s);
                cls_labels.push(true);
            } else if l < lo {
                cls_scores.push(s);
                cls_labels.push(false);
            }
        }
        if !cls_labels.iter().any(|&l| l) || cls_labels.iter().all(|&l| l) {
            println!("  {name:<8} (degenerate class split, skipped)");
            continue;
        }
        let curve = PrCurve::compute(&cls_scores, &cls_labels);
        let best = curve.best_f1();
        println!(
            "  {name:<8} best F1 {:.3} (AP {:.3}, baseline precision {:.3}, {} strong / {} weak)",
            best.f1,
            curve.average_precision,
            curve.baseline_precision,
            cls_labels.iter().filter(|&&l| l).count(),
            cls_labels.iter().filter(|&&l| !l).count()
        );
        for p in &curve.points {
            csv.push_str(&format!(
                "{name},{:.5},{:.5},{:.5},{:.5}\n",
                p.threshold, p.precision, p.recall, p.f1
            ));
        }
    }
    write_artifact(&format!("figure2_pr_{}_{}.csv", scale.name(), seed), &csv);
}
