//! Figure 4: Coherent-Fusion predicted binding affinity vs experimental
//! percent inhibition for compounds with > 1% inhibition, per target.
//!
//! ```sh
//! cargo run --release -p dfbench --bin figure4 -- --scale full
//! ```

use dfassay::figure4;
use dfbench::{campaign, seed_from, write_artifact, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let seed = seed_from(&args);

    println!(
        "== Figure 4: predicted pK vs % inhibition (scale {}, seed {seed}) ==\n",
        scale.name()
    );
    let out = campaign(scale, seed);

    // Paper context: 130/81 Mpro compounds at 100 µM, 151/113 spike
    // compounds at 10 µM showed > 1% inhibition.
    let panels = figure4(&out);
    let mut csv = String::from("target,predicted_pk,percent_inhibition\n");
    println!(
        "{:<11} {:>9} {:>12} {:>12}  (paper binders)",
        "Target", "binders", "mean pred", "mean inh%"
    );
    let paper_counts = [130usize, 81, 151, 113];
    for ((target, points), paper_n) in panels.iter().zip(paper_counts) {
        let mean_pred = if points.is_empty() {
            0.0
        } else {
            points.iter().map(|p| p.predicted).sum::<f64>() / points.len() as f64
        };
        let mean_inh = if points.is_empty() {
            0.0
        } else {
            points.iter().map(|p| p.inhibition).sum::<f64>() / points.len() as f64
        };
        println!(
            "{:<11} {:>9} {:>12.2} {:>12.1}  ({paper_n})",
            target.name(),
            points.len(),
            mean_pred,
            mean_inh
        );
        for p in points {
            csv.push_str(&format!("{},{:.4},{:.3}\n", target.name(), p.predicted, p.inhibition));
        }
    }
    println!(
        "\ntotal tested: {} compounds; binders (>1%): {}",
        out.tested.len(),
        out.tested.iter().filter(|t| t.inhibition > 1.0).count()
    );
    write_artifact(&format!("figure4_scatter_{}_{}.csv", scale.name(), seed), &csv);
}
