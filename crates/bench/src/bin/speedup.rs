//! §4.1/§4.2 scorer cost comparison: wall-clock per pose for Vina,
//! MM/GBSA and the Coherent Fusion model on identical docked poses.
//!
//! Paper reference: per Lassen node, Vina ≈ 10 poses/s, MM/GBSA ≈ 0.067
//! poses/s, Fusion ≈ 27 poses/s → Fusion is 2.7× Vina and 403× MM/GBSA.
//! Our substrate preserves the cost *hierarchy* (MM/GBSA orders of
//! magnitude above Vina; fusion inference in between) — the exact ratios
//! depend on the host CPU and the scaled-down model, and both measured and
//! paper ratios are printed.
//!
//! ```sh
//! cargo run --release -p dfbench --bin speedup
//! ```

use dfbench::{fusion_scorer, seed_from, trained_models, write_artifact, Scale};
use dfchem::genmol::{Compound, Library};
use dfchem::pocket::{BindingPocket, TargetSite};
use dfdock::search::{dock, DockConfig};
use dfhts::scorer::{MmGbsaScorerFactory, ScorerFactory, VinaScorerFactory};
use dfhts::throughput::SpeedupReport;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let seed = seed_from(&args);
    let n_poses = match scale {
        Scale::Tiny => 20,
        Scale::Small => 60,
        Scale::Full => 200,
    };

    println!("== Scorer speedups (scale {}, seed {seed}) ==\n", scale.name());
    let (_, models) = trained_models(scale, seed);

    // A shared set of docked poses.
    println!("docking {n_poses} poses...");
    let pocket = BindingPocket::generate(TargetSite::Protease1, seed);
    let mut poses = Vec::with_capacity(n_poses);
    let mut ci = 0u64;
    while poses.len() < n_poses {
        let c = Compound::materialize(Library::EnamineVirtual, ci, seed);
        for p in dock(
            &DockConfig { mc_restarts: 2, mc_steps: 40, ..Default::default() },
            &c.mol,
            &pocket,
            seed ^ ci,
        ) {
            if poses.len() < n_poses {
                poses.push(p.ligand);
            }
        }
        ci += 1;
    }

    // Docking itself (the Vina stage cost includes the MC search).
    let t0 = Instant::now();
    let mut docked = 0usize;
    for i in 0..(n_poses / 10).max(1) as u64 {
        let c = Compound::materialize(Library::EnamineVirtual, 10_000 + i, seed);
        docked += dock(&DockConfig::default(), &c.mol, &pocket, seed ^ i).len();
    }
    let dock_rate = docked as f64 / t0.elapsed().as_secs_f64();

    // Pure scoring passes over the same poses.
    let mut results: Vec<(&str, f64)> = Vec::new();
    let mut vina = VinaScorerFactory.build();
    let t = Instant::now();
    let _ = vina.score_poses(&poses, &pocket);
    results.push(("vina-score", poses.len() as f64 / t.elapsed().as_secs_f64()));

    let mut mmgbsa = MmGbsaScorerFactory(Default::default()).build();
    let t = Instant::now();
    let _ = mmgbsa.score_poses(&poses, &pocket);
    results.push(("mmgbsa", poses.len() as f64 / t.elapsed().as_secs_f64()));

    let mut fusion = fusion_scorer(&models).build();
    // Warm-up pass excluded from timing.
    let _ = fusion.score_poses(&poses[..poses.len().min(8)], &pocket);
    let t = Instant::now();
    let _ = fusion.score_poses(&poses, &pocket);
    results.push(("fusion", poses.len() as f64 / t.elapsed().as_secs_f64()));

    println!("\n## Measured single-thread pose rates");
    println!("{:<14} {:>12}", "Scorer", "poses/s");
    println!("{:<14} {:>12.2}   (full MC docking incl. search)", "vina-dock", dock_rate);
    for (name, rate) in &results {
        println!("{name:<14} {rate:>12.2}");
    }

    let rate_of = |n: &str| results.iter().find(|(k, _)| *k == n).map(|(_, r)| *r).unwrap_or(0.0);
    let measured = SpeedupReport {
        fusion_poses_per_sec: rate_of("fusion"),
        // The paper's Vina number is the full docking stage, not a single
        // function evaluation.
        vina_poses_per_sec: dock_rate,
        mmgbsa_poses_per_sec: rate_of("mmgbsa"),
    };
    let paper = SpeedupReport::paper();
    println!("\n## Fusion speedups (ours vs paper)");
    println!(
        "  vs Vina docking : {:>8.1}x   (paper: {:.1}x)",
        measured.fusion_over_vina(),
        paper.fusion_over_vina()
    );
    println!(
        "  vs MM/GBSA      : {:>8.1}x   (paper: {:.0}x)",
        measured.fusion_over_mmgbsa(),
        paper.fusion_over_mmgbsa()
    );
    println!(
        "\ncost hierarchy preserved: mmgbsa ≪ vina-dock < fusion  → {}",
        if measured.mmgbsa_poses_per_sec < measured.vina_poses_per_sec
            && measured.fusion_poses_per_sec > measured.mmgbsa_poses_per_sec
        {
            "✓"
        } else {
            "✗"
        }
    );

    let csv = format!(
        "scorer,poses_per_sec\nvina-dock,{dock_rate:.3}\nvina-score,{:.3}\nmmgbsa,{:.3}\nfusion,{:.3}\n",
        rate_of("vina-score"),
        rate_of("mmgbsa"),
        rate_of("fusion")
    );
    write_artifact(&format!("speedup_{}_{}.csv", scale.name(), seed), &csv);
}
