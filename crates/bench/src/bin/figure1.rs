//! Figure 1: the fusion architecture — 3D-CNN head, SG-CNN head and fusion
//! layers with their optional (dashed) components. This harness builds the
//! paper-configured models and prints the realized architecture with
//! parameter counts, marking which Figure 1 options each optimized
//! configuration enabled.
//!
//! ```sh
//! cargo run --release -p dfbench --bin figure1
//! ```

use dfchem::featurize::VoxelConfig;
use dffusion::{Cnn3dConfig, FusionConfig, FusionModel, SgCnnConfig};
use dftensor::params::ParamStore;

fn count_params(ps: &ParamStore, prefix: &str) -> usize {
    ps.iter().filter(|(id, _)| ps.name(*id).starts_with(prefix)).map(|(_, e)| e.value.numel()).sum()
}

fn describe(name: &str, cfg: &FusionConfig, sg: &SgCnnConfig, cnn: &Cnn3dConfig) {
    let voxel = VoxelConfig::default();
    let mut ps = ParamStore::new();
    let model = FusionModel::new(cfg, sg, cnn, &voxel, &mut ps, 0);
    let onoff = |b: bool| if b { "ON " } else { "off" };
    println!("## {name}");
    println!("  3D-CNN head ({} params)", count_params(&ps, "fusion.cnn3d"));
    println!(
        "    conv 5x5x5 x{} -> pool -> conv 3x3x3 x{} -> pool",
        cnn.conv_filters_1, cnn.conv_filters_2
    );
    println!(
        "    conv 3x3x3 x{f} [residual 1 {r1}] -> conv 3x3x3 x{f} [residual 2 {r2}] -> pool",
        f = cnn.conv_filters_2,
        r1 = onoff(cnn.residual_1),
        r2 = onoff(cnn.residual_2)
    );
    println!(
        "    dense {} -> dense {} (latent) -> 1   [batch norm {}]",
        cnn.num_dense_nodes,
        cnn.num_dense_nodes / 2,
        onoff(cnn.batch_norm)
    );
    println!("  SG-CNN head ({} params)", count_params(&ps, "fusion.sgcnn"));
    println!("    covalent GGNN: width {}, K = {} steps", sg.covalent_gather_width, sg.covalent_k);
    println!(
        "    non-covalent GGNN: width {}, K = {} steps",
        sg.noncovalent_gather_width, sg.noncovalent_k
    );
    let (w1, w2) = sg.dense_widths();
    println!("    gated gather (ligand nodes) -> dense {w1} -> dense {w2} -> 1");
    println!(
        "  Fusion block ({} params): {} layers x {} nodes, {:?} activation",
        count_params(&ps, "fusion.f")
            + count_params(&ps, "fusion.out")
            + count_params(&ps, "fusion.spec")
            + count_params(&ps, "fusion.bn"),
        cfg.num_fusion_layers,
        cfg.num_dense_nodes,
        cfg.activation
    );
    println!(
        "    options: model-specific layers {}, residual fusion {}, batch norm {}, pre-trained heads {}",
        onoff(cfg.model_specific_layers),
        onoff(cfg.residual_fusion),
        onoff(cfg.batch_norm),
        onoff(cfg.pretrained)
    );
    println!(
        "    dropout 1/2/3: {:.3} / {:.3} / {:.3}",
        cfg.dropout_1, cfg.dropout_2, cfg.dropout_3
    );
    println!("  heads trainable under this variant: {}\n", model.heads_trainable());
    println!("  total parameters: {}\n", ps.num_scalars());
}

fn main() {
    println!("== Figure 1: realized fusion architectures (paper-optimized configs) ==\n");
    let sg = SgCnnConfig::table2();
    let cnn = Cnn3dConfig::table3();
    describe("Mid-level Fusion (Table 4)", &FusionConfig::table4_midlevel(), &sg, &cnn);
    describe("Coherent Fusion (Table 5)", &FusionConfig::table5_coherent(), &sg, &cnn);
    println!(
        "(Coherent converged to the simpler block: no model-specific layers, no\n residual fusion, 4 layers, stronger dropout — §3.3.3.)"
    );
}
