//! Table 6: performance of the fusion models on the synthetic PDBbind
//! core-set crystal structures (RMSE / MAE / R² / Pearson / Spearman).
//!
//! ```sh
//! cargo run --release -p dfbench --bin table6 -- --scale full
//! ```

use dfbench::{seed_from, trained_models, write_artifact, Scale};
use dffusion::EvalModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let seed = seed_from(&args);

    println!("== Table 6: core-set evaluation (scale {}, seed {seed}) ==\n", scale.name());
    let (ds, mut models) = trained_models(scale, seed);
    let core = ds.indices(dfdata::Group::Core);
    // In-distribution sanity panel: the validation split (quintile
    // sub-sampled from general+refined). Core-set numbers should be read
    // against these — the core set is deliberately dissimilar.
    let (_, val_idx) = dfdata::paper_split(
        &ds.indices(dfdata::Group::General),
        &ds.indices(dfdata::Group::Refined),
        &ds.labels(),
        seed,
    );
    println!("dataset: {} complexes, core set of {} held out\n", ds.entries.len(), core.len());

    let variants = [
        ("SG-CNN", EvalModel::SgCnn),
        ("3D-CNN", EvalModel::Cnn3d),
        ("Mid-level Fusion", EvalModel::MidLevel),
        ("Late Fusion", EvalModel::Late),
        ("Coherent Fusion", EvalModel::Coherent),
    ];
    let mut csv = String::from("model,rmse,mae,r2,pearson,spearman\n");
    println!(
        "{:<18} {:>7} {:>7} {:>7} {:>9} {:>9}",
        "Model", "RMSE", "MAE", "R2", "Pearson", "Spearman"
    );
    let mut reports = Vec::new();
    for (name, which) in variants {
        let r = models.evaluate(&ds, &core, which);
        let v = models.evaluate(&ds, &val_idx, which);
        println!(
            "{name:<18} {:>7.3} {:>7.3} {:>7.3} {:>9.3} {:>9.3}   (val: RMSE {:.3}, Pearson {:.3})",
            r.rmse, r.mae, r.r2, r.pearson, r.spearman, v.rmse, v.pearson
        );
        csv.push_str(&format!(
            "{name},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            r.rmse, r.mae, r.r2, r.pearson, r.spearman
        ));
        reports.push((name, which, r));
    }

    println!("\n## Paper values (PDBbind-2019 core set, 290 complexes)");
    println!(
        "{:<18} {:>7} {:>7} {:>7} {:>9} {:>9}",
        "Model", "RMSE", "MAE", "R2", "Pearson", "Spearman"
    );
    for (name, rmse, mae, r2, p, s) in [
        ("Mid-level Fusion", "1.38", "1.10", "0.596", "0.778", "0.757"),
        ("Late Fusion", "1.33", "1.07", "0.623", "0.813", "0.805"),
        ("Coherent Fusion", "1.30", "1.05", "0.640", "0.807", "0.802"),
        ("(Pafnucy)", "1.42", "1.13", "-", "0.78", "-"),
        ("(KDeep)", "1.27", "-", "-", "0.82", "0.82"),
    ] {
        println!("{name:<18} {rmse:>7} {mae:>7} {r2:>7} {p:>9} {s:>9}");
    }

    // Shape check: does fusion beat the individual heads, with Coherent at
    // or near the top?
    let rmse_of = |which: EvalModel| {
        reports.iter().find(|(_, w, _)| *w == which).map(|(_, _, r)| r.rmse).unwrap_or(f64::NAN)
    };
    let best_head = rmse_of(EvalModel::SgCnn).min(rmse_of(EvalModel::Cnn3d));
    let coherent = rmse_of(EvalModel::Coherent);
    let late = rmse_of(EvalModel::Late);
    println!("\n## Shape check (paper: fusion ≥ individual heads; Coherent best)");
    println!(
        "  best single-head RMSE {best_head:.3} vs Late {late:.3} vs Coherent {coherent:.3} → {}",
        if coherent <= best_head && late <= best_head {
            "fusion improves over the heads ✓"
        } else {
            "fusion did NOT beat the heads at this scale ✗ (try --scale full)"
        }
    );

    write_artifact(&format!("table6_{}_{}.csv", scale.name(), seed), &csv);
}
