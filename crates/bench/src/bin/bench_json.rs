//! Serial-vs-pooled baseline for the screening hot paths, as JSON.
//!
//! Runs each `dfpool`-parallelized hot path — matmul, conv3d fwd+bwd,
//! batch featurization, MC docking, and a full evaluation job — under
//! pools of 1 (serial), 2, 4 and 8 threads, and writes the measured
//! wall-clock times and speedups to `BENCH_parallel.json` at the repo
//! root so later PRs can track scaling regressions. Timings are medians
//! of several runs; outputs are bit-identical at every thread count (see
//! `tests/parallel_determinism.rs`), so only wall-clock is recorded.
//!
//! Speedups are honest measurements on the current host: on a single-core
//! machine every ratio sits near 1.0 (the pool falls back to near-serial
//! cost), while multi-core hosts see the row/chain/compound-level
//! parallelism directly. `host_cpus` is recorded so a baseline is only
//! compared against baselines from comparable hosts.
//!
//! ```sh
//! cargo run --release -p dfbench --bin bench_json
//! ```

use dfchem::featurize::{build_graph_batch, voxelize_batch, GraphConfig, VoxelConfig};
use dfchem::genmol::{generate_molecule, Library, MolGenConfig};
use dfchem::mol::Molecule;
use dfchem::pocket::{BindingPocket, TargetSite};
use dfdock::search::{dock, DockConfig};
use dfhts::fault::FaultConfig;
use dfhts::job::{run_job, JobConfig, JobSpec, SyntheticPoseSource, TaskClass};
use dfhts::scorer::VinaScorerFactory;
use dfpool::Pool;
use dftensor::rng::rng;
use dftensor::{Graph, Tensor};
use serde::Serialize;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[derive(Serialize)]
struct RunReport {
    threads: usize,
    ms: f64,
    /// Serial time / this time (>1 = faster than serial).
    speedup: f64,
}

#[derive(Serialize)]
struct PathReport {
    name: String,
    serial_ms: f64,
    runs: Vec<RunReport>,
    best_speedup: f64,
}

#[derive(Serialize)]
struct Baseline {
    /// CPUs visible to this process; speedups are bounded by this.
    host_cpus: usize,
    thread_counts: Vec<usize>,
    paths: Vec<PathReport>,
}

/// Median wall-clock (ms) of `reps` runs of `f` on `pool`.
fn measure(pool: &Pool, reps: usize, f: &dyn Fn()) -> f64 {
    pool.install(f); // warmup
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            pool.install(f);
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Runs one hot path across the thread ladder and reports the scaling.
fn run_path(name: &str, reps: usize, f: &dyn Fn()) -> PathReport {
    let mut serial_ms = 0.0;
    let mut runs = Vec::new();
    for threads in THREAD_COUNTS {
        let pool = Pool::new(threads);
        let ms = measure(&pool, reps, f);
        if threads == 1 {
            serial_ms = ms;
        }
        let speedup = if ms > 0.0 { serial_ms / ms } else { 1.0 };
        eprintln!("  {name} @ {threads} threads: {ms:.2} ms (speedup {speedup:.2})");
        runs.push(RunReport { threads, ms, speedup });
    }
    let best_speedup = runs.iter().map(|r| r.speedup).fold(1.0f64, f64::max);
    PathReport { name: name.to_string(), serial_ms, runs, best_speedup }
}

fn ligands(n: u64) -> Vec<Molecule> {
    (0..n)
        .map(|i| {
            generate_molecule(
                &MolGenConfig { min_heavy: 8, max_heavy: 14, ..Default::default() },
                "bj",
                i,
            )
        })
        .collect()
}

fn main() {
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!("== dfpool hot-path baseline ({host_cpus} host CPUs) ==");
    let mut paths = Vec::new();

    // 1. dftensor: matmul.
    {
        let mut r = rng(1);
        let a = Tensor::randn(&[160, 160], &mut r);
        let b = Tensor::randn(&[160, 160], &mut r);
        paths.push(run_path("tensor_matmul_160", 9, &|| {
            black_box(a.matmul(&b));
        }));
    }

    // 2. dftensor: conv3d forward + backward.
    {
        let mut r = rng(2);
        let x = Tensor::randn(&[2, 8, 12, 12, 12], &mut r);
        let w = Tensor::randn(&[8, 8, 3, 3, 3], &mut r);
        let b = Tensor::zeros(&[8]);
        paths.push(run_path("tensor_conv3d_12cube_fwd_bwd", 5, &|| {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let wv = g.input(w.clone());
            let bv = g.input(b.clone());
            let y = g.conv3d(xv, wv, bv, 1);
            let loss = g.mean_all(y);
            black_box(g.backward(loss));
        }));
    }

    // 3. dfchem: batch featurization (voxels + spatial graphs).
    {
        let mols = ligands(16);
        let refs: Vec<&Molecule> = mols.iter().collect();
        let pocket = BindingPocket::generate(TargetSite::Protease1, 3);
        let vcfg = VoxelConfig { grid_dim: 12, resolution: 1.5 };
        let gcfg = GraphConfig::default();
        paths.push(run_path("chem_featurize_batch16", 5, &|| {
            black_box(voxelize_batch(&vcfg, &refs, &pocket));
            black_box(build_graph_batch(&gcfg, &refs, &pocket));
        }));
    }

    // 4. dfdock: Monte-Carlo pose search (8 independent chains).
    {
        let lig = &ligands(1)[0];
        let pocket = BindingPocket::generate(TargetSite::Spike1, 4);
        let cfg = DockConfig { mc_restarts: 8, mc_steps: 60, ..DockConfig::default() };
        paths.push(run_path("dock_mc_8chains", 5, &|| {
            black_box(dock(&cfg, lig, &pocket, 9));
        }));
    }

    // 5. dfhts: full evaluation job (per-rank batch scoring + allgather).
    {
        let dir = std::env::temp_dir().join(format!("dfbench_json_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = JobConfig {
            nodes: 1,
            ranks_per_node: 2,
            batch_size: 4,
            output_dir: dir.clone(),
            faults: FaultConfig::default(),
        };
        let spec = JobSpec {
            job_id: 1,
            target: TargetSite::Spike1,
            library: Library::EnamineVirtual,
            first_compound: 0,
            num_compounds: 16,
            campaign_seed: 5,
            class: TaskClass::Dock,
            attempt: 0,
        };
        paths.push(run_path("hts_job_16compounds", 3, &|| {
            black_box(
                run_job(
                    &cfg,
                    &spec,
                    &VinaScorerFactory,
                    &SyntheticPoseSource { poses_per_compound: 4 },
                )
                .unwrap(),
            );
        }));
        std::fs::remove_dir_all(&dir).ok();
    }

    let baseline = Baseline { host_cpus, thread_counts: THREAD_COUNTS.to_vec(), paths };
    let json = serde_json::to_string_pretty(&baseline).expect("serialize baseline");
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parallel.json");
    std::fs::write(&out, &json).expect("write BENCH_parallel.json");
    eprintln!("wrote {}", out.display());
    println!("{json}");
}
