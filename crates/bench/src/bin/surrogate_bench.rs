//! Active-learning surrogate benchmark, as JSON.
//!
//! Quantifies what the `dfsurrogate` funnel tier buys: an active-learning
//! campaign ([`dfhts::active`]) that docks only a 10% budget of the
//! library must still recover the true top binders that exhaustive
//! docking finds. Writes `BENCH_surrogate.json` at the repo root:
//!
//! * **ground truth** — every compound docked through the real job
//!   machinery (`run_campaign`, Vina scoring over synthetic poses); the
//!   true top 1% are the "actives";
//! * **active learning** — a multi-epoch surrogate campaign at a total
//!   10% docking budget: enrichment factor of the final ranking at the
//!   1% and 10% cuts, and hit-recall@1% (fraction of true actives the
//!   campaign actually docked) against the `budget` baseline a random
//!   selection would land in expectation;
//! * **determinism** — the identical campaign under 1/2/4 installed
//!   `dfpool` lanes, plus a crash/resume leg killed between an epoch's
//!   retrain and its hot-swap: every final ranking digest must be
//!   bit-identical;
//! * **cost** — measured per-compound cost of the surrogate tier
//!   (featurize + MLP forward) vs the rule filter (descriptors + rule
//!   table), the measurement behind `TaskClass::Surrogate`'s
//!   `cost_weight` of 2.
//!
//! ```sh
//! cargo run --release -p dfbench --bin surrogate_bench            # full
//! cargo run --release -p dfbench --bin surrogate_bench -- --smoke # CI
//! ```
//!
//! `--smoke` shrinks the library and asserts the contract: enrichment
//! factor > 1.0 at the 10% cut, cross-lane and crash/resume digests all
//! equal, and — when `DFTRACE=1` — the `hts.active.*` counters are live.
//! The full run additionally asserts the paper-scale quality bar:
//! EF@1% ≥ 5x and hit-recall@1% ≥ 0.5 at the 10% budget.

use dfchem::genmol::{Compound, Library};
use dfchem::pocket::TargetSite;
use dfchem::{Descriptors, RuleFilter};
use dfhts::{
    enrichment_factor, run_active_campaign, run_active_campaign_aborting, run_campaign, AbortPoint,
    ActiveCampaignReport, ActiveLearningConfig, FaultConfig, JobConfig, JobSpec, SchedulerConfig,
    ScreenItem, SyntheticPoseSource, TaskClass, VinaScorerFactory,
};
use dfsurrogate::{featurize_compound, TrainConfig};
use serde::Serialize;
use std::collections::BTreeSet;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

const SEED: u64 = 2021;
const POSES_PER_COMPOUND: usize = 128;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dfsb_{tag}_{}", std::process::id()));
    if d.exists() {
        std::fs::remove_dir_all(&d).unwrap();
    }
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn job_cfg(dir: PathBuf) -> JobConfig {
    JobConfig {
        nodes: 1,
        ranks_per_node: 2,
        batch_size: 16,
        output_dir: dir,
        faults: FaultConfig::default(),
    }
}

/// Exhaustively docks the whole library and returns each compound's best
/// (lowest) pose score — the ground truth the funnel is judged against.
fn exhaustive_truth(num_compounds: u64) -> Vec<f64> {
    let per_job = 32u64;
    let specs: Vec<JobSpec> = (0..num_compounds.div_ceil(per_job))
        .map(|j| JobSpec {
            job_id: j,
            target: TargetSite::Spike1,
            library: Library::EnamineVirtual,
            first_compound: j * per_job,
            num_compounds: per_job.min(num_compounds - j * per_job),
            campaign_seed: SEED,
            class: TaskClass::Dock,
            attempt: 0,
        })
        .collect();
    let dir = tmpdir("truth");
    let report = run_campaign(
        &SchedulerConfig::default(),
        &job_cfg(dir.clone()),
        specs,
        &VinaScorerFactory,
        &SyntheticPoseSource { poses_per_compound: POSES_PER_COMPOUND },
    );
    assert!(report.abandoned.is_empty(), "exhaustive docking must complete");
    let mut truth = vec![f64::INFINITY; num_compounds as usize];
    for out in &report.outputs {
        for rec in &out.records {
            let t = &mut truth[rec.compound.index as usize];
            *t = t.min(rec.score);
        }
    }
    std::fs::remove_dir_all(dir).ok();
    truth
}

fn campaign_cfg(
    num_compounds: u64,
    epochs: u64,
    dock_fraction: f64,
    smoke: bool,
) -> ActiveLearningConfig {
    let mut cfg = ActiveLearningConfig::tiny(Library::EnamineVirtual, num_compounds, SEED);
    cfg.target = TargetSite::Spike1;
    cfg.epochs = epochs;
    cfg.dock_fraction = dock_fraction;
    cfg.explore_fraction = 0.0;
    if smoke {
        // The smoke pool is tiny (tens of labels); the wider, longer-trained
        // two-layer config generalizes better there.
        cfg.surrogate.hidden = 64;
        cfg.surrogate.hidden2 = 16;
        cfg.train = TrainConfig { epochs: 200, ..TrainConfig::default() };
    } else {
        // At paper scale the labeled pool is larger and a single 32-wide
        // hidden layer with a shorter retrain ranks the top slice best
        // (training cost is negligible next to docking either way).
        cfg.surrogate.hidden = 32;
        cfg.surrogate.hidden2 = 0;
        cfg.train = TrainConfig { epochs: 48, ..TrainConfig::default() };
    }
    cfg
}

fn run_campaign_in(cfg: &ActiveLearningConfig, tag: &str) -> (ActiveCampaignReport, PathBuf) {
    let dir = tmpdir(tag);
    let report = run_active_campaign(
        cfg,
        &job_cfg(dir.clone()),
        &VinaScorerFactory,
        &SyntheticPoseSource { poses_per_compound: POSES_PER_COMPOUND },
        dir.join("campaign.dfcp"),
    )
    .expect("active campaign");
    (report, dir)
}

#[derive(Serialize)]
struct EpochRow {
    epoch: u64,
    generation: u64,
    docked: usize,
    pool_size: usize,
    final_loss: f64,
}

#[derive(Serialize)]
struct CostReport {
    compounds_measured: usize,
    filter_us_per_compound: f64,
    surrogate_us_per_compound: f64,
    /// Surrogate / filter per-compound cost — the measurement behind
    /// `TaskClass::Surrogate`'s `cost_weight` of 2 (vs filter's 1).
    ratio: f64,
}

#[derive(Serialize)]
struct SurrogateBench {
    host_cpus: usize,
    smoke: bool,
    num_compounds: u64,
    epochs: u64,
    budget_fraction: f64,
    actives: usize,
    /// Enrichment factor of the final ranking at the 1% cut (random = 1).
    ef_at_1pct: f64,
    /// Enrichment factor at the 10% cut (random = 1, ceiling = 10).
    ef_at_10pct: f64,
    /// Fraction of the true top-1% the campaign actually docked.
    hit_recall_at_1pct: f64,
    /// Expected recall of a random selection at the same docking budget.
    random_recall: f64,
    epoch_rows: Vec<EpochRow>,
    surrogate_dispatches: u64,
    surrogate_bundled_jobs: u64,
    /// Final ranking digests at 1/2/4 installed lanes — all equal.
    cross_lane_digests: Vec<String>,
    /// Digest of the crash-at-retrain/resume campaign — equals the others.
    crash_resume_digest: String,
    cost: CostReport,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!("== surrogate active-learning funnel ({host_cpus} host CPUs, smoke: {smoke}) ==");

    let (num_compounds, epochs) = if smoke { (400u64, 2u64) } else { (1_500, 5) };
    let budget_fraction = 0.10;
    let dock_fraction = budget_fraction / epochs as f64;

    // -------- ground truth: dock everything --------
    let t = Instant::now();
    let truth = exhaustive_truth(num_compounds);
    eprintln!(
        "  exhaustive truth: {} compounds docked in {:.1} ms",
        num_compounds,
        t.elapsed().as_secs_f64() * 1e3
    );
    let n_act = ((num_compounds as f64 * 0.01).ceil() as usize).max(4);
    let mut by_truth: Vec<u64> = (0..num_compounds).collect();
    by_truth.sort_by(|&a, &b| {
        truth[a as usize].partial_cmp(&truth[b as usize]).unwrap().then(a.cmp(&b))
    });
    let actives: BTreeSet<u64> = by_truth[..n_act].iter().copied().collect();

    // -------- active-learning campaign at the 10% budget --------
    let cfg = campaign_cfg(num_compounds, epochs, dock_fraction, smoke);
    let t = Instant::now();
    let (report, dir) = run_campaign_in(&cfg, "al");
    eprintln!(
        "  active learning: {} epochs, {} docked ({:.0}% budget) in {:.1} ms",
        epochs,
        report.docked.len(),
        100.0 * report.docked.len() as f64 / num_compounds as f64,
        t.elapsed().as_secs_f64() * 1e3
    );
    std::fs::remove_dir_all(dir).ok();

    // Enrichment of the final ranking: docking scores are lower=stronger,
    // ScreenItem wants higher=stronger, so negate.
    let ranked_items: Vec<ScreenItem> = report
        .ranking
        .iter()
        .map(|r| ScreenItem { score: -r.score, active: actives.contains(&r.index) })
        .collect();
    let ef_at_1pct = enrichment_factor(&ranked_items, 0.01);
    let ef_at_10pct = enrichment_factor(&ranked_items, 0.10);
    let docked: BTreeSet<u64> = report.docked.iter().copied().collect();
    let hit_recall_at_1pct = actives.intersection(&docked).count() as f64 / actives.len() as f64;
    let random_recall = report.docked.len() as f64 / num_compounds as f64;
    eprintln!(
        "  enrichment: EF@1% = {ef_at_1pct:.1}x, EF@10% = {ef_at_10pct:.1}x, \
         hit-recall@1% = {hit_recall_at_1pct:.2} (random would be {random_recall:.2})"
    );

    // -------- determinism: cross-lane digests + crash/resume --------
    let mut cross_lane_digests = Vec::new();
    for lanes in [1usize, 2, 4] {
        let (r, d) =
            dfpool::Pool::new(lanes).install(|| run_campaign_in(&cfg, &format!("lanes{lanes}")));
        cross_lane_digests.push(format!("{:016x}", r.ranking_digest));
        std::fs::remove_dir_all(d).ok();
    }
    eprintln!("  cross-lane digests: {cross_lane_digests:?}");

    let crash_dir = tmpdir("crash");
    let manifest = crash_dir.join("campaign.dfcp");
    let aborted = run_active_campaign_aborting(
        &cfg,
        &job_cfg(crash_dir.clone()),
        &VinaScorerFactory,
        &SyntheticPoseSource { poses_per_compound: POSES_PER_COMPOUND },
        &manifest,
        AbortPoint::BeforePublish { epoch: epochs - 1 },
    )
    .expect("aborting campaign");
    assert!(aborted.is_none(), "the injected kill must fire");
    let resumed = run_active_campaign(
        &cfg,
        &job_cfg(crash_dir.clone()),
        &VinaScorerFactory,
        &SyntheticPoseSource { poses_per_compound: POSES_PER_COMPOUND },
        &manifest,
    )
    .expect("resumed campaign");
    let crash_resume_digest = format!("{:016x}", resumed.ranking_digest);
    eprintln!(
        "  crash/resume: killed before epoch {} publish, resumed digest {crash_resume_digest}",
        epochs - 1
    );
    std::fs::remove_dir_all(crash_dir).ok();

    // -------- per-compound cost: surrogate tier vs rule filter --------
    let m = if smoke { 400usize } else { 2_000 };
    let filter = RuleFilter::lipinski();
    let t = Instant::now();
    for i in 0..m as u64 {
        let c = Compound::materialize_topology(cfg.library, i, SEED);
        black_box(filter.apply(&Descriptors::compute(&c.mol)));
    }
    let filter_us = t.elapsed().as_secs_f64() * 1e6 / m as f64;
    let (model, ps) = cfg.surrogate.build();
    let t = Instant::now();
    let rows: Vec<Vec<f32>> = (0..m as u64)
        .map(|i| featurize_compound(&cfg.surrogate.fingerprint, cfg.library, i, SEED).1)
        .collect();
    black_box(model.predict(&ps, &rows));
    let surrogate_us = t.elapsed().as_secs_f64() * 1e6 / m as f64;
    let cost = CostReport {
        compounds_measured: m,
        filter_us_per_compound: filter_us,
        surrogate_us_per_compound: surrogate_us,
        ratio: surrogate_us / filter_us,
    };
    eprintln!(
        "  cost: filter {:.1} us/compound, surrogate {:.1} us/compound ({:.1}x)",
        cost.filter_us_per_compound, cost.surrogate_us_per_compound, cost.ratio
    );

    let bench = SurrogateBench {
        host_cpus,
        smoke,
        num_compounds,
        epochs,
        budget_fraction,
        actives: actives.len(),
        ef_at_1pct,
        ef_at_10pct,
        hit_recall_at_1pct,
        random_recall,
        epoch_rows: report
            .epochs
            .iter()
            .map(|e| EpochRow {
                epoch: e.epoch,
                generation: e.generation,
                docked: e.docked,
                pool_size: e.pool_size,
                final_loss: e.train.last_epoch_loss,
            })
            .collect(),
        surrogate_dispatches: report.surrogate_dispatches,
        surrogate_bundled_jobs: report.surrogate_bundled_jobs,
        cross_lane_digests,
        crash_resume_digest,
        cost,
    };
    let json = serde_json::to_string_pretty(&bench).expect("serialize surrogate bench");
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_surrogate.json");
    std::fs::write(&out, &json).expect("write BENCH_surrogate.json");
    eprintln!("wrote {}", out.display());
    println!("{json}");

    // -------- contract --------
    let reference = format!("{:016x}", report.ranking_digest);
    for d in &bench.cross_lane_digests {
        assert_eq!(d, &reference, "cross-lane ranking digest diverged");
    }
    assert_eq!(bench.crash_resume_digest, reference, "crash/resume ranking digest diverged");
    assert!(
        bench.surrogate_bundled_jobs > 0,
        "surrogate jobs must ride in bundles under the recalibrated cost weight"
    );
    assert!(
        bench.ef_at_10pct > 1.0,
        "active learning must beat random at the 10% cut: EF = {:.2}",
        bench.ef_at_10pct
    );
    assert!(
        bench.hit_recall_at_1pct > bench.random_recall,
        "docked set must recover more actives than a random budget"
    );
    if !smoke {
        assert!(
            bench.ef_at_1pct >= 5.0,
            "full run must enrich ≥ 5x at the 1% cut, got {:.2}",
            bench.ef_at_1pct
        );
        assert!(
            bench.hit_recall_at_1pct >= 0.5,
            "full run must recover ≥ half the true top-1%, got {:.2}",
            bench.hit_recall_at_1pct
        );
    }
    if dftrace::enabled() {
        let trace = dftrace::snapshot();
        assert!(trace.counter("hts.active.epochs") > 0, "no active-loop telemetry");
        assert!(trace.counter("hts.active.docked") > 0, "no docking-budget telemetry");
        assert!(trace.counter("surrogate.registry.swaps") > 0, "no hot-swap telemetry");
        eprintln!(
            "smoke: {} epochs, {} docked, {} swaps traced",
            trace.counter("hts.active.epochs"),
            trace.counter("hts.active.docked"),
            trace.counter("surrogate.registry.swaps"),
        );
    }
    eprintln!("surrogate bench assertions passed");
}
