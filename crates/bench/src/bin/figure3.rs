//! Figure 3: the anatomy of one fusion evaluation job — poses divided per
//! node, ranks evaluating batches, allgather, parallel file writing. This
//! harness runs a real (scaled) job and narrates each structural element
//! with measured numbers.
//!
//! ```sh
//! cargo run --release -p dfbench --bin figure3
//! ```

use dfbench::{seed_from, Scale};
use dfchem::genmol::Library;
use dfchem::pocket::TargetSite;
use dfhts::h5lite::read_dir;
use dfhts::{
    run_job, FaultConfig, JobConfig, JobSpec, SyntheticPoseSource, TaskClass, VinaScorerFactory,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let seed = seed_from(&args);
    let (nodes, ranks_per_node, compounds, poses_per) = match scale {
        Scale::Tiny => (1, 2, 40u64, 3),
        Scale::Small => (2, 4, 400, 5),
        Scale::Full => (4, 4, 2000, 10),
    };

    println!("== Figure 3: structure of a fusion evaluation job ==\n");
    println!("paper shape: 4 nodes x 4 GPUs = 16 ranks over 2,000,000 poses;");
    println!(
        "this run:    {nodes} nodes x {ranks_per_node} ranks over {} poses\n",
        compounds * poses_per as u64
    );

    let out_dir = std::env::temp_dir().join(format!("df_fig3_{}", std::process::id()));
    std::fs::create_dir_all(&out_dir).ok();
    let cfg = JobConfig {
        nodes,
        ranks_per_node,
        batch_size: 56,
        output_dir: out_dir.clone(),
        faults: FaultConfig::default(),
    };
    let spec = JobSpec {
        job_id: 0,
        target: TargetSite::Protease1,
        library: Library::EnamineVirtual,
        first_compound: 0,
        num_compounds: compounds,
        campaign_seed: seed,
        class: TaskClass::Dock,
        attempt: 0,
    };

    println!(
        "[1] job receives {} compounds (round-robin split over {} ranks:",
        compounds,
        cfg.num_ranks()
    );
    for r in 0..cfg.num_ranks().min(4) {
        let assigned = (compounds as usize).div_ceil(cfg.num_ranks());
        println!(
            "      rank {r}: compounds {r}, {}, {}, ... (~{assigned} total)",
            r + cfg.num_ranks(),
            r + 2 * cfg.num_ranks()
        );
    }
    println!("      ...)");
    println!("[2] each rank loads poses into {}-pose batches and evaluates", cfg.batch_size);

    let out = run_job(
        &cfg,
        &spec,
        &VinaScorerFactory,
        &SyntheticPoseSource { poses_per_compound: poses_per },
    )
    .expect("job");

    println!("[3] allgather compiled {} predictions across ranks", out.records.len());
    println!("[4] parallel write: {} rank files", out.files.len());
    let on_disk = read_dir(&out_dir).unwrap();
    println!(
        "      records on disk: {} (match: {})",
        on_disk.len(),
        on_disk.len() == out.records.len()
    );
    println!("\nphase breakdown (cf. Table 7 rows):");
    println!("  startup  {:?}", out.timing.startup);
    println!(
        "  evaluate {:?}  ({:.0} poses/s)",
        out.timing.evaluate,
        out.timing.eval_poses_per_sec()
    );
    println!("  output   {:?}", out.timing.output);
    std::fs::remove_dir_all(&out_dir).ok();
}
