//! Naive-vs-GEMM dense-kernel benchmark, as JSON.
//!
//! Runs the blocked GEMM / im2col kernels against the naive reference
//! oracle (`dftensor::ops::reference`) on matmul 160/512 and conv3d
//! 12/24-cube fwd+bwd workloads, across pools of 1, 2, 4 and 8 threads,
//! and writes `BENCH_kernels.json` at the repo root. Besides wall-clock it
//! records `bit_exact`: the optimized result compared `to_bits()` against
//! the reference at every thread count — the determinism contract, not a
//! tolerance check.
//!
//! Two speedups are reported per kernel:
//!
//! * `speedup_vs_naive` — reference time / single-thread GEMM time: the
//!   algorithmic win from packing + blocking, independent of core count.
//! * `pooled_speedup` per thread count — single-thread GEMM time / pooled
//!   time. Small kernels (matmul 160) sit under the GEMM's serial cutoff
//!   and run the identical inline path at any pool size, so this ratio
//!   must hover at 1.0 — the old small-matmul pool regression is the bug
//!   this guards against. Honest numbers on the current host; `host_cpus`
//!   bounds what pooled runs can win.
//!
//! ```sh
//! cargo run --release -p dfbench --bin kernel_bench            # full
//! cargo run --release -p dfbench --bin kernel_bench -- --smoke # CI mode
//! ```
//!
//! The thread ladder is measured **interleaved**: every rep times all four
//! pool sizes back-to-back before the next rep, so slow clock drift or
//! host steal lands on every ladder rung equally instead of biasing
//! whichever thread count happened to run last. (Sequential ladders made
//! the 24-cube pooled ratio wander ±10% on a loaded host.)
//!
//! A `simd` section compares the forced-scalar micro-kernel against the
//! auto-detected edition (AVX/SSE2/NEON under `--features simd`) on the
//! large matmul, and checks every available edition against the same bits.
//!
//! `--smoke` uses fewer reps and asserts the contract: all kernels
//! bit-exact across editions and thread counts, no pooled regression on
//! any kernel at any thread count (floor 0.9 for timer noise — this now
//! covers the conv3d 24-cube that used to drift), conv3d 12-cube at least
//! 1.5× over naive (full runs on this class of host measure well above
//! 2×), the SIMD edition at least 2× over scalar on matmul 512 when one is
//! active, and — when `DFTRACE=1` — warm scratch-arena reuse.

use dfpool::Pool;
use dftensor::ops::microkernel;
use dftensor::ops::{conv3d_backward_input, conv3d_backward_weight, conv3d_forward, reference};
use dftensor::rng::rng;
use dftensor::Tensor;
use serde::Serialize;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[derive(Serialize)]
struct RunReport {
    threads: usize,
    ms: f64,
    /// Single-thread GEMM time / this time (1.0 = no pooled regression).
    pooled_speedup: f64,
}

#[derive(Serialize)]
struct KernelReport {
    name: String,
    /// Naive reference kernel, single thread (ms).
    naive_ms: f64,
    /// Blocked GEMM path, single thread (ms).
    gemm_serial_ms: f64,
    /// naive_ms / gemm_serial_ms — the algorithmic improvement.
    speedup_vs_naive: f64,
    /// Optimized output matched the reference `to_bits()` at every thread
    /// count.
    bit_exact: bool,
    runs: Vec<RunReport>,
}

/// Forced-scalar vs auto-detected micro-kernel edition on the large
/// matmul, plus a bitwise cross-check of every available edition.
#[derive(Serialize)]
struct SimdReport {
    /// Micro-kernel edition the build auto-selects ("scalar" when built
    /// without `--features simd`).
    active_path: String,
    /// Every available edition produced identical bits on matmul 512.
    paths_bit_exact: bool,
    /// Forced-scalar single-thread time (ms).
    scalar_ms: f64,
    /// Auto-detected-edition single-thread time (ms).
    active_ms: f64,
    /// scalar_ms / active_ms (1.0 when the active edition is scalar).
    speedup: f64,
}

#[derive(Serialize)]
struct Baseline {
    host_cpus: usize,
    thread_counts: Vec<usize>,
    simd: SimdReport,
    kernels: Vec<KernelReport>,
}

/// Best-of-`reps` wall-clock (ms) of `f` on `pool`. The minimum, not the
/// median: on shared hosts external CPU steal only ever adds time, so the
/// fastest rep is the least-contaminated estimate of the kernel's cost and
/// keeps the pooled-regression guard from tripping on scheduler noise.
fn measure(pool: &Pool, reps: usize, f: &dyn Fn()) -> f64 {
    pool.install(f); // warmup
    (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            pool.install(f);
            t.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// Benchmarks one kernel: reference once (serial), then the optimized
/// kernel across the thread ladder with the ladder interleaved per rep —
/// each rep times 1/2/4/8 threads back-to-back so drift cannot bias one
/// rung — and a bitwise comparison at each thread count.
fn bench_kernel(
    name: &str,
    naive_reps: usize,
    reps: usize,
    naive: &dyn Fn() -> Vec<u32>,
    opt: &dyn Fn() -> Vec<u32>,
) -> KernelReport {
    let pools: Vec<Pool> = THREAD_COUNTS.iter().map(|&t| Pool::new(t)).collect();
    let want = pools[0].install(naive);
    let naive_ms = measure(&pools[0], naive_reps, &|| {
        black_box(naive());
    });
    // Bitwise check doubles as the per-pool warmup.
    let bit_exact = pools.iter().all(|pool| pool.install(opt) == want);
    let mut best = [f64::INFINITY; THREAD_COUNTS.len()];
    for _ in 0..reps.max(1) {
        for (i, pool) in pools.iter().enumerate() {
            let t = Instant::now();
            pool.install(|| {
                black_box(opt());
            });
            best[i] = best[i].min(t.elapsed().as_secs_f64() * 1e3);
        }
    }
    let gemm_serial_ms = best[0];
    let mut runs = Vec::new();
    for (i, &threads) in THREAD_COUNTS.iter().enumerate() {
        let ms = best[i];
        let pooled_speedup = if ms > 0.0 { gemm_serial_ms / ms } else { 1.0 };
        eprintln!("  {name} @ {threads} threads: {ms:.2} ms (pooled speedup {pooled_speedup:.2})");
        runs.push(RunReport { threads, ms, pooled_speedup });
    }
    let speedup_vs_naive = if gemm_serial_ms > 0.0 { naive_ms / gemm_serial_ms } else { 1.0 };
    eprintln!("  {name}: naive {naive_ms:.2} ms, gemm {gemm_serial_ms:.2} ms ({speedup_vs_naive:.2}x), bit_exact {bit_exact}");
    KernelReport {
        name: name.to_string(),
        naive_ms,
        gemm_serial_ms,
        speedup_vs_naive,
        bit_exact,
        runs,
    }
}

/// Times the forced-scalar micro-kernel against the auto-detected edition
/// on a `[dim,dim]` matmul (single thread, reps interleaved) and bit-checks
/// every available edition against scalar.
fn simd_report(dim: usize, reps: usize) -> SimdReport {
    let mut r = rng(dim as u64 + 1);
    let a = Tensor::randn(&[dim, dim], &mut r);
    let b = Tensor::randn(&[dim, dim], &mut r);
    let serial = Pool::new(1);
    let active = microkernel::detected();
    let want = serial
        .install(|| microkernel::with_forced(microkernel::Path::Scalar, || bits(&a.matmul(&b))));
    let paths_bit_exact = microkernel::available_paths().into_iter().all(|path| {
        serial.install(|| microkernel::with_forced(path, || bits(&a.matmul(&b)))) == want
    });
    let (mut scalar_ms, mut active_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps.max(1) {
        for (forced, slot) in
            [(microkernel::Path::Scalar, &mut scalar_ms), (active, &mut active_ms)]
        {
            let t = Instant::now();
            serial.install(|| {
                microkernel::with_forced(forced, || {
                    black_box(a.matmul(&b));
                })
            });
            *slot = slot.min(t.elapsed().as_secs_f64() * 1e3);
        }
    }
    let speedup = if active_ms > 0.0 { scalar_ms / active_ms } else { 1.0 };
    eprintln!(
        "  simd matmul_{dim}: scalar {scalar_ms:.2} ms, {} {active_ms:.2} ms ({speedup:.2}x), editions bit_exact {paths_bit_exact}",
        active.label()
    );
    SimdReport {
        active_path: active.label().to_string(),
        paths_bit_exact,
        scalar_ms,
        active_ms,
        speedup,
    }
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// A matmul workload over `[dim,dim]` squares.
fn matmul_kernel(name: &str, dim: usize, naive_reps: usize, reps: usize) -> KernelReport {
    let mut r = rng(dim as u64);
    let a = Tensor::randn(&[dim, dim], &mut r);
    let b = Tensor::randn(&[dim, dim], &mut r);
    bench_kernel(name, naive_reps, reps, &|| bits(&reference::matmul(&a, &b)), &|| {
        bits(&a.matmul(&b))
    })
}

/// A conv3d fwd + bwd-input + bwd-weight workload on a cubic grid.
fn conv_kernel(
    name: &str,
    xshape: [usize; 5],
    wshape: [usize; 5],
    pad: usize,
    naive_reps: usize,
    reps: usize,
) -> KernelReport {
    let mut r = rng(xshape[4] as u64);
    let x = Tensor::randn(&xshape, &mut r);
    let w = Tensor::randn(&wshape, &mut r);
    let gout = {
        let y = reference::conv3d_forward(&x, &w, pad);
        Tensor::randn(y.shape(), &mut r)
    };
    let all = |fwd: &Tensor, gx: &Tensor, gw: &Tensor| {
        let mut out = bits(fwd);
        out.extend(bits(gx));
        out.extend(bits(gw));
        out
    };
    bench_kernel(
        name,
        naive_reps,
        reps,
        &|| {
            all(
                &reference::conv3d_forward(&x, &w, pad),
                &reference::conv3d_backward_input(&gout, &w, x.shape(), pad),
                &reference::conv3d_backward_weight(&gout, &x, w.shape(), pad),
            )
        },
        &|| {
            all(
                &conv3d_forward(&x, &w, pad),
                &conv3d_backward_input(&gout, &w, x.shape(), pad),
                &conv3d_backward_weight(&gout, &x, w.shape(), pad),
            )
        },
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!("== dense-kernel baseline ({host_cpus} host CPUs, smoke: {smoke}) ==");

    // (naive_reps, reps): smoke trades precision for CI time; matmul 160 is
    // the regression guard, so it keeps the most reps either way.
    let (mm_small, mm_large, cv) = if smoke { (7, 3, 3) } else { (15, 7, 15) };

    let kernels = vec![
        matmul_kernel("tensor_matmul_160", 160, mm_small, mm_small),
        matmul_kernel("tensor_matmul_512", 512, if smoke { 1 } else { 3 }, mm_large),
        conv_kernel("tensor_conv3d_12cube_fwd_bwd", [2, 8, 12, 12, 12], [8, 8, 3, 3, 3], 1, cv, cv),
        conv_kernel(
            "tensor_conv3d_24cube_fwd_bwd",
            [1, 8, 24, 24, 24],
            [8, 8, 3, 3, 3],
            1,
            if smoke { 1 } else { 3 },
            cv,
        ),
    ];

    let simd = simd_report(512, if smoke { 3 } else { 5 });
    let baseline = Baseline { host_cpus, thread_counts: THREAD_COUNTS.to_vec(), simd, kernels };
    let json = serde_json::to_string_pretty(&baseline).expect("serialize baseline");
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json");
    std::fs::write(&out, &json).expect("write BENCH_kernels.json");
    eprintln!("wrote {}", out.display());
    println!("{json}");

    if smoke {
        for k in &baseline.kernels {
            assert!(k.bit_exact, "{}: optimized kernel diverged from the reference bits", k.name);
            // Every kernel, every thread count: pooled must never lose to
            // serial beyond timer noise. Small kernels run the identical
            // inline path, large ones partition into macro-tiles; neither
            // has any business being slower than one thread.
            for run in &k.runs {
                assert!(
                    run.pooled_speedup >= 0.9,
                    "{} regressed under the pool: {:.2}x at {} threads",
                    k.name,
                    run.pooled_speedup,
                    run.threads
                );
            }
        }
        assert!(baseline.simd.paths_bit_exact, "micro-kernel editions disagree on matmul 512 bits");
        if baseline.simd.active_path != "scalar" {
            assert!(
                baseline.simd.speedup >= 2.0,
                "{} edition only {:.2}x over scalar on matmul 512",
                baseline.simd.active_path,
                baseline.simd.speedup
            );
        }
        let cv12 =
            baseline.kernels.iter().find(|k| k.name == "tensor_conv3d_12cube_fwd_bwd").unwrap();
        assert!(
            cv12.speedup_vs_naive >= 1.5,
            "conv3d 12-cube GEMM lowering lost its edge over naive: {:.2}x",
            cv12.speedup_vs_naive
        );
        if dftrace::enabled() {
            let trace = dftrace::snapshot();
            assert!(
                trace.counter("tensor.scratch.hits") > 0,
                "scratch arena never reused a buffer across kernel calls"
            );
            assert!(trace.counter("tensor.gemm.calls") > 0, "no GEMM calls traced");
            eprintln!(
                "smoke: scratch {} hits / {} misses, {} gemm calls",
                trace.counter("tensor.scratch.hits"),
                trace.counter("tensor.scratch.misses"),
                trace.counter("tensor.gemm.calls"),
            );
        }
        eprintln!("smoke assertions passed");
    }
}
