//! Naive-vs-GEMM dense-kernel benchmark, as JSON.
//!
//! Runs the blocked GEMM / im2col kernels against the naive reference
//! oracle (`dftensor::ops::reference`) on matmul 160/512 and conv3d
//! 12/24-cube fwd+bwd workloads, across pools of 1, 2, 4 and 8 threads,
//! and writes `BENCH_kernels.json` at the repo root. Besides wall-clock it
//! records `bit_exact`: the optimized result compared `to_bits()` against
//! the reference at every thread count — the determinism contract, not a
//! tolerance check.
//!
//! Two speedups are reported per kernel:
//!
//! * `speedup_vs_naive` — reference time / single-thread GEMM time: the
//!   algorithmic win from packing + blocking, independent of core count.
//! * `pooled_speedup` per thread count — single-thread GEMM time / pooled
//!   time. Small kernels (matmul 160) sit under the GEMM's serial cutoff
//!   and run the identical inline path at any pool size, so this ratio
//!   must hover at 1.0 — the old small-matmul pool regression is the bug
//!   this guards against. Honest numbers on the current host; `host_cpus`
//!   bounds what pooled runs can win.
//!
//! ```sh
//! cargo run --release -p dfbench --bin kernel_bench            # full
//! cargo run --release -p dfbench --bin kernel_bench -- --smoke # CI mode
//! ```
//!
//! `--smoke` uses fewer reps and asserts the contract: all kernels
//! bit-exact, no pooled regression on matmul 160 (floor 0.9 for timer
//! noise), conv3d 12-cube at least 1.5× over naive (full runs on this
//! class of host measure well above 2×), and — when `DFTRACE=1` — warm
//! scratch-arena reuse.

use dfpool::Pool;
use dftensor::ops::{conv3d_backward_input, conv3d_backward_weight, conv3d_forward, reference};
use dftensor::rng::rng;
use dftensor::Tensor;
use serde::Serialize;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[derive(Serialize)]
struct RunReport {
    threads: usize,
    ms: f64,
    /// Single-thread GEMM time / this time (1.0 = no pooled regression).
    pooled_speedup: f64,
}

#[derive(Serialize)]
struct KernelReport {
    name: String,
    /// Naive reference kernel, single thread (ms).
    naive_ms: f64,
    /// Blocked GEMM path, single thread (ms).
    gemm_serial_ms: f64,
    /// naive_ms / gemm_serial_ms — the algorithmic improvement.
    speedup_vs_naive: f64,
    /// Optimized output matched the reference `to_bits()` at every thread
    /// count.
    bit_exact: bool,
    runs: Vec<RunReport>,
}

#[derive(Serialize)]
struct Baseline {
    host_cpus: usize,
    thread_counts: Vec<usize>,
    kernels: Vec<KernelReport>,
}

/// Best-of-`reps` wall-clock (ms) of `f` on `pool`. The minimum, not the
/// median: on shared hosts external CPU steal only ever adds time, so the
/// fastest rep is the least-contaminated estimate of the kernel's cost and
/// keeps the pooled-regression guard from tripping on scheduler noise.
fn measure(pool: &Pool, reps: usize, f: &dyn Fn()) -> f64 {
    pool.install(f); // warmup
    (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            pool.install(f);
            t.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// Benchmarks one kernel: reference once (serial), optimized across the
/// thread ladder, with a bitwise comparison at each thread count.
fn bench_kernel(
    name: &str,
    naive_reps: usize,
    reps: usize,
    naive: &dyn Fn() -> Vec<u32>,
    opt: &dyn Fn() -> Vec<u32>,
) -> KernelReport {
    let serial = Pool::new(1);
    let want = serial.install(naive);
    let naive_ms = measure(&serial, naive_reps, &|| {
        black_box(naive());
    });
    let mut runs = Vec::new();
    let mut gemm_serial_ms = 0.0;
    let mut bit_exact = true;
    for threads in THREAD_COUNTS {
        let pool = Pool::new(threads);
        if pool.install(opt) != want {
            bit_exact = false;
        }
        let ms = measure(&pool, reps, &|| {
            black_box(opt());
        });
        if threads == 1 {
            gemm_serial_ms = ms;
        }
        let pooled_speedup = if ms > 0.0 { gemm_serial_ms / ms } else { 1.0 };
        eprintln!("  {name} @ {threads} threads: {ms:.2} ms (pooled speedup {pooled_speedup:.2})");
        runs.push(RunReport { threads, ms, pooled_speedup });
    }
    let speedup_vs_naive = if gemm_serial_ms > 0.0 { naive_ms / gemm_serial_ms } else { 1.0 };
    eprintln!("  {name}: naive {naive_ms:.2} ms, gemm {gemm_serial_ms:.2} ms ({speedup_vs_naive:.2}x), bit_exact {bit_exact}");
    KernelReport {
        name: name.to_string(),
        naive_ms,
        gemm_serial_ms,
        speedup_vs_naive,
        bit_exact,
        runs,
    }
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// A matmul workload over `[dim,dim]` squares.
fn matmul_kernel(name: &str, dim: usize, naive_reps: usize, reps: usize) -> KernelReport {
    let mut r = rng(dim as u64);
    let a = Tensor::randn(&[dim, dim], &mut r);
    let b = Tensor::randn(&[dim, dim], &mut r);
    bench_kernel(name, naive_reps, reps, &|| bits(&reference::matmul(&a, &b)), &|| {
        bits(&a.matmul(&b))
    })
}

/// A conv3d fwd + bwd-input + bwd-weight workload on a cubic grid.
fn conv_kernel(
    name: &str,
    xshape: [usize; 5],
    wshape: [usize; 5],
    pad: usize,
    naive_reps: usize,
    reps: usize,
) -> KernelReport {
    let mut r = rng(xshape[4] as u64);
    let x = Tensor::randn(&xshape, &mut r);
    let w = Tensor::randn(&wshape, &mut r);
    let gout = {
        let y = reference::conv3d_forward(&x, &w, pad);
        Tensor::randn(y.shape(), &mut r)
    };
    let all = |fwd: &Tensor, gx: &Tensor, gw: &Tensor| {
        let mut out = bits(fwd);
        out.extend(bits(gx));
        out.extend(bits(gw));
        out
    };
    bench_kernel(
        name,
        naive_reps,
        reps,
        &|| {
            all(
                &reference::conv3d_forward(&x, &w, pad),
                &reference::conv3d_backward_input(&gout, &w, x.shape(), pad),
                &reference::conv3d_backward_weight(&gout, &x, w.shape(), pad),
            )
        },
        &|| {
            all(
                &conv3d_forward(&x, &w, pad),
                &conv3d_backward_input(&gout, &w, x.shape(), pad),
                &conv3d_backward_weight(&gout, &x, w.shape(), pad),
            )
        },
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!("== dense-kernel baseline ({host_cpus} host CPUs, smoke: {smoke}) ==");

    // (naive_reps, reps): smoke trades precision for CI time; matmul 160 is
    // the regression guard, so it keeps the most reps either way.
    let (mm_small, mm_large, cv) = if smoke { (7, 3, 3) } else { (15, 5, 5) };

    let kernels = vec![
        matmul_kernel("tensor_matmul_160", 160, mm_small, mm_small),
        matmul_kernel("tensor_matmul_512", 512, if smoke { 1 } else { 3 }, mm_large),
        conv_kernel("tensor_conv3d_12cube_fwd_bwd", [2, 8, 12, 12, 12], [8, 8, 3, 3, 3], 1, cv, cv),
        conv_kernel(
            "tensor_conv3d_24cube_fwd_bwd",
            [1, 8, 24, 24, 24],
            [8, 8, 3, 3, 3],
            1,
            if smoke { 1 } else { 3 },
            cv,
        ),
    ];

    let baseline = Baseline { host_cpus, thread_counts: THREAD_COUNTS.to_vec(), kernels };
    let json = serde_json::to_string_pretty(&baseline).expect("serialize baseline");
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json");
    std::fs::write(&out, &json).expect("write BENCH_kernels.json");
    eprintln!("wrote {}", out.display());
    println!("{json}");

    if smoke {
        for k in &baseline.kernels {
            assert!(k.bit_exact, "{}: optimized kernel diverged from the reference bits", k.name);
        }
        let mm = baseline.kernels.iter().find(|k| k.name == "tensor_matmul_160").unwrap();
        for run in &mm.runs {
            assert!(
                run.pooled_speedup >= 0.9,
                "tensor_matmul_160 regressed under the pool: {:.2}x at {} threads",
                run.pooled_speedup,
                run.threads
            );
        }
        let cv12 =
            baseline.kernels.iter().find(|k| k.name == "tensor_conv3d_12cube_fwd_bwd").unwrap();
        assert!(
            cv12.speedup_vs_naive >= 1.5,
            "conv3d 12-cube GEMM lowering lost its edge over naive: {:.2}x",
            cv12.speedup_vs_naive
        );
        if dftrace::enabled() {
            let trace = dftrace::snapshot();
            assert!(
                trace.counter("tensor.scratch.hits") > 0,
                "scratch arena never reused a buffer across kernel calls"
            );
            assert!(trace.counter("tensor.gemm.calls") > 0, "no GEMM calls traced");
            eprintln!(
                "smoke: scratch {} hits / {} misses, {} gemm calls",
                trace.counter("tensor.scratch.hits"),
                trace.counter("tensor.scratch.misses"),
                trace.counter("tensor.gemm.calls"),
            );
        }
        eprintln!("smoke assertions passed");
    }
}
