//! §6 future work: target-specific fine-tuning of the baseline Coherent
//! Fusion model. Fine-tunes a copy of the trained model for each of the
//! four SARS-CoV-2 sites and reports how target-local prediction quality
//! changes relative to the shared baseline.
//!
//! ```sh
//! cargo run --release -p dfbench --bin finetune -- --scale small
//! ```

use dfbench::{seed_from, trained_models, write_artifact, Scale};
use dfchem::pocket::{BindingPocket, TargetSite};
use dfdock::search::DockConfig;
use dffusion::finetune::{fine_tune_for_target, FineTuneConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let seed = seed_from(&args);
    println!("== Target-specific fine-tuning (scale {}, seed {seed}) ==\n", scale.name());

    let (_, models) = trained_models(scale, seed);
    let num_probes = match scale {
        Scale::Tiny => 20,
        Scale::Small => 50,
        Scale::Full => 120,
    };

    println!("{:<11} {:>14} {:>14} {:>10}", "Target", "val MSE before", "val MSE after", "change");
    let mut csv = String::from("target,val_mse_before,val_mse_after\n");
    for target in TargetSite::ALL {
        // Each target fine-tunes its own copy of the baseline.
        let mut model = models.coherent.clone();
        let mut params = models.coherent_params.clone();
        let pocket = BindingPocket::generate(target, seed);
        let report = fine_tune_for_target(
            &mut model,
            &mut params,
            &pocket,
            &models.config.loader,
            &FineTuneConfig {
                num_probes,
                epochs: 4,
                learning_rate: models.config.coherent.learning_rate * 0.3,
                dock: DockConfig { mc_restarts: 3, mc_steps: 40, ..Default::default() },
                seed,
                ..Default::default()
            },
        );
        let change = 100.0 * (report.val_mse_after / report.val_mse_before - 1.0);
        println!(
            "{:<11} {:>14.3} {:>14.3} {:>9.1}%",
            target.name(),
            report.val_mse_before,
            report.val_mse_after,
            change
        );
        csv.push_str(&format!(
            "{},{:.4},{:.4}\n",
            target.name(),
            report.val_mse_before,
            report.val_mse_after
        ));
    }
    println!(
        "\n(paper §6: \"introducing target specificity ... will increase the value of\n relative differences in the model's binding affinity predictions\")"
    );
    write_artifact(&format!("finetune_{}_{}.csv", scale.name(), seed), &csv);
}
