//! End-to-end traced run: exercises every instrumented stage — tensor
//! matmul/conv3d, pool scheduling, batch featurization, MC docking, the
//! train loop and a multi-job HTS campaign — and writes the merged
//! telemetry to `RUN_TRACE.json` at the repo root (schema in
//! `docs/OBSERVABILITY.md`), plus the human-readable report to stdout.
//!
//! ```sh
//! DFTRACE=1 cargo run --release -p dfbench --bin trace_report
//! ```
//!
//! Tracing is forced on if `DFTRACE` is unset, so the bin works either
//! way; production code paths stay dark unless `DFTRACE=1` is exported.

use dfchem::featurize::{build_graph_batch, voxelize_batch, GraphConfig, VoxelConfig};
use dfchem::genmol::{generate_molecule, Library, MolGenConfig};
use dfchem::mol::Molecule;
use dfchem::pocket::{BindingPocket, TargetSite};
use dfdata::loader::{DataLoader, LoaderConfig};
use dfdata::pdbbind::{PdbBind, PdbBindConfig};
use dfdock::search::{dock, DockConfig};
use dffusion::{train, Cnn3d, Cnn3dConfig, TrainConfig};
use dfhts::fault::FaultConfig;
use dfhts::job::{JobConfig, JobSpec, SyntheticPoseSource, TaskClass};
use dfhts::prefilter::{run_prefilter, PrefilterConfig};
use dfhts::scheduler::{resume_campaign, run_campaign, SchedulerConfig};
use dfhts::scorer::VinaScorerFactory;
use dfhts::throughput::LassenModel;
use dftensor::params::ParamStore;
use std::path::PathBuf;
use std::sync::Arc;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() {
    if std::env::var("DFTRACE").is_err() {
        println!("DFTRACE not set; forcing tracing on for this run.");
        dftrace::set_enabled(true);
    }
    assert!(dftrace::enabled(), "tracing must be on for trace_report (set DFTRACE=1)");
    dftrace::reset();
    // Run the workload on a real multi-lane pool even on small hosts, so the
    // pool scheduling telemetry (queue wait, steals, lane utilization) is
    // exercised rather than the inline single-lane fast path.
    dfpool::Pool::new(4).install(run);
}

fn run() {
    let seed = 42;

    // --- chem + hts: the ligand-only prefilter ring of the funnel ---
    println!("Prefiltering a compound library (filter -> fingerprint -> score)...");
    let pre = PrefilterConfig::new(Library::Chembl, 8_000, seed, 128);
    let picked = run_prefilter(&pre);
    println!(
        "  {} evaluated -> {} passed filter -> {} selected",
        picked.funnel.evaluated,
        picked.funnel.passed_filter,
        picked.shortlist.len()
    );

    // --- chem + tensor + pool: batch featurization ---
    println!("Featurizing a compound batch...");
    let ligands: Vec<Molecule> = (0..16)
        .map(|i| {
            generate_molecule(
                &MolGenConfig { min_heavy: 8, max_heavy: 16, ..Default::default() },
                "trace",
                i,
            )
        })
        .collect();
    let refs: Vec<&Molecule> = ligands.iter().collect();
    let pocket = BindingPocket::generate(TargetSite::Protease1, seed);
    let voxel = VoxelConfig { grid_dim: 8, resolution: 2.0 };
    let _grids = voxelize_batch(&voxel, &refs, &pocket);
    let _graphs = build_graph_batch(&GraphConfig::default(), &refs, &pocket);

    // --- dock: MC pose search ---
    println!("Docking...");
    let dcfg = DockConfig { mc_restarts: 8, mc_steps: 120, ..DockConfig::default() };
    let _poses = dock(&dcfg, &ligands[0], &pocket, seed);

    // --- core + tensor: train loop (conv3d fwd/bwd, matmul, optimizer) ---
    println!("Training a small 3D-CNN...");
    let ds = Arc::new(PdbBind::generate(&PdbBindConfig::tiny(), 13));
    let n = ds.entries.len();
    let lcfg = LoaderConfig {
        batch_size: 6,
        num_workers: 2,
        voxel,
        graph: GraphConfig::default(),
        ..Default::default()
    };
    let train_l = DataLoader::new(Arc::clone(&ds), (0..n * 3 / 4).collect(), lcfg.clone());
    let val_l = DataLoader::new(
        Arc::clone(&ds),
        (n * 3 / 4..n).collect(),
        LoaderConfig { shuffle: false, ..lcfg },
    );
    let mut ps = ParamStore::new();
    let ccfg = Cnn3dConfig {
        conv_filters_1: 4,
        conv_filters_2: 6,
        num_dense_nodes: 12,
        flip_augment: false,
        ..Cnn3dConfig::table3()
    };
    let mut model = Cnn3d::new(&ccfg, &voxel, &mut ps, "cnn", 3);
    let hist = train(
        &mut model,
        &mut ps,
        &train_l,
        &val_l,
        &TrainConfig { epochs: 2, learning_rate: 1e-3, ..Default::default() },
    );
    println!("  best val MSE {:.3}", hist.best_val_mse);

    // --- hts: a small campaign (jobs, ranks, allgather, output) ---
    println!("Running a 4-job HTS campaign...");
    let dir = std::env::temp_dir().join(format!("dftrace_report_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create campaign output dir");
    let jcfg = JobConfig {
        nodes: 2,
        ranks_per_node: 2,
        batch_size: 8,
        output_dir: dir.clone(),
        faults: FaultConfig::default(),
    };
    let specs: Vec<JobSpec> = (0..4)
        .map(|j| JobSpec {
            job_id: j,
            target: TargetSite::Spike1,
            library: Library::EnamineVirtual,
            first_compound: j * 8,
            num_compounds: 8,
            campaign_seed: seed,
            class: TaskClass::Dock,
            attempt: 0,
        })
        .collect();
    let report = run_campaign(
        &SchedulerConfig { max_parallel_jobs: 2, max_attempts: 3, ..Default::default() },
        &jcfg,
        specs,
        &VinaScorerFactory,
        &SyntheticPoseSource { poses_per_compound: 4 },
    );
    std::fs::remove_dir_all(&dir).ok();
    println!("  {} poses across {} jobs", report.total_poses(), report.outputs.len());

    // --- hts: checkpointed campaign + resume (manifest, backoff, retries) ---
    println!("Running a checkpointed campaign and resuming it...");
    let ckpt_dir = std::env::temp_dir().join(format!("dftrace_ckpt_{}", std::process::id()));
    std::fs::create_dir_all(&ckpt_dir).expect("create checkpoint campaign dir");
    let ckpt_cfg = JobConfig {
        output_dir: ckpt_dir.clone(),
        // Mild faults so the retry/backoff and write-retry paths light up.
        faults: FaultConfig {
            p_node_failure: 0.3,
            p_broken_pipe: 0.3,
            seed: 11,
            ..Default::default()
        },
        ..jcfg
    };
    let ckpt_specs = || -> Vec<JobSpec> {
        (0..4)
            .map(|j| JobSpec {
                job_id: j,
                target: TargetSite::Spike2,
                library: Library::EnamineVirtual,
                first_compound: j * 8,
                num_compounds: 8,
                campaign_seed: seed,
                class: TaskClass::Dock,
                attempt: 0,
            })
            .collect()
    };
    let manifest = ckpt_dir.join("campaign.dfcp");
    let sched = SchedulerConfig { max_parallel_jobs: 2, max_attempts: 5, ..Default::default() };
    let first = resume_campaign(
        &sched,
        &ckpt_cfg,
        ckpt_specs(),
        &VinaScorerFactory,
        &SyntheticPoseSource { poses_per_compound: 4 },
        &manifest,
    )
    .expect("checkpointed campaign");
    // Second invocation restores every job from the journal; this drives
    // the hts.jobs_resumed gauge and hts.resume_skipped counter.
    let second = resume_campaign(
        &sched,
        &ckpt_cfg,
        ckpt_specs(),
        &VinaScorerFactory,
        &SyntheticPoseSource { poses_per_compound: 4 },
        &manifest,
    )
    .expect("resumed campaign");
    assert_eq!(second.jobs_resumed, first.outputs.len() + first.abandoned.len());
    std::fs::remove_dir_all(&ckpt_dir).ok();
    println!(
        "  {} jobs journaled, {} restored on resume, {} failed attempts retried",
        first.outputs.len() + first.abandoned.len(),
        second.jobs_resumed,
        first.failed_attempts,
    );

    // --- export ---
    let trace = dftrace::snapshot();
    let out = repo_root().join("RUN_TRACE.json");
    std::fs::write(&out, trace.to_json()).expect("write RUN_TRACE.json");
    println!("\n{}", trace.render());

    // Dense-kernel time split: where a GEMM-lowered call spends its time.
    // Each stage is summed across every parent path (train fwd/bwd,
    // featurization, serving) via the leaf-segment helper.
    println!("kernel time split (all GEMM-lowered calls):");
    let stages = [
        ("pack A panels", "tensor.gemm.pack_a"),
        ("pack B panels", "tensor.gemm.pack_b"),
        ("gemm compute", "tensor.gemm.compute"),
        ("micro-kernel", "tensor.gemm.kernel"),
        ("im2col", "tensor.conv3d.im2col"),
        ("col2im", "tensor.conv3d.col2im"),
        ("unpack/transpose", "tensor.conv3d.unpack"),
    ];
    for (label, leaf) in stages {
        let (count, total_us) = trace.sum_spans_with_leaf(leaf);
        println!("  {label:<18} {leaf:<26} n={count:<6} total {total_us}us");
    }
    println!(
        "  scratch arena: {} hits / {} misses, {} bytes grown; {} gemm calls, {} MACs",
        trace.counter("tensor.scratch.hits"),
        trace.counter("tensor.scratch.misses"),
        trace.counter("tensor.scratch.grow_bytes"),
        trace.counter("tensor.gemm.calls"),
        trace.counter("tensor.gemm.macs"),
    );
    assert!(trace.counter("tensor.gemm.calls") > 0, "no GEMM telemetry recorded");
    println!();

    // Screening-funnel split: how the ligand-only front-end narrowed the
    // stream before any docking work (stages in docs/CHEMISTRY.md).
    println!("screening funnel (ligand-only front-end):");
    let funnel_rows = [
        ("evaluated", "chem.filter.evaluated"),
        ("passed filter", "chem.filter.passed"),
        ("rejected", "chem.filter.rejected"),
        ("fingerprinted", "chem.fp.computed"),
        ("scored hits", "chem.screen.hits"),
        ("prefilter selected", "hts.prefilter.selected"),
    ];
    for (label, counter) in funnel_rows {
        println!("  {label:<20} {counter:<26} {}", trace.counter(counter));
    }
    for h in ["chem.filter.chunk_us", "chem.fp.chunk_us"] {
        if let Some(hist) = trace.histograms.iter().find(|x| x.name == h) {
            println!(
                "  {h}: n={} p50={}us p99={}us",
                hist.count,
                hist.percentile(0.50),
                hist.percentile(0.99)
            );
        }
    }
    assert!(
        trace.counter("chem.filter.evaluated") >= trace.counter("chem.fp.computed"),
        "the funnel can only narrow"
    );
    println!();

    // Derived rates, through the same dftrace::rate implementation the
    // Table 7 model uses.
    let poses = trace.counter("hts.poses") as f64;
    let campaign_secs = trace.span("hts.campaign").map(|s| s.total_us as f64 / 1e6).unwrap_or(0.0);
    let ppc = LassenModel::default().poses_per_compound as f64;
    println!("derived:");
    println!("  poses/s      {:.1}", dftrace::rate::per_sec(poses, campaign_secs));
    println!("  compounds/s  {:.1}", dftrace::rate::compounds_per_sec(poses, ppc, campaign_secs));
    println!("\nwrote {}", out.display());

    for stage in ["tensor.", "pool.", "dock.", "train.", "hts.", "chem."] {
        let seen = trace.spans.iter().any(|s| s.path.contains(stage))
            || trace.counters.iter().any(|c| c.name.starts_with(stage))
            || trace.histograms.iter().any(|h| h.name.starts_with(stage));
        assert!(seen, "no telemetry recorded for stage {stage}");
    }
}
