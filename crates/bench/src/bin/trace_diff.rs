//! Diffs two `RUN_TRACE.json` files produced by `trace_report` (or any
//! `dftrace::write_run_trace` call): span total-time ratios, counter
//! deltas and histogram count/mean shifts, one line per metric.
//!
//! ```sh
//! cargo run --release -p dfbench --bin trace_diff -- before.json after.json
//! ```

use dftrace::Report;

fn load(path: &str) -> Report {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    Report::from_json(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [before, after] = args.as_slice() else {
        eprintln!("usage: trace_diff <before.json> <after.json>");
        std::process::exit(2);
    };
    let b = load(before);
    let a = load(after);
    if b.version != a.version {
        eprintln!("warning: schema versions differ ({} vs {})", b.version, a.version);
    }
    print!("{}", b.diff(&a));
}
