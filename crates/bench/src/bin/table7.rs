//! Table 7: throughput of fusion evaluation jobs — single job vs peak.
//!
//! Three layers:
//! 1. **measured** — a real multi-rank job with the trained fusion model
//!    on this CPU, with phase timings (startup / evaluate / output);
//! 2. **measured scaling** — the fault-tolerant scheduler over 1..N
//!    parallel jobs, demonstrating the near-linear job-level scaling the
//!    paper exploits;
//! 3. **modeled** — the paper's Lassen constants rendered as Table 7, plus
//!    the V100-equivalence factor that links our measured rank rate to the
//!    modeled GPU rank.
//!
//! ```sh
//! cargo run --release -p dfbench --bin table7
//! ```

use dfbench::{fusion_scorer, seed_from, trained_models, write_artifact, Scale};
use dfchem::genmol::Library;
use dfchem::pocket::TargetSite;
use dfhts::{
    run_campaign, run_job, FaultConfig, JobConfig, JobSpec, LassenModel, SchedulerConfig,
    SyntheticPoseSource, TaskClass,
};

fn specs(jobs: u64, compounds: u64, seed: u64) -> Vec<JobSpec> {
    (0..jobs)
        .map(|j| JobSpec {
            job_id: j,
            target: TargetSite::ALL[(j % 4) as usize],
            library: Library::EnamineVirtual,
            first_compound: j * compounds,
            num_compounds: compounds,
            campaign_seed: seed,
            class: TaskClass::Dock,
            attempt: 0,
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::parse(&args);
    let seed = seed_from(&args);
    let (compounds_per_job, poses_per_compound) = match scale {
        Scale::Tiny => (20, 3),
        Scale::Small => (60, 5),
        Scale::Full => (150, 10),
    };

    println!("== Table 7: evaluation-job throughput (scale {}, seed {seed}) ==\n", scale.name());
    let (_, models) = trained_models(scale, seed);
    let fusion = fusion_scorer(&models);

    let out_dir = std::env::temp_dir().join(format!("df_table7_{}", std::process::id()));
    std::fs::create_dir_all(&out_dir).ok();
    let job_cfg = JobConfig {
        nodes: 2,
        ranks_per_node: 2,
        batch_size: 56,
        output_dir: out_dir.clone(),
        faults: FaultConfig::default(),
    };

    // --- 1. Single measured job. ---
    println!(
        "## Measured single job ({} ranks, {} compounds x {} poses)",
        job_cfg.num_ranks(),
        compounds_per_job,
        poses_per_compound
    );
    let out = run_job(
        &job_cfg,
        &specs(1, compounds_per_job, seed)[0],
        &fusion,
        &SyntheticPoseSource { poses_per_compound },
    )
    .expect("single job");
    let t = out.timing;
    println!("  startup   {:>10.3?}", t.startup);
    println!("  evaluate  {:>10.3?}", t.evaluate);
    println!("  output    {:>10.3?}", t.output);
    println!("  poses     {:>10}", t.poses_evaluated);
    println!("  poses/s   {:>10.1} (eval-only {:.1})", t.poses_per_sec(), t.eval_poses_per_sec());
    let measured_rank_rate = t.eval_poses_per_sec() / job_cfg.num_ranks() as f64;
    println!("  per-rank  {measured_rank_rate:>10.1} poses/s\n");

    // --- 2. Job-level scaling with the fault-tolerant scheduler. ---
    println!("## Measured job-level scaling (faults on)");
    println!("{:>14} {:>12} {:>10}", "parallel jobs", "poses/s", "speedup");
    let mut csv = String::from("parallel_jobs,poses_per_sec,speedup\n");
    let mut base = 0.0f64;
    for parallel in [1usize, 2, 4] {
        std::fs::remove_dir_all(&out_dir).ok();
        std::fs::create_dir_all(&out_dir).ok();
        let noisy = JobConfig { faults: FaultConfig::noisy(seed), ..job_cfg.clone() };
        let report = run_campaign(
            &SchedulerConfig { max_parallel_jobs: parallel, max_attempts: 6, ..Default::default() },
            &noisy,
            specs(parallel as u64 * 2, compounds_per_job / 2, seed),
            &fusion,
            &SyntheticPoseSource { poses_per_compound },
        );
        let rate = report.poses_per_sec();
        if parallel == 1 {
            base = rate;
        }
        println!(
            "{parallel:>14} {rate:>12.1} {:>9.2}x   ({} reschedules)",
            rate / base.max(1e-9),
            report.failed_attempts
        );
        csv.push_str(&format!("{parallel},{rate:.2},{:.3}\n", rate / base.max(1e-9)));
    }
    println!("(CPU cores bound the measured scaling; Lassen's 125-job peak is modeled below)\n");

    // --- 3. The Lassen model: Table 7 proper. ---
    let model = LassenModel::default();
    println!("## Modeled Table 7 (Lassen constants)");
    println!("{:<22} {:>14} {:>14}", "Metric", "Single Job", "Peak");
    let mut table_csv = String::from("metric,single_job,peak\n");
    for row in model.table7() {
        println!("{:<22} {:>14} {:>14}", row.metric, row.single_job, row.peak);
        table_csv.push_str(&format!("{},{},{}\n", row.metric, row.single_job, row.peak));
    }
    println!(
        "\nV100-equivalence: one modeled V100 rank = {:.2} of our measured CPU ranks",
        model.v100_equivalence(measured_rank_rate)
    );
    println!(
        "peak/single throughput ratio: {:.0}x (paper: \"more than 100 times\")",
        model.poses_per_sec_peak() / model.poses_per_sec_single()
    );

    write_artifact(&format!("table7_model_{}_{}.csv", scale.name(), seed), &table_csv);
    write_artifact(&format!("table7_scaling_{}_{}.csv", scale.name(), seed), &csv);
    std::fs::remove_dir_all(&out_dir).ok();
}
