//! Online-serving benchmark: dfserve under nominal and overload traffic.
//!
//! Runs the deterministic traffic simulator against a fresh scoring
//! service twice — a closed-loop nominal profile (think-time clients, no
//! shedding expected) and an open-loop overload profile (Poisson arrivals
//! well past the service rate, the degradation ladder must engage) — and
//! writes `BENCH_serve.json` at the repo root: virtual-time throughput,
//! p50/p95/p99 queue-wait and end-to-end latency read back from the
//! `dftrace` histograms the service itself records, cache hit rates, shed
//! rate and per-tier completion counts.
//!
//! Both profiles run on the virtual clock, so every number in the file is
//! bit-reproducible across hosts and runs; wall-clock time spent in model
//! compute is visible separately through the `serve.batch_exec` span.
//!
//! ```sh
//! cargo run --release -p dfbench --bin serve_bench            # full
//! cargo run --release -p dfbench --bin serve_bench -- --smoke # CI gate
//! ```
//!
//! Besides the two traffic profiles, a **batch-size sweep** drives the
//! same closed-loop workload through services configured with
//! `max_batch` 1/2/4/8. The cost model charges a per-batch base plus a
//! per-item increment, so micro-batching amortizes the base and virtual
//! throughput must rise monotonically with the cap — the sweep records
//! that curve, and an overload pair (`max_batch` 1 vs the default)
//! checks batching never sheds more than sequential execution.
//!
//! A **fleet section** then drives the sharded router: the same Zipf
//! open-loop storm against 1/2/4/8 consistent-hash-routed replicas (the
//! throughput ladder), a hot-key skew profile with watermark admission,
//! a kill/restore fault matrix with its no-fault baseline, and the
//! determinism lock (same storm replayed at 1/2/4 router threads, plus
//! fleet(1) vs the plain single-instance service, byte-for-byte). All of
//! it runs on the virtual clock; in full mode the section issues a few
//! million virtual requests over a bounded compound pool, so wall time
//! stays dominated by the pool's one-time canonical-bytes hashing.
//!
//! `--smoke` shrinks the request counts, then re-reads the emitted file
//! and asserts it parses, that the nominal profile shed nothing and
//! recorded its mean batch size, that sweep throughput is monotone in
//! the batch cap (and actually coalesces at the largest cap), that the
//! batched overload run sheds no more than the sequential one, and the
//! fleet gates: >= 1.7x throughput at 2 shards, home-key balance within
//! 1.75x of the mean, failover-bounded shedding under the fault matrix,
//! and bit-identical replays across router thread counts.

use dfserve::{
    run_closed_loop, run_fleet_open_loop, run_open_loop, FaultEvent, FaultPlan, Fleet, FleetConfig,
    FleetSimReport, KeyCache, ScoreService, ServeConfig, SimReport, Ticks, TrafficConfig,
    WatermarkConfig, ZipfConfig,
};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

#[derive(Serialize, Deserialize)]
struct Latency {
    p50_vus: u64,
    p95_vus: u64,
    p99_vus: u64,
}

impl Latency {
    /// Reads one latency family back out of the service's own telemetry.
    fn from_trace(report: &dftrace::Report, name: &str) -> Latency {
        let h = report.histogram(name).unwrap_or_else(|| panic!("histogram {name} missing"));
        Latency {
            p50_vus: h.percentile(0.50),
            p95_vus: h.percentile(0.95),
            p99_vus: h.percentile(0.99),
        }
    }

    /// From the simulator's exact `[p50, p95, p99]` tick percentiles.
    fn from_ticks(t: [Ticks; 3]) -> Latency {
        Latency { p50_vus: t[0], p95_vus: t[1], p99_vus: t[2] }
    }
}

#[derive(Serialize, Deserialize)]
struct TierCounts {
    full: u64,
    sg_head: u64,
    surrogate: u64,
    vina: u64,
    ligand_only: u64,
}

#[derive(Serialize, Deserialize)]
struct ProfileReport {
    name: String,
    issued: u64,
    completed: u64,
    shed: u64,
    shed_rate: f64,
    /// Completions per *virtual* second — bit-reproducible across hosts.
    throughput_per_vsec: f64,
    /// Queue-wait percentiles from the `serve.queue_wait_vus` histogram.
    queue_wait: Latency,
    /// End-to-end percentiles from the `serve.e2e_vus` histogram.
    e2e: Latency,
    per_tier: TierCounts,
    batches: u64,
    mean_batch_size: f64,
    score_cache_hit_rate: f64,
    feature_cache_hit_rate: f64,
    /// Wall-clock µs spent in model batch execution (host-dependent).
    batch_exec_wall_us: u64,
}

/// One point of the throughput-vs-batch-size curve: the same closed-loop
/// workload against a service capped at `max_batch` items per batch.
#[derive(Serialize, Deserialize)]
struct BatchSweepPoint {
    max_batch: usize,
    issued: u64,
    completed: u64,
    shed: u64,
    throughput_per_vsec: f64,
    mean_batch_size: f64,
    batches: u64,
    /// Wall-clock µs spent in model batch execution (host-dependent).
    batch_exec_wall_us: u64,
}

/// One rung of the fleet throughput ladder: the same Zipf open-loop storm
/// against 1/2/4/8 replicas behind the consistent-hash router.
#[derive(Serialize, Deserialize)]
struct FleetRung {
    shards: usize,
    issued: u64,
    completed: u64,
    shed: u64,
    shed_rate: f64,
    throughput_per_vsec: f64,
    /// Throughput relative to the 1-shard rung of the same storm.
    speedup_vs_1: f64,
    /// max/mean of per-shard home-key assignments (1.0 = perfect balance).
    balance_max_over_mean: f64,
    per_shard_home: Vec<u64>,
    /// Exact virtual end-to-end percentiles from the simulator.
    e2e: Latency,
}

/// Hot-key tail profile: strong Zipf skew with watermark admission on.
#[derive(Serialize, Deserialize)]
struct FleetSkewReport {
    shards: usize,
    zipf_exponent: f64,
    issued: u64,
    completed: u64,
    shed_rate: f64,
    /// Submits the per-shard depth watermark degraded to a cheaper tier.
    degraded: u64,
    throughput_per_vsec: f64,
    queue_wait: Latency,
    e2e: Latency,
}

/// Shard-failure profile: a kill/restore matrix over the same storm, with
/// the no-fault run of identical traffic as the shed-rate baseline.
#[derive(Serialize, Deserialize)]
struct FleetFailureReport {
    shards: usize,
    issued: u64,
    completed: u64,
    /// Failover re-issues scheduled for down-home submits.
    reissues: u64,
    /// Requests that exhausted the re-issue budget.
    failover_shed: u64,
    /// Responses discarded because their replica was killed mid-flight.
    lost_in_flight: u64,
    shed_rate: f64,
    shed_rate_no_faults: f64,
}

/// The fleet determinism lock, as emitted numbers: the same trace replayed
/// at several router thread counts, plus fleet(1) vs the plain service.
#[derive(Serialize, Deserialize)]
struct FleetDeterminismReport {
    requests: u64,
    /// fnv1a64 of the merged response stream, as hex.
    score_digest: String,
    /// One digest per replayed thread count — all must be equal.
    digests_by_threads: Vec<String>,
    /// A 1-replica fleet produced byte-identical responses to the plain
    /// single-instance service under the same traffic.
    matches_single_instance: bool,
}

/// The sharded-fleet section of the artifact.
#[derive(Serialize, Deserialize)]
struct FleetBench {
    campaign_seed: u64,
    /// Compound pool + skew of the ladder storm.
    zipf_pool: u64,
    zipf_exponent: f64,
    mean_interarrival_ticks: f64,
    /// Throughput ladder over 1/2/4/8 shards, same storm per rung.
    ladder: Vec<FleetRung>,
    skew: FleetSkewReport,
    failure: FleetFailureReport,
    determinism: FleetDeterminismReport,
    /// Virtual requests issued across every fleet profile in this run.
    total_virtual_requests: u64,
}

#[derive(Serialize, Deserialize)]
struct ServeBench {
    smoke: bool,
    host_cpus: usize,
    profiles: Vec<ProfileReport>,
    /// Closed-loop throughput as a function of the micro-batch cap.
    batch_sweep: Vec<BatchSweepPoint>,
    /// Overload shed counts: `max_batch = 1` vs the default cap, same
    /// traffic. Batching amortizes the per-batch base cost, so the batched
    /// service must never shed more.
    overload_shed_sequential: u64,
    overload_shed_batched: u64,
    /// Sharded/replicated fleet: throughput ladder, skew tail, failure
    /// profile and the determinism lock.
    fleet: FleetBench,
}

/// Runs one traffic profile against a fresh service built from `cfg`,
/// reading latency and batch-size numbers back from the dftrace telemetry
/// the service emits.
fn run_profile(
    name: &str,
    cfg: ServeConfig,
    run: impl FnOnce(&mut ScoreService) -> (SimReport, Vec<dfserve::ScoreResponse>),
) -> ProfileReport {
    dftrace::reset();
    let mut svc = ScoreService::with_fresh_registry(cfg);
    let (sim, _responses) = run(&mut svc);
    let trace = dftrace::snapshot();
    let stats = svc.stats();
    let hist_batch = trace.histogram("serve.batch_size");
    let report = ProfileReport {
        name: name.to_string(),
        issued: sim.issued,
        completed: sim.completed,
        shed: sim.shed,
        shed_rate: sim.shed_rate,
        throughput_per_vsec: sim.throughput_per_vsec,
        queue_wait: Latency::from_trace(&trace, "serve.queue_wait_vus"),
        e2e: Latency::from_trace(&trace, "serve.e2e_vus"),
        per_tier: TierCounts {
            full: stats.per_tier[0],
            sg_head: stats.per_tier[1],
            surrogate: stats.per_tier[2],
            vina: stats.per_tier[3],
            ligand_only: stats.per_tier[4],
        },
        batches: stats.batches,
        mean_batch_size: hist_batch.map(|h| h.mean_us()).unwrap_or(0.0),
        score_cache_hit_rate: svc.score_cache_stats().hit_rate(),
        feature_cache_hit_rate: svc.feature_cache_stats().hit_rate(),
        // `serve.batch_exec` is recorded as a *span* (wall-clock RAII
        // timer), not a histogram; sum every span path ending in it.
        batch_exec_wall_us: trace.sum_spans_with_leaf("serve.batch_exec").1,
    };
    eprintln!(
        "  {name}: {} issued, {} completed, shed rate {:.3}, {:.0} scores/vsec, \
         e2e p95 {} vµs, tiers full/sg/surrogate/vina/ligand = {}/{}/{}/{}/{}",
        report.issued,
        report.completed,
        report.shed_rate,
        report.throughput_per_vsec,
        report.e2e.p95_vus,
        report.per_tier.full,
        report.per_tier.sg_head,
        report.per_tier.surrogate,
        report.per_tier.vina,
        report.per_tier.ligand_only,
    );
    report
}

/// Campaign seed shared by every fleet profile: routing keys depend on
/// it, so one pre-warmed [`KeyCache`] serves the whole section.
const FLEET_SEED: u64 = 81;

/// The per-replica service the fleet profiles run: [`ServeConfig::tiny`]
/// with a score cache big enough to keep the bounded Zipf compound pool
/// resident, and an empty Vina band — full pose materialization is the
/// one wall-expensive inline fallback, and the ladder still walks
/// full → sg → surrogate → ligand-only → shed.
fn fleet_bench_config(shards: usize) -> FleetConfig {
    let mut cfg = FleetConfig::tiny(FLEET_SEED, shards);
    cfg.serve.score_cache = 1 << 17;
    cfg.serve.ladder.vina_max_depth = cfg.serve.ladder.surrogate_max_depth;
    cfg
}

/// Runs one fleet profile against a fresh fleet (with pre-warmed routing
/// keys) and hands the accumulated key entries back so the next profile
/// skips re-hashing canonical bytes for compounds it shares.
fn run_fleet_profile(
    name: &str,
    shards: usize,
    watermark: Option<WatermarkConfig>,
    traffic: &TrafficConfig,
    mean_interarrival_ticks: f64,
    faults: &FaultPlan,
    keys: Vec<(dfchem::genmol::CompoundId, u64)>,
) -> (FleetSimReport, Vec<(dfchem::genmol::CompoundId, u64)>) {
    let mut cfg = fleet_bench_config(shards);
    if let Some(w) = watermark {
        cfg.watermark = w;
    }
    let mut fleet = Fleet::with_key_cache(cfg, KeyCache::from_entries(&keys));
    let wall = std::time::Instant::now();
    let (report, _) = run_fleet_open_loop(&mut fleet, traffic, mean_interarrival_ticks, faults);
    eprintln!(
        "  {name}: {shards} shard(s), {} issued, {} completed, shed rate {:.3}, \
         {:.0} scores/vsec, balance {:.2}, reissues {}, lost {}, degraded {} [{:.1}s wall]",
        report.base.issued,
        report.base.completed,
        report.base.shed_rate,
        report.base.throughput_per_vsec,
        report.balance_max_over_mean,
        report.reissues,
        report.lost_in_flight,
        report.degraded,
        wall.elapsed().as_secs_f64(),
    );
    (report, fleet.key_entries())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let (nominal_reqs, overload_reqs) = if smoke { (60, 80) } else { (300, 400) };
    eprintln!("== dfserve traffic baseline ({host_cpus} host CPUs, smoke={smoke}) ==");

    // The service records its telemetry unconditionally gated on the trace
    // switch; the bench needs the histograms, so force it on.
    dftrace::set_enabled(true);

    let nominal = run_profile("nominal_closed_loop", ServeConfig::tiny(71), |svc| {
        let traffic =
            TrafficConfig { seed: 2024, requests: nominal_reqs, ..TrafficConfig::default() };
        // 4 clients with 3 ms think time: offered load self-limits below
        // the service rate, so the ladder should never engage.
        run_closed_loop(svc, &traffic, 4, 3_000)
    });
    let overload = run_profile("overload_open_loop", ServeConfig::tiny(72), |svc| {
        let traffic =
            TrafficConfig { seed: 2025, requests: overload_reqs, ..TrafficConfig::default() };
        // Poisson arrivals every ~100 virtual µs against a ~1000 µs/item
        // service: the full 10x-overload degradation path.
        run_open_loop(svc, &traffic, 100.0)
    });

    // Throughput-vs-batch-size: the same saturating closed-loop workload
    // (enough clients with short think time to keep the queue non-empty)
    // against rising micro-batch caps. Amortizing the per-batch base cost
    // is the whole point of the batched forward; the virtual clock makes
    // the resulting curve bit-reproducible.
    let sweep_reqs = if smoke { 64 } else { 240 };
    let batch_sweep: Vec<BatchSweepPoint> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|max_batch| {
            let mut cfg = ServeConfig::tiny(73);
            cfg.batcher.max_batch = max_batch;
            let p = run_profile(&format!("sweep_max_batch_{max_batch}"), cfg, |svc| {
                let traffic =
                    TrafficConfig { seed: 2026, requests: sweep_reqs, ..TrafficConfig::default() };
                run_closed_loop(svc, &traffic, 8, 500)
            });
            BatchSweepPoint {
                max_batch,
                issued: p.issued,
                completed: p.completed,
                shed: p.shed,
                throughput_per_vsec: p.throughput_per_vsec,
                mean_batch_size: p.mean_batch_size,
                batches: p.batches,
                batch_exec_wall_us: p.batch_exec_wall_us,
            }
        })
        .collect();

    // Overload shed comparison: same Poisson storm, sequential (cap 1) vs
    // the default cap. Batching raises the service rate, so it must shed
    // no more than sequential execution does.
    let overload_pair: Vec<u64> = [1usize, ServeConfig::tiny(74).batcher.max_batch]
        .into_iter()
        .map(|max_batch| {
            let mut cfg = ServeConfig::tiny(74);
            cfg.batcher.max_batch = max_batch;
            run_profile(&format!("overload_max_batch_{max_batch}"), cfg, |svc| {
                let traffic = TrafficConfig {
                    seed: 2027,
                    requests: overload_reqs,
                    ..TrafficConfig::default()
                };
                run_open_loop(svc, &traffic, 100.0)
            })
            .shed
        })
        .collect();

    // ---------------- Sharded fleet ----------------
    //
    // Every fleet profile is an open-loop Poisson storm on the virtual
    // clock routed through the consistent-hash ring. Arrivals come every
    // ~6 virtual µs (~167k req/vsec): several times what one replica
    // absorbs, so the 1-shard rung saturates and sheds while wider fleets
    // keep completing — that headroom is the throughput ladder. A
    // near-uniform Zipf keeps cache-miss work spread across the pool; the
    // skew profile flips to a hot-key Zipf to measure the tail instead.
    eprintln!("== dfserve fleet (consistent-hash router, replicated shards) ==");
    let fleet_interarrival = 4.0;
    let (ladder_reqs, ladder_pool) = if smoke { (4_000, 2_000) } else { (300_000, 40_000) };
    let ladder_exponent = 0.5;
    let mut fleet_issued_total = 0u64;
    let mut key_entries: Vec<(dfchem::genmol::CompoundId, u64)> = Vec::new();

    let ladder_traffic = TrafficConfig {
        seed: 3001,
        requests: ladder_reqs,
        zipf: Some(ZipfConfig { compounds: ladder_pool, exponent: ladder_exponent }),
        ..TrafficConfig::default()
    };
    let mut ladder: Vec<FleetRung> = Vec::new();
    let mut base_throughput = 0.0f64;
    for shards in [1usize, 2, 4, 8] {
        let (report, keys) = run_fleet_profile(
            &format!("fleet_ladder_{shards}"),
            shards,
            None,
            &ladder_traffic,
            fleet_interarrival,
            &FaultPlan::none(),
            std::mem::take(&mut key_entries),
        );
        key_entries = keys;
        fleet_issued_total += report.base.issued;
        if shards == 1 {
            base_throughput = report.base.throughput_per_vsec;
        }
        ladder.push(FleetRung {
            shards,
            issued: report.base.issued,
            completed: report.base.completed,
            shed: report.base.shed,
            shed_rate: report.base.shed_rate,
            throughput_per_vsec: report.base.throughput_per_vsec,
            speedup_vs_1: report.base.throughput_per_vsec / base_throughput.max(f64::MIN_POSITIVE),
            balance_max_over_mean: report.balance_max_over_mean,
            per_shard_home: report.per_shard_home.clone(),
            e2e: Latency::from_ticks(report.base.e2e_ticks),
        });
    }

    // Hot-key tail: strong skew concentrates load on a few home shards;
    // the watermark degrades their admissions before their ladders shed.
    let skew_exponent = 1.2;
    let (skew_reqs, skew_pool) = if smoke { (3_000, 2_000) } else { (300_000, 100_000) };
    let skew_traffic = TrafficConfig {
        seed: 3002,
        requests: skew_reqs,
        zipf: Some(ZipfConfig { compounds: skew_pool, exponent: skew_exponent }),
        ..TrafficConfig::default()
    };
    let (skew_report, keys) = run_fleet_profile(
        "fleet_skew",
        4,
        Some(WatermarkConfig { degrade_depth: 12, bias_per_excess: 2 }),
        &skew_traffic,
        fleet_interarrival,
        &FaultPlan::none(),
        key_entries,
    );
    key_entries = keys;
    fleet_issued_total += skew_report.base.issued;
    let skew = FleetSkewReport {
        shards: 4,
        zipf_exponent: skew_exponent,
        issued: skew_report.base.issued,
        completed: skew_report.base.completed,
        shed_rate: skew_report.base.shed_rate,
        degraded: skew_report.degraded,
        throughput_per_vsec: skew_report.base.throughput_per_vsec,
        queue_wait: Latency::from_ticks(skew_report.base.queue_wait_ticks),
        e2e: Latency::from_ticks(skew_report.base.e2e_ticks),
    };

    // Shard failure: overlapping kill/restore windows on two of four
    // replicas, against the no-fault run of the identical storm as the
    // shed-rate baseline. Failover re-issues chase ring successors, so
    // with survivors up the failover budget must never exhaust. This
    // profile runs at moderate load (survivors keep real headroom): what
    // it measures is that failover *re-routes* the dead shards' traffic
    // instead of shedding it, so the shed rate stays close to the
    // no-fault baseline even with half the fleet down.
    let failure_interarrival = 2.0 * fleet_interarrival;
    let failure_reqs = if smoke { 3_000 } else { 250_000 };
    let failure_traffic = TrafficConfig {
        seed: 3003,
        requests: failure_reqs,
        zipf: Some(ZipfConfig { compounds: ladder_pool, exponent: ladder_exponent }),
        ..TrafficConfig::default()
    };
    let span = (failure_reqs as f64 * failure_interarrival) as Ticks;
    let faults = FaultPlan {
        events: vec![
            FaultEvent { at: span / 5, replica: 1, up: false },
            FaultEvent { at: 2 * span / 5, replica: 3, up: false },
            FaultEvent { at: 3 * span / 5, replica: 1, up: true },
            FaultEvent { at: 4 * span / 5, replica: 3, up: true },
        ],
    };
    let (no_fault_report, keys) = run_fleet_profile(
        "fleet_failure_baseline",
        4,
        None,
        &failure_traffic,
        failure_interarrival,
        &FaultPlan::none(),
        key_entries,
    );
    let (failure_report, keys) = run_fleet_profile(
        "fleet_failure",
        4,
        None,
        &failure_traffic,
        failure_interarrival,
        &faults,
        keys,
    );
    key_entries = keys;
    fleet_issued_total += no_fault_report.base.issued + failure_report.base.issued;
    let failure = FleetFailureReport {
        shards: 4,
        issued: failure_report.base.issued,
        completed: failure_report.base.completed,
        reissues: failure_report.reissues,
        failover_shed: failure_report.failover_shed,
        lost_in_flight: failure_report.lost_in_flight,
        shed_rate: failure_report.base.shed_rate,
        shed_rate_no_faults: no_fault_report.base.shed_rate,
    };

    // Determinism lock, emitted as numbers: the same storm replayed at
    // 1/2/4 router threads must digest identically, and a 1-replica fleet
    // must be byte-identical to the plain single-instance service.
    let det_reqs = if smoke { 1_500 } else { 30_000 };
    let det_traffic = TrafficConfig {
        seed: 3004,
        requests: det_reqs,
        zipf: Some(ZipfConfig { compounds: ladder_pool, exponent: ladder_exponent }),
        ..TrafficConfig::default()
    };
    let mut digests: Vec<u64> = Vec::new();
    for threads in [1usize, 2, 4] {
        let entries = key_entries.clone();
        let (report, keys) = dfpool::Pool::new(threads).install(|| {
            run_fleet_profile(
                &format!("fleet_determinism_t{threads}"),
                4,
                None,
                &det_traffic,
                fleet_interarrival,
                &FaultPlan::none(),
                entries,
            )
        });
        key_entries = keys;
        fleet_issued_total += report.base.issued;
        digests.push(report.score_digest);
    }
    let mut single_fleet =
        Fleet::with_key_cache(fleet_bench_config(1), KeyCache::from_entries(&key_entries));
    let (_single_fleet_report, single_fleet_responses) = run_fleet_open_loop(
        &mut single_fleet,
        &det_traffic,
        fleet_interarrival,
        &FaultPlan::none(),
    );
    let mut plain = ScoreService::with_registries(
        fleet_bench_config(1).serve,
        single_fleet.registry().clone(),
        single_fleet.surrogate_registry().clone(),
    );
    let (_, mut plain_responses) = run_open_loop(&mut plain, &det_traffic, fleet_interarrival);
    plain_responses.sort_by_key(|r| (r.completed_at, r.request_id));
    fleet_issued_total += 2 * det_traffic.requests as u64;
    let matches_single = single_fleet_responses == plain_responses;
    eprintln!(
        "  fleet_determinism: digests {:016x}/{:016x}/{:016x}, fleet(1) == single: {}",
        digests[0], digests[1], digests[2], matches_single
    );
    let determinism = FleetDeterminismReport {
        requests: det_reqs as u64,
        score_digest: format!("{:016x}", digests[0]),
        digests_by_threads: digests.iter().map(|d| format!("{d:016x}")).collect(),
        matches_single_instance: matches_single,
    };

    let fleet = FleetBench {
        campaign_seed: FLEET_SEED,
        zipf_pool: ladder_pool,
        zipf_exponent: ladder_exponent,
        mean_interarrival_ticks: fleet_interarrival,
        ladder,
        skew,
        failure,
        determinism,
        total_virtual_requests: fleet_issued_total,
    };
    eprintln!(
        "  fleet total: {} virtual requests across all profiles",
        fleet.total_virtual_requests
    );

    let bench = ServeBench {
        smoke,
        host_cpus,
        profiles: vec![nominal, overload],
        batch_sweep,
        overload_shed_sequential: overload_pair[0],
        overload_shed_batched: overload_pair[1],
        fleet,
    };
    let json = serde_json::to_string_pretty(&bench).expect("serialize serve bench");
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    std::fs::write(&out, &json).expect("write BENCH_serve.json");
    eprintln!("wrote {}", out.display());

    if smoke {
        // CI gate: the emitted artifact must parse, and nominal load must
        // complete everything without shedding.
        let raw = std::fs::read_to_string(&out).expect("re-read BENCH_serve.json");
        let parsed: ServeBench = serde_json::from_str(&raw).expect("BENCH_serve.json parses");
        let nominal = &parsed.profiles[0];
        assert_eq!(nominal.shed, 0, "nominal profile must not shed");
        assert_eq!(nominal.shed_rate, 0.0, "nominal shed rate must be zero");
        assert_eq!(nominal.completed, nominal.issued, "nominal must answer everything");
        assert!(nominal.mean_batch_size >= 1.0, "nominal profile must record its mean batch size");
        let overload = &parsed.profiles[1];
        assert!(overload.shed > 0, "overload profile must exercise shedding");
        assert!(overload.per_tier.sg_head > 0 && overload.per_tier.vina > 0);
        assert!(
            overload.per_tier.surrogate > 0,
            "overload must engage the surrogate tier between sg_head and vina"
        );
        assert!(
            overload.per_tier.ligand_only > 0,
            "overload must push the ladder down to the ligand-only tier"
        );
        // Throughput must be monotone in the batch cap: the per-batch base
        // cost is amortized over more items, and the virtual clock makes
        // the comparison exact, not a noisy wall-clock race.
        for pair in parsed.batch_sweep.windows(2) {
            assert!(
                pair[1].throughput_per_vsec >= pair[0].throughput_per_vsec,
                "throughput fell raising max_batch {} -> {}: {:.1} -> {:.1}/vsec",
                pair[0].max_batch,
                pair[1].max_batch,
                pair[0].throughput_per_vsec,
                pair[1].throughput_per_vsec
            );
        }
        let widest = parsed.batch_sweep.last().expect("sweep has points");
        assert!(
            widest.mean_batch_size > 1.0,
            "saturating load at max_batch {} never coalesced (mean batch {:.2})",
            widest.max_batch,
            widest.mean_batch_size
        );
        assert!(
            parsed.overload_shed_batched <= parsed.overload_shed_sequential,
            "batched path shed more than sequential: {} vs {}",
            parsed.overload_shed_batched,
            parsed.overload_shed_sequential
        );
        // Fleet gate: the storm must actually overload one replica, two
        // shards must buy real throughput, routing must stay balanced,
        // failover must keep shedding bounded, and the replays must be
        // bit-identical (including fleet(1) vs the plain service).
        let fleet = &parsed.fleet;
        let one = &fleet.ladder[0];
        let two = &fleet.ladder[1];
        assert!(one.shed > 0, "the 1-shard rung must saturate and shed");
        assert!(
            two.speedup_vs_1 >= 1.7,
            "2 shards must deliver >= 1.7x the 1-shard throughput, got {:.2}x",
            two.speedup_vs_1
        );
        for rung in &fleet.ladder {
            assert!(
                rung.shards == 1 || rung.balance_max_over_mean <= 1.75,
                "home-key balance blew past 1.75x mean at {} shards: {:.2}",
                rung.shards,
                rung.balance_max_over_mean
            );
        }
        assert!(fleet.skew.degraded > 0, "hot-key skew must engage the watermark");
        assert!(fleet.failure.reissues > 0, "the fault matrix must trigger failover");
        assert!(fleet.failure.lost_in_flight > 0, "kills must catch work in flight");
        assert_eq!(
            fleet.failure.failover_shed, 0,
            "with survivors up the failover budget must never exhaust"
        );
        assert!(
            fleet.failure.shed_rate <= fleet.failure.shed_rate_no_faults + 0.15,
            "failover kept shedding unbounded: {:.3} vs {:.3} without faults",
            fleet.failure.shed_rate,
            fleet.failure.shed_rate_no_faults
        );
        let d0 = &fleet.determinism.score_digest;
        assert!(
            fleet.determinism.digests_by_threads.iter().all(|d| d == d0),
            "fleet replay digests diverged across router thread counts: {:?}",
            fleet.determinism.digests_by_threads
        );
        assert!(
            fleet.determinism.matches_single_instance,
            "a 1-replica fleet must be byte-identical to the plain service"
        );
        eprintln!("smoke assertions passed");
    }
}
