//! Online-serving benchmark: dfserve under nominal and overload traffic.
//!
//! Runs the deterministic traffic simulator against a fresh scoring
//! service twice — a closed-loop nominal profile (think-time clients, no
//! shedding expected) and an open-loop overload profile (Poisson arrivals
//! well past the service rate, the degradation ladder must engage) — and
//! writes `BENCH_serve.json` at the repo root: virtual-time throughput,
//! p50/p95/p99 queue-wait and end-to-end latency read back from the
//! `dftrace` histograms the service itself records, cache hit rates, shed
//! rate and per-tier completion counts.
//!
//! Both profiles run on the virtual clock, so every number in the file is
//! bit-reproducible across hosts and runs; wall-clock time spent in model
//! compute is visible separately through the `serve.batch_exec` span.
//!
//! ```sh
//! cargo run --release -p dfbench --bin serve_bench            # full
//! cargo run --release -p dfbench --bin serve_bench -- --smoke # CI gate
//! ```
//!
//! Besides the two traffic profiles, a **batch-size sweep** drives the
//! same closed-loop workload through services configured with
//! `max_batch` 1/2/4/8. The cost model charges a per-batch base plus a
//! per-item increment, so micro-batching amortizes the base and virtual
//! throughput must rise monotonically with the cap — the sweep records
//! that curve, and an overload pair (`max_batch` 1 vs the default)
//! checks batching never sheds more than sequential execution.
//!
//! `--smoke` shrinks the request counts, then re-reads the emitted file
//! and asserts it parses, that the nominal profile shed nothing and
//! recorded its mean batch size, that sweep throughput is monotone in
//! the batch cap (and actually coalesces at the largest cap), and that
//! the batched overload run sheds no more than the sequential one.

use dfserve::{
    run_closed_loop, run_open_loop, ScoreService, ServeConfig, SimReport, TrafficConfig,
};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

#[derive(Serialize, Deserialize)]
struct Latency {
    p50_vus: u64,
    p95_vus: u64,
    p99_vus: u64,
}

impl Latency {
    /// Reads one latency family back out of the service's own telemetry.
    fn from_trace(report: &dftrace::Report, name: &str) -> Latency {
        let h = report.histogram(name).unwrap_or_else(|| panic!("histogram {name} missing"));
        Latency {
            p50_vus: h.percentile(0.50),
            p95_vus: h.percentile(0.95),
            p99_vus: h.percentile(0.99),
        }
    }
}

#[derive(Serialize, Deserialize)]
struct TierCounts {
    full: u64,
    sg_head: u64,
    surrogate: u64,
    vina: u64,
    ligand_only: u64,
}

#[derive(Serialize, Deserialize)]
struct ProfileReport {
    name: String,
    issued: u64,
    completed: u64,
    shed: u64,
    shed_rate: f64,
    /// Completions per *virtual* second — bit-reproducible across hosts.
    throughput_per_vsec: f64,
    /// Queue-wait percentiles from the `serve.queue_wait_vus` histogram.
    queue_wait: Latency,
    /// End-to-end percentiles from the `serve.e2e_vus` histogram.
    e2e: Latency,
    per_tier: TierCounts,
    batches: u64,
    mean_batch_size: f64,
    score_cache_hit_rate: f64,
    feature_cache_hit_rate: f64,
    /// Wall-clock µs spent in model batch execution (host-dependent).
    batch_exec_wall_us: u64,
}

/// One point of the throughput-vs-batch-size curve: the same closed-loop
/// workload against a service capped at `max_batch` items per batch.
#[derive(Serialize, Deserialize)]
struct BatchSweepPoint {
    max_batch: usize,
    issued: u64,
    completed: u64,
    shed: u64,
    throughput_per_vsec: f64,
    mean_batch_size: f64,
    batches: u64,
    /// Wall-clock µs spent in model batch execution (host-dependent).
    batch_exec_wall_us: u64,
}

#[derive(Serialize, Deserialize)]
struct ServeBench {
    smoke: bool,
    host_cpus: usize,
    profiles: Vec<ProfileReport>,
    /// Closed-loop throughput as a function of the micro-batch cap.
    batch_sweep: Vec<BatchSweepPoint>,
    /// Overload shed counts: `max_batch = 1` vs the default cap, same
    /// traffic. Batching amortizes the per-batch base cost, so the batched
    /// service must never shed more.
    overload_shed_sequential: u64,
    overload_shed_batched: u64,
}

/// Runs one traffic profile against a fresh service built from `cfg`,
/// reading latency and batch-size numbers back from the dftrace telemetry
/// the service emits.
fn run_profile(
    name: &str,
    cfg: ServeConfig,
    run: impl FnOnce(&mut ScoreService) -> (SimReport, Vec<dfserve::ScoreResponse>),
) -> ProfileReport {
    dftrace::reset();
    let mut svc = ScoreService::with_fresh_registry(cfg);
    let (sim, _responses) = run(&mut svc);
    let trace = dftrace::snapshot();
    let stats = svc.stats();
    let hist_batch = trace.histogram("serve.batch_size");
    let report = ProfileReport {
        name: name.to_string(),
        issued: sim.issued,
        completed: sim.completed,
        shed: sim.shed,
        shed_rate: sim.shed_rate,
        throughput_per_vsec: sim.throughput_per_vsec,
        queue_wait: Latency::from_trace(&trace, "serve.queue_wait_vus"),
        e2e: Latency::from_trace(&trace, "serve.e2e_vus"),
        per_tier: TierCounts {
            full: stats.per_tier[0],
            sg_head: stats.per_tier[1],
            surrogate: stats.per_tier[2],
            vina: stats.per_tier[3],
            ligand_only: stats.per_tier[4],
        },
        batches: stats.batches,
        mean_batch_size: hist_batch.map(|h| h.mean_us()).unwrap_or(0.0),
        score_cache_hit_rate: svc.score_cache_stats().hit_rate(),
        feature_cache_hit_rate: svc.feature_cache_stats().hit_rate(),
        batch_exec_wall_us: trace.histogram("serve.batch_exec").map(|h| h.sum_us).unwrap_or(0),
    };
    eprintln!(
        "  {name}: {} issued, {} completed, shed rate {:.3}, {:.0} scores/vsec, \
         e2e p95 {} vµs, tiers full/sg/surrogate/vina/ligand = {}/{}/{}/{}/{}",
        report.issued,
        report.completed,
        report.shed_rate,
        report.throughput_per_vsec,
        report.e2e.p95_vus,
        report.per_tier.full,
        report.per_tier.sg_head,
        report.per_tier.surrogate,
        report.per_tier.vina,
        report.per_tier.ligand_only,
    );
    report
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let (nominal_reqs, overload_reqs) = if smoke { (60, 80) } else { (300, 400) };
    eprintln!("== dfserve traffic baseline ({host_cpus} host CPUs, smoke={smoke}) ==");

    // The service records its telemetry unconditionally gated on the trace
    // switch; the bench needs the histograms, so force it on.
    dftrace::set_enabled(true);

    let nominal = run_profile("nominal_closed_loop", ServeConfig::tiny(71), |svc| {
        let traffic =
            TrafficConfig { seed: 2024, requests: nominal_reqs, ..TrafficConfig::default() };
        // 4 clients with 3 ms think time: offered load self-limits below
        // the service rate, so the ladder should never engage.
        run_closed_loop(svc, &traffic, 4, 3_000)
    });
    let overload = run_profile("overload_open_loop", ServeConfig::tiny(72), |svc| {
        let traffic =
            TrafficConfig { seed: 2025, requests: overload_reqs, ..TrafficConfig::default() };
        // Poisson arrivals every ~100 virtual µs against a ~1000 µs/item
        // service: the full 10x-overload degradation path.
        run_open_loop(svc, &traffic, 100.0)
    });

    // Throughput-vs-batch-size: the same saturating closed-loop workload
    // (enough clients with short think time to keep the queue non-empty)
    // against rising micro-batch caps. Amortizing the per-batch base cost
    // is the whole point of the batched forward; the virtual clock makes
    // the resulting curve bit-reproducible.
    let sweep_reqs = if smoke { 64 } else { 240 };
    let batch_sweep: Vec<BatchSweepPoint> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|max_batch| {
            let mut cfg = ServeConfig::tiny(73);
            cfg.batcher.max_batch = max_batch;
            let p = run_profile(&format!("sweep_max_batch_{max_batch}"), cfg, |svc| {
                let traffic =
                    TrafficConfig { seed: 2026, requests: sweep_reqs, ..TrafficConfig::default() };
                run_closed_loop(svc, &traffic, 8, 500)
            });
            BatchSweepPoint {
                max_batch,
                issued: p.issued,
                completed: p.completed,
                shed: p.shed,
                throughput_per_vsec: p.throughput_per_vsec,
                mean_batch_size: p.mean_batch_size,
                batches: p.batches,
                batch_exec_wall_us: p.batch_exec_wall_us,
            }
        })
        .collect();

    // Overload shed comparison: same Poisson storm, sequential (cap 1) vs
    // the default cap. Batching raises the service rate, so it must shed
    // no more than sequential execution does.
    let overload_pair: Vec<u64> = [1usize, ServeConfig::tiny(74).batcher.max_batch]
        .into_iter()
        .map(|max_batch| {
            let mut cfg = ServeConfig::tiny(74);
            cfg.batcher.max_batch = max_batch;
            run_profile(&format!("overload_max_batch_{max_batch}"), cfg, |svc| {
                let traffic = TrafficConfig {
                    seed: 2027,
                    requests: overload_reqs,
                    ..TrafficConfig::default()
                };
                run_open_loop(svc, &traffic, 100.0)
            })
            .shed
        })
        .collect();

    let bench = ServeBench {
        smoke,
        host_cpus,
        profiles: vec![nominal, overload],
        batch_sweep,
        overload_shed_sequential: overload_pair[0],
        overload_shed_batched: overload_pair[1],
    };
    let json = serde_json::to_string_pretty(&bench).expect("serialize serve bench");
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    std::fs::write(&out, &json).expect("write BENCH_serve.json");
    eprintln!("wrote {}", out.display());

    if smoke {
        // CI gate: the emitted artifact must parse, and nominal load must
        // complete everything without shedding.
        let raw = std::fs::read_to_string(&out).expect("re-read BENCH_serve.json");
        let parsed: ServeBench = serde_json::from_str(&raw).expect("BENCH_serve.json parses");
        let nominal = &parsed.profiles[0];
        assert_eq!(nominal.shed, 0, "nominal profile must not shed");
        assert_eq!(nominal.shed_rate, 0.0, "nominal shed rate must be zero");
        assert_eq!(nominal.completed, nominal.issued, "nominal must answer everything");
        assert!(nominal.mean_batch_size >= 1.0, "nominal profile must record its mean batch size");
        let overload = &parsed.profiles[1];
        assert!(overload.shed > 0, "overload profile must exercise shedding");
        assert!(overload.per_tier.sg_head > 0 && overload.per_tier.vina > 0);
        assert!(
            overload.per_tier.surrogate > 0,
            "overload must engage the surrogate tier between sg_head and vina"
        );
        assert!(
            overload.per_tier.ligand_only > 0,
            "overload must push the ladder down to the ligand-only tier"
        );
        // Throughput must be monotone in the batch cap: the per-batch base
        // cost is amortized over more items, and the virtual clock makes
        // the comparison exact, not a noisy wall-clock race.
        for pair in parsed.batch_sweep.windows(2) {
            assert!(
                pair[1].throughput_per_vsec >= pair[0].throughput_per_vsec,
                "throughput fell raising max_batch {} -> {}: {:.1} -> {:.1}/vsec",
                pair[0].max_batch,
                pair[1].max_batch,
                pair[0].throughput_per_vsec,
                pair[1].throughput_per_vsec
            );
        }
        let widest = parsed.batch_sweep.last().expect("sweep has points");
        assert!(
            widest.mean_batch_size > 1.0,
            "saturating load at max_batch {} never coalesced (mean batch {:.2})",
            widest.max_batch,
            widest.mean_batch_size
        );
        assert!(
            parsed.overload_shed_batched <= parsed.overload_shed_sequential,
            "batched path shed more than sequential: {} vs {}",
            parsed.overload_shed_batched,
            parsed.overload_shed_sequential
        );
        eprintln!("smoke assertions passed");
    }
}
