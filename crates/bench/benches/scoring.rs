//! Per-pose scorer cost: the §4.1 hierarchy (Vina fast, MM/GBSA orders of
//! magnitude slower, fusion inference in between).

use criterion::{criterion_group, criterion_main, Criterion};
use dfchem::genmol::{generate_molecule, MolGenConfig};
use dfchem::pocket::{BindingPocket, TargetSite};
use dfdock::mmgbsa::{mmgbsa_score, MmGbsaConfig};
use dfdock::vina::vina_score;
use std::hint::black_box;

fn pose() -> (dfchem::Molecule, BindingPocket) {
    let pocket = BindingPocket::generate(TargetSite::Protease1, 1);
    let mut lig = generate_molecule(&MolGenConfig::default(), "m", 5);
    let c = lig.centroid();
    lig.translate(c.scale(-1.0));
    (lig, pocket)
}

fn bench_scorers(c: &mut Criterion) {
    let (lig, pocket) = pose();
    c.bench_function("vina_score", |b| {
        b.iter(|| black_box(vina_score(&lig, &pocket)));
    });
    let mut group = c.benchmark_group("mmgbsa");
    group.sample_size(10);
    for iters in [5usize, 40] {
        let cfg = MmGbsaConfig { born_iterations: iters, ..Default::default() };
        group.bench_function(format!("born_{iters}"), |b| {
            b.iter(|| black_box(mmgbsa_score(&cfg, &lig, &pocket)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scorers);
criterion_main!(benches);
