//! Data-loader scaling: featurized-batch throughput vs worker count — the
//! "parallel data loaders keep the GPU fed" design of §3.2/§4.2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfchem::featurize::VoxelConfig;
use dfdata::loader::{DataLoader, LoaderConfig};
use dfdata::pdbbind::{PdbBind, PdbBindConfig};
use std::hint::black_box;
use std::sync::Arc;

fn bench_loader_workers(c: &mut Criterion) {
    let dataset = Arc::new(PdbBind::generate(&PdbBindConfig::tiny(), 9));
    let indices: Vec<usize> = (0..dataset.entries.len()).collect();
    let mut group = c.benchmark_group("loader_epoch");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        let loader = DataLoader::new(
            Arc::clone(&dataset),
            indices.clone(),
            LoaderConfig {
                batch_size: 6,
                num_workers: workers,
                voxel: VoxelConfig { grid_dim: 12, resolution: 2.0 },
                ..Default::default()
            },
        );
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, _| {
            b.iter(|| {
                let n: usize = loader.epoch(1).map(|batch| black_box(batch.len())).sum();
                black_box(n)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_loader_workers);
criterion_main!(benches);
