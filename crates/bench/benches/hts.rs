//! HTS substrate micro-benchmarks: allgather latency and h5lite write/read
//! throughput (the file-output bottleneck §4.2 engineered around).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfchem::genmol::{CompoundId, Library};
use dfchem::pocket::TargetSite;
use dfhts::allgather::Communicator;
use dfhts::h5lite::{read_file, H5Writer, ScoreRecord};
use std::hint::black_box;
use std::sync::Arc;

fn bench_allgather(c: &mut Criterion) {
    let mut group = c.benchmark_group("allgather");
    group.sample_size(20);
    for ranks in [4usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                let comm: Arc<Communicator<u64>> = Communicator::new(ranks);
                crossbeam::scope(|s| {
                    for rank in 0..ranks {
                        let comm = Arc::clone(&comm);
                        s.spawn(move |_| {
                            black_box(comm.allgather(rank, vec![rank as u64; 256]));
                        });
                    }
                })
                .unwrap();
            });
        });
    }
    group.finish();
}

fn records(n: u64) -> Vec<ScoreRecord> {
    (0..n)
        .map(|i| ScoreRecord {
            compound: CompoundId { library: Library::EnamineVirtual, index: i },
            target: TargetSite::Spike1,
            pose_rank: (i % 10) as u16,
            score: i as f64 * 0.01,
        })
        .collect()
}

fn bench_h5lite(c: &mut Criterion) {
    let recs = records(10_000);
    let dir = std::env::temp_dir().join(format!("dfh5_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.dfh5");
    c.bench_function("h5lite_write_10k", |b| {
        b.iter(|| {
            let mut w = H5Writer::create(&path).unwrap();
            w.write_chunk("p", &recs).unwrap();
            black_box(w.finish().unwrap());
        });
    });
    c.bench_function("h5lite_read_10k", |b| {
        b.iter(|| black_box(read_file(&path).unwrap()));
    });
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_allgather, bench_h5lite);
criterion_main!(benches);
