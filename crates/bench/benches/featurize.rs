//! Featurization throughput: voxel grids and spatial graphs per pose —
//! the work the paper's 12 parallel data loaders per rank hide behind GPU
//! inference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfchem::featurize::{build_graph, voxelize, GraphConfig, VoxelConfig};
use dfchem::genmol::{generate_molecule, MolGenConfig};
use dfchem::pocket::{BindingPocket, TargetSite};
use std::hint::black_box;

fn inputs() -> (Vec<dfchem::Molecule>, BindingPocket) {
    let pocket = BindingPocket::generate(TargetSite::Protease1, 1);
    let ligs = (0..8)
        .map(|i| {
            let mut m = generate_molecule(&MolGenConfig::default(), "m", i);
            let c = m.centroid();
            m.translate(c.scale(-1.0));
            m
        })
        .collect();
    (ligs, pocket)
}

fn bench_voxelize(c: &mut Criterion) {
    let (ligs, pocket) = inputs();
    let mut group = c.benchmark_group("voxelize");
    for grid in [8usize, 16, 24] {
        let cfg = VoxelConfig { grid_dim: grid, resolution: 24.0 / grid as f64 };
        group.bench_with_input(BenchmarkId::from_parameter(grid), &grid, |b, _| {
            b.iter(|| {
                for l in &ligs {
                    black_box(voxelize(&cfg, l, &pocket));
                }
            });
        });
    }
    group.finish();
}

fn bench_build_graph(c: &mut Criterion) {
    let (ligs, pocket) = inputs();
    let mut group = c.benchmark_group("build_graph");
    for k in [2usize, 4, 8] {
        let cfg = GraphConfig { covalent_k: k, noncovalent_k: k, ..GraphConfig::default() };
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                for l in &ligs {
                    black_box(build_graph(&cfg, l, &pocket));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_voxelize, bench_build_graph);
criterion_main!(benches);
