//! Micro-benchmarks of the dftensor kernels that dominate model cost:
//! matmul, conv3d forward+backward and the graph gather/scatter ops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dftensor::rng::rng;
use dftensor::{Graph, Tensor};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [16usize, 64, 128] {
        let mut r = rng(1);
        let a = Tensor::randn(&[n, n], &mut r);
        let b = Tensor::randn(&[n, n], &mut r);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_conv3d(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv3d_fwd_bwd");
    group.sample_size(20);
    for (grid, ch) in [(8usize, 4usize), (12, 8), (16, 16)] {
        let mut r = rng(2);
        let x = Tensor::randn(&[1, ch, grid, grid, grid], &mut r);
        let w = Tensor::randn(&[8, ch, 3, 3, 3], &mut r);
        let b = Tensor::zeros(&[8]);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{grid}cube_{ch}ch")),
            &grid,
            |bch, _| {
                bch.iter(|| {
                    let mut g = Graph::new();
                    let xv = g.input(x.clone());
                    let wv = g.input(w.clone());
                    let bv = g.input(b.clone());
                    let y = g.conv3d(xv, wv, bv, 1);
                    let loss = g.mean_all(y);
                    black_box(g.backward(loss));
                });
            },
        );
    }
    group.finish();
}

fn bench_segment_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_gather");
    for n_nodes in [128usize, 512, 2048] {
        let mut r = rng(3);
        let x = Tensor::randn(&[n_nodes, 32], &mut r);
        // Ring edges, both directions.
        let idx: Vec<usize> = (0..n_nodes).chain(0..n_nodes).collect();
        let seg: Vec<usize> = (0..2 * n_nodes).map(|i| (i + 1) % n_nodes).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n_nodes), &n_nodes, |bch, _| {
            bch.iter(|| {
                let mut g = Graph::new();
                let xv = g.input(x.clone());
                let gathered = g.index_select_rows(xv, &idx);
                let pooled = g.segment_sum(gathered, &seg, n_nodes);
                black_box(g.value(pooled).sum());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_conv3d, bench_segment_ops);
criterion_main!(benches);
