//! Serial-vs-pooled comparison of the four screening hot paths driven by
//! the `dfpool` work-stealing runtime.
//!
//! Each group benchmarks the same workload under a 1-thread (serial) pool
//! and under pools sized 2 and 4, so the speedup — and the overhead floor
//! on small inputs — is visible side by side. Results are identical at
//! every thread count by construction (see `tests/parallel_determinism.rs`);
//! only wall-clock should move.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfchem::featurize::{build_graph_batch, voxelize_batch, GraphConfig, VoxelConfig};
use dfchem::genmol::{generate_molecule, MolGenConfig};
use dfchem::mol::Molecule;
use dfchem::pocket::{BindingPocket, TargetSite};
use dfdock::search::{dock, DockConfig};
use dfpool::Pool;
use dftensor::rng::rng;
use dftensor::{Graph, Tensor};
use std::hint::black_box;

const THREADS: [usize; 3] = [1, 2, 4];

fn ligands(n: u64) -> Vec<Molecule> {
    (0..n)
        .map(|i| {
            generate_molecule(
                &MolGenConfig { min_heavy: 8, max_heavy: 14, ..Default::default() },
                "bench",
                i,
            )
        })
        .collect()
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_matmul_128");
    let mut r = rng(1);
    let a = Tensor::randn(&[128, 128], &mut r);
    let b = Tensor::randn(&[128, 128], &mut r);
    for threads in THREADS {
        let pool = Pool::new(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bch, _| {
            bch.iter(|| pool.install(|| black_box(a.matmul(&b))));
        });
    }
    group.finish();
}

fn bench_conv3d(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_conv3d_12cube");
    group.sample_size(10);
    let mut r = rng(2);
    let x = Tensor::randn(&[2, 8, 12, 12, 12], &mut r);
    let w = Tensor::randn(&[8, 8, 3, 3, 3], &mut r);
    let b = Tensor::zeros(&[8]);
    for threads in THREADS {
        let pool = Pool::new(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bch, _| {
            bch.iter(|| {
                pool.install(|| {
                    let mut g = Graph::new();
                    let xv = g.input(x.clone());
                    let wv = g.input(w.clone());
                    let bv = g.input(b.clone());
                    let y = g.conv3d(xv, wv, bv, 1);
                    let loss = g.mean_all(y);
                    black_box(g.backward(loss));
                });
            });
        });
    }
    group.finish();
}

fn bench_featurize_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_featurize_batch16");
    group.sample_size(10);
    let mols = ligands(16);
    let refs: Vec<&Molecule> = mols.iter().collect();
    let pocket = BindingPocket::generate(TargetSite::Protease1, 3);
    let vcfg = VoxelConfig { grid_dim: 12, resolution: 1.5 };
    let gcfg = GraphConfig::default();
    for threads in THREADS {
        let pool = Pool::new(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bch, _| {
            bch.iter(|| {
                pool.install(|| {
                    black_box(voxelize_batch(&vcfg, &refs, &pocket));
                    black_box(build_graph_batch(&gcfg, &refs, &pocket));
                });
            });
        });
    }
    group.finish();
}

fn bench_dock(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_dock_8chains");
    group.sample_size(10);
    let lig = &ligands(1)[0];
    let pocket = BindingPocket::generate(TargetSite::Spike1, 4);
    let cfg = DockConfig { mc_restarts: 8, mc_steps: 60, ..DockConfig::default() };
    for threads in THREADS {
        let pool = Pool::new(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bch, _| {
            bch.iter(|| pool.install(|| black_box(dock(&cfg, lig, &pocket, 9))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_conv3d, bench_featurize_batch, bench_dock);
criterion_main!(benches);
