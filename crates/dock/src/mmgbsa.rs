//! Single-point MM/GBSA-style re-scoring (the CDT4mmgbsa stage).
//!
//! Implements the standard decomposition E = E_vdW + E_coul + ΔG_GB +
//! ΔG_SA with generalized-Born electrostatics: per-atom effective Born
//! radii are computed by an iterative pairwise descreening sweep, then the
//! GB cross term uses the Still formula. The Born-radius iteration is the
//! dominant cost and is deliberately configured so one MM/GBSA evaluation
//! costs two to three orders of magnitude more arithmetic than one Vina
//! score — preserving the paper's cost hierarchy (Vina ≈ 1 min/compound,
//! MM/GBSA ≈ 10 min/pose on a CPU core; §4.1).

use dfchem::mol::{Atom, Molecule};
use dfchem::pocket::BindingPocket;
use serde::{Deserialize, Serialize};

/// MM/GBSA configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MmGbsaConfig {
    /// Born-radius refinement sweeps (the knob that sets the FLOP budget).
    pub born_iterations: usize,
    /// Interior dielectric.
    pub eps_in: f64,
    /// Solvent dielectric.
    pub eps_out: f64,
    /// Surface-tension coefficient for the SASA term (kcal/mol/Å²).
    pub surface_tension: f64,
}

impl Default for MmGbsaConfig {
    fn default() -> Self {
        Self { born_iterations: 40, eps_in: 1.0, eps_out: 78.5, surface_tension: 0.0072 }
    }
}

/// Energy decomposition of one MM/GBSA evaluation (kcal/mol-like units;
/// more negative = stronger predicted binding).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MmGbsaScore {
    pub e_vdw: f64,
    pub e_coul: f64,
    pub e_gb: f64,
    pub e_sa: f64,
    pub total: f64,
}

/// Computes the MM/GBSA interaction score of a pose.
pub fn mmgbsa_score(cfg: &MmGbsaConfig, ligand: &Molecule, pocket: &BindingPocket) -> MmGbsaScore {
    let lig = &ligand.atoms;
    let poc = &pocket.atoms;
    let all: Vec<&Atom> = lig.iter().chain(poc.iter()).collect();

    // --- Effective Born radii by iterative pairwise descreening. ---
    // Start from intrinsic radii; each sweep adds burial contributions from
    // every other atom, relaxed toward the update (this fixed-point loop is
    // the configured FLOP budget).
    let n = all.len();
    let intrinsic: Vec<f64> = all.iter().map(|a| a.element.vdw_radius() - 0.09).collect();
    let mut born: Vec<f64> = intrinsic.clone();
    for _ in 0..cfg.born_iterations {
        let mut next = vec![0.0f64; n];
        for i in 0..n {
            let mut inv = 1.0 / intrinsic[i];
            for j in 0..n {
                if i == j {
                    continue;
                }
                let r = all[i].pos.dist(all[j].pos).max(0.5);
                // Descreening kernel: nearby atoms reduce the inverse Born
                // radius (deepen burial).
                let s = intrinsic[j] / (r * r + intrinsic[j] * born[j]);
                inv -= 0.12 * s;
            }
            next[i] = (1.0 / inv.max(1e-2)).clamp(intrinsic[i], 12.0);
        }
        // Damped update for stability.
        for i in 0..n {
            born[i] = 0.5 * born[i] + 0.5 * next[i];
        }
    }

    // --- Pairwise ligand-pocket interaction terms. ---
    let mut s = MmGbsaScore::default();
    let kc = 332.0637; // Coulomb constant in kcal·Å/(mol·e²)
    let gb_prefactor = -kc * 0.5 * (1.0 / cfg.eps_in - 1.0 / cfg.eps_out);
    for (li, la) in lig.iter().enumerate() {
        for (pj, pa) in poc.iter().enumerate() {
            let r = la.pos.dist(pa.pos).max(0.8);
            // Lennard-Jones 6-12 with Lorentz combination.
            let rmin = la.element.vdw_radius() + pa.element.vdw_radius();
            let eps = 0.15;
            let sr6 = (rmin / r).powi(6);
            s.e_vdw += eps * (sr6 * sr6 - 2.0 * sr6);
            // Screened Coulomb.
            s.e_coul += kc * la.partial_charge * pa.partial_charge / (cfg.eps_in * r);
            // GB cross term (Still et al.).
            let ai = born[li];
            let aj = born[lig.len() + pj];
            let fgb = (r * r + ai * aj * (-r * r / (4.0 * ai * aj)).exp()).sqrt();
            s.e_gb += gb_prefactor * la.partial_charge * pa.partial_charge / fgb;
        }
    }

    // --- Nonpolar (SASA-like) term: buried surface area of the ligand. ---
    for la in lig {
        let area = 4.0 * std::f64::consts::PI * la.element.vdw_radius().powi(2);
        let buried_frac = poc
            .iter()
            .map(|pa| {
                let r = la.pos.dist(pa.pos);
                let reach = la.element.vdw_radius() + pa.element.vdw_radius() + 1.4;
                (1.0 - r / reach).max(0.0)
            })
            .sum::<f64>()
            .min(1.0);
        s.e_sa -= cfg.surface_tension * area * buried_frac;
    }

    s.total = s.e_vdw + s.e_coul + s.e_gb + s.e_sa;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfchem::element::Element;
    use dfchem::genmol::{generate_molecule, MolGenConfig};
    use dfchem::geom::Vec3;
    use dfchem::mol::Atom;
    use dfchem::pocket::TargetSite;

    fn docked_pose(seed: u64, target: TargetSite) -> (Molecule, BindingPocket) {
        let lig = generate_molecule(
            &MolGenConfig { min_heavy: 8, max_heavy: 14, ..MolGenConfig::default() },
            "lig",
            seed,
        );
        let pocket = BindingPocket::generate(target, seed);
        let poses = crate::search::dock(
            &crate::search::DockConfig { mc_restarts: 2, mc_steps: 30, ..Default::default() },
            &lig,
            &pocket,
            seed,
        );
        (poses[0].ligand.clone(), pocket)
    }

    #[test]
    fn decomposition_sums_to_total() {
        let (lig, pocket) = docked_pose(1, TargetSite::Spike1);
        let s = mmgbsa_score(&MmGbsaConfig::default(), &lig, &pocket);
        assert!((s.total - (s.e_vdw + s.e_coul + s.e_gb + s.e_sa)).abs() < 1e-9);
    }

    #[test]
    fn docked_pose_scores_better_than_far_away() {
        let (lig, pocket) = docked_pose(2, TargetSite::Protease1);
        let near = mmgbsa_score(&MmGbsaConfig::default(), &lig, &pocket).total;
        let mut far = lig.clone();
        far.translate(Vec3::new(100.0, 0.0, 0.0));
        let far_score = mmgbsa_score(&MmGbsaConfig::default(), &far, &pocket).total;
        assert!(near < far_score, "bound pose {near:.2} vs unbound {far_score:.2}");
        // Only the slow 1/r Coulomb tail survives at 100 Å.
        assert!(far_score.abs() < 0.5, "near-zero interaction at 100 Å, got {far_score}");
    }

    #[test]
    fn sa_term_is_attractive_for_buried_ligands() {
        // Place a probe atom directly against a pocket atom so burial is
        // guaranteed.
        let pocket = BindingPocket::generate(TargetSite::Spike1, 3);
        let wall = pocket.atoms[0].pos;
        let mut lig = Molecule::new("probe");
        lig.add_atom(Atom::new(
            Element::C,
            wall.add(wall.normalized().scale(-2.0 * Element::C.vdw_radius())),
        ));
        let s = mmgbsa_score(&MmGbsaConfig::default(), &lig, &pocket);
        assert!(s.e_sa < 0.0, "buried surface must contribute favourably, got {}", s.e_sa);
    }

    #[test]
    fn born_iterations_control_cost_not_blowup() {
        let (lig, pocket) = docked_pose(4, TargetSite::Spike2);
        let cheap =
            mmgbsa_score(&MmGbsaConfig { born_iterations: 2, ..Default::default() }, &lig, &pocket);
        let expensive = mmgbsa_score(&MmGbsaConfig::default(), &lig, &pocket);
        assert!(cheap.total.is_finite() && expensive.total.is_finite());
        // Results differ (the iteration matters) but stay the same order of
        // magnitude.
        assert!((cheap.total - expensive.total).abs() < cheap.total.abs().max(10.0));
    }

    #[test]
    fn opposite_charges_attract_in_gb_model() {
        let mut lig = Molecule::new("ion+");
        let mut a = Atom::new(Element::N, Vec3::ZERO);
        a.partial_charge = 0.5;
        lig.add_atom(a);
        let mut pa = Atom::new(Element::O, Vec3::new(3.5, 0.0, 0.0));
        pa.partial_charge = -0.5;
        let pocket = BindingPocket {
            target: TargetSite::Spike1,
            atoms: vec![pa],
            radius: 5.0,
            entrance: Vec3::new(0.0, 0.0, 1.0),
        };
        let s = mmgbsa_score(&MmGbsaConfig::default(), &lig, &pocket);
        assert!(s.e_coul < 0.0, "opposite charges attract");
        assert!(s.e_gb > 0.0, "solvent screening opposes the attraction");
        assert!(s.e_coul + s.e_gb < 0.0, "net electrostatics remain attractive");
    }
}
