//! Monte-Carlo pose search (the CDT3Docking stage).
//!
//! Mirrors Vina's search strategy at reduced scale: several independent
//! Monte-Carlo chains (the paper runs 8 per compound) propose rigid-body
//! translations/rotations with simulated-annealing acceptance; the best
//! poses across chains are deduplicated by RMSD and the top `num_poses`
//! (≤ 10, as in ConveyorLC) are returned, ranked by score.

use crate::vina::vina_score;
use dfchem::geom::{Rotation, Vec3};
use dfchem::mol::Molecule;
use dfchem::pocket::BindingPocket;
use dfchem::rmsd::rmsd;
use dftensor::rng::{derive_seed, normal_with, rng, uniform};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Docking search configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DockConfig {
    /// Independent Monte-Carlo chains (paper: 8 per compound).
    pub mc_restarts: usize,
    /// Steps per chain.
    pub mc_steps: usize,
    /// Maximum poses returned (ConveyorLC keeps up to 10).
    pub num_poses: usize,
    /// Minimum RMSD between two kept poses.
    pub pose_rmsd_dedup: f64,
    /// Starting Metropolis temperature (annealed to ~0 linearly).
    pub start_temperature: f64,
}

impl Default for DockConfig {
    fn default() -> Self {
        Self {
            mc_restarts: 8,
            mc_steps: 120,
            num_poses: 10,
            pose_rmsd_dedup: 1.0,
            start_temperature: 1.2,
        }
    }
}

/// One docked pose: the posed conformer and its Vina score.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pose {
    pub ligand: Molecule,
    /// Vina score (more negative = stronger).
    pub vina: f64,
    /// Rank among this compound's kept poses (0 = best).
    pub rank: usize,
}

/// Docks a ligand into a pocket, returning up to `num_poses` poses ordered
/// best-first. Deterministic given the seed.
pub fn dock(cfg: &DockConfig, ligand: &Molecule, pocket: &BindingPocket, seed: u64) -> Vec<Pose> {
    let _t = dftrace::span("dock.search");
    dftrace::counter_add("dock.compounds", 1);
    // Each chain owns an RNG derived from (seed, chain) and never touches
    // shared state, so the chains fan out over the current pool; collecting
    // by chain index keeps `candidates` bit-identical to the serial loop.
    let candidates: Vec<(Molecule, f64)> =
        dfpool::current()
            .parallel_map(cfg.mc_restarts, 1, |chain| run_chain(cfg, ligand, pocket, seed, chain));
    // Rank and deduplicate by RMSD.
    let mut candidates = candidates;
    candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut kept: Vec<Pose> = Vec::new();
    for (mol, score) in candidates {
        if kept.len() >= cfg.num_poses {
            break;
        }
        let dup = kept.iter().any(|k| rmsd(&k.ligand, &mol) < cfg.pose_rmsd_dedup);
        if !dup {
            kept.push(Pose { ligand: mol, vina: score, rank: kept.len() });
        }
    }
    kept
}

/// Runs one annealed Monte-Carlo chain and returns its best pose + score.
fn run_chain(
    cfg: &DockConfig,
    ligand: &Molecule,
    pocket: &BindingPocket,
    seed: u64,
    chain: usize,
) -> (Molecule, f64) {
    // Chains run as pool jobs, so this span lands on the executing worker's
    // shard; steps/s = dock.mc.steps / the dock.mc_chain span total.
    let _t = dftrace::span("dock.mc_chain");
    let mut accepts: u64 = 0;
    let mut r = rng(derive_seed(seed, chain as u64));
    // Random initial placement inside the cavity.
    let mut pose = ligand.clone();
    let c = pose.centroid();
    pose.translate(c.scale(-1.0));
    pose.rotate_about_centroid(&random_rotation(&mut r));
    let jitter = Vec3::new(
        normal_with(&mut r, 0.0, pocket.radius * 0.25),
        normal_with(&mut r, 0.0, pocket.radius * 0.25),
        normal_with(&mut r, 0.0, pocket.radius * 0.25),
    );
    pose.translate(jitter);

    let mut best = pose.clone();
    let mut best_score = vina_score(&best, pocket).total;
    let mut cur = pose;
    let mut cur_score = best_score;
    for step in 0..cfg.mc_steps {
        let t = cfg.start_temperature * (1.0 - step as f64 / cfg.mc_steps as f64) + 1e-3;
        let mut next = cur.clone();
        // Rigid-body proposal.
        next.translate(Vec3::new(
            normal_with(&mut r, 0.0, 0.45),
            normal_with(&mut r, 0.0, 0.45),
            normal_with(&mut r, 0.0, 0.45),
        ));
        next.rotate_about_centroid(&Rotation::about_axis(
            random_axis(&mut r),
            normal_with(&mut r, 0.0, 0.30),
        ));
        // Keep the ligand inside the search box.
        if next.centroid().norm() > pocket.radius {
            continue;
        }
        let next_score = vina_score(&next, pocket).total;
        let accept =
            next_score < cur_score || r.gen::<f64>() < ((cur_score - next_score) / t).exp();
        if accept {
            accepts += 1;
            cur = next;
            cur_score = next_score;
            if cur_score < best_score {
                best = cur.clone();
                best_score = cur_score;
            }
        }
    }
    dftrace::counter_add("dock.mc.steps", cfg.mc_steps as u64);
    dftrace::counter_add("dock.mc.accepts", accepts);
    (best, best_score)
}

fn random_axis(r: &mut impl Rng) -> Vec3 {
    Vec3::new(normal_with(r, 0.0, 1.0), normal_with(r, 0.0, 1.0), normal_with(r, 0.0, 1.0))
        .normalized()
}

fn random_rotation(r: &mut impl Rng) -> Rotation {
    Rotation::about_axis(random_axis(r), uniform(r, 0.0, std::f64::consts::TAU))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfchem::genmol::{generate_molecule, MolGenConfig};
    use dfchem::pocket::TargetSite;

    fn small_cfg() -> DockConfig {
        DockConfig { mc_restarts: 4, mc_steps: 40, ..DockConfig::default() }
    }

    fn test_ligand(seed: u64) -> Molecule {
        generate_molecule(
            &MolGenConfig { min_heavy: 8, max_heavy: 14, ..MolGenConfig::default() },
            "lig",
            seed,
        )
    }

    #[test]
    fn docking_is_deterministic() {
        let lig = test_ligand(1);
        let pocket = BindingPocket::generate(TargetSite::Spike1, 1);
        let a = dock(&small_cfg(), &lig, &pocket, 99);
        let b = dock(&small_cfg(), &lig, &pocket, 99);
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.vina, pb.vina);
            assert_eq!(pa.ligand, pb.ligand);
        }
    }

    #[test]
    fn poses_are_ranked_best_first_and_deduplicated() {
        let lig = test_ligand(2);
        let pocket = BindingPocket::generate(TargetSite::Protease1, 2);
        let poses = dock(&small_cfg(), &lig, &pocket, 7);
        assert!(!poses.is_empty());
        assert!(poses.len() <= 10);
        for w in poses.windows(2) {
            assert!(w[0].vina <= w[1].vina, "poses must be sorted by score");
            assert!(rmsd(&w[0].ligand, &w[1].ligand) >= 1.0, "poses must be distinct");
        }
        for (i, p) in poses.iter().enumerate() {
            assert_eq!(p.rank, i);
        }
    }

    #[test]
    fn search_improves_over_random_placement() {
        let lig = test_ligand(3);
        let pocket = BindingPocket::generate(TargetSite::Protease1, 3);
        // Random placement baseline: centre the ligand, no optimization.
        let mut centred = lig.clone();
        let c = centred.centroid();
        centred.translate(c.scale(-1.0));
        let baseline = vina_score(&centred, &pocket).total;
        let best = dock(&small_cfg(), &lig, &pocket, 11)[0].vina;
        assert!(best < baseline, "MC search ({best:.3}) must beat baseline ({baseline:.3})");
    }

    #[test]
    fn poses_stay_inside_the_pocket() {
        let lig = test_ligand(4);
        let pocket = BindingPocket::generate(TargetSite::Spike2, 4);
        for p in dock(&small_cfg(), &lig, &pocket, 5) {
            assert!(p.ligand.centroid().norm() <= pocket.radius + 1e-9);
        }
    }

    #[test]
    fn internal_geometry_is_preserved() {
        // Rigid docking must not distort the conformer.
        let lig = test_ligand(5);
        let pocket = BindingPocket::generate(TargetSite::Spike1, 5);
        let poses = dock(&small_cfg(), &lig, &pocket, 3);
        let d_orig = lig.atoms[0].pos.dist(lig.atoms[1].pos);
        for p in &poses {
            let d = p.ligand.atoms[0].pos.dist(p.ligand.atoms[1].pos);
            assert!((d - d_orig).abs() < 1e-9);
        }
    }
}
