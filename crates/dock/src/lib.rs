//! `dfdock` — the physics-based screening substrate.
//!
//! Re-implements the ConveyorLC toolchain the paper's campaign runs on:
//! a Vina-style empirical scoring function ([`vina`]), Monte-Carlo pose
//! search ([`search`]), MM/GBSA re-scoring with generalized-Born
//! electrostatics ([`mmgbsa`]) and the four-stage parallel pipeline
//! ([`conveyor`]). These are both the substrate that produces docked poses
//! for the fusion models and the baselines they are compared against
//! (Figure 2, Table 8, the §4.2 throughput comparison).
//!
//! Search fans its MC restarts out over the global `dfpool` runtime (size
//! it with `DFPOOL_THREADS`) and is bit-deterministic for a given seed at
//! any thread count. With `DFTRACE=1` it reports `dock.search` /
//! `dock.mc_chain` spans and `dock.mc.steps` / `dock.mc.accepts` /
//! `dock.compounds` counters (acceptance rate = accepts ÷ steps); see
//! `docs/OBSERVABILITY.md`.

pub mod conveyor;
pub mod flex;
pub mod mmgbsa;
pub mod search;
pub mod vina;

pub use conveyor::{
    cdt1_receptor, cdt2_ligand, cdt3_docking, cdt4_mmgbsa, process_compound, screen,
    ConveyorConfig, DockRecord, PipelineError, ScreenOutput,
};
pub use flex::{apply_torsion, dock_flexible, find_torsions, Torsion};
pub use mmgbsa::{mmgbsa_score, MmGbsaConfig, MmGbsaScore};
pub use search::{dock, DockConfig, Pose};
pub use vina::{vina_affinity, vina_score, VinaScore};
