//! ConveyorLC-style docking pipeline (Zhang et al.).
//!
//! Four stages mirroring the paper's §4.1:
//!
//! 1. `CDT1Receptor` — protein preparation (pocket generation + charge
//!    assignment),
//! 2. `CDT2Ligand` — ligand preparation (drug-likeness filter, conformer
//!    relaxation, charges),
//! 3. `CDT3Docking` — Monte-Carlo docking with the Vina scoring function,
//! 4. `CDT4mmgbsa` — MM/GBSA re-scoring of the top poses for a *subset* of
//!    compounds (it is orders of magnitude more expensive).
//!
//! `screen` drives the stages across a crossbeam worker pool, one compound
//! per task, matching the paper's MPI+threads hybrid on CPU nodes.

use crate::mmgbsa::{mmgbsa_score, MmGbsaConfig};
use crate::search::{dock, DockConfig, Pose};
use dfchem::genmol::Compound;
use dfchem::pocket::{BindingPocket, TargetSite};
use dftensor::rng::derive_seed;
use serde::{Deserialize, Serialize};

/// Errors surfaced by pipeline stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// Ligand failed preparation (not drug-like / degenerate structure).
    LigandRejected(String),
    /// Docking produced no acceptable pose.
    NoPoses(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::LigandRejected(id) => write!(f, "ligand {id} rejected in preparation"),
            PipelineError::NoPoses(id) => write!(f, "no poses produced for {id}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Docking + optional re-scoring output for one compound on one target.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DockRecord {
    pub compound: dfchem::genmol::CompoundId,
    pub target: TargetSite,
    pub poses: Vec<Pose>,
    /// MM/GBSA totals aligned with `poses` (empty when re-scoring was
    /// skipped for this compound).
    pub mmgbsa: Vec<f64>,
}

impl DockRecord {
    /// Strongest (most negative) Vina score across poses.
    pub fn best_vina(&self) -> f64 {
        self.poses.iter().map(|p| p.vina).fold(f64::INFINITY, f64::min)
    }

    /// Strongest (most negative) MM/GBSA score across re-scored poses.
    pub fn best_mmgbsa(&self) -> Option<f64> {
        self.mmgbsa.iter().copied().fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConveyorConfig {
    pub dock: DockConfig,
    pub mmgbsa: MmGbsaConfig,
    /// Re-score the top-`mmgbsa_top_poses` poses with MM/GBSA...
    pub mmgbsa_top_poses: usize,
    /// ...but only for every `mmgbsa_every`-th compound (cost control; the
    /// paper re-scores only a subset of the screen). 0 disables MM/GBSA.
    pub mmgbsa_every: usize,
}

impl Default for ConveyorConfig {
    fn default() -> Self {
        Self {
            dock: DockConfig::default(),
            mmgbsa: MmGbsaConfig::default(),
            mmgbsa_top_poses: 3,
            mmgbsa_every: 1,
        }
    }
}

/// Stage 1: protein preparation.
pub fn cdt1_receptor(target: TargetSite, campaign_seed: u64) -> BindingPocket {
    BindingPocket::generate(target, campaign_seed)
}

/// Stage 2: ligand preparation. Rejects non-drug-like compounds and
/// re-relaxes the conformer (protonation/charge assignment equivalent).
pub fn cdt2_ligand(compound: &Compound) -> Result<Compound, PipelineError> {
    if compound.mol.num_atoms() < 3 {
        return Err(PipelineError::LigandRejected(compound.id.to_string()));
    }
    if !compound.is_drug_like() {
        return Err(PipelineError::LigandRejected(compound.id.to_string()));
    }
    let mut prepared = compound.clone();
    dfchem::genmol::relax_conformer(&mut prepared.mol, 10);
    prepared.mol.assign_partial_charges();
    Ok(prepared)
}

/// Stage 3: docking.
pub fn cdt3_docking(
    cfg: &DockConfig,
    compound: &Compound,
    pocket: &BindingPocket,
    campaign_seed: u64,
) -> Result<Vec<Pose>, PipelineError> {
    let seed = derive_seed(campaign_seed, 0xD0C0 ^ compound.id.index);
    let poses = dock(cfg, &compound.mol, pocket, seed);
    if poses.is_empty() {
        return Err(PipelineError::NoPoses(compound.id.to_string()));
    }
    Ok(poses)
}

/// Stage 4: MM/GBSA re-scoring of the best poses.
pub fn cdt4_mmgbsa(
    cfg: &MmGbsaConfig,
    poses: &[Pose],
    pocket: &BindingPocket,
    top: usize,
) -> Vec<f64> {
    poses.iter().take(top).map(|p| mmgbsa_score(cfg, &p.ligand, pocket).total).collect()
}

/// Runs the full pipeline for one compound on one target.
pub fn process_compound(
    cfg: &ConveyorConfig,
    compound: &Compound,
    pocket: &BindingPocket,
    campaign_seed: u64,
) -> Result<DockRecord, PipelineError> {
    let prepared = cdt2_ligand(compound)?;
    let poses = cdt3_docking(&cfg.dock, &prepared, pocket, campaign_seed)?;
    let rescore = cfg.mmgbsa_every > 0 && compound.id.index.is_multiple_of(cfg.mmgbsa_every as u64);
    let mmgbsa = if rescore {
        cdt4_mmgbsa(&cfg.mmgbsa, &poses, pocket, cfg.mmgbsa_top_poses)
    } else {
        Vec::new()
    };
    Ok(DockRecord { compound: compound.id, target: pocket.target, poses, mmgbsa })
}

/// Screens a batch of compounds against one pocket across `threads` worker
/// threads. Rejected ligands are skipped (counted in the return).
pub fn screen(
    cfg: &ConveyorConfig,
    compounds: &[Compound],
    pocket: &BindingPocket,
    campaign_seed: u64,
    threads: usize,
) -> ScreenOutput {
    assert!(threads >= 1, "at least one worker thread required");
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<parking_lot::Mutex<Option<Result<DockRecord, PipelineError>>>> =
        (0..compounds.len()).map(|_| parking_lot::Mutex::new(None)).collect();

    crossbeam::scope(|s| {
        for _ in 0..threads.min(compounds.len().max(1)) {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= compounds.len() {
                    break;
                }
                let out = process_compound(cfg, &compounds[i], pocket, campaign_seed);
                *results[i].lock() = Some(out);
            });
        }
    })
    .expect("screening worker panicked");

    let mut records = Vec::with_capacity(compounds.len());
    let mut rejected = 0usize;
    for slot in results {
        match slot.into_inner().expect("every compound processed") {
            Ok(rec) => records.push(rec),
            Err(_) => rejected += 1,
        }
    }
    ScreenOutput { records, rejected }
}

/// Output of a screening batch.
#[derive(Debug)]
pub struct ScreenOutput {
    pub records: Vec<DockRecord>,
    pub rejected: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfchem::genmol::Library;

    fn quick_cfg() -> ConveyorConfig {
        ConveyorConfig {
            dock: DockConfig { mc_restarts: 2, mc_steps: 25, ..Default::default() },
            mmgbsa: MmGbsaConfig { born_iterations: 2, ..Default::default() },
            mmgbsa_top_poses: 2,
            mmgbsa_every: 2,
        }
    }

    fn compounds(n: u64) -> Vec<Compound> {
        (0..n).map(|i| Compound::materialize(Library::EnamineVirtual, i, 5)).collect()
    }

    #[test]
    fn full_pipeline_produces_records() {
        let pocket = cdt1_receptor(TargetSite::Spike1, 5);
        let comp = &compounds(1)[0];
        let rec = process_compound(&quick_cfg(), comp, &pocket, 5).unwrap();
        assert!(!rec.poses.is_empty());
        assert!(rec.best_vina() <= rec.poses[0].vina);
        assert_eq!(rec.target, TargetSite::Spike1);
        // Index 0 is re-scored under mmgbsa_every=2.
        assert!(!rec.mmgbsa.is_empty());
        assert!(rec.best_mmgbsa().is_some());
    }

    #[test]
    fn mmgbsa_subsetting_skips_odd_indices() {
        let pocket = cdt1_receptor(TargetSite::Spike1, 5);
        let comps = compounds(2);
        let rec1 = process_compound(&quick_cfg(), &comps[1], &pocket, 5).unwrap();
        assert!(rec1.mmgbsa.is_empty(), "odd index must skip MM/GBSA");
        assert!(rec1.best_mmgbsa().is_none());
    }

    #[test]
    fn parallel_screen_matches_sequential() {
        let pocket = cdt1_receptor(TargetSite::Spike2, 9);
        let comps = compounds(6);
        let seq = screen(&quick_cfg(), &comps, &pocket, 9, 1);
        let par = screen(&quick_cfg(), &comps, &pocket, 9, 4);
        assert_eq!(seq.records.len(), par.records.len());
        assert_eq!(seq.rejected, par.rejected);
        for (a, b) in seq.records.iter().zip(&par.records) {
            assert_eq!(a.compound, b.compound);
            assert_eq!(a.best_vina(), b.best_vina());
        }
    }

    #[test]
    fn tiny_ligands_are_rejected() {
        let mut c = Compound::materialize(Library::EnamineVirtual, 0, 1);
        c.mol.atoms.truncate(2);
        c.mol.bonds.retain(|b| b.a < 2 && b.b < 2);
        assert!(matches!(cdt2_ligand(&c), Err(PipelineError::LigandRejected(_))));
    }
}
