//! AutoDock-Vina-style empirical scoring function.
//!
//! Re-implements the functional form of Trott & Olson 2010: two attractive
//! Gaussian steric terms, a quadratic repulsion, a piecewise-linear
//! hydrophobic term and a piecewise-linear hydrogen-bond term, all over the
//! *surface distance* (centre distance minus vdW radii), divided by a
//! rotor-count penalty. More negative is a stronger predicted binder, as in
//! Vina (kcal/mol-like units).

use dfchem::mol::Molecule;
use dfchem::pocket::BindingPocket;

/// Interaction cutoff in Å (Vina's default grid reach).
pub const CUTOFF: f64 = 8.0;

/// Term weights from the Vina paper.
pub const W_GAUSS1: f64 = -0.035579;
pub const W_GAUSS2: f64 = -0.005156;
pub const W_REPULSION: f64 = 0.840245;
pub const W_HYDROPHOBIC: f64 = -0.035069;
pub const W_HBOND: f64 = -0.587439;
/// Rotor penalty weight in the 1/(1 + w·N_rot) normalization.
pub const W_ROT: f64 = 0.05846;

/// Per-term breakdown of a Vina score.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VinaScore {
    pub gauss1: f64,
    pub gauss2: f64,
    pub repulsion: f64,
    pub hydrophobic: f64,
    pub hbond: f64,
    /// Number of rotatable bonds used in the normalization.
    pub num_rotors: usize,
    /// Final weighted, rotor-normalized score (more negative = stronger).
    pub total: f64,
}

/// Scores one ligand pose against the pocket.
pub fn vina_score(ligand: &Molecule, pocket: &BindingPocket) -> VinaScore {
    let mut s = VinaScore { num_rotors: ligand.num_rotatable_bonds(), ..Default::default() };
    for la in &ligand.atoms {
        for pa in &pocket.atoms {
            let d = la.pos.dist(pa.pos);
            if d > CUTOFF {
                continue;
            }
            // Surface distance.
            let ds = d - (la.element.vdw_radius() + pa.element.vdw_radius());
            s.gauss1 += (-(ds / 0.5).powi(2)).exp();
            s.gauss2 += (-((ds - 3.0) / 2.0).powi(2)).exp();
            if ds < 0.0 {
                s.repulsion += ds * ds;
            }
            if la.element.is_hydrophobic() && pa.element.is_hydrophobic() {
                s.hydrophobic += slope_step(ds, 0.5, 1.5);
            }
            let donor_acceptor = (la.element.is_hbond_donor() && pa.element.is_hbond_acceptor())
                || (la.element.is_hbond_acceptor() && pa.element.is_hbond_donor());
            if donor_acceptor {
                s.hbond += slope_step(ds, -0.7, 0.0);
            }
        }
    }
    let raw = W_GAUSS1 * s.gauss1
        + W_GAUSS2 * s.gauss2
        + W_REPULSION * s.repulsion
        + W_HYDROPHOBIC * s.hydrophobic
        + W_HBOND * s.hbond;
    s.total = raw / (1.0 + W_ROT * s.num_rotors as f64);
    s
}

/// Affinity-only entry point for the serving degradation ladder: the full
/// per-term breakdown is skipped in the response, only the rotor-normalized
/// total survives. The empirical score needs no featurization, no weights
/// and no batching, which is why it is the last scoring tier before
/// requests are shed outright.
pub fn vina_affinity(ligand: &Molecule, pocket: &BindingPocket) -> f64 {
    let _t = dftrace::span("dock.vina_affinity");
    vina_score(ligand, pocket).total
}

/// 1 below `lo`, 0 above `hi`, linear in between.
fn slope_step(x: f64, lo: f64, hi: f64) -> f64 {
    if x <= lo {
        1.0
    } else if x >= hi {
        0.0
    } else {
        (hi - x) / (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfchem::element::Element;
    use dfchem::geom::Vec3;
    use dfchem::mol::Atom;
    use dfchem::pocket::TargetSite;

    fn pocket_with(atoms: Vec<Atom>) -> BindingPocket {
        BindingPocket {
            target: TargetSite::Spike1,
            atoms,
            radius: 5.0,
            entrance: Vec3::new(0.0, 0.0, 1.0),
        }
    }

    fn probe(e: Element, pos: Vec3) -> Molecule {
        let mut m = Molecule::new("p");
        m.add_atom(Atom::new(e, pos));
        m
    }

    #[test]
    fn slope_step_shape() {
        assert_eq!(slope_step(-1.0, 0.5, 1.5), 1.0);
        assert_eq!(slope_step(2.0, 0.5, 1.5), 0.0);
        assert!((slope_step(1.0, 0.5, 1.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distant_atoms_score_zero() {
        let lig = probe(Element::C, Vec3::new(0.0, 0.0, 0.0));
        let pocket = pocket_with(vec![Atom::new(Element::C, Vec3::new(50.0, 0.0, 0.0))]);
        let s = vina_score(&lig, &pocket);
        assert_eq!(s.total, 0.0);
    }

    #[test]
    fn contact_at_vdw_surface_is_favourable() {
        // Two carbons touching at their vdW radii: gauss1 peaks, no
        // repulsion, hydrophobic bonus — total must be negative.
        let d = 2.0 * Element::C.vdw_radius();
        let lig = probe(Element::C, Vec3::ZERO);
        let pocket = pocket_with(vec![Atom::new(Element::C, Vec3::new(d, 0.0, 0.0))]);
        let s = vina_score(&lig, &pocket);
        assert!(s.repulsion == 0.0);
        assert!(s.hydrophobic > 0.9);
        assert!(s.total < 0.0, "favourable contact must score negative, got {}", s.total);
    }

    #[test]
    fn steric_clash_is_penalized() {
        let lig = probe(Element::C, Vec3::ZERO);
        let near = pocket_with(vec![Atom::new(Element::C, Vec3::new(1.0, 0.0, 0.0))]);
        let s = vina_score(&lig, &near);
        assert!(s.repulsion > 0.0);
        assert!(s.total > 0.0, "hard clash should be unfavourable, got {}", s.total);
    }

    #[test]
    fn hbond_pairs_score_better_than_apolar_at_contact() {
        let d = Element::O.vdw_radius() + Element::N.vdw_radius() - 0.4;
        let polar = vina_score(
            &probe(Element::O, Vec3::ZERO),
            &pocket_with(vec![Atom::new(Element::N, Vec3::new(d, 0.0, 0.0))]),
        );
        let apolar_d = 2.0 * Element::C.vdw_radius() - 0.4;
        let apolar = vina_score(
            &probe(Element::C, Vec3::ZERO),
            &pocket_with(vec![Atom::new(Element::C, Vec3::new(apolar_d, 0.0, 0.0))]),
        );
        assert!(polar.hbond > 0.5);
        assert!(polar.total < apolar.total, "H-bond should dominate hydrophobic contact");
    }

    #[test]
    fn rotor_penalty_shrinks_score_magnitude() {
        // Same interactions, one molecule with rotors: |score| decreases.
        let mut rigid = Molecule::new("rigid");
        rigid.add_atom(Atom::new(Element::C, Vec3::ZERO));
        let mut flexible = Molecule::new("flex");
        // A 4-carbon chain has one rotatable bond.
        for i in 0..4 {
            flexible.add_atom(Atom::new(Element::C, Vec3::new(i as f64 * 1.5, 10.0, 0.0)));
        }
        for i in 1..4 {
            flexible.add_bond(i - 1, i, dfchem::mol::BondOrder::Single);
        }
        // Put one additional probe atom of `flexible` at the contact point.
        flexible.atoms[0].pos = Vec3::ZERO;
        let d = 2.0 * Element::C.vdw_radius();
        let pocket = pocket_with(vec![Atom::new(Element::C, Vec3::new(d, 0.0, 0.0))]);
        let s_r = vina_score(&rigid, &pocket);
        let s_f = vina_score(&flexible, &pocket);
        assert_eq!(s_f.num_rotors, 1);
        assert!(s_f.total.abs() < s_r.total.abs());
    }
}
