//! Flexible-ligand docking: torsion sampling around rotatable bonds.
//!
//! AutoDock Vina's search space is the ligand's rigid-body pose *plus* its
//! torsion angles (that is why its score carries a rotor penalty). The
//! base [`crate::search`] module samples rigid poses only; this module
//! adds the torsional degrees of freedom: rotatable bonds are detected
//! (single-order bridge bonds between non-terminal heavy atoms), each
//! proposal perturbs a random torsion by rotating the smaller side of the
//! molecule about the bond axis, and the Monte-Carlo loop anneals over the
//! joint space.

use crate::search::{DockConfig, Pose};
use crate::vina::vina_score;
use dfchem::geom::{Rotation, Vec3};
use dfchem::mol::Molecule;
use dfchem::pocket::BindingPocket;
use dfchem::rmsd::rmsd;
use dftensor::rng::{derive_seed, normal_with, rng, uniform};
use rand::Rng;

/// A rotatable bond with the atom set on its smaller side.
#[derive(Debug, Clone)]
pub struct Torsion {
    /// Bond endpoints (axis a → b).
    pub a: usize,
    pub b: usize,
    /// Atoms rotated when this torsion turns (the side containing `b`,
    /// excluding `b` itself is included — every atom downstream of the
    /// bond on `b`'s side).
    pub moving: Vec<usize>,
}

/// Finds the ligand's torsions: for every rotatable bond, the moving set
/// is the smaller connected component obtained by deleting the bond.
pub fn find_torsions(mol: &Molecule) -> Vec<Torsion> {
    let bridges = mol.bridge_bonds();
    let degrees = mol.degrees();
    let mut torsions = Vec::new();
    for (bi, bond) in mol.bonds.iter().enumerate() {
        let rotatable = bridges[bi]
            && bond.order == dfchem::mol::BondOrder::Single
            && degrees[bond.a] > 1
            && degrees[bond.b] > 1;
        if !rotatable {
            continue;
        }
        // Component containing `b` when the bond is removed.
        let side_b = component_without_bond(mol, bond.a, bond.b);
        let side_a: Vec<usize> = (0..mol.num_atoms()).filter(|i| !side_b.contains(i)).collect();
        let (a, b, moving) = if side_b.len() <= side_a.len() {
            (bond.a, bond.b, side_b)
        } else {
            (bond.b, bond.a, side_a)
        };
        torsions.push(Torsion { a, b, moving });
    }
    torsions
}

/// BFS from `from`, never crossing the (from, other) bond; returns the
/// reachable set (which contains `from`).
fn component_without_bond(mol: &Molecule, other: usize, from: usize) -> Vec<usize> {
    let adj = mol.adjacency();
    let mut seen = vec![false; mol.num_atoms()];
    seen[from] = true;
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if u == from && v == other {
                continue; // the deleted bond
            }
            if !seen[v] {
                seen[v] = true;
                queue.push_back(v);
            }
        }
    }
    (0..mol.num_atoms()).filter(|&i| seen[i]).collect()
}

/// Rotates a torsion's moving set by `angle` about the bond axis, in place.
pub fn apply_torsion(mol: &mut Molecule, torsion: &Torsion, angle: f64) {
    let pivot = mol.atoms[torsion.a].pos;
    let axis = mol.atoms[torsion.b].pos.sub(pivot).normalized();
    let rot = Rotation::about_axis(axis, angle);
    for &i in &torsion.moving {
        if i == torsion.a {
            continue; // the pivot end never moves
        }
        let rel = mol.atoms[i].pos.sub(pivot);
        mol.atoms[i].pos = rot.apply(rel).add(pivot);
    }
}

/// Internal steric self-clash penalty: flexible proposals can fold the
/// ligand onto itself, which the intermolecular Vina score cannot see.
fn self_clash(mol: &Molecule) -> f64 {
    let bonded: std::collections::HashSet<(usize, usize)> =
        mol.bonds.iter().map(|b| (b.a, b.b)).collect();
    let mut penalty = 0.0;
    for i in 0..mol.num_atoms() {
        for j in (i + 1)..mol.num_atoms() {
            if bonded.contains(&(i, j)) {
                continue;
            }
            let min_d =
                0.7 * (mol.atoms[i].element.vdw_radius() + mol.atoms[j].element.vdw_radius());
            let d = mol.atoms[i].pos.dist(mol.atoms[j].pos);
            if d < min_d {
                let overlap = min_d - d;
                penalty += overlap * overlap;
            }
        }
    }
    penalty
}

/// Flexible docking: Monte-Carlo over rigid pose + torsions.
///
/// Returns up to `cfg.num_poses` poses ranked by Vina score, like
/// [`crate::search::dock`] — the conformer may differ from the input.
pub fn dock_flexible(
    cfg: &DockConfig,
    ligand: &Molecule,
    pocket: &BindingPocket,
    seed: u64,
) -> Vec<Pose> {
    let torsions = find_torsions(ligand);
    let mut candidates: Vec<(Molecule, f64)> = Vec::with_capacity(cfg.mc_restarts);
    for chain in 0..cfg.mc_restarts {
        let mut r = rng(derive_seed(seed, 0xF1E ^ chain as u64));
        let mut cur = ligand.clone();
        let c = cur.centroid();
        cur.translate(c.scale(-1.0));
        cur.rotate_about_centroid(&Rotation::about_axis(
            random_axis(&mut r),
            uniform(&mut r, 0.0, std::f64::consts::TAU),
        ));
        let score_of = |m: &Molecule| vina_score(m, pocket).total + 0.3 * self_clash(m);
        let mut cur_score = score_of(&cur);
        let mut best = cur.clone();
        let mut best_score = cur_score;

        for step in 0..cfg.mc_steps {
            let t = cfg.start_temperature * (1.0 - step as f64 / cfg.mc_steps as f64) + 1e-3;
            let mut next = cur.clone();
            // Mixed proposal: 50% rigid, 50% torsional (when any exist).
            if torsions.is_empty() || r.gen::<bool>() {
                next.translate(Vec3::new(
                    normal_with(&mut r, 0.0, 0.45),
                    normal_with(&mut r, 0.0, 0.45),
                    normal_with(&mut r, 0.0, 0.45),
                ));
                next.rotate_about_centroid(&Rotation::about_axis(
                    random_axis(&mut r),
                    normal_with(&mut r, 0.0, 0.30),
                ));
            } else {
                let torsion = &torsions[r.gen_range(0..torsions.len())];
                apply_torsion(&mut next, torsion, normal_with(&mut r, 0.0, 0.6));
            }
            if next.centroid().norm() > pocket.radius {
                continue;
            }
            let next_score = score_of(&next);
            if next_score < cur_score || r.gen::<f64>() < ((cur_score - next_score) / t).exp() {
                cur = next;
                cur_score = next_score;
                if cur_score < best_score {
                    best = cur.clone();
                    best_score = cur_score;
                }
            }
        }
        // Report the pure intermolecular score for comparability.
        candidates.push((best.clone(), vina_score(&best, pocket).total));
    }

    candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut kept: Vec<Pose> = Vec::new();
    for (mol, score) in candidates {
        if kept.len() >= cfg.num_poses {
            break;
        }
        if !kept.iter().any(|k| rmsd(&k.ligand, &mol) < cfg.pose_rmsd_dedup) {
            kept.push(Pose { ligand: mol, vina: score, rank: kept.len() });
        }
    }
    kept
}

fn random_axis(r: &mut impl Rng) -> Vec3 {
    Vec3::new(normal_with(r, 0.0, 1.0), normal_with(r, 0.0, 1.0), normal_with(r, 0.0, 1.0))
        .normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfchem::element::Element;
    use dfchem::genmol::{generate_molecule, MolGenConfig};
    use dfchem::mol::{Atom, BondOrder};
    use dfchem::pocket::TargetSite;

    fn butane_like() -> Molecule {
        let mut m = Molecule::new("butane");
        for i in 0..4 {
            m.add_atom(Atom::new(Element::C, Vec3::new(i as f64 * 1.5, 0.0, 0.0)));
        }
        for i in 1..4 {
            m.add_bond(i - 1, i, BondOrder::Single);
        }
        m
    }

    #[test]
    fn torsion_detection_matches_rotor_count() {
        let m = butane_like();
        let torsions = find_torsions(&m);
        assert_eq!(torsions.len(), m.num_rotatable_bonds());
        assert_eq!(torsions.len(), 1);
        // The moving side of the single torsion is the smaller half.
        assert!(torsions[0].moving.len() <= 2);
    }

    #[test]
    fn apply_torsion_preserves_bond_lengths() {
        let mut m = butane_like();
        let torsions = find_torsions(&m);
        let before: Vec<f64> =
            m.bonds.iter().map(|b| m.atoms[b.a].pos.dist(m.atoms[b.b].pos)).collect();
        apply_torsion(&mut m, &torsions[0], 1.2);
        let after: Vec<f64> =
            m.bonds.iter().map(|b| m.atoms[b.a].pos.dist(m.atoms[b.b].pos)).collect();
        for (x, y) in before.iter().zip(&after) {
            assert!((x - y).abs() < 1e-9, "bond length changed: {x} -> {y}");
        }
    }

    #[test]
    fn apply_torsion_moves_only_the_moving_side() {
        let mut m = butane_like();
        let torsions = find_torsions(&m);
        let t = torsions[0].clone();
        let orig = m.clone();
        apply_torsion(&mut m, &t, 0.9);
        for i in 0..m.num_atoms() {
            let moved = m.atoms[i].pos.dist(orig.atoms[i].pos) > 1e-9;
            let expected = t.moving.contains(&i) && i != t.a;
            // Atoms on the axis may be in `moving` but sit on the rotation
            // axis; only off-axis moving atoms must move.
            if moved {
                assert!(expected, "atom {i} moved but is not on the moving side");
            }
        }
    }

    #[test]
    fn flexible_docking_finds_poses_at_least_as_good_as_rigid() {
        let pocket = BindingPocket::generate(TargetSite::Spike1, 4);
        let lig = generate_molecule(
            &MolGenConfig { min_heavy: 10, max_heavy: 14, ..Default::default() },
            "m",
            4,
        );
        let rigid_cfg = DockConfig { mc_restarts: 3, mc_steps: 60, ..Default::default() };
        let rigid = crate::search::dock(&rigid_cfg, &lig, &pocket, 9)[0].vina;
        // The joint pose+torsion space is larger, so give the flexible
        // search a correspondingly larger budget (half its proposals are
        // torsional).
        let flex_cfg = DockConfig { mc_restarts: 3, mc_steps: 180, ..Default::default() };
        let flex = dock_flexible(&flex_cfg, &lig, &pocket, 9)[0].vina;
        assert!(
            flex < rigid + 0.5,
            "flexible ({flex:.3}) should be competitive with rigid ({rigid:.3})"
        );
    }

    #[test]
    fn flexible_docking_is_deterministic() {
        let pocket = BindingPocket::generate(TargetSite::Spike2, 5);
        let lig = generate_molecule(&MolGenConfig::default(), "m", 5);
        let cfg = DockConfig { mc_restarts: 2, mc_steps: 30, ..Default::default() };
        let a = dock_flexible(&cfg, &lig, &pocket, 3);
        let b = dock_flexible(&cfg, &lig, &pocket, 3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.vina, y.vina);
        }
    }

    #[test]
    fn self_clash_penalizes_folded_conformers() {
        let mut m = butane_like();
        assert_eq!(self_clash(&m), 0.0);
        // Fold atom 3 onto atom 0.
        m.atoms[3].pos = m.atoms[0].pos.add(Vec3::new(0.3, 0.0, 0.0));
        assert!(self_clash(&m) > 0.0);
    }

    #[test]
    fn rings_contribute_no_torsions() {
        let mut ring = Molecule::new("ring");
        for k in 0..6 {
            ring.add_atom(Atom::new(Element::C, Vec3::new(k as f64, 0.0, 0.0)));
        }
        for k in 1..6 {
            ring.add_bond(k - 1, k, BondOrder::Single);
        }
        ring.add_bond(0, 5, BondOrder::Single);
        assert!(find_torsions(&ring).is_empty());
    }
}
