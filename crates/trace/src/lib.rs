//! `dftrace` — lock-cheap observability for the screening pipeline.
//!
//! The paper's campaign lived on per-node throughput accounting
//! (compounds/s, per-rank inference rates, stage latency); this crate is
//! the reproduction's equivalent measurement substrate. It provides four
//! metric kinds, all recorded into **thread-local shards** that are merged
//! only when a report is taken, so the hot paths never contend on a
//! shared lock:
//!
//! * **hierarchical spans** — scoped RAII timers ([`span`]); nesting on
//!   the same thread builds `/`-joined paths (`train.fwd/tensor.matmul`),
//!   so one instrumentation point reads differently in different callers;
//! * **counters** — monotonic `u64` sums ([`counter_add`]), merged by
//!   addition across threads;
//! * **gauges** — last-write-wins `f64` values ([`gauge_set`]), ordered
//!   by a global write sequence so the merge is well-defined;
//! * **histograms** — fixed power-of-two-bucket latency histograms
//!   ([`observe_us`] / [`observe_duration`]), merged bucket-wise.
//!
//! ## Enabling
//!
//! Tracing is **off by default** and gated by the `DFTRACE` environment
//! variable (`1`/`true`/`on`, read once and cached); [`set_enabled`]
//! overrides it programmatically. When disabled every recording call is a
//! single relaxed atomic load and branch — the instrumented hot paths run
//! at their un-instrumented speed, which is what the determinism and
//! bench baselines measure.
//!
//! ## Determinism contract
//!
//! Recording is *write-only*: no instrumented code path ever reads a
//! timing back into a computation, so a traced run produces bit-identical
//! results to an untraced run (locked by `tests/trace_determinism.rs` at
//! the workspace root). Wall-clock values exist only in the exported
//! report.
//!
//! ## Exporting
//!
//! [`snapshot`] merges every live shard into a [`Report`];
//! [`write_run_trace`] serializes it as `RUN_TRACE.json` (schema in
//! `docs/OBSERVABILITY.md`). [`reset`] clears all shards, e.g. between
//! benchmark phases. The [`rate`] module is the single implementation of
//! throughput-rate arithmetic shared with `dfhts::throughput`.

#![warn(missing_docs)]

pub mod hist;
pub mod rate;
mod report;

pub use hist::Histogram;
pub use report::{
    BucketReport, CounterReport, GaugeReport, HistogramReport, Report, SpanReport, SCHEMA_VERSION,
};

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Enable state
// ---------------------------------------------------------------------

/// 0 = uninitialised, 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// True when tracing is on. First call reads the `DFTRACE` environment
/// variable (`1`, `true` or `on`, case-insensitive); the result is cached
/// so subsequent calls are a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("DFTRACE")
        .map(|v| matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "true" | "on"))
        .unwrap_or(false);
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Forces tracing on or off, overriding `DFTRACE`. Used by tests, benches
/// and the `trace_report` tool.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Shards
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct SpanStat {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl SpanStat {
    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }
}

impl Default for SpanStat {
    fn default() -> Self {
        SpanStat { count: 0, total_ns: 0, min_ns: u64::MAX, max_ns: 0 }
    }
}

/// One thread's private slice of the telemetry. `BTreeMap` keys keep every
/// merged view deterministically ordered.
#[derive(Default)]
struct Shard {
    spans: BTreeMap<String, SpanStat>,
    counters: BTreeMap<String, u64>,
    /// Gauge values stamped with a global write sequence; the merge keeps
    /// the highest stamp (latest write wins across threads).
    gauges: BTreeMap<String, (u64, f64)>,
    hists: BTreeMap<String, Histogram>,
}

impl Shard {
    fn merge_into(&self, agg: &mut Shard) {
        for (k, v) in &self.spans {
            let s = agg.spans.entry(k.clone()).or_default();
            s.count += v.count;
            s.total_ns = s.total_ns.saturating_add(v.total_ns);
            s.min_ns = s.min_ns.min(v.min_ns);
            s.max_ns = s.max_ns.max(v.max_ns);
        }
        for (k, v) in &self.counters {
            *agg.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &(seq, val)) in &self.gauges {
            let e = agg.gauges.entry(k.clone()).or_insert((seq, val));
            if seq >= e.0 {
                *e = (seq, val);
            }
        }
        for (k, v) in &self.hists {
            agg.hists.entry(k.clone()).or_default().merge(v);
        }
    }
}

/// A registered shard: the owning thread takes the (uncontended) mutex on
/// every record; the reporter takes it briefly during a merge.
struct ShardCell {
    data: Mutex<Shard>,
}

fn registry() -> &'static Mutex<Vec<Arc<ShardCell>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ShardCell>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    /// This thread's shard, registered on first use and kept alive in the
    /// registry after the thread exits (its data outlives it).
    static LOCAL: RefCell<Option<Arc<ShardCell>>> = const { RefCell::new(None) };
    /// Stack of open span paths on this thread (innermost last).
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

fn with_shard(f: impl FnOnce(&mut Shard)) {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        if l.is_none() {
            let cell = Arc::new(ShardCell { data: Mutex::new(Shard::default()) });
            registry().lock().push(Arc::clone(&cell));
            *l = Some(cell);
        }
        f(&mut l.as_ref().expect("shard registered above").data.lock());
    });
}

/// Global write sequence for gauge last-write-wins merging.
static GAUGE_SEQ: AtomicU64 = AtomicU64::new(0);

// ---------------------------------------------------------------------
// Recording API
// ---------------------------------------------------------------------

/// RAII guard returned by [`span`]; records its lifetime into the current
/// thread's shard when dropped. A guard created while tracing is disabled
/// is inert.
#[must_use = "a span records on drop; binding it to _ discards it immediately"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    path: String,
    start: Instant,
}

/// Opens a hierarchical span named `name`. While a span is open on this
/// thread, further spans nest under it: `span("a")` then `span("b")`
/// records the path `a/b`. No-op (and allocation-free) when tracing is
/// disabled.
pub fn span(name: &str) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    let path = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let path = match s.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        s.push(path.clone());
        path
    });
    Span { inner: Some(SpanInner { path, start: Instant::now() }) }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let ns = inner.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                if s.last() == Some(&inner.path) {
                    s.pop();
                }
            });
            with_shard(|sh| sh.spans.entry(inner.path).or_default().record(ns));
        }
    }
}

/// Adds `delta` to the monotonic counter `name`. No-op when disabled.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    with_shard(|sh| match sh.counters.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            sh.counters.insert(name.to_string(), delta);
        }
    });
}

/// Sets the gauge `name` to `value` (last write across all threads wins).
/// No-op when disabled.
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let seq = GAUGE_SEQ.fetch_add(1, Ordering::Relaxed);
    with_shard(|sh| {
        sh.gauges.insert(name.to_string(), (seq, value));
    });
}

/// Records a latency sample (µs) into the histogram `name`. No-op when
/// disabled.
#[inline]
pub fn observe_us(name: &str, us: u64) {
    if !enabled() {
        return;
    }
    with_shard(|sh| match sh.hists.get_mut(name) {
        Some(h) => h.record(us),
        None => {
            let mut h = Histogram::default();
            h.record(us);
            sh.hists.insert(name.to_string(), h);
        }
    });
}

/// Records a [`Duration`] into the histogram `name` as µs. No-op when
/// disabled.
#[inline]
pub fn observe_duration(name: &str, d: Duration) {
    if enabled() {
        observe_us(name, d.as_micros().min(u64::MAX as u128) as u64);
    }
}

// ---------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------

/// Merges every thread's shard into a [`Report`]. Non-destructive: shards
/// keep accumulating afterwards.
pub fn snapshot() -> Report {
    let cells: Vec<Arc<ShardCell>> = registry().lock().clone();
    let mut agg = Shard::default();
    for cell in &cells {
        cell.data.lock().merge_into(&mut agg);
    }
    let ns_to_us = |ns: u64| ns / 1_000;
    Report {
        version: SCHEMA_VERSION,
        enabled: enabled(),
        spans: agg
            .spans
            .iter()
            .map(|(path, s)| SpanReport {
                path: path.clone(),
                count: s.count,
                total_us: ns_to_us(s.total_ns),
                min_us: if s.count == 0 { 0 } else { ns_to_us(s.min_ns) },
                max_us: ns_to_us(s.max_ns),
            })
            .collect(),
        counters: agg
            .counters
            .iter()
            .map(|(name, &value)| CounterReport { name: name.clone(), value })
            .collect(),
        gauges: agg
            .gauges
            .iter()
            .map(|(name, &(_, value))| GaugeReport { name: name.clone(), value })
            .collect(),
        histograms: agg
            .hists
            .iter()
            .map(|(name, h)| HistogramReport::from_hist(name.clone(), h))
            .collect(),
    }
}

/// Clears every shard (registrations survive, so threads keep recording
/// into their existing shard). Use between phases or tests.
pub fn reset() {
    for cell in registry().lock().iter() {
        *cell.data.lock() = Shard::default();
    }
}

/// Takes a [`snapshot`] and writes it to `path` as pretty-printed JSON
/// (the `RUN_TRACE.json` format).
pub fn write_run_trace<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<()> {
    std::fs::write(path, snapshot().to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enable toggle and shard registry are process-global; tests that
    /// touch them serialize on this lock.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_recording_is_dropped() {
        let _g = test_lock();
        set_enabled(false);
        reset();
        counter_add("t.disabled", 5);
        observe_us("t.disabled_hist", 10);
        let _s = span("t.disabled_span");
        drop(_s);
        let r = snapshot();
        assert_eq!(r.counter("t.disabled"), 0);
        assert!(r.histogram("t.disabled_hist").is_none());
        assert!(r.span("t.disabled_span").is_none());
    }

    #[test]
    fn spans_nest_into_paths() {
        let _g = test_lock();
        set_enabled(true);
        reset();
        {
            let _a = span("outer");
            let _b = span("inner");
        }
        let r = snapshot();
        set_enabled(false);
        assert_eq!(r.span("outer").expect("outer recorded").count, 1);
        assert_eq!(r.span("outer/inner").expect("nested path recorded").count, 1);
    }

    #[test]
    fn counters_merge_across_threads_by_sum() {
        let _g = test_lock();
        set_enabled(true);
        reset();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..1000 {
                        counter_add("t.merge", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("counter thread");
        }
        counter_add("t.merge", 10);
        let r = snapshot();
        set_enabled(false);
        assert_eq!(r.counter("t.merge"), 4010);
    }

    #[test]
    fn gauges_keep_the_latest_write() {
        let _g = test_lock();
        set_enabled(true);
        reset();
        gauge_set("t.gauge", 1.0);
        gauge_set("t.gauge", 2.5);
        let r = snapshot();
        set_enabled(false);
        assert_eq!(r.gauge("t.gauge"), Some(2.5));
    }

    #[test]
    fn report_json_round_trips() {
        let _g = test_lock();
        set_enabled(true);
        reset();
        counter_add("t.json", 7);
        observe_us("t.json_hist", 3);
        let r = snapshot();
        set_enabled(false);
        let parsed = Report::from_json(&r.to_json()).expect("round trip");
        assert_eq!(parsed.counter("t.json"), 7);
        assert_eq!(parsed.histogram("t.json_hist").expect("hist survives").count, 1);
        assert_eq!(parsed.version, SCHEMA_VERSION);
    }

    #[test]
    fn reset_clears_all_metrics() {
        let _g = test_lock();
        set_enabled(true);
        counter_add("t.reset", 1);
        reset();
        let r = snapshot();
        set_enabled(false);
        assert_eq!(r.counter("t.reset"), 0);
    }
}
