//! The exportable run report: JSON (`RUN_TRACE.json`), human-readable
//! rendering, and diffing of two reports.
//!
//! The JSON schema (version 1) is documented in `docs/OBSERVABILITY.md`;
//! all durations are integer microseconds, metric vectors are sorted by
//! name/path so two reports of the same run are byte-identical.

use crate::hist::{bucket_upper_bound, Histogram};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Schema version stamped into every report.
pub const SCHEMA_VERSION: u32 = 1;

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanReport {
    /// `/`-joined hierarchical path, e.g. `train.fwd/tensor.matmul`.
    pub path: String,
    /// Number of times the span closed.
    pub count: u64,
    /// Total time inside the span (µs).
    pub total_us: u64,
    /// Shortest single occurrence (µs).
    pub min_us: u64,
    /// Longest single occurrence (µs).
    pub max_us: u64,
}

impl SpanReport {
    /// Mean occurrence duration (µs); 0 when the span never closed.
    pub fn mean_us(&self) -> f64 {
        crate::rate::mean(self.total_us as f64, self.count as f64)
    }
}

/// A monotonic counter's final value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterReport {
    /// Counter name, e.g. `pool.steals`.
    pub name: String,
    /// Summed value across all threads.
    pub value: u64,
}

/// A gauge's last-written value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaugeReport {
    /// Gauge name, e.g. `hts.rank_skew`.
    pub name: String,
    /// Most recently set value (global write order).
    pub value: f64,
}

/// One non-empty histogram bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BucketReport {
    /// Inclusive upper bound of the bucket (µs).
    pub le_us: u64,
    /// Samples in this bucket.
    pub count: u64,
}

/// An aggregated fixed-bucket latency histogram.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistogramReport {
    /// Histogram name, e.g. `pool.queue_wait_us`.
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (µs, saturating).
    pub sum_us: u64,
    /// Smallest sample (µs); 0 when empty.
    pub min_us: u64,
    /// Largest sample (µs).
    pub max_us: u64,
    /// Samples above the last bucket bound.
    pub overflow: u64,
    /// Non-empty buckets, ascending by bound. Empty buckets are omitted.
    pub buckets: Vec<BucketReport>,
}

impl HistogramReport {
    pub(crate) fn from_hist(name: String, h: &Histogram) -> HistogramReport {
        let buckets = h
            .bucket_counts()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| BucketReport { le_us: bucket_upper_bound(i), count: c })
            .collect();
        HistogramReport {
            name,
            count: h.count(),
            sum_us: h.sum(),
            min_us: h.min(),
            max_us: h.max(),
            overflow: h.overflow(),
            buckets,
        }
    }

    /// Mean sample (µs); 0 when empty.
    pub fn mean_us(&self) -> f64 {
        crate::rate::mean(self.sum_us as f64, self.count as f64)
    }

    /// Quantile estimate from the exported buckets, mirroring
    /// [`Histogram::percentile`]: the smallest bucket bound at which the
    /// cumulative count reaches `ceil(q * count)`, capped at `max_us`;
    /// overflow samples report `max_us`. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return b.le_us.min(self.max_us);
            }
        }
        self.max_us
    }
}

/// A full merged view of every shard: the machine-readable form of one
/// run's telemetry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub version: u32,
    /// Whether tracing was enabled when the snapshot was taken.
    pub enabled: bool,
    /// Span statistics, sorted by path.
    pub spans: Vec<SpanReport>,
    /// Counters, sorted by name.
    pub counters: Vec<CounterReport>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeReport>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramReport>,
}

impl Report {
    /// Looks up a span by exact path.
    pub fn span(&self, path: &str) -> Option<&SpanReport> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Sums count and total time over every span whose **leaf** segment
    /// (the part after the last `/`) equals `leaf`. Span paths are
    /// hierarchical, so one kernel stage (`tensor.gemm.pack_a`, say) shows
    /// up under many parents — `train.epoch/fwd/...`, `serve.batch_exec/...`
    /// — and this is the way to ask "how long did that stage take overall".
    /// Returns `(count, total_us)`; `(0, 0)` when no span matches.
    pub fn sum_spans_with_leaf(&self, leaf: &str) -> (u64, u64) {
        self.spans
            .iter()
            .filter(|s| s.path.rsplit('/').next() == Some(leaf))
            .fold((0, 0), |(c, t), s| (c + s.count, t + s.total_us))
    }

    /// Looks up a counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value).unwrap_or(0)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramReport> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serializes to pretty-printed JSON (the `RUN_TRACE.json` format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }

    /// Parses a report previously written with [`Report::to_json`].
    pub fn from_json(s: &str) -> Result<Report, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// Renders the human-readable run report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "run trace (schema v{}, enabled: {})", self.version, self.enabled);
        if !self.spans.is_empty() {
            let _ = writeln!(out, "\nspans ({}):", self.spans.len());
            let _ = writeln!(
                out,
                "  {:<44} {:>8} {:>12} {:>10} {:>10} {:>10}",
                "path", "count", "total_us", "mean_us", "min_us", "max_us"
            );
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "  {:<44} {:>8} {:>12} {:>10.1} {:>10} {:>10}",
                    s.path,
                    s.count,
                    s.total_us,
                    s.mean_us(),
                    s.min_us,
                    s.max_us
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\ncounters ({}):", self.counters.len());
            for c in &self.counters {
                let _ = writeln!(out, "  {:<44} {:>12}", c.name, c.value);
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "\ngauges ({}):", self.gauges.len());
            for g in &self.gauges {
                let _ = writeln!(out, "  {:<44} {:>12.3}", g.name, g.value);
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "\nhistograms ({}):", self.histograms.len());
            for h in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<44} n={} mean={:.1}us min={}us max={}us overflow={}",
                    h.name,
                    h.count,
                    h.mean_us(),
                    h.min_us,
                    h.max_us,
                    h.overflow
                );
            }
        }
        out
    }

    /// Diffs two reports (self = before, `after` = after), rendering one
    /// line per metric that exists in either report: counter deltas, span
    /// total-time ratios and histogram count/mean shifts. Used by the
    /// `trace_diff` tool to compare two `RUN_TRACE.json` files.
    pub fn diff(&self, after: &Report) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "trace diff (before -> after):");

        let _ = writeln!(out, "\nspans (total_us, ratio = after/before):");
        for path in
            merged_keys(self.spans.iter().map(|s| &s.path), after.spans.iter().map(|s| &s.path))
        {
            let b = self.span(&path).map(|s| s.total_us).unwrap_or(0);
            let a = after.span(&path).map(|s| s.total_us).unwrap_or(0);
            if b == 0 && a == 0 {
                continue;
            }
            let _ = writeln!(out, "  {:<44} {:>12} -> {:>12}  ({})", path, b, a, ratio(b, a));
        }

        let _ = writeln!(out, "\ncounters (value, delta):");
        for name in merged_keys(
            self.counters.iter().map(|c| &c.name),
            after.counters.iter().map(|c| &c.name),
        ) {
            let b = self.counter(&name);
            let a = after.counter(&name);
            let _ = writeln!(
                out,
                "  {:<44} {:>12} -> {:>12}  ({:+})",
                name,
                b,
                a,
                a as i128 - b as i128
            );
        }

        let _ = writeln!(out, "\nhistograms (count, mean_us):");
        for name in merged_keys(
            self.histograms.iter().map(|h| &h.name),
            after.histograms.iter().map(|h| &h.name),
        ) {
            let (bc, bm) =
                self.histogram(&name).map(|h| (h.count, h.mean_us())).unwrap_or((0, 0.0));
            let (ac, am) =
                after.histogram(&name).map(|h| (h.count, h.mean_us())).unwrap_or((0, 0.0));
            let _ = writeln!(
                out,
                "  {:<44} n {:>10} -> {:<10} mean {:>9.1} -> {:.1}",
                name, bc, ac, bm, am
            );
        }
        out
    }
}

/// Union of two sorted key iterators, deduplicated and sorted.
fn merged_keys<'a>(
    a: impl Iterator<Item = &'a String>,
    b: impl Iterator<Item = &'a String>,
) -> Vec<String> {
    let mut keys: Vec<String> = a.chain(b).cloned().collect();
    keys.sort();
    keys.dedup();
    keys
}

fn ratio(before: u64, after: u64) -> String {
    if before == 0 {
        "new".to_string()
    } else {
        format!("{:.2}x", after as f64 / before as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(path: &str, count: u64, total_us: u64) -> SpanReport {
        SpanReport { path: path.to_string(), count, total_us, min_us: 0, max_us: total_us }
    }

    #[test]
    fn sum_spans_with_leaf_aggregates_across_parents() {
        let r = Report {
            version: SCHEMA_VERSION,
            enabled: true,
            spans: vec![
                span("tensor.gemm.pack_a", 2, 10),
                span("train.epoch/fwd/tensor.gemm.pack_a", 3, 25),
                span("train.epoch/fwd/tensor.gemm.kernel", 3, 100),
                span("tensor.gemm.pack_a_not_this", 1, 999),
            ],
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
        };
        assert_eq!(r.sum_spans_with_leaf("tensor.gemm.pack_a"), (5, 35));
        assert_eq!(r.sum_spans_with_leaf("tensor.gemm.kernel"), (3, 100));
        assert_eq!(r.sum_spans_with_leaf("tensor.gemm.absent"), (0, 0));
    }
}
