//! The single implementation of throughput-rate arithmetic.
//!
//! Every compounds/s and poses/s figure in the workspace — the Lassen
//! model behind Table 7 (`dfhts::throughput`), measured job and campaign
//! timings (`dfhts::job`, `dfhts::scheduler`, `dfhts::simulate`) and the
//! tracer's derived rates — goes through these helpers, so two reports can
//! never disagree about how a rate is computed (zero-duration runs report
//! a rate of 0, never NaN or ±inf).

/// Events per second over a duration in seconds; 0.0 when the duration is
/// not positive (instead of NaN/inf).
#[inline]
pub fn per_sec(count: f64, secs: f64) -> f64 {
    if secs > 0.0 {
        count / secs
    } else {
        0.0
    }
}

/// Division-by-zero-safe mean: `sum / count`, or 0.0 when `count` is not
/// positive. Shares the guard semantics of [`per_sec`].
#[inline]
pub fn mean(sum: f64, count: f64) -> f64 {
    per_sec(sum, count)
}

/// Events per hour over a duration in seconds.
#[inline]
pub fn per_hour(count: f64, secs: f64) -> f64 {
    per_sec(count, secs) * 3600.0
}

/// Converts a pose count into a compound count given the campaign's
/// poses-per-compound ratio (paper: 10); 0.0 when the ratio is not
/// positive.
#[inline]
pub fn compounds_from_poses(poses: f64, poses_per_compound: f64) -> f64 {
    if poses_per_compound > 0.0 {
        poses / poses_per_compound
    } else {
        0.0
    }
}

/// Compounds per second: [`per_sec`] composed with [`compounds_from_poses`].
#[inline]
pub fn compounds_per_sec(poses: f64, poses_per_compound: f64, secs: f64) -> f64 {
    per_sec(compounds_from_poses(poses, poses_per_compound), secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_duration_is_zero_rate() {
        assert_eq!(per_sec(100.0, 0.0), 0.0);
        assert_eq!(per_sec(100.0, -1.0), 0.0);
        assert_eq!(per_hour(100.0, 0.0), 0.0);
        assert_eq!(compounds_per_sec(100.0, 10.0, 0.0), 0.0);
    }

    #[test]
    fn rates_compose() {
        assert_eq!(per_sec(10.0, 2.0), 5.0);
        assert_eq!(per_hour(1.0, 3600.0), 1.0);
        assert_eq!(compounds_from_poses(200.0, 10.0), 20.0);
        assert_eq!(compounds_per_sec(200.0, 10.0, 4.0), 5.0);
        assert_eq!(compounds_from_poses(200.0, 0.0), 0.0);
    }
}
