//! Fixed-bucket latency histograms.
//!
//! Buckets are powers of two in microseconds: bucket `i` counts samples
//! `v` with `v <= 2^i µs` (and greater than the previous bound), for
//! `i in 0..BUCKETS`. Values above the last bound (`2^25 µs ≈ 33.5 s`)
//! land in a dedicated overflow bucket, so no sample is ever dropped.
//! The layout is fixed — no dynamic resizing, no allocation on the record
//! path — which keeps recording cheap and makes two histograms from
//! different runs directly comparable bucket-by-bucket.

/// Number of power-of-two buckets (exclusive of the overflow bucket).
pub const BUCKETS: usize = 26;

/// Upper bound (inclusive, in µs) of bucket `i`.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    debug_assert!(i < BUCKETS);
    1u64 << i
}

/// Bucket index for a sample in µs, or `None` for the overflow bucket.
#[inline]
pub fn bucket_index(v: u64) -> Option<usize> {
    if v <= 1 {
        return Some(0);
    }
    // First i with v <= 2^i, i.e. ceil(log2(v)).
    let idx = (64 - (v - 1).leading_zeros()) as usize;
    if idx < BUCKETS {
        Some(idx)
    } else {
        None
    }
}

/// A fixed-bucket histogram of microsecond samples.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    overflow: u64,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: [0; BUCKETS], overflow: 0, count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// Records one sample (µs).
    pub fn record(&mut self, v: u64) {
        match bucket_index(v) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another histogram into this one (bucket layouts are fixed,
    /// so the merge is an element-wise sum).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (µs, saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Samples above the last bucket bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bucket counts (exclusive of the overflow bucket).
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Upper bound (µs) of the bucket holding the `q`-quantile sample
    /// (`q` in `[0, 1]`), i.e. the smallest bucket bound at which the
    /// cumulative count reaches `ceil(q * count)`. Samples in the overflow
    /// bucket report [`Histogram::max`]. Returns 0 for an empty histogram.
    ///
    /// Power-of-two buckets make this a ≤2× upper estimate of the true
    /// quantile — coarse, but stable across runs and free of per-sample
    /// storage, which is what the serving latency report needs.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report a bound above the recorded maximum.
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lands_in_first_bucket() {
        let mut h = Histogram::default();
        h.record(0);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn one_lands_in_first_bucket() {
        let mut h = Histogram::default();
        h.record(1);
        assert_eq!(h.bucket_counts()[0], 1);
    }

    #[test]
    fn exact_power_of_two_bounds_are_inclusive() {
        // v = 2^i must land in bucket i, not i+1.
        for i in 1..BUCKETS {
            assert_eq!(bucket_index(1u64 << i), Some(i), "2^{i}");
            // One past the bound goes to the next bucket (or overflow).
            let next = bucket_index((1u64 << i) + 1);
            if i + 1 < BUCKETS {
                assert_eq!(next, Some(i + 1), "2^{i}+1");
            } else {
                assert_eq!(next, None, "2^{i}+1 overflows");
            }
        }
    }

    #[test]
    fn largest_representable_sample_fills_last_bucket() {
        let max_in_range = bucket_upper_bound(BUCKETS - 1);
        let mut h = Histogram::default();
        h.record(max_in_range);
        assert_eq!(h.bucket_counts()[BUCKETS - 1], 1);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn oversized_samples_hit_overflow_not_a_panic() {
        let mut h = Histogram::default();
        h.record(bucket_upper_bound(BUCKETS - 1) + 1);
        h.record(u64::MAX);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 2);
        // Saturating sum must not wrap.
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn merge_is_elementwise_and_tracks_extrema() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.record(3);
        b.record(100);
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 3);
        assert_eq!(a.max(), u64::MAX);
        assert_eq!(a.overflow(), 1);
        let empty = Histogram::default();
        let mut c = Histogram::default();
        c.merge(&empty);
        assert_eq!(c.count(), 0);
        assert_eq!(c.min(), 0, "empty merge keeps min sentinel hidden");
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        assert_eq!(Histogram::default().percentile(0.5), 0);
    }

    #[test]
    fn percentile_walks_cumulative_counts() {
        let mut h = Histogram::default();
        // 90 samples at ≤2µs, 9 at ≤1024µs, 1 at ≤32768µs.
        for _ in 0..90 {
            h.record(2);
        }
        for _ in 0..9 {
            h.record(1000);
        }
        h.record(30000);
        assert_eq!(h.percentile(0.5), 2);
        assert_eq!(h.percentile(0.9), 2);
        assert_eq!(h.percentile(0.95), 1024);
        assert_eq!(h.percentile(0.999), 30000, "tail caps at the recorded max");
        assert_eq!(h.percentile(1.0), 30000);
    }

    #[test]
    fn percentile_caps_at_recorded_max() {
        let mut h = Histogram::default();
        h.record(5); // bucket bound is 8
        assert_eq!(h.percentile(0.5), 5);
        h.record(u64::MAX); // overflow sample
        assert_eq!(h.percentile(1.0), u64::MAX);
    }
}
