//! The §4–§5 campaign: screen compounds against the four SARS-CoV-2
//! targets with three scoring methods, down-select by a hand-tailored cost
//! function, "test" the selected compounds in the simulated assay, and
//! hand the results to the retrospective analysis (Figure 4, Table 8,
//! Figure 5).

use crate::ampl::AmplSurrogate;
use crate::assay::{run_assay, AssayConfig};
use dfchem::genmol::{Compound, CompoundId, Library};
use dfchem::mol::Molecule;
use dfchem::pocket::{BindingPocket, TargetSite};
use dfdock::mmgbsa::MmGbsaConfig;
use dfdock::search::{dock, DockConfig};
use dfhts::scorer::{Scorer, ScorerFactory};
use dftensor::rng::derive_seed;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Aggregated per-method predictions for one (compound, site) pair — the
/// strongest prediction across its ≤10 docked poses (§5.2: maximum for
/// Coherent Fusion, minimum for Vina and MM/GBSA).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MethodPredictions {
    pub vina: f64,
    pub ampl_mmgbsa: f64,
    pub fusion: f64,
}

/// One experimentally tested compound.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TestedCompound {
    pub compound: CompoundId,
    pub target: TargetSite,
    pub pred: MethodPredictions,
    /// Percent inhibition from the simulated assay.
    pub inhibition: f64,
}

/// Campaign configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignConfig {
    pub seed: u64,
    /// Compounds screened per target before down-selection.
    pub screen_pool: usize,
    /// Compounds selected ("purchased") for testing per target. The paper
    /// tested 341/216/241/244 across the four sites.
    pub tested_per_target: usize,
    pub dock: DockConfig,
    pub mmgbsa: MmGbsaConfig,
    pub assay: AssayConfig,
    /// AMPL surrogate training-sample size per target.
    pub ampl_training: usize,
    /// Worker threads for the screening stage.
    pub threads: usize,
    /// Cost-function weights over (fusion, vina, ampl) rank scores.
    pub cost_weights: [f64; 3],
}

impl CampaignConfig {
    /// A scaled-down default campaign.
    pub fn small(seed: u64) -> CampaignConfig {
        CampaignConfig {
            seed,
            screen_pool: 120,
            tested_per_target: 60,
            dock: DockConfig { mc_restarts: 3, mc_steps: 40, num_poses: 5, ..Default::default() },
            mmgbsa: MmGbsaConfig { born_iterations: 3, ..Default::default() },
            assay: AssayConfig { seed, ..Default::default() },
            ampl_training: 24,
            threads: 4,
            cost_weights: [0.5, 0.25, 0.25],
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny(seed: u64) -> CampaignConfig {
        CampaignConfig {
            screen_pool: 14,
            tested_per_target: 8,
            dock: DockConfig { mc_restarts: 2, mc_steps: 20, num_poses: 3, ..Default::default() },
            mmgbsa: MmGbsaConfig { born_iterations: 2, ..Default::default() },
            ampl_training: 10,
            threads: 2,
            ..CampaignConfig::small(seed)
        }
    }
}

/// Everything screened for one (compound, target): poses plus predictions.
#[derive(Debug, Clone)]
struct ScreenedCompound {
    compound: CompoundId,
    pred: MethodPredictions,
    best_pose: Molecule,
}

/// Full campaign output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignOutput {
    pub tested: Vec<TestedCompound>,
}

impl CampaignOutput {
    /// Tested compounds for one target.
    pub fn for_target(&self, target: TargetSite) -> Vec<&TestedCompound> {
        self.tested.iter().filter(|t| t.target == target).collect()
    }

    /// Fraction of tested compounds above an inhibition threshold (the
    /// paper reports a 10.4% hit rate at 33%).
    pub fn hit_rate(&self, threshold: f64) -> f64 {
        if self.tested.is_empty() {
            return 0.0;
        }
        self.tested.iter().filter(|t| t.inhibition > threshold).count() as f64
            / self.tested.len() as f64
    }
}

/// Runs the campaign for every target with the supplied fusion scorer.
pub fn run_campaign(cfg: &CampaignConfig, fusion: &dyn ScorerFactory) -> CampaignOutput {
    let mut tested = Vec::new();
    for target in TargetSite::ALL {
        tested.extend(run_target(cfg, target, fusion));
    }
    CampaignOutput { tested }
}

fn run_target(
    cfg: &CampaignConfig,
    target: TargetSite,
    fusion: &dyn ScorerFactory,
) -> Vec<TestedCompound> {
    let pocket = BindingPocket::generate(target, cfg.seed);

    // --- AMPL surrogate: train on docked poses of a compound sample. ---
    let training_poses: Vec<Molecule> = (0..cfg.ampl_training as u64)
        .map(|i| {
            let c = Compound::materialize(Library::EMolecules, 9_000_000 + i, cfg.seed);
            dock(&cfg.dock, &c.mol, &pocket, derive_seed(cfg.seed, 0xA3 ^ i)).remove(0).ligand
        })
        .collect();
    let ampl = AmplSurrogate::fit(&training_poses, &pocket, &cfg.mmgbsa, 1e-3);

    // --- Parallel screening of the candidate pool. ---
    let next = std::sync::atomic::AtomicU64::new(0);
    let results: Vec<Mutex<Option<ScreenedCompound>>> =
        (0..cfg.screen_pool).map(|_| Mutex::new(None)).collect();
    crossbeam::scope(|s| {
        for _ in 0..cfg.threads.max(1) {
            s.spawn(|_| {
                let mut fusion_scorer: Box<dyn Scorer> = fusion.build();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= cfg.screen_pool as u64 {
                        break;
                    }
                    // Mix libraries deterministically.
                    let library = Library::ALL[(i % 4) as usize];
                    let compound = Compound::materialize(library, i, cfg.seed);
                    let poses =
                        dock(&cfg.dock, &compound.mol, &pocket, derive_seed(cfg.seed, 0x5C4EE ^ i));
                    if poses.is_empty() {
                        continue;
                    }
                    let ligs: Vec<Molecule> = poses.iter().map(|p| p.ligand.clone()).collect();
                    let vina_best = poses.iter().map(|p| p.vina).fold(f64::INFINITY, f64::min);
                    let ampl_best =
                        ligs.iter().map(|l| ampl.predict(l, &pocket)).fold(f64::INFINITY, f64::min);
                    let fusion_scores = fusion_scorer.score_poses(&ligs, &pocket);
                    let fusion_best =
                        fusion_scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    *results[i as usize].lock() = Some(ScreenedCompound {
                        compound: compound.id,
                        pred: MethodPredictions {
                            vina: vina_best,
                            ampl_mmgbsa: ampl_best,
                            fusion: fusion_best,
                        },
                        best_pose: ligs[0].clone(),
                    });
                }
            });
        }
    })
    .expect("screen worker panicked");
    let screened: Vec<ScreenedCompound> =
        results.into_iter().filter_map(|m| m.into_inner()).collect();

    // --- Hand-tailored cost function (§5, ref [32]): rank-combine. ---
    let selected = select_by_cost_function(&screened, cfg.cost_weights, cfg.tested_per_target);

    // --- Experimental testing of the selected compounds. ---
    selected
        .into_iter()
        .map(|sc| {
            let assay = run_assay(&cfg.assay, &sc.best_pose, &pocket, sc.compound.index);
            TestedCompound {
                compound: sc.compound,
                target,
                pred: sc.pred,
                inhibition: assay.inhibition,
            }
        })
        .collect()
}

/// Rank-normalizes each method (1 = strongest) and combines with weights,
/// keeping the best `n`. Fusion ranks descend (higher pK is stronger);
/// Vina/AMPL ranks ascend (lower energy is stronger).
fn select_by_cost_function(
    screened: &[ScreenedCompound],
    weights: [f64; 3],
    n: usize,
) -> Vec<ScreenedCompound> {
    let m = screened.len();
    if m == 0 {
        return Vec::new();
    }
    let rank_of = |values: Vec<f64>, ascending: bool| -> Vec<f64> {
        let ranks = dfmetrics::ranks(&values);
        // `ranks` are 1..=m ascending; convert to strength in [0, 1].
        ranks
            .iter()
            .map(|&r| {
                if ascending {
                    1.0 - (r - 1.0) / (m.max(2) - 1) as f64
                } else {
                    (r - 1.0) / (m.max(2) - 1) as f64
                }
            })
            .collect()
    };
    let fusion_rank = rank_of(screened.iter().map(|s| s.pred.fusion).collect(), false);
    let vina_rank = rank_of(screened.iter().map(|s| s.pred.vina).collect(), true);
    let ampl_rank = rank_of(screened.iter().map(|s| s.pred.ampl_mmgbsa).collect(), true);

    let mut order: Vec<usize> = (0..m).collect();
    let cost = |i: usize| {
        weights[0] * fusion_rank[i] + weights[1] * vina_rank[i] + weights[2] * ampl_rank[i]
    };
    order.sort_by(|&a, &b| cost(b).partial_cmp(&cost(a)).unwrap_or(std::cmp::Ordering::Equal));
    order.truncate(n.min(m));
    order.into_iter().map(|i| screened[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfhts::scorer::VinaScorerFactory;

    /// The campaign mechanics do not require a trained fusion model; the
    /// Vina factory stands in as "a scorer" for structural tests.
    fn stub_fusion() -> VinaScorerFactory {
        VinaScorerFactory
    }

    #[test]
    fn campaign_tests_the_requested_number_of_compounds() {
        let cfg = CampaignConfig::tiny(5);
        let out = run_campaign(&cfg, &stub_fusion());
        assert_eq!(out.tested.len(), 4 * cfg.tested_per_target);
        for target in TargetSite::ALL {
            assert_eq!(out.for_target(target).len(), cfg.tested_per_target);
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let cfg = CampaignConfig::tiny(9);
        let a = run_campaign(&cfg, &stub_fusion());
        let b = run_campaign(&cfg, &stub_fusion());
        assert_eq!(a.tested.len(), b.tested.len());
        for (x, y) in a.tested.iter().zip(&b.tested) {
            assert_eq!(x.compound, y.compound);
            assert_eq!(x.inhibition, y.inhibition);
        }
    }

    #[test]
    fn predictions_are_aggregated_strongest_per_method() {
        let cfg = CampaignConfig::tiny(3);
        let out = run_campaign(&cfg, &stub_fusion());
        for t in &out.tested {
            assert!(t.pred.vina.is_finite());
            assert!(t.pred.fusion.is_finite());
            assert!(t.pred.ampl_mmgbsa.is_finite());
            assert!((0.0..=100.0).contains(&t.inhibition));
        }
    }

    #[test]
    fn cost_function_prefers_strong_predictions() {
        let mk = |fusion: f64, vina: f64| ScreenedCompound {
            compound: CompoundId { library: Library::Chembl, index: (fusion * 10.0) as u64 },
            pred: MethodPredictions { vina, ampl_mmgbsa: vina, fusion },
            best_pose: Molecule::new("x"),
        };
        let screened = vec![
            mk(9.0, -9.0), // strong everywhere
            mk(5.0, -5.0),
            mk(2.0, -1.0), // weak everywhere
        ];
        let picked = select_by_cost_function(&screened, [0.5, 0.25, 0.25], 2);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].pred.fusion, 9.0);
        assert_eq!(picked[1].pred.fusion, 5.0);
    }

    #[test]
    fn hit_rate_counts_threshold_exceedances() {
        let out = CampaignOutput {
            tested: (0..10)
                .map(|i| TestedCompound {
                    compound: CompoundId { library: Library::Chembl, index: i },
                    target: TargetSite::Spike1,
                    pred: MethodPredictions { vina: 0.0, ampl_mmgbsa: 0.0, fusion: 0.0 },
                    inhibition: if i < 2 { 50.0 } else { 0.0 },
                })
                .collect(),
        };
        assert!((out.hit_rate(33.0) - 0.2).abs() < 1e-12);
    }
}
