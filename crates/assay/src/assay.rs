//! Wet-lab assay simulation (§5.1).
//!
//! The paper's experimental screens — FRET / SDS-PAGE protease activity
//! assays at 100 µM and pseudo-typed-virus / BLI spike assays at 10 µM —
//! produce a percent inhibition per compound. We simulate that endpoint
//! from first principles:
//!
//! 1. a latent *cellular* activity combines the structural binding terms
//!    (the same shape / interaction / electrostatic descriptors the hidden
//!    oracle uses) under **per-target weights** — real targets reward
//!    different interaction chemistry, which is the mechanism behind the
//!    paper's observation that the best scoring method varies by target;
//! 2. pharmacokinetic confounders no structure-based scorer can see
//!    (solubility from logP, permeability from size) attenuate activity;
//! 3. occupancy follows a Hill curve at the assay concentration, so the
//!    100 µM Mpro assays admit weaker binders than the 10 µM spike assays
//!    (§5.3);
//! 4. heavy measurement noise yields the mostly-negative outcome the
//!    paper reports (most tested compounds show ≤ 1% inhibition).

use dfchem::mol::Molecule;
use dfchem::pocket::{BindingPocket, TargetSite};
use dfdata::oracle::oracle_terms;
use dftensor::rng::{derive_seed, normal_with, rng};
use serde::{Deserialize, Serialize};

/// Per-target weighting of the structural binding components.
///
/// The profiles are chosen so that each scoring method's "favourite"
/// component dominates a different target, reproducing the paper's
/// result pattern: AMPL MM/GBSA best on protease1, Coherent Fusion best on
/// protease2 and spike1, Vina best on spike2 (Table 8 / Figure 5).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TargetActivityProfile {
    pub w_shape: f64,
    pub w_interaction: f64,
    pub w_electrostatic: f64,
    /// Base effective potency (pK units) of a typical screened compound
    /// on this target. Calibrated so that at the assay concentration most
    /// compounds sit below 1% inhibition while the strong tail can exceed
    /// 33% — spike assays run at 10 µM, so their base sits higher.
    pub base_pk: f64,
}

impl TargetActivityProfile {
    pub fn for_target(target: TargetSite) -> TargetActivityProfile {
        match target {
            // Electrostatics/solvation-driven site → MM/GBSA-visible.
            TargetSite::Protease1 => TargetActivityProfile {
                w_shape: 0.3,
                w_interaction: 0.4,
                w_electrostatic: 1.5,
                base_pk: 1.45,
            },
            // Interaction-pattern-driven conformation → fusion-visible.
            TargetSite::Protease2 => TargetActivityProfile {
                w_shape: 0.7,
                w_interaction: 1.4,
                w_electrostatic: 0.4,
                base_pk: 1.35,
            },
            // Balanced shape+interaction site → fusion-visible, strongest
            // correlations of the four (§5.3).
            TargetSite::Spike1 => TargetActivityProfile {
                w_shape: 1.0,
                w_interaction: 1.2,
                w_electrostatic: 0.5,
                base_pk: 2.45,
            },
            // Steric/hydrophobic groove → Vina-visible.
            TargetSite::Spike2 => TargetActivityProfile {
                w_shape: 1.6,
                w_interaction: 0.3,
                w_electrostatic: 0.2,
                base_pk: 2.35,
            },
        }
    }
}

/// Assay noise and confounder strengths.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AssayConfig {
    /// Std-dev of the latent-activity noise (pK units).
    pub biology_noise: f64,
    /// Std-dev of the inhibition readout noise (percentage points).
    pub readout_noise: f64,
    /// Strength of the solubility confounder (per logP unit above 4).
    pub solubility_penalty: f64,
    /// Strength of the permeability confounder (per 100 Da above 450).
    pub permeability_penalty: f64,
    /// Global shift of effective pK (sets the hit rate).
    pub potency_shift: f64,
    pub seed: u64,
}

impl Default for AssayConfig {
    fn default() -> Self {
        Self {
            biology_noise: 1.3,
            readout_noise: 2.0,
            solubility_penalty: 0.5,
            permeability_penalty: 0.4,
            potency_shift: 0.0,
            seed: 0,
        }
    }
}

/// One assay measurement.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AssayResult {
    /// Percent inhibition in [0, 100].
    pub inhibition: f64,
    /// The latent effective pK that generated it (hidden from analyses;
    /// exposed for tests).
    pub effective_pk: f64,
}

/// Simulates the experimental assay for one compound's best bound pose.
///
/// `pose` should be the strongest docked pose; `compound_key` seeds the
/// compound-specific noise so repeated assays of the same compound agree.
pub fn run_assay(
    cfg: &AssayConfig,
    pose: &Molecule,
    pocket: &BindingPocket,
    compound_key: u64,
) -> AssayResult {
    let terms = oracle_terms(pose, pocket);
    let profile = TargetActivityProfile::for_target(pocket.target);
    let structural = profile.w_shape * terms.shape
        + profile.w_interaction * terms.interaction
        + profile.w_electrostatic * terms.electrostatic;

    // Pharmacokinetic confounders.
    let logp = pose.logp_estimate();
    let mw = pose.molecular_weight();
    let solubility = cfg.solubility_penalty * (logp - 4.0).max(0.0);
    let permeability = cfg.permeability_penalty * ((mw - 450.0).max(0.0) / 100.0);

    let mut r = rng(derive_seed(cfg.seed, 0xA55A ^ compound_key));
    let effective_pk = profile.base_pk + structural - solubility - permeability
        + cfg.potency_shift
        + normal_with(&mut r, 0.0, cfg.biology_noise);

    // Hill occupancy at the assay concentration.
    let conc_molar = pocket.target.assay_concentration_um() * 1e-6;
    let kd_molar = 10f64.powf(-effective_pk);
    let occupancy = conc_molar / (conc_molar + kd_molar);

    let inhibition =
        (100.0 * occupancy + normal_with(&mut r, 0.0, cfg.readout_noise)).clamp(0.0, 100.0);
    AssayResult { inhibition, effective_pk }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfchem::genmol::{Compound, Library};
    use dfchem::pocket::BindingPocket;
    use dfdock::search::{dock, DockConfig};

    fn tested(target: TargetSite, n: u64, cfg: &AssayConfig) -> Vec<AssayResult> {
        let pocket = BindingPocket::generate(target, 3);
        (0..n)
            .map(|i| {
                let c = Compound::materialize(Library::EnamineVirtual, i, 3);
                let pose = dock(
                    &DockConfig { mc_restarts: 2, mc_steps: 25, ..Default::default() },
                    &c.mol,
                    &pocket,
                    i,
                )
                .remove(0)
                .ligand;
                run_assay(cfg, &pose, &pocket, i)
            })
            .collect()
    }

    #[test]
    fn assay_is_deterministic_per_compound() {
        let pocket = BindingPocket::generate(TargetSite::Spike1, 1);
        let c = Compound::materialize(Library::Chembl, 4, 1);
        let a = run_assay(&AssayConfig::default(), &c.mol, &pocket, 4);
        let b = run_assay(&AssayConfig::default(), &c.mol, &pocket, 4);
        assert_eq!(a.inhibition, b.inhibition);
        // A different compound key draws different noise.
        let c2 = run_assay(&AssayConfig::default(), &c.mol, &pocket, 5);
        assert_ne!(a.inhibition, c2.inhibition);
    }

    #[test]
    fn inhibition_is_bounded() {
        for r in tested(TargetSite::Protease1, 30, &AssayConfig::default()) {
            assert!((0.0..=100.0).contains(&r.inhibition));
        }
    }

    #[test]
    fn most_compounds_are_inactive() {
        // The paper: "most experimentally tested compounds are negatives".
        let results = tested(TargetSite::Protease1, 40, &AssayConfig::default());
        let negatives = results.iter().filter(|r| r.inhibition <= 1.0).count();
        assert!(
            negatives as f64 / results.len() as f64 > 0.4,
            "expected plenty of negatives, got {negatives}/40"
        );
        // ...but not literally everything.
        assert!(negatives < results.len(), "some compounds must show activity");
    }

    #[test]
    fn higher_concentration_admits_weaker_binders() {
        // The same effective pK produces higher occupancy at 100 µM than
        // at 10 µM: check the Hill arithmetic directly.
        let occ = |conc_um: f64, pk: f64| {
            let c = conc_um * 1e-6;
            let kd = 10f64.powf(-pk);
            c / (c + kd)
        };
        assert!(occ(100.0, 4.5) > occ(10.0, 4.5));
        assert!(occ(100.0, 4.5) > 0.5);
        assert!(occ(10.0, 4.5) < 0.5);
    }

    #[test]
    fn profiles_differ_across_targets() {
        let profiles: Vec<_> =
            TargetSite::ALL.iter().map(|&t| TargetActivityProfile::for_target(t)).collect();
        // Each target emphasizes a different component.
        assert!(profiles[0].w_electrostatic > profiles[0].w_shape, "protease1 electrostatic");
        assert!(profiles[1].w_interaction > profiles[1].w_shape, "protease2 interaction");
        assert!(profiles[3].w_shape > profiles[3].w_interaction, "spike2 steric");
    }

    #[test]
    fn stronger_latent_pk_gives_higher_inhibition_on_average() {
        let results = tested(TargetSite::Spike1, 40, &AssayConfig::default());
        // Split by the hidden effective pK; stronger half must show more
        // inhibition on average.
        let mut sorted = results.clone();
        sorted.sort_by(|a, b| a.effective_pk.partial_cmp(&b.effective_pk).unwrap());
        let lo: f64 = sorted[..20].iter().map(|r| r.inhibition).sum::<f64>() / 20.0;
        let hi: f64 = sorted[20..].iter().map(|r| r.inhibition).sum::<f64>() / 20.0;
        assert!(hi >= lo, "inhibition must track latent potency: {lo} vs {hi}");
    }
}
