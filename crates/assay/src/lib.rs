//! `dfassay` — the wet-lab substitute and §5 retrospective analysis.
//!
//! * [`assay`] — FRET/SDS-PAGE (Mpro, 100 µM) and pseudo-virus/BLI (spike,
//!   10 µM) percent-inhibition simulation with per-target activity
//!   profiles and pharmacokinetic confounders;
//! * [`ampl`] — the AMPL-style per-target MM/GBSA surrogate;
//! * [`campaign`] — screen → cost-function down-select → test;
//! * [`analysis`] — Figure 4, Table 8 and Figure 5 computations.
//!
//! Assay noise, confounders and activity profiles all derive from
//! explicit `u64` seeds, so a campaign's wet-lab leg reproduces
//! bit-for-bit. The screening legs it drives (docking, HTS jobs) are
//! instrumented via `dftrace` when `DFTRACE=1`; see
//! `docs/OBSERVABILITY.md`.

pub mod ampl;
pub mod analysis;
pub mod assay;
pub mod campaign;

pub use ampl::{descriptors, AmplSurrogate};
pub use analysis::{
    best_method_by_f1, figure4, figure5, table8, Figure5Method, Figure5Panel, Method, ScatterPoint,
    Table8Row,
};
pub use assay::{run_assay, AssayConfig, AssayResult, TargetActivityProfile};
pub use campaign::{
    run_campaign, CampaignConfig, CampaignOutput, MethodPredictions, TestedCompound,
};
