//! Retrospective analysis of campaign results: Figure 4 (prediction vs
//! inhibition scatter), Table 8 (correlations on the >1% subset) and
//! Figure 5 (precision/recall at the 33% inhibition threshold, with
//! Cohen's κ against a random classifier).

use crate::campaign::{CampaignOutput, TestedCompound};
use dfchem::pocket::TargetSite;
use dfmetrics::{pearson, spearman, Confusion, PrCurve};
use serde::{Deserialize, Serialize};

/// The three scoring methods compared retrospectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    Vina,
    AmplMmGbsa,
    CoherentFusion,
}

impl Method {
    pub const ALL: [Method; 3] = [Method::Vina, Method::AmplMmGbsa, Method::CoherentFusion];

    pub fn name(self) -> &'static str {
        match self {
            Method::Vina => "Vina",
            Method::AmplMmGbsa => "AMPL MM/GBSA",
            Method::CoherentFusion => "Coherent Fusion",
        }
    }

    /// Extracts this method's prediction as a "higher = stronger" score.
    /// §5.3: "the absolute value of the Vina and MM/GBSA scores are used,
    /// as their predictions are negative values."
    pub fn strength(self, t: &TestedCompound) -> f64 {
        match self {
            Method::Vina => t.pred.vina.abs(),
            Method::AmplMmGbsa => t.pred.ampl_mmgbsa.abs(),
            Method::CoherentFusion => t.pred.fusion,
        }
    }
}

/// One scatter point of Figure 4.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScatterPoint {
    pub predicted: f64,
    pub inhibition: f64,
}

/// Figure 4: Coherent-Fusion predicted affinity vs percent inhibition per
/// target, excluding non-binders (≤ 1% inhibition).
pub fn figure4(out: &CampaignOutput) -> Vec<(TargetSite, Vec<ScatterPoint>)> {
    TargetSite::ALL
        .into_iter()
        .map(|target| {
            let points = out
                .for_target(target)
                .into_iter()
                .filter(|t| t.inhibition > 1.0)
                .map(|t| ScatterPoint {
                    predicted: Method::CoherentFusion.strength(t),
                    inhibition: t.inhibition,
                })
                .collect();
            (target, points)
        })
        .collect()
}

/// One Table 8 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table8Row {
    pub method: Method,
    pub target: TargetSite,
    pub pearson: f64,
    pub spearman: f64,
    /// Number of >1% compounds the correlation is computed over.
    pub n: usize,
}

/// Table 8: correlation of predicted binding and percent inhibition on the
/// subset of compounds with > 1% inhibition.
pub fn table8(out: &CampaignOutput) -> Vec<Table8Row> {
    let mut rows = Vec::new();
    for target in TargetSite::ALL {
        let binders: Vec<&TestedCompound> =
            out.for_target(target).into_iter().filter(|t| t.inhibition > 1.0).collect();
        let inhibition: Vec<f64> = binders.iter().map(|t| t.inhibition).collect();
        for method in Method::ALL {
            let preds: Vec<f64> = binders.iter().map(|t| method.strength(t)).collect();
            rows.push(Table8Row {
                method,
                target,
                pearson: pearson(&preds, &inhibition),
                spearman: spearman(&preds, &inhibition),
                n: binders.len(),
            });
        }
    }
    rows
}

/// Per-method classification results for one target (Figure 5 panel).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure5Panel {
    pub target: TargetSite,
    pub positives: usize,
    pub negatives: usize,
    /// Precision of a random classifier (the dashed line).
    pub random_baseline: f64,
    pub methods: Vec<Figure5Method>,
}

/// One method's curve and summary on a target.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure5Method {
    pub method: Method,
    pub best_f1: f64,
    pub average_precision: f64,
    pub kappa: f64,
    /// (recall, precision) points of the P/R curve.
    pub curve: Vec<(f64, f64)>,
}

/// Figure 5: binary classification at `threshold`% inhibition (paper: 33%
/// "to avoid severe class imbalances").
pub fn figure5(out: &CampaignOutput, threshold: f64) -> Vec<Figure5Panel> {
    TargetSite::ALL
        .into_iter()
        .filter_map(|target| {
            let tested = out.for_target(target);
            let labels: Vec<bool> = tested.iter().map(|t| t.inhibition > threshold).collect();
            let positives = labels.iter().filter(|&&l| l).count();
            let negatives = labels.len() - positives;
            if positives == 0 || negatives == 0 {
                return None; // degenerate panel (tiny test runs)
            }
            let methods = Method::ALL
                .into_iter()
                .map(|method| {
                    let scores: Vec<f64> = tested.iter().map(|t| method.strength(t)).collect();
                    let curve = PrCurve::compute(&scores, &labels);
                    let best = curve.best_f1();
                    let kappa =
                        Confusion::at_threshold(&scores, &labels, best.threshold).cohens_kappa();
                    Figure5Method {
                        method,
                        best_f1: best.f1,
                        average_precision: curve.average_precision,
                        kappa,
                        curve: curve.points.iter().map(|p| (p.recall, p.precision)).collect(),
                    }
                })
                .collect();
            Some(Figure5Panel {
                target,
                positives,
                negatives,
                random_baseline: positives as f64 / labels.len() as f64,
                methods,
            })
        })
        .collect()
}

/// The best method per target by F1 (used to check the paper's winner
/// pattern: AMPL on protease1, Fusion on protease2/spike1, Vina on spike2).
pub fn best_method_by_f1(panels: &[Figure5Panel]) -> Vec<(TargetSite, Method)> {
    panels
        .iter()
        .map(|p| {
            let best = p
                .methods
                .iter()
                .max_by(|a, b| {
                    a.best_f1.partial_cmp(&b.best_f1).unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("methods non-empty");
            (p.target, best.method)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{MethodPredictions, TestedCompound};
    use dfchem::genmol::{CompoundId, Library};

    fn tc(target: TargetSite, i: u64, fusion: f64, vina: f64, inhibition: f64) -> TestedCompound {
        TestedCompound {
            compound: CompoundId { library: Library::Chembl, index: i },
            target,
            // AMPL is held constant so it never ties a correlated method.
            pred: MethodPredictions { vina, ampl_mmgbsa: -2.0, fusion },
            inhibition,
        }
    }

    fn synthetic_output() -> CampaignOutput {
        // Fusion scores correlate with inhibition on spike1, anti on
        // spike2 where |vina| correlates.
        let mut tested = Vec::new();
        for i in 0..20u64 {
            let inh = i as f64 * 4.0;
            tested.push(tc(TargetSite::Spike1, i, 2.0 + inh / 20.0, -3.0, inh));
            tested.push(tc(TargetSite::Spike2, i, 5.0, -(inh / 10.0) - 1.0, inh));
        }
        CampaignOutput { tested }
    }

    #[test]
    fn figure4_filters_non_binders() {
        let mut out = synthetic_output();
        out.tested.push(tc(TargetSite::Spike1, 99, 9.0, -9.0, 0.5));
        let panels = figure4(&out);
        let spike1 = panels.iter().find(|(t, _)| *t == TargetSite::Spike1).unwrap();
        // The 0.5% compound is excluded; i=0 (inh 0.0) also excluded.
        assert!(spike1.1.iter().all(|p| p.inhibition > 1.0));
    }

    #[test]
    fn table8_reflects_engineered_correlations() {
        let rows = table8(&synthetic_output());
        let get = |m: Method, t: TargetSite| {
            rows.iter().find(|r| r.method == m && r.target == t).unwrap().pearson
        };
        assert!(get(Method::CoherentFusion, TargetSite::Spike1) > 0.95);
        assert!(get(Method::Vina, TargetSite::Spike2) > 0.95, "uses |vina|");
        // Constant predictions give zero correlation.
        assert_eq!(get(Method::CoherentFusion, TargetSite::Spike2), 0.0);
    }

    #[test]
    fn figure5_panels_have_baselines_and_kappa() {
        let panels = figure5(&synthetic_output(), 33.0);
        assert_eq!(panels.len(), 2);
        for p in &panels {
            assert!(p.positives > 0 && p.negatives > 0);
            let expect = p.positives as f64 / (p.positives + p.negatives) as f64;
            assert!((p.random_baseline - expect).abs() < 1e-12);
            assert_eq!(p.methods.len(), 3);
        }
        // The engineered perfect classifier hits F1 = 1 and κ = 1.
        let spike1 = panels.iter().find(|p| p.target == TargetSite::Spike1).unwrap();
        let fusion = spike1.methods.iter().find(|m| m.method == Method::CoherentFusion).unwrap();
        assert!((fusion.best_f1 - 1.0).abs() < 1e-9);
        assert!((fusion.kappa - 1.0).abs() < 1e-9);
    }

    #[test]
    fn best_method_detection() {
        let panels = figure5(&synthetic_output(), 33.0);
        let winners = best_method_by_f1(&panels);
        let spike1 = winners.iter().find(|(t, _)| *t == TargetSite::Spike1).unwrap();
        assert_eq!(spike1.1, Method::CoherentFusion);
        let spike2 = winners.iter().find(|(t, _)| *t == TargetSite::Spike2).unwrap();
        assert_eq!(spike2.1, Method::Vina);
    }

    #[test]
    fn degenerate_panels_are_dropped() {
        let out = CampaignOutput {
            tested: (0..5).map(|i| tc(TargetSite::Spike1, i, 5.0, -5.0, 0.0)).collect(),
        };
        assert!(figure5(&out, 33.0).is_empty());
    }
}
