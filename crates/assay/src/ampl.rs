//! AMPL-style MM/GBSA surrogate (§5.2).
//!
//! MM/GBSA is too expensive to run on every tested pose, so the paper uses
//! the ATOM Modeling PipeLine's ML surrogate, "trained to predict MM/GBSA
//! scores on each specific target" and "highly correlated with actual
//! MM/GBSA calculations". We reproduce it as a per-target ridge regression
//! from cheap pose descriptors onto real MM/GBSA scores computed on a
//! training sample of docked poses.

use dfchem::mol::Molecule;
use dfchem::pocket::BindingPocket;
use dfdock::mmgbsa::{mmgbsa_score, MmGbsaConfig};
use serde::{Deserialize, Serialize};

/// Number of descriptor features (including the bias term).
pub const NUM_FEATURES: usize = 8;

/// Cheap pose descriptors the surrogate regresses from.
pub fn descriptors(pose: &Molecule, pocket: &BindingPocket) -> [f64; NUM_FEATURES] {
    let mut hbond = 0.0f64;
    let mut hydrophobic = 0.0f64;
    let mut contacts = 0.0f64;
    let mut clashes = 0.0f64;
    let mut electro = 0.0f64;
    for la in &pose.atoms {
        for pa in &pocket.atoms {
            let d = la.pos.dist(pa.pos);
            if d > 9.0 {
                continue;
            }
            let ds = d - (la.element.vdw_radius() + pa.element.vdw_radius());
            if ds < 1.0 {
                contacts += 1.0;
                let da = (la.element.is_hbond_donor() && pa.element.is_hbond_acceptor())
                    || (la.element.is_hbond_acceptor() && pa.element.is_hbond_donor());
                if da {
                    hbond += 1.0;
                }
                if la.element.is_hydrophobic() && pa.element.is_hydrophobic() {
                    hydrophobic += 1.0;
                }
                if ds < -0.8 {
                    clashes += 1.0;
                }
            }
            electro += la.partial_charge * pa.partial_charge / d.max(1.0);
        }
    }
    let n = pose.num_atoms().max(1) as f64;
    [
        hbond / n,
        hydrophobic / n,
        contacts / n,
        clashes / n,
        electro,
        pose.molecular_weight() / 500.0,
        pose.num_rotatable_bonds() as f64 / 10.0,
        1.0, // bias
    ]
}

/// A fitted per-target surrogate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AmplSurrogate {
    pub weights: [f64; NUM_FEATURES],
    /// Training-set Pearson correlation with real MM/GBSA (quality gate).
    pub train_correlation: f64,
}

impl AmplSurrogate {
    /// Fits ridge regression of MM/GBSA totals on descriptors for one
    /// target, using the provided training poses.
    pub fn fit(
        poses: &[Molecule],
        pocket: &BindingPocket,
        mmgbsa_cfg: &MmGbsaConfig,
        ridge: f64,
    ) -> AmplSurrogate {
        assert!(poses.len() >= NUM_FEATURES, "need at least {NUM_FEATURES} training poses");
        let xs: Vec<[f64; NUM_FEATURES]> = poses.iter().map(|p| descriptors(p, pocket)).collect();
        let ys: Vec<f64> =
            poses.iter().map(|p| mmgbsa_score(mmgbsa_cfg, p, pocket).total).collect();

        // Normal equations with ridge: (XᵀX + rI) w = Xᵀy.
        let mut a = [[0.0f64; NUM_FEATURES]; NUM_FEATURES];
        let mut b = [0.0f64; NUM_FEATURES];
        for (x, &y) in xs.iter().zip(&ys) {
            for i in 0..NUM_FEATURES {
                b[i] += x[i] * y;
                for j in 0..NUM_FEATURES {
                    a[i][j] += x[i] * x[j];
                }
            }
        }
        for (i, row) in a.iter_mut().enumerate() {
            row[i] += ridge;
        }
        let weights = solve(a, b);
        let preds: Vec<f64> =
            xs.iter().map(|x| x.iter().zip(&weights).map(|(xi, wi)| xi * wi).sum()).collect();
        let train_correlation = dfmetrics::pearson(&preds, &ys);
        AmplSurrogate { weights, train_correlation }
    }

    /// Predicts the MM/GBSA total for one pose.
    pub fn predict(&self, pose: &Molecule, pocket: &BindingPocket) -> f64 {
        descriptors(pose, pocket).iter().zip(&self.weights).map(|(x, w)| x * w).sum()
    }
}

/// Gaussian elimination with partial pivoting for the small normal system.
fn solve(
    mut a: [[f64; NUM_FEATURES]; NUM_FEATURES],
    mut b: [f64; NUM_FEATURES],
) -> [f64; NUM_FEATURES] {
    let n = NUM_FEATURES;
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty range");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        assert!(diag.abs() > 1e-12, "singular normal matrix (increase ridge)");
        for row in (col + 1)..n {
            let f = a[row][col] / diag;
            let pivot_row = a[col];
            for (cell, pv) in a[row][col..].iter_mut().zip(&pivot_row[col..]) {
                *cell -= f * pv;
            }
            b[row] -= f * b[col];
        }
    }
    let mut w = [0.0f64; NUM_FEATURES];
    for row in (0..n).rev() {
        let mut s = b[row];
        for k in (row + 1)..n {
            s -= a[row][k] * w[k];
        }
        w[row] = s / a[row][row];
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfchem::genmol::{Compound, Library};
    use dfchem::pocket::TargetSite;
    use dfdock::search::{dock, DockConfig};

    fn training_poses(n: u64, target: TargetSite) -> (Vec<Molecule>, BindingPocket) {
        let pocket = BindingPocket::generate(target, 5);
        let poses = (0..n)
            .map(|i| {
                let c = Compound::materialize(Library::EMolecules, i, 5);
                dock(
                    &DockConfig { mc_restarts: 2, mc_steps: 25, ..Default::default() },
                    &c.mol,
                    &pocket,
                    i,
                )
                .remove(0)
                .ligand
            })
            .collect();
        (poses, pocket)
    }

    #[test]
    fn surrogate_correlates_with_real_mmgbsa() {
        let (poses, pocket) = training_poses(24, TargetSite::Spike1);
        let cfg = MmGbsaConfig { born_iterations: 3, ..Default::default() };
        let s = AmplSurrogate::fit(&poses, &pocket, &cfg, 1e-3);
        // The paper cites the AMPL surrogate as "highly correlated" with
        // real MM/GBSA; demand a solid training correlation here.
        assert!(s.train_correlation > 0.7, "train corr {}", s.train_correlation);
        // Held-out poses still correlate.
        let (held, _) = training_poses(12, TargetSite::Spike1);
        let preds: Vec<f64> = held.iter().map(|p| s.predict(p, &pocket)).collect();
        let actual: Vec<f64> = held.iter().map(|p| mmgbsa_score(&cfg, p, &pocket).total).collect();
        let r = dfmetrics::pearson(&preds, &actual);
        assert!(r > 0.4, "held-out corr {r}");
    }

    #[test]
    fn surrogate_is_much_cheaper_than_mmgbsa() {
        let (poses, pocket) = training_poses(10, TargetSite::Spike2);
        let cfg = MmGbsaConfig::default();
        let s =
            AmplSurrogate::fit(&poses, &pocket, &MmGbsaConfig { born_iterations: 2, ..cfg }, 1e-3);
        let t0 = std::time::Instant::now();
        for p in &poses {
            let _ = s.predict(p, &pocket);
        }
        let surrogate_time = t0.elapsed();
        let t1 = std::time::Instant::now();
        for p in &poses {
            let _ = mmgbsa_score(&cfg, p, &pocket);
        }
        let real_time = t1.elapsed();
        assert!(
            surrogate_time < real_time / 5,
            "surrogate ({surrogate_time:?}) should be far cheaper than MM/GBSA ({real_time:?})"
        );
    }

    #[test]
    fn solver_round_trips_a_known_system() {
        // w = identity solve: A = I → w = b.
        let mut a = [[0.0; NUM_FEATURES]; NUM_FEATURES];
        for (i, row) in a.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        let b = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        assert_eq!(solve(a, b), b);
    }

    #[test]
    fn per_target_surrogates_differ() {
        let cfg = MmGbsaConfig { born_iterations: 2, ..Default::default() };
        let (p1, pk1) = training_poses(16, TargetSite::Protease1);
        let (p2, pk2) = training_poses(16, TargetSite::Spike2);
        let s1 = AmplSurrogate::fit(&p1, &pk1, &cfg, 1e-3);
        let s2 = AmplSurrogate::fit(&p2, &pk2, &cfg, 1e-3);
        assert_ne!(s1.weights, s2.weights);
    }
}
