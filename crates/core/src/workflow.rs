//! End-to-end training workflows: the §3 protocol in one call.
//!
//! [`train_all_variants`] reproduces the paper's model-building sequence:
//! train the SG-CNN and 3D-CNN heads individually on the synthetic
//! PDBbind (general+refined, quintile-split), then build the three fusion
//! variants — Late (frozen heads, no training), Mid-level (frozen heads,
//! trained fusion layers) and Coherent (pre-trained heads fine-tuned
//! end-to-end) — and evaluate everything on the held-out core set.

use crate::cnn3d::Cnn3d;
use crate::config::{Cnn3dConfig, FusionConfig, FusionKind, SgCnnConfig};
use crate::fusion::FusionModel;
use crate::sgcnn::SgCnn;
use crate::train::{predict, train, TrainConfig, TrainHistory};
use dfchem::featurize::VoxelConfig;
use dfdata::loader::{DataLoader, LoaderConfig};
use dfdata::pdbbind::{Group, PdbBind};
use dfdata::split::paper_split;
use dfmetrics::RegressionReport;
use dftensor::params::ParamStore;
use dftensor::rng::derive_seed;
use std::sync::Arc;

/// Sizing knobs for a workflow run (model widths track the configs).
#[derive(Debug, Clone)]
pub struct WorkflowConfig {
    pub sgcnn: SgCnnConfig,
    pub cnn3d: Cnn3dConfig,
    pub midlevel: FusionConfig,
    pub coherent: FusionConfig,
    pub voxel: VoxelConfig,
    pub loader: LoaderConfig,
    pub seed: u64,
}

impl WorkflowConfig {
    /// CPU-tractable sizes for examples and tests.
    pub fn small(seed: u64) -> WorkflowConfig {
        let voxel = VoxelConfig { grid_dim: 12, resolution: 2.0 };
        let sgcnn = SgCnnConfig::small();
        WorkflowConfig {
            loader: LoaderConfig {
                batch_size: 8,
                num_workers: 4,
                voxel,
                graph: sgcnn.graph_config(),
                ..Default::default()
            },
            sgcnn,
            cnn3d: Cnn3dConfig::small(),
            midlevel: FusionConfig::small(FusionKind::MidLevel),
            coherent: FusionConfig::small(FusionKind::Coherent),
            voxel,
            seed,
        }
    }

    /// An even smaller configuration for unit tests.
    pub fn tiny(seed: u64) -> WorkflowConfig {
        let mut cfg = WorkflowConfig::small(seed);
        cfg.voxel = VoxelConfig { grid_dim: 8, resolution: 2.5 };
        cfg.loader.voxel = cfg.voxel;
        cfg.sgcnn.epochs = 3;
        cfg.sgcnn.covalent_gather_width = 6;
        cfg.sgcnn.noncovalent_gather_width = 10;
        cfg.cnn3d.epochs = 3;
        cfg.cnn3d.conv_filters_1 = 4;
        cfg.cnn3d.conv_filters_2 = 6;
        cfg.cnn3d.num_dense_nodes = 12;
        cfg.midlevel.epochs = 3;
        cfg.midlevel.num_dense_nodes = 12;
        cfg.coherent.epochs = 2;
        cfg.coherent.num_dense_nodes = 12;
        cfg
    }
}

/// Everything the workflow produces.
pub struct TrainedModels {
    pub sgcnn: SgCnn,
    pub sgcnn_params: ParamStore,
    pub sgcnn_history: TrainHistory,
    pub cnn3d: Cnn3d,
    pub cnn3d_params: ParamStore,
    pub cnn3d_history: TrainHistory,
    pub late: FusionModel,
    pub late_params: ParamStore,
    pub midlevel: FusionModel,
    pub midlevel_params: ParamStore,
    pub midlevel_history: TrainHistory,
    pub coherent: FusionModel,
    pub coherent_params: ParamStore,
    pub coherent_history: TrainHistory,
    pub voxel: VoxelConfig,
    pub config: WorkflowConfig,
}

/// Copies trained head weights into a fusion model's parameter store by
/// name (`sg.` → `fusion.sgcnn.`, `cnn.` → `fusion.cnn3d.`).
fn load_pretrained_heads(
    fusion_params: &mut ParamStore,
    sg_params: &ParamStore,
    cnn_params: &ParamStore,
) {
    let ids: Vec<_> = fusion_params.iter().map(|(id, _)| id).collect();
    for id in ids {
        let name = fusion_params.name(id).to_string();
        let source = if let Some(rest) = name.strip_prefix("fusion.sgcnn.") {
            sg_params
                .iter()
                .find(|(sid, _)| sg_params.name(*sid) == format!("sg.{rest}"))
                .map(|(_, e)| e.value.clone())
        } else if let Some(rest) = name.strip_prefix("fusion.cnn3d.") {
            cnn_params
                .iter()
                .find(|(cid, _)| cnn_params.name(*cid) == format!("cnn.{rest}"))
                .map(|(_, e)| e.value.clone())
        } else {
            None
        };
        if let Some(v) = source {
            assert_eq!(
                v.shape(),
                fusion_params.value(id).shape(),
                "pretrained shape mismatch for {name}"
            );
            *fusion_params.value_mut(id) = v;
        }
    }
}

/// Runs the full §3 training protocol on a dataset.
pub fn train_all_variants(dataset: Arc<PdbBind>, cfg: &WorkflowConfig) -> TrainedModels {
    // --- Splits: quintile sub-sampling on general+refined (§3.1). ---
    let general = dataset.indices(Group::General);
    let refined = dataset.indices(Group::Refined);
    let labels = dataset.labels();
    let (train_idx, val_idx) = paper_split(&general, &refined, &labels, cfg.seed);

    // Output layers start at the training-label mean so the first epochs
    // descend the residual structure instead of the global offset.
    let label_mean = if train_idx.is_empty() {
        0.0
    } else {
        train_idx.iter().map(|&i| labels[i]).sum::<f64>() / train_idx.len() as f64
    } as f32;

    let train_loader = DataLoader::new(Arc::clone(&dataset), train_idx.clone(), cfg.loader.clone());
    let train_loader_aug = DataLoader::new(
        Arc::clone(&dataset),
        train_idx,
        LoaderConfig { flip_augment: cfg.cnn3d.flip_augment, ..cfg.loader.clone() },
    );
    let val_loader = DataLoader::new(
        Arc::clone(&dataset),
        val_idx,
        LoaderConfig { shuffle: false, ..cfg.loader.clone() },
    );

    // --- Individual heads. ---
    let mut sg_params = ParamStore::new();
    let mut sgcnn = SgCnn::new(&cfg.sgcnn, &mut sg_params, "sg", derive_seed(cfg.seed, 1));
    sgcnn.set_output_bias(&mut sg_params, label_mean);
    let sgcnn_history = train(
        &mut sgcnn,
        &mut sg_params,
        &train_loader,
        &val_loader,
        &TrainConfig {
            epochs: cfg.sgcnn.epochs,
            learning_rate: cfg.sgcnn.learning_rate,
            seed: derive_seed(cfg.seed, 11),
            ..Default::default()
        },
    );

    let mut cnn_params = ParamStore::new();
    let mut cnn3d =
        Cnn3d::new(&cfg.cnn3d, &cfg.voxel, &mut cnn_params, "cnn", derive_seed(cfg.seed, 2));
    cnn3d.set_output_bias(&mut cnn_params, label_mean);
    let cnn3d_history = train(
        &mut cnn3d,
        &mut cnn_params,
        &train_loader_aug,
        &val_loader,
        &TrainConfig {
            epochs: cfg.cnn3d.epochs,
            learning_rate: cfg.cnn3d.learning_rate,
            seed: derive_seed(cfg.seed, 12),
            ..Default::default()
        },
    );

    // --- Fusion variants over pre-trained heads. ---
    let build_fusion = |fcfg: &FusionConfig, stream: u64| -> (FusionModel, ParamStore) {
        let mut ps = ParamStore::new();
        let model = FusionModel::new(
            fcfg,
            &cfg.sgcnn,
            &cfg.cnn3d,
            &cfg.voxel,
            &mut ps,
            derive_seed(cfg.seed, stream),
        );
        if fcfg.pretrained {
            load_pretrained_heads(&mut ps, &sg_params, &cnn_params);
        }
        model.set_output_bias(&mut ps, label_mean);
        (model, ps)
    };

    let (late, late_params) = build_fusion(&FusionConfig::late(), 3);

    let (mut midlevel, mut midlevel_params) = build_fusion(&cfg.midlevel, 4);
    let midlevel_history = train(
        &mut midlevel,
        &mut midlevel_params,
        &train_loader,
        &val_loader,
        &TrainConfig {
            epochs: cfg.midlevel.epochs,
            learning_rate: cfg.midlevel.learning_rate,
            optimizer: cfg.midlevel.optimizer,
            seed: derive_seed(cfg.seed, 13),
            ..Default::default()
        },
    );

    let (mut coherent, mut coherent_params) = build_fusion(&cfg.coherent, 5);
    let coherent_history = train(
        &mut coherent,
        &mut coherent_params,
        &train_loader,
        &val_loader,
        &TrainConfig {
            epochs: cfg.coherent.epochs,
            learning_rate: cfg.coherent.learning_rate,
            optimizer: cfg.coherent.optimizer,
            seed: derive_seed(cfg.seed, 14),
            ..Default::default()
        },
    );

    TrainedModels {
        sgcnn,
        sgcnn_params: sg_params,
        sgcnn_history,
        cnn3d,
        cnn3d_params: cnn_params,
        cnn3d_history,
        late,
        late_params,
        midlevel,
        midlevel_params,
        midlevel_history,
        coherent,
        coherent_params,
        coherent_history,
        voxel: cfg.voxel,
        config: cfg.clone(),
    }
}

impl TrainedModels {
    /// Evaluates one variant on a set of dataset indices, returning the
    /// Table 6 regression metrics.
    pub fn evaluate(
        &mut self,
        dataset: &Arc<PdbBind>,
        indices: &[usize],
        which: EvalModel,
    ) -> RegressionReport {
        let loader = DataLoader::new(
            Arc::clone(dataset),
            indices.to_vec(),
            LoaderConfig { shuffle: false, ..self.config.loader.clone() },
        );
        let (preds, labels) = match which {
            EvalModel::SgCnn => predict(&mut self.sgcnn, &self.sgcnn_params, &loader),
            EvalModel::Cnn3d => predict(&mut self.cnn3d, &self.cnn3d_params, &loader),
            EvalModel::Late => predict(&mut self.late, &self.late_params, &loader),
            EvalModel::MidLevel => predict(&mut self.midlevel, &self.midlevel_params, &loader),
            EvalModel::Coherent => predict(&mut self.coherent, &self.coherent_params, &loader),
        };
        RegressionReport::compute(&preds, &labels)
    }
}

/// Which trained model to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalModel {
    SgCnn,
    Cnn3d,
    Late,
    MidLevel,
    Coherent,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfdata::pdbbind::PdbBindConfig;

    #[test]
    fn workflow_trains_and_evaluates_all_variants() {
        let ds = Arc::new(PdbBind::generate(&PdbBindConfig::tiny(), 21));
        let cfg = WorkflowConfig::tiny(21);
        let mut models = train_all_variants(Arc::clone(&ds), &cfg);
        let core = ds.indices(Group::Core);
        for which in [
            EvalModel::SgCnn,
            EvalModel::Cnn3d,
            EvalModel::Late,
            EvalModel::MidLevel,
            EvalModel::Coherent,
        ] {
            let report = models.evaluate(&ds, &core, which);
            assert!(report.rmse.is_finite(), "{which:?} produced NaN metrics");
            assert!(report.rmse > 0.0);
        }
        // Histories recorded the right number of epochs.
        assert_eq!(models.sgcnn_history.epochs.len(), cfg.sgcnn.epochs);
        assert_eq!(models.coherent_history.epochs.len(), cfg.coherent.epochs);
    }

    #[test]
    fn pretrained_heads_are_loaded_into_fusion() {
        let ds = Arc::new(PdbBind::generate(&PdbBindConfig::tiny(), 22));
        let cfg = WorkflowConfig::tiny(22);
        let models = train_all_variants(Arc::clone(&ds), &cfg);
        // The late-fusion store must contain the trained SG-CNN weights
        // verbatim (Late never trains, so they stay identical).
        let mut checked = 0;
        for (id, e) in models.late_params.iter() {
            let name = models.late_params.name(id);
            if let Some(rest) = name.strip_prefix("fusion.sgcnn.") {
                let want = format!("sg.{rest}");
                let src = models
                    .sgcnn_params
                    .iter()
                    .find(|(sid, _)| models.sgcnn_params.name(*sid) == want)
                    .expect("matching head param");
                assert!(e.value.allclose(&src.1.value, 0.0), "{name} not loaded");
                checked += 1;
            }
        }
        assert!(checked > 0, "no head params were checked");
    }
}

// ---------------------------------------------------------------------
// Checkpointing: persist a trained workflow so expensive runs (the bench
// harnesses) can be reused across binaries.
// ---------------------------------------------------------------------

impl TrainedModels {
    /// Saves every variant's weights and training history into `dir`.
    pub fn save(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let save_store = |name: &str, ps: &ParamStore| -> std::io::Result<()> {
            let json = serde_json::to_string(&ps.snapshot()).expect("serialize snapshot");
            std::fs::write(dir.join(format!("{name}.json")), json)
        };
        save_store("sgcnn", &self.sgcnn_params)?;
        save_store("cnn3d", &self.cnn3d_params)?;
        save_store("late", &self.late_params)?;
        save_store("midlevel", &self.midlevel_params)?;
        save_store("coherent", &self.coherent_params)?;
        let hist = serde_json::to_string(&(
            &self.sgcnn_history,
            &self.cnn3d_history,
            &self.midlevel_history,
            &self.coherent_history,
        ))
        .expect("serialize histories");
        std::fs::write(dir.join("histories.json"), hist)?;
        Ok(())
    }

    /// Rebuilds the models deterministically from `cfg` and restores the
    /// saved weights; returns `None` when the cache is absent or stale
    /// (e.g. the architecture in `cfg` no longer matches).
    pub fn load(cfg: &WorkflowConfig, dir: &std::path::Path) -> Option<TrainedModels> {
        let load_snap = |name: &str| -> Option<dftensor::params::ParamSnapshot> {
            let raw = std::fs::read_to_string(dir.join(format!("{name}.json"))).ok()?;
            serde_json::from_str(&raw).ok()
        };

        // Reconstruct with the same seed streams train_all_variants uses.
        let mut sg_params = ParamStore::new();
        let sgcnn = SgCnn::new(&cfg.sgcnn, &mut sg_params, "sg", derive_seed(cfg.seed, 1));
        sg_params.restore(&load_snap("sgcnn")?).ok()?;

        let mut cnn_params = ParamStore::new();
        let cnn3d =
            Cnn3d::new(&cfg.cnn3d, &cfg.voxel, &mut cnn_params, "cnn", derive_seed(cfg.seed, 2));
        cnn_params.restore(&load_snap("cnn3d")?).ok()?;

        let build =
            |fcfg: &FusionConfig, stream: u64, name: &str| -> Option<(FusionModel, ParamStore)> {
                let mut ps = ParamStore::new();
                let m = FusionModel::new(
                    fcfg,
                    &cfg.sgcnn,
                    &cfg.cnn3d,
                    &cfg.voxel,
                    &mut ps,
                    derive_seed(cfg.seed, stream),
                );
                ps.restore(&load_snap(name)?).ok()?;
                Some((m, ps))
            };
        let (late, late_params) = build(&FusionConfig::late(), 3, "late")?;
        let (midlevel, midlevel_params) = build(&cfg.midlevel, 4, "midlevel")?;
        let (coherent, coherent_params) = build(&cfg.coherent, 5, "coherent")?;

        let raw = std::fs::read_to_string(dir.join("histories.json")).ok()?;
        let (sgcnn_history, cnn3d_history, midlevel_history, coherent_history): (
            TrainHistory,
            TrainHistory,
            TrainHistory,
            TrainHistory,
        ) = serde_json::from_str(&raw).ok()?;

        Some(TrainedModels {
            sgcnn,
            sgcnn_params: sg_params,
            sgcnn_history,
            cnn3d,
            cnn3d_params: cnn_params,
            cnn3d_history,
            late,
            late_params,
            midlevel,
            midlevel_params,
            midlevel_history,
            coherent,
            coherent_params,
            coherent_history,
            voxel: cfg.voxel,
            config: cfg.clone(),
        })
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use dfdata::pdbbind::PdbBindConfig;

    #[test]
    fn save_load_round_trips_the_workflow() {
        let ds = Arc::new(PdbBind::generate(&PdbBindConfig::tiny(), 44));
        let cfg = WorkflowConfig::tiny(44);
        let mut trained = train_all_variants(Arc::clone(&ds), &cfg);
        let dir = std::env::temp_dir().join(format!("df_wf_ckpt_{}", std::process::id()));
        trained.save(&dir).unwrap();
        let mut loaded = TrainedModels::load(&cfg, &dir).expect("cache loads");

        // Same predictions on the core set.
        let core = ds.indices(Group::Core);
        let a = trained.evaluate(&ds, &core, EvalModel::Coherent);
        let b = loaded.evaluate(&ds, &core, EvalModel::Coherent);
        assert_eq!(a, b);
        assert_eq!(trained.coherent_history.best_val_mse, loaded.coherent_history.best_val_mse);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn load_from_missing_dir_is_none() {
        let cfg = WorkflowConfig::tiny(1);
        assert!(TrainedModels::load(&cfg, std::path::Path::new("/nope/df")).is_none());
    }
}
