//! Distributed data-parallel training (§3.2).
//!
//! The paper distributes individual hyper-parameter trials across 1–12
//! ranks, each rank holding a model replica and averaging gradients — the
//! Horovod pattern. Here a rank is a thread: each epoch's batches are
//! dealt round-robin to replicas, every replica accumulates gradients on
//! its shard of a step's batches, gradients are averaged (allreduce) and
//! one optimizer applies the update to the single authoritative parameter
//! store, which is then re-broadcast.
//!
//! As in any synchronous data-parallel setup, N ranks take one optimizer
//! step per N batches with an N-fold larger effective batch, so the rank
//! count trades step count against batch size (the classic large-batch
//! regime) rather than changing the learning problem — which is what let
//! the paper resize trials freely between 1 and 12 ranks.

use crate::train::{EpochStats, Predictor, TrainConfig, TrainHistory};
use dfdata::loader::{Batch, DataLoader};
use dftensor::graph::Graph;
use dftensor::params::ParamStore;
use parking_lot::Mutex;

/// A factory producing per-rank replicas of the model. Each replica must
/// be architecturally identical (they share one parameter store).
pub trait ReplicaFactory<M: Predictor + Send>: Sync {
    fn replica(&self) -> M;
}

impl<M: Predictor + Send, F: Fn() -> M + Sync> ReplicaFactory<M> for F {
    fn replica(&self) -> M {
        self()
    }
}

/// Trains with `ranks` data-parallel replicas; semantics match
/// [`crate::train::train`] (MSE objective, best-validation snapshot
/// restored at the end).
pub fn train_distributed<M: Predictor + Send>(
    factory: &dyn ReplicaFactory<M>,
    ps: &mut ParamStore,
    train_loader: &DataLoader,
    val_loader: &DataLoader,
    cfg: &TrainConfig,
    ranks: usize,
) -> TrainHistory {
    assert!(ranks >= 1, "need at least one rank");
    // Linear scaling rule: N ranks average gradients over an N-fold
    // effective batch and take N-fold fewer steps, so the learning rate
    // scales with the rank count to keep per-sample progress comparable.
    let mut opt = cfg.optimizer.build((cfg.learning_rate * ranks as f64) as f32);
    let mut history = Vec::with_capacity(cfg.epochs);
    let mut best_val = f64::INFINITY;
    let mut best_snapshot = ps.snapshot();
    let mut val_replica = factory.replica();

    for epoch in 0..cfg.epochs {
        let batches: Vec<Batch> =
            train_loader.epoch(dftensor::rng::derive_seed(cfg.seed, epoch as u64)).collect();
        let mut train_sum = 0.0f64;
        let mut train_n = 0usize;

        // One optimizer step per `ranks` batches: each rank takes one
        // batch of the group, gradients are averaged across the group.
        for group in batches.chunks(ranks) {
            ps.zero_grad();
            let group_stats: Mutex<(f64, usize)> = Mutex::new((0.0, 0));
            let grad_stores: Vec<Mutex<Option<ParamStore>>> =
                group.iter().map(|_| Mutex::new(None)).collect();
            crossbeam::scope(|s| {
                for (slot, batch) in grad_stores.iter().zip(group) {
                    let ps_ref: &ParamStore = ps;
                    let stats = &group_stats;
                    s.spawn(move |_| {
                        // Each rank owns a replica and a private gradient
                        // accumulator (a clone of the store).
                        let mut replica = factory.replica();
                        let mut local = ps_ref.clone();
                        let mut g = Graph::new();
                        let pred = replica.forward_batch(&mut g, ps_ref, batch, true);
                        let target = g.input(batch.labels.clone());
                        let loss = g.mse_loss(pred, target);
                        let l = g.value(loss).item() as f64;
                        local.zero_grad();
                        g.backward(loss).accumulate_into(&mut local);
                        {
                            let mut st = stats.lock();
                            st.0 += l * batch.len() as f64;
                            st.1 += batch.len();
                        }
                        *slot.lock() = Some(local);
                    });
                }
            })
            .expect("rank thread panicked");

            // Allreduce: average rank gradients into the main store.
            let n_contrib = grad_stores.len().max(1) as f32;
            for slot in grad_stores {
                let local = slot.into_inner().expect("rank finished");
                for (id, entry) in local.iter() {
                    ps.accumulate_grad(id, &entry.grad);
                }
            }
            ps.scale_grads(1.0 / n_contrib);
            if cfg.clip_norm > 0.0 {
                ps.clip_grad_norm(cfg.clip_norm);
            }
            opt.step(ps);
            let (s, n) = group_stats.into_inner();
            train_sum += s;
            train_n += n;
        }

        // Validation on rank 0's replica.
        let (val_preds, val_labels) = crate::train::predict(&mut val_replica, ps, val_loader);
        let val_mse = if val_preds.is_empty() {
            0.0
        } else {
            val_preds.iter().zip(&val_labels).map(|(p, t)| (p - t) * (p - t)).sum::<f64>()
                / val_preds.len() as f64
        };
        if val_mse < best_val {
            best_val = val_mse;
            best_snapshot = ps.snapshot();
        }
        history.push(EpochStats {
            epoch,
            train_mse: if train_n > 0 { train_sum / train_n as f64 } else { 0.0 },
            val_mse,
        });
    }
    if cfg.epochs > 0 {
        ps.restore(&best_snapshot).expect("snapshot from same store");
    }
    TrainHistory { epochs: history, best_val_mse: best_val, best_snapshot }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnn3d::Cnn3d;
    use crate::config::Cnn3dConfig;
    use dfchem::featurize::VoxelConfig;
    use dfdata::loader::LoaderConfig;
    use dfdata::pdbbind::{PdbBind, PdbBindConfig};
    use std::sync::Arc;

    fn setup() -> (Arc<PdbBind>, DataLoader, DataLoader, ParamStore, Cnn3dConfig, VoxelConfig) {
        let ds = Arc::new(PdbBind::generate(&PdbBindConfig::tiny(), 61));
        let n = ds.entries.len();
        let voxel = VoxelConfig { grid_dim: 8, resolution: 2.5 };
        let loader_cfg =
            LoaderConfig { batch_size: 4, num_workers: 2, voxel, ..Default::default() };
        let train_l =
            DataLoader::new(Arc::clone(&ds), (0..n * 3 / 4).collect(), loader_cfg.clone());
        let val_l = DataLoader::new(
            Arc::clone(&ds),
            (n * 3 / 4..n).collect(),
            LoaderConfig { shuffle: false, ..loader_cfg },
        );
        let cfg = Cnn3dConfig {
            conv_filters_1: 4,
            conv_filters_2: 6,
            num_dense_nodes: 12,
            flip_augment: false,
            ..Cnn3dConfig::table3()
        };
        (ds, train_l, val_l, ParamStore::new(), cfg, voxel)
    }

    #[test]
    fn distributed_training_reduces_loss() {
        let (_ds, train_l, val_l, mut ps, cfg, voxel) = setup();
        let model = Cnn3d::new(&cfg, &voxel, &mut ps, "cnn", 5);
        let factory = move || model.clone();
        let hist = train_distributed(
            &factory,
            &mut ps,
            &train_l,
            &val_l,
            &TrainConfig { epochs: 5, learning_rate: 1e-3, ..Default::default() },
            3,
        );
        let first = hist.epochs.first().unwrap().train_mse;
        let last = hist.epochs.last().unwrap().train_mse;
        assert!(last < first, "distributed training should learn: {first:.3} → {last:.3}");
    }

    #[test]
    fn rank_counts_learn_equivalently() {
        // N ranks = one step per N batches with an N-fold batch: the
        // trajectory differs, but both must learn the same problem to a
        // comparable level.
        let run = |ranks: usize| {
            let (_ds, train_l, val_l, mut ps, cfg, voxel) = setup();
            let model = Cnn3d::new(&cfg, &voxel, &mut ps, "cnn", 5);
            let factory = move || model.clone();
            train_distributed(
                &factory,
                &mut ps,
                &train_l,
                &val_l,
                &TrainConfig { epochs: 4, learning_rate: 1e-3, ..Default::default() },
                ranks,
            )
        };
        let a = run(1);
        let b = run(3);
        let improved = |h: &TrainHistory| {
            h.epochs.last().unwrap().train_mse < h.epochs.first().unwrap().train_mse
        };
        assert!(improved(&a), "1-rank run failed to learn");
        assert!(improved(&b), "3-rank run failed to learn");
        assert!(
            b.best_val_mse < a.best_val_mse * 3.0 && a.best_val_mse < b.best_val_mse * 3.0,
            "rank counts reached very different quality: {} vs {}",
            a.best_val_mse,
            b.best_val_mse
        );
    }

    #[test]
    fn dropout_replicas_stay_independent_but_deterministic() {
        let (_ds, train_l, val_l, mut ps, cfg, voxel) = setup();
        let model = Cnn3d::new(&cfg, &voxel, &mut ps, "cnn", 9);
        let factory = move || model.clone();
        let snap_a = {
            let mut ps2 = ps.clone();
            train_distributed(
                &factory,
                &mut ps2,
                &train_l,
                &val_l,
                &TrainConfig { epochs: 1, learning_rate: 1e-3, ..Default::default() },
                2,
            );
            ps2.snapshot()
        };
        let snap_b = {
            let mut ps2 = ps.clone();
            train_distributed(
                &factory,
                &mut ps2,
                &train_l,
                &val_l,
                &TrainConfig { epochs: 1, learning_rate: 1e-3, ..Default::default() },
                2,
            );
            ps2.snapshot()
        };
        for (x, y) in snap_a.params.iter().zip(&snap_b.params) {
            assert_eq!(x.data, y.data, "same run twice must be identical: {}", x.name);
        }
    }
}
