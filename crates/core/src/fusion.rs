//! The three fusion formulations (§2): Late, Mid-level and Coherent.
//!
//! All variants share one network shape — a 3D-CNN head, an SG-CNN head
//! and (for Mid-level/Coherent) fusion layers over the concatenated head
//! latents. The variants differ only in what receives gradient:
//!
//! * **Late** — no fusion parameters at all; the prediction is the
//!   unweighted mean of the two heads' outputs.
//! * **Mid-level** — heads are injected frozen; only fusion layers train.
//! * **Coherent** — the identical graph with the heads injected trainable,
//!   so one MSE loss back-propagates coherently through fusion layers and
//!   both heads (the paper's key innovation).

use crate::batch_graph::BatchedGraph;
use crate::cnn3d::Cnn3d;
use crate::config::{Cnn3dConfig, FusionConfig, FusionKind, SgCnnConfig};
use crate::sgcnn::SgCnn;
use dfchem::featurize::VoxelConfig;
use dftensor::graph::{Graph, VarId};
use dftensor::nn::{BatchNorm, Dropout, Linear};
use dftensor::params::ParamStore;
use dftensor::rng::{derive_seed, rng};
use dftensor::Tensor;
use rand::rngs::StdRng;

/// A complete fusion model over both input representations.
#[derive(Debug, Clone)]
pub struct FusionModel {
    pub config: FusionConfig,
    pub cnn3d: Cnn3d,
    pub sgcnn: SgCnn,
    spec_3d: Option<Linear>,
    spec_sg: Option<Linear>,
    fusion_layers: Vec<Linear>,
    fusion_bns: Vec<BatchNorm>,
    out: Option<Linear>,
    drop1: Dropout,
    drop2: Dropout,
    drop3: Dropout,
    dropout_rng: StdRng,
}

impl FusionModel {
    /// Builds the model; head hyper-parameters are given separately so the
    /// same optimized head configs (Tables 2–3) can back every variant.
    pub fn new(
        cfg: &FusionConfig,
        sg_cfg: &SgCnnConfig,
        cnn_cfg: &Cnn3dConfig,
        voxel: &VoxelConfig,
        ps: &mut ParamStore,
        seed: u64,
    ) -> Self {
        let mut r = rng(derive_seed(seed, 0xF0510));
        let cnn3d = Cnn3d::new(cnn_cfg, voxel, ps, "fusion.cnn3d", derive_seed(seed, 1));
        let sgcnn = SgCnn::new(sg_cfg, ps, "fusion.sgcnn", derive_seed(seed, 2));

        let l3 = cnn3d.latent_width();
        let lsg = sgcnn.latent_width();
        let dn = cfg.num_dense_nodes.max(2);

        let (spec_3d, spec_sg, fusion_layers, fusion_bns, out) = if cfg.kind == FusionKind::Late {
            (None, None, Vec::new(), Vec::new(), None)
        } else {
            let (s3, ssg) = if cfg.model_specific_layers {
                (
                    Some(Linear::new(ps, "fusion.spec3d", l3, dn, &mut r)),
                    Some(Linear::new(ps, "fusion.specsg", lsg, dn, &mut r)),
                )
            } else {
                (None, None)
            };
            // Concatenated fusion input: raw latents plus (optionally)
            // their model-specific projections.
            let mut width = l3 + lsg;
            if cfg.model_specific_layers {
                width += 2 * dn;
            }
            let mut layers = Vec::new();
            let mut bns = Vec::new();
            let n_hidden = cfg.num_fusion_layers.saturating_sub(1).max(1);
            let mut in_w = width;
            for i in 0..n_hidden {
                layers.push(Linear::new(ps, &format!("fusion.f{i}"), in_w, dn, &mut r));
                bns.push(BatchNorm::new(ps, &format!("fusion.bn{i}"), dn));
                in_w = dn;
            }
            let out = Linear::new(ps, "fusion.out", in_w, 1, &mut r);
            // Down-scale the output weights: the residual SELU stack
            // amplifies activations ~2× per layer, so a full-scale
            // random output projection would start predictions an order
            // of magnitude off the label scale. A small (not zero, so
            // gradient still reaches the heads) init keeps the first
            // prediction near the bias, which the trainer sets to the
            // label mean.
            ps.value_mut(out.w).map_inplace(|w| w * 0.02);
            (s3, ssg, layers, bns, Some(out))
        };

        Self {
            config: cfg.clone(),
            cnn3d,
            sgcnn,
            spec_3d,
            spec_sg,
            fusion_layers,
            fusion_bns,
            out,
            drop1: Dropout::new(cfg.dropout_1 as f32),
            drop2: Dropout::new(cfg.dropout_2 as f32),
            drop3: Dropout::new(cfg.dropout_3 as f32),
            dropout_rng: rng(derive_seed(seed, 0xDD)),
        }
    }

    /// True when the heads train along with the fusion layers.
    pub fn heads_trainable(&self) -> bool {
        self.config.kind == FusionKind::Coherent
    }

    /// Initializes the fusion output bias to the given value (typically
    /// the training-label mean); the heads have their own
    /// `set_output_bias` for the same purpose.
    pub fn set_output_bias(&self, ps: &mut ParamStore, value: f32) {
        if let Some(out) = &self.out {
            ps.value_mut(out.b).data_mut()[0] = value;
        }
    }

    /// Forward pass over a batch (`voxels: [B,C,D,H,W]`, graphs batched).
    pub fn forward(
        &mut self,
        g: &mut Graph,
        ps: &ParamStore,
        voxels: &Tensor,
        graphs: &BatchedGraph,
        train: bool,
    ) -> VarId {
        let heads_frozen = !self.heads_trainable();
        // In Late/Mid-level fusion the heads also run in eval mode (their
        // dropout stays off); Coherent fine-tunes them, so they train.
        let heads_train = train && !heads_frozen;
        let cnn_out = self.cnn3d.forward(g, ps, voxels, heads_train, heads_frozen);
        let sg_out = self.sgcnn.forward(g, ps, graphs, heads_train, heads_frozen);

        if self.config.kind == FusionKind::Late {
            let sum = g.add(cnn_out.pred, sg_out.pred);
            return g.scale(sum, 0.5);
        }

        let act = self.config.activation;
        // Latent standardization: the heads' latent scales are unbounded
        // (and grow as the heads train), which destabilizes the stacked
        // SELU fusion layers — the role batch norm plays in the paper's
        // search space. RMS-normalizing each latent keeps fusion inputs
        // O(1) without learnable state.
        let cnn_latent = g.rms_norm_rows(cnn_out.latent, 1e-6);
        let sg_latent = g.rms_norm_rows(sg_out.latent, 1e-6);
        let mut parts = vec![cnn_latent, sg_latent];
        if let (Some(s3), Some(ssg)) = (&self.spec_3d, &self.spec_sg) {
            let p3 = s3.forward(g, ps, cnn_latent, false);
            let p3 = act.apply(g, p3);
            let psg = ssg.forward(g, ps, sg_latent, false);
            let psg = act.apply(g, psg);
            parts.push(p3);
            parts.push(psg);
        }
        let mut h = g.concat_cols(&parts);
        h = self.drop1.forward(g, h, train, &mut self.dropout_rng);

        let n = self.fusion_layers.len();
        let mid = n / 2;
        let use_bn = self.config.batch_norm;
        let residual = self.config.residual_fusion;
        for i in 0..n {
            let lin = self.fusion_layers[i].forward(g, ps, h, false);
            let mut z = act.apply(g, lin);
            if use_bn {
                z = self.fusion_bns[i].forward(g, ps, z, train, false);
            }
            // Residual connections are only shape-compatible from the
            // second fusion layer onward (width dn → dn).
            if residual && i >= 1 {
                z = g.add(z, h);
            }
            h = z;
            if i + 1 == mid.max(1) {
                h = self.drop2.forward(g, h, train, &mut self.dropout_rng);
            }
        }
        h = self.drop3.forward(g, h, train, &mut self.dropout_rng);
        self.out.as_ref().expect("non-late fusion has an output layer").forward(g, ps, h, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfchem::featurize::{build_graph, GraphConfig};
    use dfchem::genmol::{generate_molecule, MolGenConfig};
    use dfchem::pocket::{BindingPocket, TargetSite};

    fn tiny_voxel() -> VoxelConfig {
        VoxelConfig { grid_dim: 8, resolution: 2.0 }
    }

    fn tiny_heads() -> (SgCnnConfig, Cnn3dConfig) {
        (
            SgCnnConfig {
                covalent_gather_width: 6,
                noncovalent_gather_width: 8,
                covalent_k: 1,
                noncovalent_k: 1,
                ..SgCnnConfig::table2()
            },
            Cnn3dConfig {
                conv_filters_1: 4,
                conv_filters_2: 6,
                num_dense_nodes: 8,
                ..Cnn3dConfig::table3()
            },
        )
    }

    fn tiny_inputs(b: usize) -> (Tensor, BatchedGraph) {
        let pocket = BindingPocket::generate(TargetSite::Spike1, 2);
        let mut graphs = Vec::new();
        let mut r = rng(5);
        for i in 0..b {
            let mut lig = generate_molecule(
                &MolGenConfig { min_heavy: 6, max_heavy: 9, ..Default::default() },
                "m",
                i as u64,
            );
            let c = lig.centroid();
            lig.translate(c.scale(-1.0));
            graphs.push(build_graph(&GraphConfig::default(), &lig, &pocket));
        }
        let voxels = Tensor::randn(&[b, VoxelConfig::NUM_CHANNELS, 8, 8, 8], &mut r).scale(0.1);
        (voxels, BatchedGraph::from_graphs(&graphs))
    }

    fn build(kind: FusionKind) -> (FusionModel, ParamStore) {
        let mut ps = ParamStore::new();
        let (sg, cnn) = tiny_heads();
        let cfg = FusionConfig { num_dense_nodes: 8, ..FusionConfig::small(kind) };
        let m = FusionModel::new(&cfg, &sg, &cnn, &tiny_voxel(), &mut ps, 11);
        (m, ps)
    }

    #[test]
    fn late_fusion_is_the_mean_of_heads() {
        let (mut m, ps) = build(FusionKind::Late);
        let (v, bg) = tiny_inputs(2);
        let mut g = Graph::new();
        let pred = m.forward(&mut g, &ps, &v, &bg, false);
        let fused = g.value(pred).clone();
        let mut g2 = Graph::new();
        let p3 = m.cnn3d.forward(&mut g2, &ps, &v, false, true);
        let psg = m.sgcnn.forward(&mut g2, &ps, &bg, false, true);
        for i in 0..2 {
            let expect = 0.5 * (g2.value(p3.pred).data()[i] + g2.value(psg.pred).data()[i]);
            assert!((fused.data()[i] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn midlevel_trains_only_fusion_parameters() {
        let (mut m, mut ps) = build(FusionKind::MidLevel);
        let (v, bg) = tiny_inputs(2);
        let mut g = Graph::new();
        let pred = m.forward(&mut g, &ps, &v, &bg, true);
        let t = g.input(Tensor::zeros(&[2, 1]));
        let loss = g.mse_loss(pred, t);
        ps.zero_grad();
        g.backward(loss).accumulate_into(&mut ps);
        for (id, e) in ps.iter() {
            let name = ps.name(id).to_string();
            let is_head = name.contains("cnn3d") || name.contains("sgcnn");
            if is_head {
                assert_eq!(e.grad.norm(), 0.0, "{name} should be frozen");
            }
        }
        // At least the fusion output layer must receive gradient.
        let got: f32 = ps
            .iter()
            .filter(|(id, _)| {
                ps.name(*id).starts_with("fusion.f") || ps.name(*id).starts_with("fusion.out")
            })
            .map(|(_, e)| e.grad.norm())
            .sum();
        assert!(got > 0.0, "fusion layers must train");
    }

    #[test]
    fn coherent_trains_heads_too() {
        let (mut m, mut ps) = build(FusionKind::Coherent);
        let (v, bg) = tiny_inputs(2);
        let mut g = Graph::new();
        let pred = m.forward(&mut g, &ps, &v, &bg, true);
        let t = g.input(Tensor::zeros(&[2, 1]));
        let loss = g.mse_loss(pred, t);
        ps.zero_grad();
        g.backward(loss).accumulate_into(&mut ps);
        let head_grad: f32 = ps
            .iter()
            .filter(|(id, _)| {
                let n = ps.name(*id);
                n.contains("cnn3d.conv1") || n.contains("sgcnn.embed_cov")
            })
            .map(|(_, e)| e.grad.norm())
            .sum();
        assert!(head_grad > 0.0, "coherent fusion must back-propagate into the heads");
    }

    #[test]
    fn model_specific_layers_change_architecture() {
        let mut ps_a = ParamStore::new();
        let mut ps_b = ParamStore::new();
        let (sg, cnn) = tiny_heads();
        let with = FusionConfig {
            model_specific_layers: true,
            num_dense_nodes: 8,
            ..FusionConfig::small(FusionKind::MidLevel)
        };
        let without = FusionConfig { model_specific_layers: false, ..with.clone() };
        FusionModel::new(&with, &sg, &cnn, &tiny_voxel(), &mut ps_a, 1);
        FusionModel::new(&without, &sg, &cnn, &tiny_voxel(), &mut ps_b, 1);
        assert!(ps_a.num_scalars() > ps_b.num_scalars());
    }

    #[test]
    fn residual_fusion_runs_and_differs() {
        let (v, bg) = tiny_inputs(2);
        let pred_with = |residual: bool| {
            let mut ps = ParamStore::new();
            let (sg, cnn) = tiny_heads();
            let cfg = FusionConfig {
                residual_fusion: residual,
                num_fusion_layers: 4,
                num_dense_nodes: 8,
                ..FusionConfig::small(FusionKind::MidLevel)
            };
            let mut m = FusionModel::new(&cfg, &sg, &cnn, &tiny_voxel(), &mut ps, 3);
            let mut g = Graph::new();
            let p = m.forward(&mut g, &ps, &v, &bg, false);
            g.value(p).data().to_vec()
        };
        assert_ne!(pred_with(true), pred_with(false));
    }

    #[test]
    fn eval_forward_is_deterministic() {
        let (mut m, ps) = build(FusionKind::Coherent);
        let (v, bg) = tiny_inputs(3);
        let run = |m: &mut FusionModel| {
            let mut g = Graph::new();
            let p = m.forward(&mut g, &ps, &v, &bg, false);
            g.value(p).data().to_vec()
        };
        assert_eq!(run(&mut m), run(&mut m));
    }
}
