//! Hyper-parameter configurations for every model, mirroring the paper's
//! Tables 1–5.
//!
//! * [`SgCnnConfig::table2`] — the optimized SG-CNN (Table 2),
//! * [`Cnn3dConfig::table3`] — the optimized 3D-CNN (Table 3),
//! * [`FusionConfig::table4_midlevel`] — the optimized Mid-level Fusion
//!   model (Table 4),
//! * [`FusionConfig::table5_coherent`] — the optimized Coherent Fusion
//!   model (Table 5),
//! * [`SearchSpace`] — the PB2 ranges of Table 1, consumed by `dfhpo`.

use dfchem::featurize::GraphConfig;
use dftensor::nn::Activation;
use dftensor::optim::OptimizerKind;
use serde::{Deserialize, Serialize};

/// SG-CNN hyper-parameters (Table 2 layout).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SgCnnConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f64,
    /// Message-passing steps over each edge type.
    pub covalent_k: usize,
    pub noncovalent_k: usize,
    /// Neighbour thresholds in Å (also drive graph featurization).
    pub covalent_threshold: f64,
    pub noncovalent_threshold: f64,
    /// Hidden/gather widths per stage.
    pub covalent_gather_width: usize,
    pub noncovalent_gather_width: usize,
}

impl SgCnnConfig {
    /// The optimized values of Table 2.
    pub fn table2() -> Self {
        Self {
            epochs: 213,
            batch_size: 16,
            learning_rate: 2.66e-3,
            covalent_k: 6,
            noncovalent_k: 3,
            covalent_threshold: 2.24,
            noncovalent_threshold: 5.22,
            covalent_gather_width: 24,
            noncovalent_gather_width: 128,
        }
    }

    /// A scaled-down configuration for CPU training runs.
    pub fn small() -> Self {
        Self {
            epochs: 30,
            covalent_gather_width: 12,
            noncovalent_gather_width: 32,
            covalent_k: 2,
            noncovalent_k: 2,
            ..Self::table2()
        }
    }

    /// The graph featurization induced by these hyper-parameters.
    pub fn graph_config(&self) -> GraphConfig {
        GraphConfig {
            covalent_k: self.covalent_k.max(1),
            noncovalent_k: self.noncovalent_k.max(1),
            covalent_threshold: self.covalent_threshold,
            noncovalent_threshold: self.noncovalent_threshold,
        }
    }

    /// Dense-head widths: the paper sets them from the non-covalent gather
    /// width, "sequentially reduced in size by a factor of 1.5 and then 2".
    pub fn dense_widths(&self) -> (usize, usize) {
        let w1 = ((self.noncovalent_gather_width as f64) / 1.5).round() as usize;
        let w2 = (w1 as f64 / 2.0).round() as usize;
        (w1.max(2), w2.max(2))
    }
}

/// 3D-CNN hyper-parameters (Table 3 layout).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cnn3dConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f64,
    pub batch_norm: bool,
    /// First dense layer width; the second is reduced by a factor of 2.
    pub num_dense_nodes: usize,
    /// Filters for the 5×5×5 and 3×3×3 convolution stages.
    pub conv_filters_1: usize,
    pub conv_filters_2: usize,
    /// Residual options of Figure 1.
    pub residual_1: bool,
    pub residual_2: bool,
    /// Fixed dropouts from Table 1 (0.25 early, 0.125 mid).
    pub dropout_1: f64,
    pub dropout_2: f64,
    /// Random-flip augmentation of training inputs (§3.3.1).
    pub flip_augment: bool,
}

impl Cnn3dConfig {
    /// The optimized values of Table 3.
    pub fn table3() -> Self {
        Self {
            epochs: 75,
            batch_size: 12,
            learning_rate: 4.90e-5,
            batch_norm: false,
            num_dense_nodes: 128,
            conv_filters_1: 32,
            conv_filters_2: 64,
            residual_1: false,
            residual_2: true,
            dropout_1: 0.25,
            dropout_2: 0.125,
            flip_augment: true,
        }
    }

    /// A scaled-down configuration for CPU training runs.
    pub fn small() -> Self {
        Self {
            epochs: 25,
            num_dense_nodes: 32,
            conv_filters_1: 8,
            conv_filters_2: 12,
            learning_rate: 4.0e-4,
            ..Self::table3()
        }
    }
}

/// Which fusion formulation to build (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FusionKind {
    /// Unweighted mean of the two heads' predictions.
    Late,
    /// Learned fusion layers over frozen heads' latent spaces.
    MidLevel,
    /// One coherently back-propagated model: fusion layers *and* both
    /// heads receive gradient.
    Coherent,
}

/// Fusion-model hyper-parameters (Tables 4 and 5 layout).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FusionConfig {
    pub kind: FusionKind,
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f64,
    pub batch_norm: bool,
    pub optimizer: OptimizerKind,
    pub activation: Activation,
    /// Residual connections between fusion layers.
    pub residual_fusion: bool,
    /// Per-head dense layers before concatenation (Figure 1's optional
    /// "model-specific" fusion layers).
    pub model_specific_layers: bool,
    /// Load pre-trained heads (Table 5: T for Coherent Fusion).
    pub pretrained: bool,
    pub dropout_1: f64,
    pub dropout_2: f64,
    pub dropout_3: f64,
    pub num_fusion_layers: usize,
    /// Width of the fusion dense layers.
    pub num_dense_nodes: usize,
}

impl FusionConfig {
    /// The optimized Mid-level Fusion model of Table 4.
    pub fn table4_midlevel() -> Self {
        Self {
            kind: FusionKind::MidLevel,
            epochs: 64,
            batch_size: 1,
            learning_rate: 4.03e-4,
            batch_norm: false,
            optimizer: OptimizerKind::Adam,
            activation: Activation::Selu,
            residual_fusion: true,
            model_specific_layers: true,
            pretrained: true,
            dropout_1: 0.251,
            dropout_2: 0.125,
            dropout_3: 0.0,
            num_fusion_layers: 5,
            num_dense_nodes: 64,
        }
    }

    /// The optimized Coherent Fusion model of Table 5: simpler fusion
    /// architecture (4 layers, no model-specific layers, no residual) with
    /// markedly stronger dropout, on pre-trained heads.
    pub fn table5_coherent() -> Self {
        Self {
            kind: FusionKind::Coherent,
            epochs: 18,
            batch_size: 48,
            learning_rate: 1.08e-4,
            batch_norm: false,
            optimizer: OptimizerKind::Adam,
            activation: Activation::Selu,
            residual_fusion: false,
            model_specific_layers: false,
            pretrained: true,
            dropout_1: 0.386,
            dropout_2: 0.247,
            dropout_3: 0.055,
            num_fusion_layers: 4,
            num_dense_nodes: 64,
        }
    }

    /// Late Fusion has no learnable fusion parameters.
    pub fn late() -> Self {
        Self {
            kind: FusionKind::Late,
            epochs: 0,
            batch_size: 16,
            learning_rate: 0.0,
            batch_norm: false,
            optimizer: OptimizerKind::Adam,
            activation: Activation::Relu,
            residual_fusion: false,
            model_specific_layers: false,
            pretrained: true,
            dropout_1: 0.0,
            dropout_2: 0.0,
            dropout_3: 0.0,
            num_fusion_layers: 0,
            num_dense_nodes: 0,
        }
    }

    /// Scaled-down fusion configs for CPU runs.
    pub fn small(kind: FusionKind) -> Self {
        let base = match kind {
            FusionKind::Late => Self::late(),
            FusionKind::MidLevel => Self::table4_midlevel(),
            FusionKind::Coherent => Self::table5_coherent(),
        };
        Self {
            epochs: if kind == FusionKind::Late { 0 } else { 16 },
            batch_size: 8,
            num_dense_nodes: 24,
            // Frozen-head latents can be large early in training; keep the
            // scaled-down fusion rate conservative to avoid divergence.
            learning_rate: if kind == FusionKind::MidLevel { 1.0e-4 } else { 2.0e-4 },
            ..base
        }
    }
}

/// One hyper-parameter's admissible values in the PB2 search (Table 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ParamRange {
    /// Boolean switch (T/F).
    Bool,
    /// Discrete list of choices.
    Choice(Vec<f64>),
    /// Continuous uniform range.
    Uniform { lo: f64, hi: f64 },
    /// Continuous log-uniform range (learning rates).
    LogUniform { lo: f64, hi: f64 },
}

/// One named dimension of a search space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchDim {
    pub name: String,
    pub range: ParamRange,
}

/// A model's full search space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchSpace {
    pub model: String,
    pub dims: Vec<SearchDim>,
}

fn dim(name: &str, range: ParamRange) -> SearchDim {
    SearchDim { name: name.to_string(), range }
}

impl SearchSpace {
    /// Table 1, SG-CNN column.
    pub fn sgcnn() -> SearchSpace {
        SearchSpace {
            model: "sgcnn".into(),
            dims: vec![
                dim("batch_size", ParamRange::Choice(vec![4.0, 8.0, 12.0, 16.0])),
                dim("learning_rate", ParamRange::LogUniform { lo: 2e-4, hi: 2e-2 }),
                dim("covalent_k", ParamRange::Choice(vec![2., 3., 4., 5., 6., 7., 8.])),
                dim("noncovalent_k", ParamRange::Choice(vec![2., 3., 4., 5., 6., 7., 8.])),
                dim("covalent_threshold", ParamRange::Uniform { lo: 1.2, hi: 2.6 }),
                dim("noncovalent_threshold", ParamRange::Uniform { lo: 2.6, hi: 5.9 }),
                dim(
                    "covalent_gather_width",
                    ParamRange::Choice(vec![8., 24., 40., 64., 88., 104., 128.]),
                ),
                dim(
                    "noncovalent_gather_width",
                    ParamRange::Choice(vec![8., 24., 40., 64., 88., 104., 128.]),
                ),
            ],
        }
    }

    /// Table 1, 3D-CNN column.
    pub fn cnn3d() -> SearchSpace {
        SearchSpace {
            model: "cnn3d".into(),
            dims: vec![
                dim("batch_size", ParamRange::Choice(vec![8.0, 12.0, 24.0])),
                dim("learning_rate", ParamRange::LogUniform { lo: 1e-6, hi: 1e-4 }),
                dim("batch_norm", ParamRange::Bool),
                dim("num_dense_nodes", ParamRange::Choice(vec![40., 64., 88., 104., 128.])),
                dim("conv_filters_1", ParamRange::Choice(vec![32., 64., 96.])),
                dim("conv_filters_2", ParamRange::Choice(vec![64., 96., 128.])),
                dim("residual_1", ParamRange::Bool),
                dim("residual_2", ParamRange::Bool),
            ],
        }
    }

    /// Table 1, Fusion column.
    pub fn fusion() -> SearchSpace {
        SearchSpace {
            model: "fusion".into(),
            dims: vec![
                dim("optimizer", ParamRange::Choice(vec![0.0, 1.0, 2.0, 3.0])),
                dim("activation", ParamRange::Choice(vec![0.0, 1.0, 2.0])),
                dim(
                    "batch_size",
                    ParamRange::Choice(vec![
                        1., 2., 4., 5., 8., 12., 16., 24., 28., 34., 38., 48., 56.,
                    ]),
                ),
                dim("learning_rate", ParamRange::LogUniform { lo: 1e-8, hi: 1e-3 }),
                dim("model_specific_layers", ParamRange::Bool),
                dim("pretrained", ParamRange::Bool),
                dim("batch_norm", ParamRange::Bool),
                dim("dropout_1", ParamRange::Uniform { lo: 0.0, hi: 0.50 }),
                dim("dropout_2", ParamRange::Uniform { lo: 0.0, hi: 0.25 }),
                dim("dropout_3", ParamRange::Uniform { lo: 0.0, hi: 0.125 }),
                dim("num_fusion_layers", ParamRange::Choice(vec![3., 4., 5.])),
                dim(
                    "num_dense_nodes",
                    ParamRange::Choice(vec![8., 24., 40., 64., 88., 104., 128.]),
                ),
                dim("residual_fusion", ParamRange::Bool),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_match_paper() {
        let c = SgCnnConfig::table2();
        assert_eq!(c.epochs, 213);
        assert_eq!(c.batch_size, 16);
        assert!((c.learning_rate - 2.66e-3).abs() < 1e-12);
        assert_eq!(c.covalent_k, 6);
        assert_eq!(c.noncovalent_k, 3);
        assert!((c.noncovalent_threshold - 5.22).abs() < 1e-12);
        assert!((c.covalent_threshold - 2.24).abs() < 1e-12);
        assert_eq!(c.noncovalent_gather_width, 128);
        assert_eq!(c.covalent_gather_width, 24);
    }

    #[test]
    fn sgcnn_dense_widths_follow_reduction_rule() {
        let c = SgCnnConfig::table2();
        // 128 / 1.5 = 85.33 → 85; 85 / 2 = 42.5 → 43 (round)
        let (w1, w2) = c.dense_widths();
        assert_eq!(w1, 85);
        assert_eq!(w2, 43);
    }

    #[test]
    fn table3_values_match_paper() {
        let c = Cnn3dConfig::table3();
        assert_eq!(c.epochs, 75);
        assert_eq!(c.batch_size, 12);
        assert!((c.learning_rate - 4.90e-5).abs() < 1e-15);
        assert!(!c.batch_norm);
        assert_eq!(c.num_dense_nodes, 128);
        assert_eq!(c.conv_filters_1, 32);
        assert_eq!(c.conv_filters_2, 64);
        assert!(!c.residual_1);
        assert!(c.residual_2);
    }

    #[test]
    fn table4_and_5_contrast_matches_paper() {
        let mid = FusionConfig::table4_midlevel();
        let coh = FusionConfig::table5_coherent();
        // The paper's observation: Coherent converged to a simpler fusion
        // architecture with stronger regularization and larger batches.
        assert!(coh.num_fusion_layers < mid.num_fusion_layers);
        assert!(!coh.model_specific_layers && mid.model_specific_layers);
        assert!(!coh.residual_fusion && mid.residual_fusion);
        assert!(coh.dropout_1 > mid.dropout_1);
        assert!(coh.batch_size > mid.batch_size);
        assert!(coh.epochs < mid.epochs);
        assert_eq!(mid.activation, Activation::Selu);
        assert_eq!(coh.activation, Activation::Selu);
    }

    #[test]
    fn search_spaces_cover_table1() {
        assert_eq!(SearchSpace::sgcnn().dims.len(), 8);
        assert_eq!(SearchSpace::cnn3d().dims.len(), 8);
        assert_eq!(SearchSpace::fusion().dims.len(), 13);
    }

    #[test]
    fn graph_config_propagates_thresholds() {
        let g = SgCnnConfig::table2().graph_config();
        assert!((g.noncovalent_threshold - 5.22).abs() < 1e-12);
        assert_eq!(g.covalent_k, 6);
    }
}
