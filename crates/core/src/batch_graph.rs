//! Batching of molecular graphs, PyTorch-Geometric style: the nodes of all
//! graphs in a batch are stacked into one feature matrix, edges are offset
//! accordingly, and a segment vector maps each node back to its graph for
//! the readout.

use dfchem::featurize::MolGraph;
use dftensor::Tensor;

/// A batch of molecular graphs flattened into one disjoint union graph.
#[derive(Debug, Clone)]
pub struct BatchedGraph {
    /// `[total_nodes, F]` stacked node features.
    pub node_feats: Tensor,
    /// Directed covalent edges with batch offsets applied.
    pub covalent_edges: Vec<(usize, usize)>,
    /// Per-edge distances aligned with `covalent_edges`.
    pub covalent_dists: Vec<f64>,
    /// Directed non-covalent edges with batch offsets applied.
    pub noncovalent_edges: Vec<(usize, usize)>,
    /// Per-edge distances aligned with `noncovalent_edges`.
    pub noncovalent_dists: Vec<f64>,
    /// Graph id of each node.
    pub node_graph: Vec<usize>,
    /// Ligand-node mask over all nodes.
    pub ligand_mask: Vec<bool>,
    /// Number of graphs in the batch.
    pub num_graphs: usize,
}

impl BatchedGraph {
    /// Builds the disjoint union of the given graphs.
    pub fn from_graphs(graphs: &[MolGraph]) -> BatchedGraph {
        let refs: Vec<&MolGraph> = graphs.iter().collect();
        Self::from_graph_refs(&refs)
    }

    /// [`BatchedGraph::from_graphs`] over borrowed graphs, so callers that
    /// hold graphs behind `Arc`s (the serving feature cache) can batch
    /// without cloning node features.
    pub fn from_graph_refs(graphs: &[&MolGraph]) -> BatchedGraph {
        assert!(!graphs.is_empty(), "cannot batch zero graphs");
        let f = graphs[0].node_feats.shape()[1];
        let total: usize = graphs.iter().map(|g| g.num_nodes()).sum();
        let mut node_feats = Tensor::zeros(&[total, f]);
        let mut covalent_edges = Vec::new();
        let mut covalent_dists = Vec::new();
        let mut noncovalent_edges = Vec::new();
        let mut noncovalent_dists = Vec::new();
        let mut node_graph = Vec::with_capacity(total);
        let mut ligand_mask = Vec::with_capacity(total);
        let mut offset = 0usize;
        for (gi, g) in graphs.iter().enumerate() {
            assert_eq!(g.node_feats.shape()[1], f, "inconsistent node feature width");
            let n = g.num_nodes();
            node_feats.data_mut()[offset * f..(offset + n) * f]
                .copy_from_slice(g.node_feats.data());
            covalent_edges.extend(g.covalent_edges.iter().map(|&(a, b)| (a + offset, b + offset)));
            covalent_dists.extend_from_slice(&g.covalent_dists);
            noncovalent_edges
                .extend(g.noncovalent_edges.iter().map(|&(a, b)| (a + offset, b + offset)));
            noncovalent_dists.extend_from_slice(&g.noncovalent_dists);
            node_graph.extend(std::iter::repeat_n(gi, n));
            ligand_mask.extend_from_slice(&g.ligand_mask);
            offset += n;
        }
        BatchedGraph {
            node_feats,
            covalent_edges,
            covalent_dists,
            noncovalent_edges,
            noncovalent_dists,
            node_graph,
            ligand_mask,
            num_graphs: graphs.len(),
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.node_graph.len()
    }

    /// Edge list split into (sources, targets) index vectors.
    pub fn edge_endpoints(edges: &[(usize, usize)]) -> (Vec<usize>, Vec<usize>) {
        let src = edges.iter().map(|&(s, _)| s).collect();
        let dst = edges.iter().map(|&(_, d)| d).collect();
        (src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfchem::element::Element;
    use dfchem::featurize::{build_graph, GraphConfig};
    use dfchem::geom::Vec3;
    use dfchem::mol::{Atom, BondOrder, Molecule};
    use dfchem::pocket::{BindingPocket, TargetSite};

    fn graph_of(n: usize) -> MolGraph {
        let mut m = Molecule::new("m");
        for i in 0..n {
            m.add_atom(Atom::new(Element::C, Vec3::new(i as f64 * 1.5, 0.0, 0.0)));
        }
        for i in 1..n {
            m.add_bond(i - 1, i, BondOrder::Single);
        }
        let pocket = BindingPocket {
            target: TargetSite::Spike1,
            atoms: vec![],
            radius: 5.0,
            entrance: Vec3::new(0.0, 0.0, 1.0),
        };
        build_graph(&GraphConfig::default(), &m, &pocket)
    }

    #[test]
    fn batching_offsets_edges_and_segments() {
        let g1 = graph_of(3);
        let g2 = graph_of(4);
        let b = BatchedGraph::from_graphs(&[g1.clone(), g2.clone()]);
        assert_eq!(b.num_nodes(), 7);
        assert_eq!(b.num_graphs, 2);
        assert_eq!(b.node_graph, vec![0, 0, 0, 1, 1, 1, 1]);
        // Second graph's edges are shifted by 3.
        for &(a, bb) in &b.covalent_edges {
            if a >= 3 || bb >= 3 {
                assert!(a >= 3 && bb >= 3, "edges must not cross graphs");
            }
        }
        assert_eq!(b.covalent_edges.len(), g1.covalent_edges.len() + g2.covalent_edges.len());
    }

    #[test]
    fn features_are_copied_in_node_order() {
        let g1 = graph_of(2);
        let g2 = graph_of(2);
        let b = BatchedGraph::from_graphs(&[g1.clone(), g2]);
        assert_eq!(b.node_feats.row(0), g1.node_feats.row(0));
        assert_eq!(b.node_feats.shape()[0], 4);
    }

    #[test]
    fn single_graph_batch_is_identity() {
        let g = graph_of(5);
        let b = BatchedGraph::from_graphs(std::slice::from_ref(&g));
        assert_eq!(b.covalent_edges, g.covalent_edges);
        assert!(b.node_feats.allclose(&g.node_feats, 0.0));
    }

    #[test]
    #[should_panic(expected = "zero graphs")]
    fn empty_batch_rejected() {
        BatchedGraph::from_graphs(&[]);
    }
}
