//! Batched eval-mode inference: the entry points `dfserve` drives.
//!
//! Training builds its batches inside the loader; the online scoring
//! service instead arrives with per-request featurizations (often shared
//! through a cache), so these helpers stack borrowed voxel grids and
//! graphs into one forward pass. Everything runs in eval mode — dropout
//! off, batch norm on running statistics — so a given (weights, input)
//! pair always produces the same bits regardless of what else is in the
//! micro-batch's queue.

use crate::batch_graph::BatchedGraph;
use crate::fusion::FusionModel;
use dfchem::featurize::MolGraph;
use dftensor::graph::Graph;
use dftensor::params::ParamStore;
use dftensor::Tensor;

/// Stacks per-sample `[C, D, H, W]` voxel grids into one `[B, C, D, H, W]`
/// batch tensor. All grids must share a shape.
pub fn stack_voxels(voxels: &[&Tensor]) -> Tensor {
    assert!(!voxels.is_empty(), "cannot stack zero voxel grids");
    let vshape = voxels[0].shape().to_vec();
    let per = voxels[0].numel();
    let mut shape = vec![voxels.len()];
    shape.extend_from_slice(&vshape);
    let mut out = Tensor::zeros(&shape);
    for (i, v) in voxels.iter().enumerate() {
        assert_eq!(v.shape(), vshape.as_slice(), "inconsistent voxel shapes");
        out.data_mut()[i * per..(i + 1) * per].copy_from_slice(v.data());
    }
    out
}

/// Runs the full fusion model over one micro-batch, returning one score
/// per sample. `voxels[i]` and `graphs[i]` must describe the same complex.
pub fn score_batch_fusion(
    model: &mut FusionModel,
    ps: &ParamStore,
    voxels: &[&Tensor],
    graphs: &[&MolGraph],
) -> Vec<f32> {
    assert_eq!(voxels.len(), graphs.len(), "voxel/graph batch length mismatch");
    let _t = dftrace::span("fusion.infer_batch");
    dftrace::counter_add("fusion.infer.batched_items", voxels.len() as u64);
    let batch = stack_voxels(voxels);
    let bg = BatchedGraph::from_graph_refs(graphs);
    let mut g = Graph::new();
    let pred = model.forward(&mut g, ps, &batch, &bg, false);
    g.value(pred).data().to_vec()
}

/// Runs only the SG-CNN head of a fusion model (frozen, eval mode) over a
/// micro-batch — the degraded tier of the serving ladder: no voxelization
/// and no 3D convolution, at the cost of single-representation accuracy.
pub fn score_batch_sg_head(
    model: &mut FusionModel,
    ps: &ParamStore,
    graphs: &[&MolGraph],
) -> Vec<f32> {
    assert!(!graphs.is_empty(), "cannot score an empty batch");
    let _t = dftrace::span("fusion.infer_sg_head");
    let bg = BatchedGraph::from_graph_refs(graphs);
    let mut g = Graph::new();
    let out = model.sgcnn.forward(&mut g, ps, &bg, false, true);
    g.value(out.pred).data().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Cnn3dConfig, FusionConfig, FusionKind, SgCnnConfig};
    use dfchem::featurize::{build_graph, voxelize, GraphConfig, VoxelConfig};
    use dfchem::genmol::{generate_molecule, MolGenConfig};
    use dfchem::pocket::{BindingPocket, TargetSite};

    fn tiny_model() -> (FusionModel, ParamStore, VoxelConfig) {
        let voxel = VoxelConfig { grid_dim: 8, resolution: 2.0 };
        let sg = SgCnnConfig {
            covalent_gather_width: 6,
            noncovalent_gather_width: 8,
            covalent_k: 1,
            noncovalent_k: 1,
            ..SgCnnConfig::table2()
        };
        let cnn = Cnn3dConfig {
            conv_filters_1: 4,
            conv_filters_2: 6,
            num_dense_nodes: 8,
            ..Cnn3dConfig::table3()
        };
        let cfg = FusionConfig { num_dense_nodes: 8, ..FusionConfig::small(FusionKind::Coherent) };
        let mut ps = ParamStore::new();
        let m = FusionModel::new(&cfg, &sg, &cnn, &voxel, &mut ps, 17);
        (m, ps, voxel)
    }

    fn featurized(n: usize, voxel: &VoxelConfig) -> (Vec<Tensor>, Vec<MolGraph>) {
        let pocket = BindingPocket::generate(TargetSite::Spike1, 3);
        let mut voxels = Vec::new();
        let mut graphs = Vec::new();
        for i in 0..n {
            let mut lig = generate_molecule(
                &MolGenConfig { min_heavy: 6, max_heavy: 9, ..Default::default() },
                "m",
                i as u64,
            );
            let c = lig.centroid();
            lig.translate(c.scale(-1.0));
            voxels.push(voxelize(voxel, &lig, &pocket));
            graphs.push(build_graph(&GraphConfig::default(), &lig, &pocket));
        }
        (voxels, graphs)
    }

    #[test]
    fn stack_voxels_preserves_sample_order() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[1, 2]);
        let s = stack_voxels(&[&a, &b]);
        assert_eq!(s.shape(), &[2, 1, 2]);
        assert_eq!(s.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn batch_scores_match_single_sample_scores() {
        let (mut m, ps, voxel) = tiny_model();
        let (voxels, graphs) = featurized(3, &voxel);
        let vrefs: Vec<&Tensor> = voxels.iter().collect();
        let grefs: Vec<&MolGraph> = graphs.iter().collect();
        let batched = score_batch_fusion(&mut m, &ps, &vrefs, &grefs);
        for i in 0..3 {
            let single = score_batch_fusion(&mut m, &ps, &[&voxels[i]], &[&graphs[i]]);
            // Bitwise, not approximate: batch rows only add GEMM rows and
            // never enter another sample's accumulator fold.
            assert_eq!(
                batched[i].to_bits(),
                single[0].to_bits(),
                "sample {i}: batched {} vs single {}",
                batched[i],
                single[0]
            );
        }
    }

    #[test]
    fn repeated_inference_is_bit_identical() {
        let (mut m, ps, voxel) = tiny_model();
        let (voxels, graphs) = featurized(2, &voxel);
        let vrefs: Vec<&Tensor> = voxels.iter().collect();
        let grefs: Vec<&MolGraph> = graphs.iter().collect();
        let a = score_batch_fusion(&mut m, &ps, &vrefs, &grefs);
        let b = score_batch_fusion(&mut m, &ps, &vrefs, &grefs);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn sg_head_differs_from_full_fusion() {
        let (mut m, ps, voxel) = tiny_model();
        let (voxels, graphs) = featurized(2, &voxel);
        let vrefs: Vec<&Tensor> = voxels.iter().collect();
        let grefs: Vec<&MolGraph> = graphs.iter().collect();
        let full = score_batch_fusion(&mut m, &ps, &vrefs, &grefs);
        let sg = score_batch_sg_head(&mut m, &ps, &grefs);
        assert_eq!(full.len(), sg.len());
        assert_ne!(full, sg, "head-only tier must be a distinct estimate");
    }
}
