//! `dffusion` — the paper's primary contribution: structure-based Deep
//! Fusion models for protein–ligand binding-affinity prediction.
//!
//! * [`sgcnn`] — PotentialNet-style spatial graph network,
//! * [`cnn3d`] — volumetric CNN over voxelized complexes,
//! * [`fusion`] — Late / Mid-level / **Coherent** fusion (the coherently
//!   back-propagated formulation introduced by the paper),
//! * [`config`] — hyper-parameter structs mirroring Tables 1–5,
//! * [`mod@train`] — MSE training with best-validation snapshotting,
//! * [`batch_graph`] — PyG-style graph batching.

pub mod batch_graph;
pub mod cnn3d;
pub mod config;
pub mod distributed;
pub mod finetune;
pub mod fusion;
pub mod infer;
pub mod sgcnn;
pub mod train;
pub mod workflow;

pub use batch_graph::BatchedGraph;
pub use cnn3d::{Cnn3d, Cnn3dOutput};
pub use config::{
    Cnn3dConfig, FusionConfig, FusionKind, ParamRange, SearchDim, SearchSpace, SgCnnConfig,
};
pub use distributed::{train_distributed, ReplicaFactory};
pub use finetune::{
    fine_tune_for_target, predict_poses, target_local_dataset, FineTuneConfig, FineTuneReport,
};
pub use fusion::FusionModel;
pub use infer::{score_batch_fusion, score_batch_sg_head, stack_voxels};
pub use sgcnn::{SgCnn, SgCnnOutput};
pub use train::{predict, predict_batch, train, EpochStats, Predictor, TrainConfig, TrainHistory};
pub use workflow::{train_all_variants, EvalModel, TrainedModels, WorkflowConfig};
