//! Target-specific fine-tuning — the paper's stated future work (§6):
//! "use our baseline Coherent Fusion model to fine tune and predict for
//! specific protein target types and binding sites. We believe introducing
//! target specificity ... will increase the value of relative differences
//! in the model's binding affinity predictions."
//!
//! The procedure: take the trained Coherent Fusion weights, build a small
//! target-local training set (docked poses of probe compounds inside that
//! one pocket, labelled by the oracle the way a target-focused assay
//! campaign would label them), and continue coherent training at a low
//! learning rate.

use crate::fusion::FusionModel;
use crate::train::{train, TrainConfig, TrainHistory};
use dfchem::featurize::{build_graph, voxelize};
use dfchem::genmol::{Compound, Library};
use dfchem::pocket::BindingPocket;
use dfdata::loader::{Batch, DataLoader, LoaderConfig};
use dfdata::oracle::{measured_pk, OracleConfig};
use dfdata::pdbbind::{ComplexEntry, Group, Measurement, PdbBind};
use dfdock::search::{dock, DockConfig};
use dftensor::params::ParamStore;
use dftensor::rng::{derive_seed, rng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Fine-tuning configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FineTuneConfig {
    /// Probe compounds docked into the target to form the local set.
    pub num_probes: usize,
    /// Fraction withheld for validation.
    pub val_frac: f64,
    pub epochs: usize,
    /// Low fine-tuning learning rate (a fraction of the base training LR).
    pub learning_rate: f64,
    pub dock: DockConfig,
    pub oracle: OracleConfig,
    pub seed: u64,
}

impl Default for FineTuneConfig {
    fn default() -> Self {
        Self {
            num_probes: 60,
            val_frac: 0.25,
            epochs: 4,
            learning_rate: 3e-5,
            dock: DockConfig { mc_restarts: 3, mc_steps: 50, ..Default::default() },
            oracle: OracleConfig::default(),
            seed: 0,
        }
    }
}

/// Builds a target-local dataset: docked probe compounds in one pocket
/// with oracle-measured labels, shaped like a [`PdbBind`] so the standard
/// loaders work.
pub fn target_local_dataset(pocket: &BindingPocket, cfg: &FineTuneConfig) -> PdbBind {
    let mut noise_rng = rng(derive_seed(cfg.seed, 0xF1E1D));
    let entries: Vec<ComplexEntry> = (0..cfg.num_probes as u64)
        .map(|i| {
            let compound = Compound::materialize(Library::EnamineVirtual, 500_000 + i, cfg.seed);
            let pose = dock(&cfg.dock, &compound.mol, pocket, derive_seed(cfg.seed, i))
                .into_iter()
                .next()
                .map(|p| p.ligand)
                .unwrap_or(compound.mol);
            let pk = measured_pk(&cfg.oracle, &pose, pocket, &mut noise_rng);
            ComplexEntry {
                id: format!("{}-probe{i:04}", pocket.target.name()),
                group: Group::General,
                pocket: pocket.clone(),
                ligand: pose,
                pk,
                measurement: Measurement::Ic50,
                resolution: 2.0,
                descriptor: [0.0; 4],
            }
        })
        .collect();
    PdbBind { entries }
}

/// Outcome of a fine-tuning run: before/after validation MSE on the
/// target-local hold-out.
#[derive(Debug, Clone)]
pub struct FineTuneReport {
    pub history: TrainHistory,
    pub val_mse_before: f64,
    pub val_mse_after: f64,
}

/// Fine-tunes a Coherent Fusion model for one binding site, in place.
pub fn fine_tune_for_target(
    model: &mut FusionModel,
    params: &mut ParamStore,
    pocket: &BindingPocket,
    loader_template: &LoaderConfig,
    cfg: &FineTuneConfig,
) -> FineTuneReport {
    let local = Arc::new(target_local_dataset(pocket, cfg));
    let n = local.entries.len();
    let n_val = ((n as f64) * cfg.val_frac).round() as usize;
    let train_idx: Vec<usize> = (n_val..n).collect();
    let val_idx: Vec<usize> = (0..n_val).collect();

    let train_loader = DataLoader::new(Arc::clone(&local), train_idx, loader_template.clone());
    let val_loader = DataLoader::new(
        Arc::clone(&local),
        val_idx,
        LoaderConfig { shuffle: false, ..loader_template.clone() },
    );

    let val_mse_before = {
        let (p, l) = crate::train::predict(model, params, &val_loader);
        mse(&p, &l)
    };
    let history = train(
        model,
        params,
        &train_loader,
        &val_loader,
        &TrainConfig {
            epochs: cfg.epochs,
            learning_rate: cfg.learning_rate,
            seed: derive_seed(cfg.seed, 0xF7),
            ..Default::default()
        },
    );
    let val_mse_after = {
        let (p, l) = crate::train::predict(model, params, &val_loader);
        mse(&p, &l)
    };
    FineTuneReport { history, val_mse_before, val_mse_after }
}

/// Scores poses against a single pocket with the (fine-tuned) model.
pub fn predict_poses(
    model: &mut FusionModel,
    params: &ParamStore,
    poses: &[dfchem::Molecule],
    pocket: &BindingPocket,
    loader_template: &LoaderConfig,
) -> Vec<f64> {
    if poses.is_empty() {
        return Vec::new();
    }
    let graphs: Vec<_> =
        poses.iter().map(|p| build_graph(&loader_template.graph, p, pocket)).collect();
    let per = dftensor::shape::numel(&loader_template.voxel.shape());
    let mut shape = vec![poses.len()];
    shape.extend_from_slice(&loader_template.voxel.shape());
    let mut voxels = dftensor::Tensor::zeros(&shape);
    for (i, p) in poses.iter().enumerate() {
        let v = voxelize(&loader_template.voxel, p, pocket);
        voxels.data_mut()[i * per..(i + 1) * per].copy_from_slice(v.data());
    }
    let batch = Batch {
        voxels,
        graphs,
        labels: dftensor::Tensor::zeros(&[poses.len(), 1]),
        entry_indices: (0..poses.len()).collect(),
    };
    crate::train::predict_batch(model, params, &batch)
}

fn mse(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::{train_all_variants, WorkflowConfig};
    use dfchem::pocket::TargetSite;
    use dfdata::pdbbind::PdbBindConfig;

    #[test]
    fn target_local_dataset_is_single_pocket() {
        let pocket = BindingPocket::generate(TargetSite::Spike1, 3);
        let cfg = FineTuneConfig {
            num_probes: 6,
            dock: DockConfig { mc_restarts: 2, mc_steps: 20, ..Default::default() },
            ..Default::default()
        };
        let ds = target_local_dataset(&pocket, &cfg);
        assert_eq!(ds.entries.len(), 6);
        for e in &ds.entries {
            assert_eq!(e.pocket.target, TargetSite::Spike1);
            assert!((1.0..=12.0).contains(&e.pk));
        }
    }

    #[test]
    fn fine_tuning_improves_target_local_fit() {
        // Train a tiny base model, then fine-tune for spike1; the local
        // validation MSE must not get worse (and usually improves).
        let base = Arc::new(PdbBind::generate(&PdbBindConfig::tiny(), 71));
        let wcfg = WorkflowConfig::tiny(71);
        let mut models = train_all_variants(Arc::clone(&base), &wcfg);
        let pocket = BindingPocket::generate(TargetSite::Spike1, 71);
        let ft = FineTuneConfig {
            num_probes: 16,
            epochs: 3,
            learning_rate: 1e-4,
            dock: DockConfig { mc_restarts: 2, mc_steps: 20, ..Default::default() },
            seed: 71,
            ..Default::default()
        };
        let report = fine_tune_for_target(
            &mut models.coherent,
            &mut models.coherent_params,
            &pocket,
            &wcfg.loader,
            &ft,
        );
        assert!(report.val_mse_after.is_finite());
        assert!(
            report.val_mse_after <= report.val_mse_before * 1.05,
            "fine-tuning regressed: {} → {}",
            report.val_mse_before,
            report.val_mse_after
        );
    }

    #[test]
    fn predict_poses_shapes() {
        let base = Arc::new(PdbBind::generate(&PdbBindConfig::tiny(), 72));
        let wcfg = WorkflowConfig::tiny(72);
        let mut models = train_all_variants(Arc::clone(&base), &wcfg);
        let pocket = BindingPocket::generate(TargetSite::Protease1, 72);
        let poses: Vec<_> = (0..3)
            .map(|i| {
                let c = Compound::materialize(Library::Chembl, i, 72);
                let mut m = c.mol;
                let cen = m.centroid();
                m.translate(cen.scale(-1.0));
                m
            })
            .collect();
        let preds = predict_poses(
            &mut models.coherent,
            &models.coherent_params,
            &poses,
            &pocket,
            &wcfg.loader,
        );
        assert_eq!(preds.len(), 3);
        assert!(preds.iter().all(|p| p.is_finite()));
        assert!(predict_poses(
            &mut models.coherent,
            &models.coherent_params,
            &[],
            &pocket,
            &wcfg.loader
        )
        .is_empty());
    }
}
