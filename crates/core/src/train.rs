//! Training and evaluation loops shared by all models.
//!
//! Every model implements [`Predictor`] (forward over a [`Batch`] to a
//! `[B, 1]` prediction node); [`train`] then runs MSE optimization with
//! per-epoch validation, tracking the best validation snapshot exactly as
//! the paper's PB2 objective ("minimum validation set MSE loss", §3.2)
//! requires.

use crate::batch_graph::BatchedGraph;
use crate::cnn3d::Cnn3d;
use crate::fusion::FusionModel;
use crate::sgcnn::SgCnn;
use dfdata::loader::{Batch, DataLoader};
use dftensor::graph::{Graph, VarId};
use dftensor::optim::OptimizerKind;
use dftensor::params::{ParamSnapshot, ParamStore};
use serde::{Deserialize, Serialize};

/// A model that can score a featurized batch.
pub trait Predictor {
    /// Builds the forward graph for a batch, returning the `[B,1]`
    /// prediction node.
    fn forward_batch(
        &mut self,
        g: &mut Graph,
        ps: &ParamStore,
        batch: &Batch,
        train: bool,
    ) -> VarId;
}

impl Predictor for Cnn3d {
    fn forward_batch(
        &mut self,
        g: &mut Graph,
        ps: &ParamStore,
        batch: &Batch,
        train: bool,
    ) -> VarId {
        self.forward(g, ps, &batch.voxels, train, false).pred
    }
}

impl Predictor for SgCnn {
    fn forward_batch(
        &mut self,
        g: &mut Graph,
        ps: &ParamStore,
        batch: &Batch,
        train: bool,
    ) -> VarId {
        let bg = BatchedGraph::from_graphs(&batch.graphs);
        self.forward(g, ps, &bg, train, false).pred
    }
}

impl Predictor for FusionModel {
    fn forward_batch(
        &mut self,
        g: &mut Graph,
        ps: &ParamStore,
        batch: &Batch,
        train: bool,
    ) -> VarId {
        let bg = BatchedGraph::from_graphs(&batch.graphs);
        self.forward(g, ps, &batch.voxels, &bg, train)
    }
}

/// Training-loop configuration (model hyper-parameters supply the values).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    pub epochs: usize,
    pub learning_rate: f64,
    pub optimizer: OptimizerKind,
    /// Global gradient-norm clip (0 disables).
    pub clip_norm: f32,
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            learning_rate: 1e-3,
            optimizer: OptimizerKind::Adam,
            clip_norm: 5.0,
            seed: 0,
        }
    }
}

/// Loss trace of one epoch.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EpochStats {
    pub epoch: usize,
    pub train_mse: f64,
    pub val_mse: f64,
}

/// Full training record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainHistory {
    pub epochs: Vec<EpochStats>,
    /// Lowest validation MSE seen.
    pub best_val_mse: f64,
    /// Parameter snapshot at the best validation epoch.
    pub best_snapshot: ParamSnapshot,
}

/// Trains a model to minimize MSE, restoring the best-validation weights
/// into `ps` before returning.
pub fn train(
    model: &mut dyn Predictor,
    ps: &mut ParamStore,
    train_loader: &DataLoader,
    val_loader: &DataLoader,
    cfg: &TrainConfig,
) -> TrainHistory {
    let mut opt = cfg.optimizer.build(cfg.learning_rate as f32);
    let mut history = Vec::with_capacity(cfg.epochs);
    let mut best_val = f64::INFINITY;
    let mut best_snapshot = ps.snapshot();

    for epoch in 0..cfg.epochs {
        let _epoch_span = dftrace::span("train.epoch");
        // --- Train ---
        let mut train_sum = 0.0f64;
        let mut train_n = 0usize;
        for batch in train_loader.epoch(dftensor::rng::derive_seed(cfg.seed, epoch as u64)) {
            let mut g = Graph::new();
            let (loss, l) = {
                let _s = dftrace::span("fwd");
                let pred = model.forward_batch(&mut g, ps, &batch, true);
                let target = g.input(batch.labels.clone());
                let loss = g.mse_loss(pred, target);
                let l = g.value(loss).item() as f64;
                (loss, l)
            };
            train_sum += l * batch.len() as f64;
            train_n += batch.len();
            {
                let _s = dftrace::span("bwd");
                ps.zero_grad();
                g.backward(loss).accumulate_into(ps);
            }
            {
                let _s = dftrace::span("opt");
                if cfg.clip_norm > 0.0 {
                    ps.clip_grad_norm(cfg.clip_norm);
                }
                opt.step(ps);
            }
            dftrace::counter_add("train.batches", 1);
            dftrace::counter_add("train.samples", batch.len() as u64);
        }

        // --- Validate ---
        let _val_span = dftrace::span("val");
        let (val_preds, val_labels) = predict(model, ps, val_loader);
        let val_mse = mse(&val_preds, &val_labels);
        if val_mse < best_val {
            best_val = val_mse;
            best_snapshot = ps.snapshot();
        }
        history.push(EpochStats {
            epoch,
            train_mse: if train_n > 0 { train_sum / train_n as f64 } else { 0.0 },
            val_mse,
        });
    }

    // Restore the best weights (the paper keeps the minimum-val-MSE model).
    if cfg.epochs > 0 {
        ps.restore(&best_snapshot).expect("snapshot from same store");
    }
    TrainHistory { epochs: history, best_val_mse: best_val, best_snapshot }
}

/// Runs the model in eval mode over a loader, returning (preds, labels) in
/// loader order. Use an unshuffled loader for stable pairing with entries.
pub fn predict(
    model: &mut dyn Predictor,
    ps: &ParamStore,
    loader: &DataLoader,
) -> (Vec<f64>, Vec<f64>) {
    let mut preds = Vec::with_capacity(loader.num_samples());
    let mut labels = Vec::with_capacity(loader.num_samples());
    for batch in loader.epoch(0) {
        let mut g = Graph::new();
        let p = model.forward_batch(&mut g, ps, &batch, false);
        preds.extend(g.value(p).data().iter().map(|&v| v as f64));
        labels.extend(batch.labels.data().iter().map(|&v| v as f64));
    }
    (preds, labels)
}

/// Scores one pre-assembled batch in eval mode.
pub fn predict_batch(model: &mut dyn Predictor, ps: &ParamStore, batch: &Batch) -> Vec<f64> {
    let mut g = Graph::new();
    let p = model.forward_batch(&mut g, ps, batch, false);
    g.value(p).data().iter().map(|&v| v as f64).collect()
}

fn mse(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Cnn3dConfig, SgCnnConfig};
    use dfchem::featurize::{GraphConfig, VoxelConfig};
    use dfdata::loader::LoaderConfig;
    use dfdata::pdbbind::{PdbBind, PdbBindConfig};
    use std::sync::Arc;

    fn loaders() -> (Arc<PdbBind>, DataLoader, DataLoader) {
        let ds = Arc::new(PdbBind::generate(&PdbBindConfig::tiny(), 13));
        let n = ds.entries.len();
        let cfg = LoaderConfig {
            batch_size: 6,
            num_workers: 2,
            voxel: VoxelConfig { grid_dim: 8, resolution: 2.0 },
            graph: GraphConfig::default(),
            ..Default::default()
        };
        let train = DataLoader::new(Arc::clone(&ds), (0..n * 3 / 4).collect(), cfg.clone());
        let val = DataLoader::new(
            Arc::clone(&ds),
            (n * 3 / 4..n).collect(),
            LoaderConfig { shuffle: false, ..cfg },
        );
        (ds, train, val)
    }

    #[test]
    fn training_cnn3d_improves_train_mse() {
        let (_ds, train_l, val_l) = loaders();
        let mut ps = ParamStore::new();
        let voxel = VoxelConfig { grid_dim: 8, resolution: 2.0 };
        let cfg = Cnn3dConfig {
            conv_filters_1: 4,
            conv_filters_2: 6,
            num_dense_nodes: 12,
            flip_augment: false,
            ..Cnn3dConfig::table3()
        };
        let mut model = Cnn3d::new(&cfg, &voxel, &mut ps, "cnn", 3);
        let hist = train(
            &mut model,
            &mut ps,
            &train_l,
            &val_l,
            &TrainConfig { epochs: 6, learning_rate: 1e-3, ..Default::default() },
        );
        assert_eq!(hist.epochs.len(), 6);
        let first = hist.epochs.first().unwrap().train_mse;
        let last = hist.epochs.last().unwrap().train_mse;
        assert!(last < first, "train MSE should fall: {first:.3} → {last:.3}");
        assert!(hist.best_val_mse.is_finite());
    }

    #[test]
    fn training_sgcnn_improves_train_mse() {
        let (_ds, train_l, val_l) = loaders();
        let mut ps = ParamStore::new();
        let cfg = SgCnnConfig {
            covalent_gather_width: 6,
            noncovalent_gather_width: 10,
            covalent_k: 2,
            noncovalent_k: 1,
            ..SgCnnConfig::table2()
        };
        let mut model = SgCnn::new(&cfg, &mut ps, "sg", 3);
        let hist = train(
            &mut model,
            &mut ps,
            &train_l,
            &val_l,
            &TrainConfig { epochs: 6, learning_rate: 3e-3, ..Default::default() },
        );
        let first = hist.epochs.first().unwrap().train_mse;
        let last = hist.epochs.last().unwrap().train_mse;
        assert!(last < first, "train MSE should fall: {first:.3} → {last:.3}");
    }

    #[test]
    fn best_weights_are_restored() {
        let (_ds, train_l, val_l) = loaders();
        let mut ps = ParamStore::new();
        let voxel = VoxelConfig { grid_dim: 8, resolution: 2.0 };
        let cfg = Cnn3dConfig {
            conv_filters_1: 4,
            conv_filters_2: 6,
            num_dense_nodes: 12,
            flip_augment: false,
            ..Cnn3dConfig::table3()
        };
        let mut model = Cnn3d::new(&cfg, &voxel, &mut ps, "cnn", 5);
        let hist = train(
            &mut model,
            &mut ps,
            &train_l,
            &val_l,
            &TrainConfig { epochs: 4, learning_rate: 1e-3, ..Default::default() },
        );
        // Re-evaluating with the restored weights reproduces best_val_mse.
        let (p, l) = predict(&mut model, &ps, &val_l);
        let re = mse(&p, &l);
        assert!(
            (re - hist.best_val_mse).abs() < 1e-6,
            "restored val MSE {re} vs recorded {}",
            hist.best_val_mse
        );
    }

    #[test]
    fn predict_pairs_with_loader_order() {
        let (ds, _t, val_l) = loaders();
        let mut ps = ParamStore::new();
        let voxel = VoxelConfig { grid_dim: 8, resolution: 2.0 };
        let cfg = Cnn3dConfig {
            conv_filters_1: 4,
            conv_filters_2: 6,
            num_dense_nodes: 12,
            ..Cnn3dConfig::table3()
        };
        let mut model = Cnn3d::new(&cfg, &voxel, &mut ps, "cnn", 7);
        let (preds, labels) = predict(&mut model, &ps, &val_l);
        assert_eq!(preds.len(), val_l.num_samples());
        // Labels match the dataset entries in order (unshuffled loader).
        let n = ds.entries.len();
        let expect: Vec<f64> = (n * 3 / 4..n).map(|i| ds.entries[i].pk).collect();
        for (a, b) in labels.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
