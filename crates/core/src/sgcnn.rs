//! Spatial Graph CNN (PotentialNet-style gated graph network).
//!
//! Architecture per §3.3.1: structurally the PotentialNet of Feinberg et
//! al., built on gated graph sequence networks — a covalent propagation
//! stage, a non-covalent propagation stage, a gated gather over ligand
//! nodes, and a dense head whose widths are derived from the non-covalent
//! gather width (reduced by 1.5, then by 2).
//!
//! Each propagation stage runs `K` GRU steps where the message to a node is
//! the sum of a learned linear map of its neighbours' states over that
//! stage's edge type.

use crate::batch_graph::BatchedGraph;
use crate::config::SgCnnConfig;
use dfchem::featurize::NODE_FEATURES;
use dftensor::graph::{Graph, VarId};
use dftensor::nn::Linear;
use dftensor::params::ParamStore;
use dftensor::rng::rng;
use rand::rngs::StdRng;

/// Number of radial-basis features encoding each edge's distance.
///
/// Binary adjacency alone cannot express *how close* a contact is — the
/// information FAST encodes through distance-binned edge types. Each edge
/// distance is expanded over Gaussian bases so the message function can
/// weight interactions by separation.
pub const EDGE_RBF: usize = 4;

/// RBF centres (Å) spanning the covalent-to-non-covalent range.
const RBF_CENTERS: [f64; EDGE_RBF] = [1.5, 2.5, 4.0, 5.5];
const RBF_SIGMA: f64 = 1.0;

/// Expands edge distances into an `[E, EDGE_RBF]` feature tensor.
fn edge_rbf_tensor(dists: &[f64]) -> dftensor::Tensor {
    let mut t = dftensor::Tensor::zeros(&[dists.len(), EDGE_RBF]);
    for (e, &d) in dists.iter().enumerate() {
        for (k, &c) in RBF_CENTERS.iter().enumerate() {
            let z = (d - c) / RBF_SIGMA;
            t.data_mut()[e * EDGE_RBF + k] = (-0.5 * z * z).exp() as f32;
        }
    }
    t
}

/// One GRU-gated propagation stage over a fixed edge type.
#[derive(Debug, Clone)]
struct PropagationStage {
    /// Message transform applied to neighbour states.
    msg: Linear,
    /// GRU gates (update, reset, candidate), each over [message | state].
    gru_z: Linear,
    gru_r: Linear,
    gru_h: Linear,
    steps: usize,
    width: usize,
}

impl PropagationStage {
    fn new(ps: &mut ParamStore, name: &str, width: usize, steps: usize, r: &mut StdRng) -> Self {
        Self {
            // The message sees the neighbour state plus the edge's RBF
            // distance encoding.
            msg: Linear::new(ps, &format!("{name}.msg"), width + EDGE_RBF, width, r),
            gru_z: Linear::new(ps, &format!("{name}.gru_z"), 2 * width, width, r),
            gru_r: Linear::new(ps, &format!("{name}.gru_r"), 2 * width, width, r),
            gru_h: Linear::new(ps, &format!("{name}.gru_h"), 2 * width, width, r),
            steps,
            width,
        }
    }

    /// Runs `steps` rounds of message passing, returning the new states.
    #[allow(clippy::too_many_arguments)]
    fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        mut h: VarId,
        edges: &[(usize, usize)],
        dists: &[f64],
        num_nodes: usize,
        frozen: bool,
    ) -> VarId {
        let (src, dst) = BatchedGraph::edge_endpoints(edges);
        debug_assert_eq!(src.len(), dists.len(), "edge/distance length mismatch");
        // Edge features are constants for the whole stage.
        let edge_feats = if src.is_empty() { None } else { Some(g.input(edge_rbf_tensor(dists))) };
        for _ in 0..self.steps {
            // Message: sum over incoming edges of W_msg · [h_src | rbf(d)].
            let m = if src.is_empty() {
                // No edges: zero message of the right shape.
                let zeros = dftensor::Tensor::zeros(&[num_nodes, self.width]);
                g.input(zeros)
            } else {
                let gathered = g.index_select_rows(h, &src);
                let with_edge = g.concat_cols(&[gathered, edge_feats.expect("edges exist")]);
                let messages = self.msg.forward(g, ps, with_edge, frozen);
                g.segment_sum(messages, &dst, num_nodes)
            };
            // GRU update.
            let mh = g.concat_cols(&[m, h]);
            let z_lin = self.gru_z.forward(g, ps, mh, frozen);
            let z = g.sigmoid(z_lin);
            let r_lin = self.gru_r.forward(g, ps, mh, frozen);
            let r = g.sigmoid(r_lin);
            let rh = g.mul(r, h);
            let mrh = g.concat_cols(&[m, rh]);
            let cand_lin = self.gru_h.forward(g, ps, mrh, frozen);
            let cand = g.tanh(cand_lin);
            // h' = (1 - z) ⊙ h + z ⊙ cand
            let one_minus_z = {
                let neg = g.neg(z);
                g.add_scalar(neg, 1.0)
            };
            let keep = g.mul(one_minus_z, h);
            let update = g.mul(z, cand);
            h = g.add(keep, update);
        }
        h
    }
}

/// The SG-CNN model: parameters live in an external [`ParamStore`].
#[derive(Debug, Clone)]
pub struct SgCnn {
    pub config: SgCnnConfig,
    embed_cov: Linear,
    covalent: PropagationStage,
    embed_noncov: Linear,
    noncovalent: PropagationStage,
    gate: Linear,
    transform: Linear,
    dense1: Linear,
    dense2: Linear,
    out: Linear,
    dropout_rng: StdRng,
}

/// Output of an SG-CNN forward pass.
pub struct SgCnnOutput {
    /// `[B, 1]` affinity predictions.
    pub pred: VarId,
    /// `[B, noncovalent_gather_width]` gathered latent (input to fusion;
    /// the paper extracts Layer^{N-3}).
    pub latent: VarId,
}

impl SgCnn {
    /// Builds the model, registering parameters under `prefix` in `ps`.
    pub fn new(cfg: &SgCnnConfig, ps: &mut ParamStore, prefix: &str, seed: u64) -> Self {
        let mut r = rng(seed);
        let cov_w = cfg.covalent_gather_width;
        let non_w = cfg.noncovalent_gather_width;
        let (w1, w2) = cfg.dense_widths();
        Self {
            config: cfg.clone(),
            embed_cov: Linear::new(
                ps,
                &format!("{prefix}.embed_cov"),
                NODE_FEATURES,
                cov_w,
                &mut r,
            ),
            covalent: PropagationStage::new(
                ps,
                &format!("{prefix}.cov"),
                cov_w,
                cfg.covalent_k,
                &mut r,
            ),
            embed_noncov: Linear::new(
                ps,
                &format!("{prefix}.embed_noncov"),
                cov_w + NODE_FEATURES,
                non_w,
                &mut r,
            ),
            noncovalent: PropagationStage::new(
                ps,
                &format!("{prefix}.noncov"),
                non_w,
                cfg.noncovalent_k,
                &mut r,
            ),
            gate: Linear::new(ps, &format!("{prefix}.gate"), non_w + NODE_FEATURES, non_w, &mut r),
            transform: Linear::new(ps, &format!("{prefix}.transform"), non_w, non_w, &mut r),
            dense1: Linear::new(ps, &format!("{prefix}.dense1"), non_w, w1, &mut r),
            dense2: Linear::new(ps, &format!("{prefix}.dense2"), w1, w2, &mut r),
            out: Linear::new(ps, &format!("{prefix}.out"), w2, 1, &mut r),
            dropout_rng: rng(dftensor::rng::derive_seed(seed, 0xD0)),
        }
    }

    /// Forward pass over a batched graph. `frozen` stops gradients into
    /// this model's parameters (used by Late/Mid-level fusion).
    pub fn forward(
        &mut self,
        g: &mut Graph,
        ps: &ParamStore,
        batch: &BatchedGraph,
        _train: bool,
        frozen: bool,
    ) -> SgCnnOutput {
        let n = batch.num_nodes();
        let x = g.input(batch.node_feats.clone());

        // Covalent stage.
        let h0 = self.embed_cov.forward(g, ps, x, frozen);
        let h0 = g.tanh(h0);
        let h_cov = self.covalent.forward(
            g,
            ps,
            h0,
            &batch.covalent_edges,
            &batch.covalent_dists,
            n,
            frozen,
        );

        // Non-covalent stage sees the covalent summary plus raw features.
        let hx = g.concat_cols(&[h_cov, x]);
        let h1 = self.embed_noncov.forward(g, ps, hx, frozen);
        let h1 = g.tanh(h1);
        let h_non = self.noncovalent.forward(
            g,
            ps,
            h1,
            &batch.noncovalent_edges,
            &batch.noncovalent_dists,
            n,
            frozen,
        );

        // Gated gather over ligand nodes only.
        let hx2 = g.concat_cols(&[h_non, x]);
        let gate_lin = self.gate.forward(g, ps, hx2, frozen);
        let gate = g.sigmoid(gate_lin);
        let trans_lin = self.transform.forward(g, ps, h_non, frozen);
        let trans = g.tanh(trans_lin);
        let gated = g.mul(gate, trans);
        // Zero out pocket nodes, then segment-sum per graph.
        let mask: Vec<f32> = batch.ligand_mask.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();
        let width = self.config.noncovalent_gather_width;
        let mut mask_t = dftensor::Tensor::zeros(&[n, width]);
        for (i, &mv) in mask.iter().enumerate() {
            for v in &mut mask_t.data_mut()[i * width..(i + 1) * width] {
                *v = mv;
            }
        }
        let mask_v = g.input(mask_t);
        let ligand_only = g.mul(gated, mask_v);
        let latent = g.segment_sum(ligand_only, &batch.node_graph, batch.num_graphs);

        // Dense head.
        let d1 = self.dense1.forward(g, ps, latent, frozen);
        let d1 = g.relu(d1);
        let d2 = self.dense2.forward(g, ps, d1, frozen);
        let d2 = g.relu(d2);
        let pred = self.out.forward(g, ps, d2, frozen);
        SgCnnOutput { pred, latent }
    }

    /// Width of the latent vector exposed to fusion.
    pub fn latent_width(&self) -> usize {
        self.config.noncovalent_gather_width
    }

    /// Initializes the output bias (e.g. to the training-label mean) so
    /// optimization starts near the label scale instead of zero.
    pub fn set_output_bias(&self, ps: &mut ParamStore, value: f32) {
        ps.value_mut(self.out.b).data_mut()[0] = value;
    }

    /// Internal dropout RNG accessor (kept for API symmetry with the
    /// 3D-CNN; the SG-CNN search space fixes dropout at 0, Table 1).
    pub fn dropout_rng(&mut self) -> &mut StdRng {
        &mut self.dropout_rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfchem::featurize::{build_graph, GraphConfig};
    use dfchem::genmol::{generate_molecule, MolGenConfig};
    use dfchem::pocket::{BindingPocket, TargetSite};

    fn tiny_batch(n_graphs: usize) -> BatchedGraph {
        let pocket = BindingPocket::generate(TargetSite::Spike1, 1);
        let graphs: Vec<_> = (0..n_graphs)
            .map(|i| {
                let mut lig = generate_molecule(
                    &MolGenConfig { min_heavy: 6, max_heavy: 10, ..Default::default() },
                    "m",
                    i as u64,
                );
                let c = lig.centroid();
                lig.translate(c.scale(-1.0));
                build_graph(&GraphConfig::default(), &lig, &pocket)
            })
            .collect();
        BatchedGraph::from_graphs(&graphs)
    }

    fn tiny_model() -> (SgCnn, ParamStore) {
        let mut ps = ParamStore::new();
        let cfg = SgCnnConfig {
            covalent_gather_width: 6,
            noncovalent_gather_width: 10,
            covalent_k: 2,
            noncovalent_k: 1,
            ..SgCnnConfig::table2()
        };
        let model = SgCnn::new(&cfg, &mut ps, "sg", 3);
        (model, ps)
    }

    #[test]
    fn forward_shapes() {
        let (mut model, ps) = tiny_model();
        let batch = tiny_batch(3);
        let mut g = Graph::new();
        let out = model.forward(&mut g, &ps, &batch, false, false);
        assert_eq!(g.value(out.pred).shape(), &[3, 1]);
        assert_eq!(g.value(out.latent).shape(), &[3, 10]);
    }

    #[test]
    fn per_graph_predictions_are_independent_of_batching() {
        let (mut model, ps) = tiny_model();
        let batch3 = tiny_batch(3);
        let mut g = Graph::new();
        let out3 = model.forward(&mut g, &ps, &batch3, false, false);
        let preds3 = g.value(out3.pred).clone();
        // Singleton batches must reproduce each prediction.
        for i in 0..3 {
            let pocket = BindingPocket::generate(TargetSite::Spike1, 1);
            let mut lig = generate_molecule(
                &MolGenConfig { min_heavy: 6, max_heavy: 10, ..Default::default() },
                "m",
                i as u64,
            );
            let c = lig.centroid();
            lig.translate(c.scale(-1.0));
            let single =
                BatchedGraph::from_graphs(&[build_graph(&GraphConfig::default(), &lig, &pocket)]);
            let mut g1 = Graph::new();
            let out1 = model.forward(&mut g1, &ps, &single, false, false);
            let p = g1.value(out1.pred).item();
            assert!(
                (p - preds3.data()[i]).abs() < 1e-4,
                "graph {i}: batched {} vs single {p}",
                preds3.data()[i]
            );
        }
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let (mut model, mut ps) = tiny_model();
        let batch = tiny_batch(2);
        let mut g = Graph::new();
        let out = model.forward(&mut g, &ps, &batch, true, false);
        let target = g.input(dftensor::Tensor::zeros(&[2, 1]));
        let loss = g.mse_loss(out.pred, target);
        ps.zero_grad();
        g.backward(loss).accumulate_into(&mut ps);
        let mut dead = Vec::new();
        for (id, e) in ps.iter() {
            if e.grad.norm() == 0.0 {
                dead.push(ps.name(id).to_string());
            }
        }
        assert!(dead.is_empty(), "parameters with zero grad: {dead:?}");
    }

    #[test]
    fn frozen_forward_accumulates_nothing() {
        let (mut model, mut ps) = tiny_model();
        let batch = tiny_batch(2);
        let mut g = Graph::new();
        let out = model.forward(&mut g, &ps, &batch, true, true);
        let target = g.input(dftensor::Tensor::zeros(&[2, 1]));
        let loss = g.mse_loss(out.pred, target);
        ps.zero_grad();
        g.backward(loss).accumulate_into(&mut ps);
        for (_, e) in ps.iter() {
            assert_eq!(e.grad.norm(), 0.0);
        }
    }

    #[test]
    fn training_reduces_loss_on_tiny_problem() {
        let (mut model, mut ps) = tiny_model();
        let batch = tiny_batch(4);
        let target = dftensor::Tensor::from_vec(vec![4.0, 6.0, 8.0, 5.0], &[4, 1]);
        let mut opt = dftensor::optim::Adam::new(5e-3);
        use dftensor::optim::Optimizer;
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            let mut g = Graph::new();
            let out = model.forward(&mut g, &ps, &batch, true, false);
            let t = g.input(target.clone());
            let loss = g.mse_loss(out.pred, t);
            last = g.value(loss).item();
            first.get_or_insert(last);
            ps.zero_grad();
            g.backward(loss).accumulate_into(&mut ps);
            opt.step(&mut ps);
        }
        assert!(last < first.unwrap() * 0.5, "loss {last} vs initial {}", first.unwrap());
    }
}
