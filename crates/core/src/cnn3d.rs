//! 3D convolutional network over the voxelized complex.
//!
//! Per §3.3.1: relative to the original FAST 3D-CNN this model has two
//! additional convolutional layers, filters starting at 5×5×5 and reducing
//! to 3×3×3, the two residual options of Figure 1 as hyper-parameters,
//! dropout above the first two dense layers, and a second dense layer
//! whose width is the first reduced by a factor of 2.

use crate::config::Cnn3dConfig;
use dfchem::featurize::VoxelConfig;
use dftensor::graph::{Graph, VarId};
use dftensor::nn::{BatchNorm, Conv3d, Dropout, Linear};
use dftensor::params::ParamStore;
use dftensor::rng::rng;
use dftensor::Tensor;
use rand::rngs::StdRng;

/// The 3D-CNN model.
#[derive(Debug, Clone)]
pub struct Cnn3d {
    pub config: Cnn3dConfig,
    conv1: Conv3d,
    conv2: Conv3d,
    conv3: Conv3d,
    conv4: Conv3d,
    bn1: BatchNorm,
    bn2: BatchNorm,
    dense1: Linear,
    dense2: Linear,
    out: Linear,
    drop1: Dropout,
    drop2: Dropout,
    dropout_rng: StdRng,
    /// Spatial grid dim the dense head was sized for.
    grid_dim: usize,
}

/// Output of a 3D-CNN forward pass.
pub struct Cnn3dOutput {
    /// `[B, 1]` affinity predictions.
    pub pred: VarId,
    /// `[B, dense2_width]` latent from Layer^(M-1) (input to fusion).
    pub latent: VarId,
}

impl Cnn3d {
    /// Builds the model for a given voxel grid, registering parameters
    /// under `prefix`.
    pub fn new(
        cfg: &Cnn3dConfig,
        voxel: &VoxelConfig,
        ps: &mut ParamStore,
        prefix: &str,
        seed: u64,
    ) -> Self {
        let mut r = rng(seed);
        let c_in = VoxelConfig::NUM_CHANNELS;
        let f1 = cfg.conv_filters_1;
        let f2 = cfg.conv_filters_2;
        let conv1 = Conv3d::new(ps, &format!("{prefix}.conv1"), c_in, f1, 5, 2, &mut r);
        let conv2 = Conv3d::new(ps, &format!("{prefix}.conv2"), f1, f2, 3, 1, &mut r);
        let conv3 = Conv3d::new(ps, &format!("{prefix}.conv3"), f2, f2, 3, 1, &mut r);
        let conv4 = Conv3d::new(ps, &format!("{prefix}.conv4"), f2, f2, 3, 1, &mut r);
        let bn1 = BatchNorm::new(ps, &format!("{prefix}.bn1"), f1);
        let bn2 = BatchNorm::new(ps, &format!("{prefix}.bn2"), f2);
        // After three 2× pools.
        let reduced = (voxel.grid_dim / 2 / 2 / 2).max(1);
        let flat = f2 * reduced * reduced * reduced;
        let w1 = cfg.num_dense_nodes;
        let w2 = (w1 / 2).max(2);
        Self {
            config: cfg.clone(),
            conv1,
            conv2,
            conv3,
            conv4,
            bn1,
            bn2,
            dense1: Linear::new(ps, &format!("{prefix}.dense1"), flat, w1, &mut r),
            dense2: Linear::new(ps, &format!("{prefix}.dense2"), w1, w2, &mut r),
            out: Linear::new(ps, &format!("{prefix}.out"), w2, 1, &mut r),
            drop1: Dropout::new(cfg.dropout_1 as f32),
            drop2: Dropout::new(cfg.dropout_2 as f32),
            dropout_rng: rng(dftensor::rng::derive_seed(seed, 0x3D)),
            grid_dim: voxel.grid_dim,
        }
    }

    /// Forward pass over `[B, C, D, H, W]` voxels.
    pub fn forward(
        &mut self,
        g: &mut Graph,
        ps: &ParamStore,
        voxels: &Tensor,
        train: bool,
        frozen: bool,
    ) -> Cnn3dOutput {
        assert_eq!(
            voxels.shape()[2],
            self.grid_dim,
            "voxel grid {} does not match model grid {}",
            voxels.shape()[2],
            self.grid_dim
        );
        let b = voxels.shape()[0];
        let x = g.input(voxels.clone());

        // Stage 1: 5³ conv, optional BN, pool.
        let mut h = self.conv1.forward(g, ps, x, frozen);
        if self.config.batch_norm {
            h = self.bn1.forward(g, ps, h, train, frozen);
        }
        let h = g.relu(h);
        let h = g.maxpool3d(h, 2);

        // Stage 2: 3³ conv, optional BN, pool.
        let mut h = self.conv2.forward(g, ps, h, frozen);
        if self.config.batch_norm {
            h = self.bn2.forward(g, ps, h, train, frozen);
        }
        let h = g.relu(h);
        let h2 = g.maxpool3d(h, 2);

        // Stage 3 with residual option 1.
        let c3 = self.conv3.forward(g, ps, h2, frozen);
        let c3 = g.relu(c3);
        let h3 = if self.config.residual_1 { g.add(c3, h2) } else { c3 };

        // Stage 4 with residual option 2, final pool.
        let c4 = self.conv4.forward(g, ps, h3, frozen);
        let c4 = g.relu(c4);
        let h4 = if self.config.residual_2 { g.add(c4, h3) } else { c4 };
        let h4 = g.maxpool3d(h4, 2);

        // Dense head with dropout above the first two dense layers.
        let shape = g.value(h4).shape().to_vec();
        let flat: usize = shape[1..].iter().product();
        let flat_v = g.reshape(h4, &[b, flat]);
        let d = self.drop1.forward(g, flat_v, train, &mut self.dropout_rng);
        let d1 = self.dense1.forward(g, ps, d, frozen);
        let d1 = g.relu(d1);
        let d = self.drop2.forward(g, d1, train, &mut self.dropout_rng);
        let d2 = self.dense2.forward(g, ps, d, frozen);
        let latent = g.relu(d2);
        let pred = self.out.forward(g, ps, latent, frozen);
        Cnn3dOutput { pred, latent }
    }

    /// Width of the latent vector exposed to fusion.
    pub fn latent_width(&self) -> usize {
        (self.config.num_dense_nodes / 2).max(2)
    }

    /// Initializes the output bias (e.g. to the training-label mean) so
    /// optimization starts near the label scale instead of zero.
    pub fn set_output_bias(&self, ps: &mut ParamStore, value: f32) {
        ps.value_mut(self.out.b).data_mut()[0] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Cnn3d, ParamStore, VoxelConfig) {
        let mut ps = ParamStore::new();
        let voxel = VoxelConfig { grid_dim: 8, resolution: 2.0 };
        let cfg = Cnn3dConfig {
            conv_filters_1: 4,
            conv_filters_2: 6,
            num_dense_nodes: 12,
            ..Cnn3dConfig::table3()
        };
        let model = Cnn3d::new(&cfg, &voxel, &mut ps, "cnn", 7);
        (model, ps, voxel)
    }

    fn voxels(b: usize, grid: usize, seed: u64) -> Tensor {
        let mut r = rng(seed);
        Tensor::randn(&[b, VoxelConfig::NUM_CHANNELS, grid, grid, grid], &mut r).scale(0.1)
    }

    #[test]
    fn forward_shapes() {
        let (mut model, ps, _) = tiny();
        let v = voxels(2, 8, 1);
        let mut g = Graph::new();
        let out = model.forward(&mut g, &ps, &v, false, false);
        assert_eq!(g.value(out.pred).shape(), &[2, 1]);
        assert_eq!(g.value(out.latent).shape(), &[2, 6]);
        assert_eq!(model.latent_width(), 6);
    }

    #[test]
    fn eval_mode_is_deterministic_train_mode_uses_dropout() {
        let (mut model, ps, _) = tiny();
        let v = voxels(1, 8, 2);
        let eval = |m: &mut Cnn3d| {
            let mut g = Graph::new();
            let out = m.forward(&mut g, &ps, &v, false, false);
            g.value(out.pred).item()
        };
        assert_eq!(eval(&mut model), eval(&mut model));
        // Train-mode passes differ because the dropout RNG advances.
        let train = |m: &mut Cnn3d| {
            let mut g = Graph::new();
            let out = m.forward(&mut g, &ps, &v, true, false);
            g.value(out.pred).item()
        };
        let a = train(&mut model);
        let b = train(&mut model);
        assert_ne!(a, b, "dropout should vary across train passes");
    }

    #[test]
    fn residual_options_change_the_function() {
        let voxel = VoxelConfig { grid_dim: 8, resolution: 2.0 };
        let v = voxels(1, 8, 3);
        let pred_for = |r1: bool, r2: bool| {
            let mut ps = ParamStore::new();
            let cfg = Cnn3dConfig {
                conv_filters_1: 4,
                conv_filters_2: 6,
                num_dense_nodes: 12,
                residual_1: r1,
                residual_2: r2,
                ..Cnn3dConfig::table3()
            };
            let mut m = Cnn3d::new(&cfg, &voxel, &mut ps, "cnn", 7);
            let mut g = Graph::new();
            let out = m.forward(&mut g, &ps, &v, false, false);
            g.value(out.pred).item()
        };
        // Same seed → same weights; toggling residuals changes the output.
        assert_ne!(pred_for(false, true), pred_for(false, false));
        assert_ne!(pred_for(true, true), pred_for(false, true));
    }

    #[test]
    fn gradients_reach_conv_and_dense_parameters() {
        let (mut model, mut ps, _) = tiny();
        let v = voxels(2, 8, 4);
        let mut g = Graph::new();
        let out = model.forward(&mut g, &ps, &v, true, false);
        let t = g.input(Tensor::zeros(&[2, 1]));
        let loss = g.mse_loss(out.pred, t);
        ps.zero_grad();
        g.backward(loss).accumulate_into(&mut ps);
        // BN params are unused with batch_norm = false; everything else
        // must receive gradient.
        let mut dead = Vec::new();
        for (id, e) in ps.iter() {
            let name = ps.name(id);
            if !name.contains(".bn") && e.grad.norm() == 0.0 {
                dead.push(name.to_string());
            }
        }
        assert!(dead.is_empty(), "zero-grad params: {dead:?}");
    }

    #[test]
    fn batch_norm_path_runs() {
        let mut ps = ParamStore::new();
        let voxel = VoxelConfig { grid_dim: 8, resolution: 2.0 };
        let cfg = Cnn3dConfig {
            conv_filters_1: 4,
            conv_filters_2: 6,
            num_dense_nodes: 12,
            batch_norm: true,
            ..Cnn3dConfig::table3()
        };
        let mut m = Cnn3d::new(&cfg, &voxel, &mut ps, "cnn", 9);
        let v = voxels(3, 8, 5);
        let mut g = Graph::new();
        let out = m.forward(&mut g, &ps, &v, true, false);
        assert!(!g.value(out.pred).has_non_finite());
        assert!(m.bn1.running_mean.norm() > 0.0, "BN stats should update");
    }
}
