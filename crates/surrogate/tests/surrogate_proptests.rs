//! Property tests for the surrogate's determinism contract.
//!
//! The active-learning funnel only resumes bit-identically if the
//! surrogate is a pure function of `(config, labeled pool, seed)` —
//! independent of how many `dfpool` lanes happen to execute the GEMMs and
//! of whether tracing is collecting. These tests sweep random pools and
//! run the exact same training job under every lane count in
//! {1, 2, 4, 8} with tracing both off and on, and require every weight
//! byte and every prediction bit to agree with the serial baseline.

use dfsurrogate::{
    featurize_compound, snapshot_hash, train, LabeledExample, SurrogateConfig, SurrogateMlp,
    TrainConfig,
};
use dftensor::params::ParamStore;
use proptest::prelude::*;

/// Builds a labeled pool of `n` synthetic compounds with labels derived
/// from the proptest-supplied salt (any finite label stream works — the
/// contract is determinism, not accuracy).
fn pool(cfg: &SurrogateConfig, n: usize, salt: u64) -> Vec<LabeledExample> {
    (0..n as u64)
        .map(|i| {
            let (_, features) =
                featurize_compound(&cfg.fingerprint, dfchem::genmol::Library::Chembl, i, salt);
            let label = -3.0 - ((i.wrapping_mul(salt | 1) % 97) as f32) / 10.0;
            LabeledExample { index: i, features, label }
        })
        .collect()
}

/// One full train-then-predict run at a given lane count, returning the
/// weight-snapshot hash and the prediction bits over the pool.
fn run_at(
    lanes: usize,
    cfg: &SurrogateConfig,
    tcfg: &TrainConfig,
    examples: &[LabeledExample],
) -> (u64, Vec<u32>) {
    dfpool::Pool::new(lanes).install(|| {
        let (model, mut ps): (SurrogateMlp, ParamStore) = cfg.build();
        train(&model, &mut ps, tcfg, examples);
        let hash = snapshot_hash(&ps.snapshot());
        let rows: Vec<Vec<f32>> = examples.iter().map(|ex| ex.features.clone()).collect();
        let preds = model.predict(&ps, &rows).into_iter().map(f32::to_bits).collect();
        (hash, preds)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Training and inference are bit-identical at any lane count, with
    /// tracing off or on.
    #[test]
    fn training_is_bit_identical_across_lanes_and_tracing(
        seed in 0u64..1_000,
        salt in 1u64..1_000,
        n in 8usize..40,
        two_layer in 0usize..2,
    ) {
        let hidden2 = if two_layer == 1 { 8 } else { 0 };
        let cfg = SurrogateConfig { hidden2, ..SurrogateConfig::tiny(seed) };
        let tcfg = TrainConfig { epochs: 4, seed, ..TrainConfig::default() };
        let examples = pool(&cfg, n, salt);

        let baseline = run_at(1, &cfg, &tcfg, &examples);
        for lanes in [2usize, 4, 8] {
            for trace_on in [false, true] {
                dftrace::set_enabled(trace_on);
                let got = run_at(lanes, &cfg, &tcfg, &examples);
                dftrace::set_enabled(false);
                prop_assert_eq!(
                    got.0, baseline.0,
                    "weights diverged at {} lanes (trace={})", lanes, trace_on
                );
                prop_assert_eq!(
                    &got.1, &baseline.1,
                    "predictions diverged at {} lanes (trace={})", lanes, trace_on
                );
            }
        }
    }

    /// The same pool shuffled differently on input trains to the same
    /// weights: training sorts nothing, but the per-epoch permutation is
    /// a function of the seed alone, so example *identity* — not input
    /// order — determines the minibatch stream only when the pool is in
    /// index order. The active driver keeps its pool index-sorted;
    /// this property pins that sorted pools from different construction
    /// orders converge.
    #[test]
    fn index_sorted_pools_train_identically_regardless_of_construction_order(
        seed in 0u64..1_000,
        n in 8usize..32,
    ) {
        let cfg = SurrogateConfig::tiny(seed);
        let tcfg = TrainConfig { epochs: 3, seed, ..TrainConfig::default() };
        let sorted = pool(&cfg, n, 7);
        let mut reversed: Vec<LabeledExample> = sorted.iter().rev().cloned().collect();
        reversed.sort_by_key(|ex| ex.index);

        let a = run_at(2, &cfg, &tcfg, &sorted);
        let b = run_at(2, &cfg, &tcfg, &reversed);
        prop_assert_eq!(a.0, b.0, "construction order leaked into the weights");
    }
}
