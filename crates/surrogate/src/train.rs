//! Deterministic minibatch training of the surrogate against docking
//! labels.
//!
//! The labeled pool is whatever the campaign has docked so far: one
//! example per compound, the label its best (lowest) pose score. Each
//! epoch visits the pool in a seeded permutation; every minibatch is one
//! forward/backward/step on the shared autodiff graph. All folds are
//! serial and the GEMMs underneath are lane-invariant, so the same pool,
//! config and starting weights produce bit-identical weights at any
//! `dfpool` lane count, with tracing on or off — the property the
//! active-learning resume path relies on.

use crate::model::SurrogateMlp;
use dftensor::params::ParamStore;
use dftensor::rng::{derive_seed, permutation, rng};
use dftensor::{Graph, OptimizerKind, Tensor};
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Passes over the labeled pool.
    pub epochs: usize,
    /// Examples per minibatch.
    pub batch: usize,
    /// Base learning rate.
    pub lr: f32,
    /// Which first-order optimizer to run.
    pub optimizer: OptimizerKind,
    /// Shuffle seed (each epoch derives its own stream from it).
    pub seed: u64,
    /// Global gradient-norm clip (0 = off).
    pub grad_clip: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 48,
            batch: 32,
            lr: 3e-3,
            optimizer: OptimizerKind::Adam,
            seed: 0,
            grad_clip: 5.0,
        }
    }
}

/// One docked compound in the labeled pool.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledExample {
    /// Compound index within the library stream.
    pub index: u64,
    /// Featurized fingerprint row ([`crate::featurize`]).
    pub features: Vec<f32>,
    /// Best (lowest) docking score across the compound's poses.
    pub label: f32,
}

/// What a training run reported.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainReport {
    /// Examples in the pool.
    pub examples: usize,
    /// Epochs run.
    pub epochs: usize,
    /// Mean MSE over the first epoch.
    pub first_epoch_loss: f64,
    /// Mean MSE over the last epoch.
    pub last_epoch_loss: f64,
}

/// Trains `model`'s weights in `params` on the labeled pool. Minibatch
/// order is a seeded permutation per epoch; optimizer steps are serial.
/// Returns per-run loss accounting.
pub fn train(
    model: &SurrogateMlp,
    params: &mut ParamStore,
    cfg: &TrainConfig,
    pool: &[LabeledExample],
) -> TrainReport {
    let _span = dftrace::span("surrogate.train");
    assert!(!pool.is_empty(), "cannot train the surrogate on an empty labeled pool");
    let d = model.in_dim();
    let batch = cfg.batch.max(1);
    let mut opt = cfg.optimizer.build(cfg.lr);
    let mut first_epoch_loss = 0.0f64;
    let mut last_epoch_loss = 0.0f64;
    for epoch in 0..cfg.epochs.max(1) {
        let mut shuffle = rng(derive_seed(cfg.seed, epoch as u64));
        let order = permutation(&mut shuffle, pool.len());
        let mut loss_sum = 0.0f64;
        for chunk in order.chunks(batch) {
            let n = chunk.len();
            let mut x = Vec::with_capacity(n * d);
            let mut y = Vec::with_capacity(n);
            for &i in chunk {
                let ex = &pool[i];
                assert_eq!(ex.features.len(), d, "feature row width must match the model input");
                x.extend_from_slice(&ex.features);
                y.push(ex.label);
            }
            let mut g = Graph::new();
            let xs = g.input(Tensor::from_vec(x, &[n, d]));
            let ys = g.input(Tensor::from_vec(y, &[n, 1]));
            let pred = model.forward(&mut g, params, xs, false);
            let loss = g.mse_loss(pred, ys);
            loss_sum += f64::from(g.value(loss).data()[0]) * n as f64;
            let grads = g.backward(loss);
            grads.accumulate_into(params);
            if cfg.grad_clip > 0.0 {
                params.clip_grad_norm(cfg.grad_clip);
            }
            opt.step(params);
            params.zero_grad();
            dftrace::counter_add("surrogate.train.steps", 1);
        }
        let epoch_loss = loss_sum / pool.len() as f64;
        if epoch == 0 {
            first_epoch_loss = epoch_loss;
        }
        last_epoch_loss = epoch_loss;
    }
    dftrace::counter_add("surrogate.train.examples", pool.len() as u64);
    TrainReport {
        examples: pool.len(),
        epochs: cfg.epochs.max(1),
        first_epoch_loss,
        last_epoch_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SurrogateConfig;

    /// A synthetic pool whose label is a fixed linear function of the
    /// bits — learnable by construction.
    fn linear_pool(n: usize, bits: usize) -> Vec<LabeledExample> {
        (0..n)
            .map(|i| {
                let mut features = vec![0.0f32; bits];
                let mut label = -3.0f32;
                for (j, slot) in features.iter_mut().enumerate() {
                    if (i * 131 + j * 17) % 11 == 0 {
                        *slot = 1.0;
                        label -= if j % 3 == 0 { 0.05 } else { -0.02 };
                    }
                }
                LabeledExample { index: i as u64, features, label }
            })
            .collect()
    }

    #[test]
    fn training_reduces_the_loss_on_a_learnable_pool() {
        let cfg = SurrogateConfig::tiny(5);
        let (model, mut ps) = cfg.build();
        let pool = linear_pool(96, cfg.fingerprint.bits + crate::model::DESCRIPTOR_CHANNELS);
        let report = train(
            &model,
            &mut ps,
            &TrainConfig { epochs: 30, seed: 11, ..TrainConfig::default() },
            &pool,
        );
        assert!(
            report.last_epoch_loss < report.first_epoch_loss * 0.5,
            "loss did not drop: {} -> {}",
            report.first_epoch_loss,
            report.last_epoch_loss
        );
    }

    #[test]
    fn training_is_bit_deterministic_for_a_fixed_pool_and_seed() {
        let cfg = SurrogateConfig::tiny(5);
        let pool = linear_pool(40, cfg.fingerprint.bits + crate::model::DESCRIPTOR_CHANNELS);
        let tcfg = TrainConfig { epochs: 4, seed: 3, ..TrainConfig::default() };
        let run = || {
            let (model, mut ps) = cfg.build();
            train(&model, &mut ps, &tcfg, &pool);
            crate::model::snapshot_hash(&ps.snapshot())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same pool + seed must reproduce the same weights");
    }

    #[test]
    #[should_panic(expected = "empty labeled pool")]
    fn empty_pool_is_rejected() {
        let cfg = SurrogateConfig::tiny(1);
        let (model, mut ps) = cfg.build();
        train(&model, &mut ps, &TrainConfig::default(), &[]);
    }
}
