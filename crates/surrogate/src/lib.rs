//! `dfsurrogate` — a fingerprint-MLP docking surrogate.
//!
//! The paper's funnel only becomes tractable at the multi-million-compound
//! scale if a cheap learned model triages the library before full docking
//! (Clyde et al., arXiv:2106.07036 prefilter ~100x more compounds than the
//! docking pipeline can afford). This crate is that tier: a small
//! multi-layer perceptron over `dfchem` ECFP bitsets, trained against the
//! Vina/MM-GBSA scores the dock crate produces, cheap enough to score an
//! entire library between docking waves.
//!
//! * [`model`] — the regressor itself: [`SurrogateConfig`] builds a 1–2
//!   hidden-layer MLP ([`SurrogateMlp`]) on `dftensor`'s autodiff graph;
//!   [`featurize`] expands a [`Fingerprint`](dfchem::Fingerprint) bitset
//!   into the 0/1 input row; prediction is batched GEMM, bit-identical at
//!   any `dfpool` lane count.
//! * [`train`](mod@train) — deterministic minibatch SGD/Adam over a labeled pool:
//!   fixed seeded shuffles, serial optimizer steps, so the same pool and
//!   seed reproduce the same weights bit-for-bit with tracing on or off.
//! * [`registry`] — generation-stamped hot-swap of trained weights,
//!   mirroring `dfserve`'s snapshot registry: publishing a
//!   [`ParamSnapshot`](dftensor::params::ParamSnapshot) validates it
//!   against a freshly built store and bumps the generation that
//!   content-addressed score-cache keys mix in.
//!
//! The active-learning campaign driver that closes the loop — surrogate
//! rank, dock the top slice, retrain, hot-swap — lives in
//! `dfhts::active`; the serving-side degradation tier lives in `dfserve`.
//! `docs/SURROGATE.md` documents the model, the loop and the enrichment
//! metrics used to evaluate it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod registry;
pub mod train;

pub use model::{
    descriptor_row, featurize, featurize_compound, fingerprint_content_hash, snapshot_hash,
    SurrogateConfig, SurrogateMlp, DESCRIPTOR_CHANNELS,
};
pub use registry::{SurrogateGeneration, SurrogateRegistry};
pub use train::{train, LabeledExample, TrainConfig, TrainReport};
