//! Surrogate-snapshot registry with hot-swap generations.
//!
//! The same mechanism as `dfserve`'s fusion-model `SnapshotRegistry`,
//! specialized to the surrogate MLP: the registry owns the live weights
//! as an immutable [`ParamStore`] behind an `Arc`, stamped with a
//! monotonically increasing generation. Publishing a trained snapshot
//! validates it against a freshly built store (names, shapes, order) and
//! swaps the `Arc`; readers that already cloned the previous generation
//! keep scoring against it. Content-addressed score-cache keys mix the
//! generation in, so a hot-swap invalidates stale surrogate scores by
//! missing instead of flushing — and the active-learning driver's
//! per-epoch retrain becomes visible to the serving tier the moment it
//! publishes.

use crate::model::{SurrogateConfig, SurrogateMlp};
use dftensor::params::{ParamSnapshot, ParamStore};
use dftensor::serialize::decode_snapshot;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One immutable published surrogate weight set.
#[derive(Debug, Clone)]
pub struct SurrogateGeneration {
    /// Monotonic generation number (0 = the config's initial weights).
    pub generation: u64,
    /// The weights themselves.
    pub params: Arc<ParamStore>,
}

/// The hot-swap registry. Cheap to share (`Arc<SurrogateRegistry>`):
/// the campaign driver publishes after each retrain while scoring passes
/// and the serving tier read.
#[derive(Debug)]
pub struct SurrogateRegistry {
    cfg: SurrogateConfig,
    model: SurrogateMlp,
    current: Mutex<SurrogateGeneration>,
    next_gen: AtomicU64,
}

impl SurrogateRegistry {
    /// Builds the registry; generation 0 is the config's initial weights.
    pub fn new(cfg: SurrogateConfig) -> SurrogateRegistry {
        let (model, ps) = cfg.build();
        SurrogateRegistry {
            cfg,
            model,
            current: Mutex::new(SurrogateGeneration { generation: 0, params: Arc::new(ps) }),
            next_gen: AtomicU64::new(1),
        }
    }

    /// The architecture this registry validates snapshots against.
    pub fn config(&self) -> &SurrogateConfig {
        &self.cfg
    }

    /// The model structure the published weights plug into.
    pub fn model(&self) -> &SurrogateMlp {
        &self.model
    }

    /// The live generation (clone of the `Arc`, not the weights).
    pub fn current(&self) -> SurrogateGeneration {
        self.current.lock().clone()
    }

    /// Predicts with the live generation; returns the generation number
    /// the predictions were made under alongside the scores.
    pub fn predict_current(&self, rows: &[Vec<f32>]) -> (u64, Vec<f32>) {
        let live = self.current();
        (live.generation, self.model.predict(&live.params, rows))
    }

    /// Validates `snap` against the surrogate architecture and swaps it
    /// in as the next generation. Returns the new generation number.
    pub fn publish(&self, snap: &ParamSnapshot) -> Result<u64, String> {
        let (_, mut staged) = self.cfg.build();
        staged.restore(snap)?;
        let generation = self.next_gen.fetch_add(1, Ordering::Relaxed);
        *self.current.lock() = SurrogateGeneration { generation, params: Arc::new(staged) };
        dftrace::counter_add("surrogate.registry.swaps", 1);
        Ok(generation)
    }

    /// Publishes from a binary `DFWT` snapshot buffer.
    pub fn publish_bytes(&self, bytes: &[u8]) -> Result<u64, String> {
        let snap = decode_snapshot(bytes).map_err(|e| e.to_string())?;
        self.publish(&snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::snapshot_hash;
    use crate::train::{train, LabeledExample, TrainConfig};
    use dftensor::serialize::encode_snapshot;

    #[test]
    fn publish_swaps_bumps_generation_and_serves_exact_bits() {
        let reg = SurrogateRegistry::new(SurrogateConfig::tiny(3));
        assert_eq!(reg.current().generation, 0);
        let (_, mut ps) = reg.config().build();
        let id = ps.iter().next().expect("model has parameters").0;
        ps.value_mut(id).map_inplace(|w| w + 0.5);
        let snap = ps.snapshot();
        assert_eq!(reg.publish(&snap).expect("valid snapshot"), 1);
        let live = reg.current();
        assert_eq!(live.generation, 1);
        assert_eq!(
            live.params.value(id).data()[0].to_bits(),
            ps.value(id).data()[0].to_bits(),
            "published weights must be served bit-exactly"
        );
        assert_eq!(snapshot_hash(&live.params.snapshot()), snapshot_hash(&snap));
        // Binary round trip publishes generation 2 with identical bits.
        assert_eq!(reg.publish_bytes(&encode_snapshot(&snap)).expect("dfwt"), 2);
    }

    #[test]
    fn mismatched_snapshot_is_rejected_and_keeps_current() {
        let reg = SurrogateRegistry::new(SurrogateConfig::tiny(3));
        let mut other = ParamStore::new();
        other.add("rogue", dftensor::Tensor::zeros(&[2]));
        assert!(reg.publish(&other.snapshot()).is_err());
        assert_eq!(reg.current().generation, 0, "failed publish must not swap");
    }

    #[test]
    fn retrain_then_publish_changes_predictions_under_a_new_generation() {
        let cfg = SurrogateConfig::tiny(7);
        let reg = SurrogateRegistry::new(cfg.clone());
        let rows: Vec<Vec<f32>> = (0..6)
            .map(|i| {
                let (_, row) = crate::model::featurize_compound(
                    &cfg.fingerprint,
                    dfchem::genmol::Library::Chembl,
                    i,
                    5,
                );
                row
            })
            .collect();
        let (g0, before) = reg.predict_current(&rows);
        assert_eq!(g0, 0);

        let pool: Vec<LabeledExample> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| LabeledExample {
                index: i as u64,
                features: r.clone(),
                label: -4.0 - i as f32 * 0.3,
            })
            .collect();
        let (model, mut ps) = cfg.build();
        train(&model, &mut ps, &TrainConfig { epochs: 10, ..TrainConfig::default() }, &pool);
        reg.publish(&ps.snapshot()).expect("trained snapshot");
        let (g1, after) = reg.predict_current(&rows);
        assert_eq!(g1, 1);
        assert_ne!(before, after, "hot-swap must change live predictions");
    }
}
