//! The fingerprint-MLP regressor and its featurization.
//!
//! The input is the raw ECFP bitset ([`dfchem::Fingerprint`]) expanded to
//! a 0/1 `f32` row plus [`DESCRIPTOR_CHANNELS`] normalized whole-molecule
//! descriptor channels (size, rotors, H-bond counts, lipophilicity — the
//! quantities the physics scoring terms actually integrate over, which
//! substructure presence bits encode poorly); the network is one or two
//! ReLU hidden layers plus a linear head, all plain [`Linear`] layers on
//! the `dftensor` autodiff graph, so inference is two or three GEMMs per
//! batch. Predictions are on the docking-score scale the model was
//! trained against (kcal/mol, lower = stronger binder).
//!
//! Determinism: weights initialize from a seeded RNG in fixed layer
//! order, batches are assembled row-by-row in input order, and the GEMM
//! kernels underneath are bit-identical at any `dfpool` lane count — so
//! the same config and inputs produce the same bits everywhere.

use dfchem::genmol::{Compound, Library};
use dfchem::{Descriptors, Fingerprint, FingerprintConfig};
use dftensor::nn::Linear;
use dftensor::params::{ParamSnapshot, ParamStore};
use dftensor::serialize::encode_snapshot;
use dftensor::{Graph, Tensor};
use serde::{Deserialize, Serialize};

/// Descriptor channels appended after the fingerprint bits in every
/// feature row (see [`descriptor_row`] for the exact layout).
pub const DESCRIPTOR_CHANNELS: usize = 12;

/// Architecture + featurization + init seed of a surrogate model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SurrogateConfig {
    /// ECFP featurization; the MLP input width is `fingerprint.bits`
    /// plus [`DESCRIPTOR_CHANNELS`].
    pub fingerprint: FingerprintConfig,
    /// First hidden-layer width.
    pub hidden: usize,
    /// Second hidden-layer width (0 = single hidden layer).
    pub hidden2: usize,
    /// Rows per inference micro-batch.
    pub batch: usize,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for SurrogateConfig {
    fn default() -> Self {
        SurrogateConfig {
            fingerprint: FingerprintConfig::default(),
            hidden: 64,
            hidden2: 16,
            batch: 64,
            seed: 0,
        }
    }
}

impl SurrogateConfig {
    /// A small deterministic configuration for tests and benches.
    pub fn tiny(seed: u64) -> SurrogateConfig {
        SurrogateConfig {
            fingerprint: FingerprintConfig { radius: 2, bits: 512 },
            hidden: 16,
            hidden2: 0,
            batch: 32,
            seed,
        }
    }

    /// Builds the MLP and a freshly initialized parameter store.
    /// Layers are created in fixed order from a seeded RNG, so two builds
    /// of the same config are bit-identical (and a published snapshot
    /// restores into any build of the same config).
    pub fn build(&self) -> (SurrogateMlp, ParamStore) {
        self.fingerprint.validate();
        assert!(self.hidden > 0, "surrogate needs at least one hidden layer");
        let mut ps = ParamStore::new();
        let mut rng = dftensor::rng::rng(self.seed);
        let in_dim = self.fingerprint.bits + DESCRIPTOR_CHANNELS;
        let l1 = Linear::new(&mut ps, "surrogate.l1", in_dim, self.hidden, &mut rng);
        let (l2, head_in) = if self.hidden2 > 0 {
            (
                Some(Linear::new(&mut ps, "surrogate.l2", self.hidden, self.hidden2, &mut rng)),
                self.hidden2,
            )
        } else {
            (None, self.hidden)
        };
        let head = Linear::new(&mut ps, "surrogate.head", head_in, 1, &mut rng);
        (SurrogateMlp { l1, l2, head, batch: self.batch.max(1) }, ps)
    }
}

/// The fingerprint-MLP regressor (layer handles into a [`ParamStore`]).
#[derive(Debug, Clone)]
pub struct SurrogateMlp {
    /// First hidden layer (`bits → hidden`).
    pub l1: Linear,
    /// Optional second hidden layer (`hidden → hidden2`).
    pub l2: Option<Linear>,
    /// Linear output head (`→ 1`).
    pub head: Linear,
    /// Rows per inference micro-batch.
    pub batch: usize,
}

impl SurrogateMlp {
    /// Input width (fingerprint bits + [`DESCRIPTOR_CHANNELS`]).
    pub fn in_dim(&self) -> usize {
        self.l1.in_dim
    }

    /// Forward pass over a `[batch, bits]` input node; returns the
    /// `[batch, 1]` prediction node.
    pub fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        x: dftensor::graph::VarId,
        frozen: bool,
    ) -> dftensor::graph::VarId {
        let mut h = self.l1.forward(g, ps, x, frozen);
        h = g.relu(h);
        if let Some(l2) = &self.l2 {
            h = l2.forward(g, ps, h, frozen);
            h = g.relu(h);
        }
        self.head.forward(g, ps, h, frozen)
    }

    /// Predicts a score for every feature row (frozen weights), batched
    /// at [`SurrogateMlp::batch`] rows per GEMM. Bit-identical at any
    /// lane count and for any chunking of the input.
    pub fn predict(&self, ps: &ParamStore, rows: &[Vec<f32>]) -> Vec<f32> {
        let _span = dftrace::span("surrogate.predict");
        let d = self.in_dim();
        let mut out = Vec::with_capacity(rows.len());
        for chunk in rows.chunks(self.batch) {
            let mut flat = Vec::with_capacity(chunk.len() * d);
            for row in chunk {
                assert_eq!(row.len(), d, "feature row width must match the model input");
                flat.extend_from_slice(row);
            }
            let mut g = Graph::new();
            let x = g.input(Tensor::from_vec(flat, &[chunk.len(), d]));
            let pred = self.forward(&mut g, ps, x, true);
            out.extend_from_slice(g.value(pred).data());
        }
        dftrace::counter_add("surrogate.predicted", rows.len() as u64);
        out
    }
}

/// Expands a fingerprint bitset into the MLP's 0/1 `f32` input row.
pub fn featurize(fp: &Fingerprint) -> Vec<f32> {
    let mut row = vec![0.0f32; fp.num_bits()];
    for (w, word) in fp.words().iter().enumerate() {
        let mut bits = *word;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            row[w * 64 + b] = 1.0;
            bits &= bits - 1;
        }
    }
    row
}

/// The [`DESCRIPTOR_CHANNELS`] normalized descriptor channels appended
/// after the fingerprint bits: molecular weight, heavy atoms, carbons,
/// rotatable bonds, H-bond donors, H-bond acceptors, logP, TPSA, ring
/// count, Fsp³, the Vina rotor-normalization factor `1/(1 + w_rot·N_rot)`
/// (the score divides by exactly this, so handing it to the MLP saves it
/// from learning a reciprocal), and the conformer's radius of gyration
/// (the one geometric channel: molecular extent drives how many pocket
/// contacts the best placement can make). Each channel is scaled by a
/// fixed drug-like upper bound so it lands near the same [0, 1] range as
/// the bits.
pub fn descriptor_row(d: &Descriptors) -> [f32; DESCRIPTOR_CHANNELS] {
    [
        (d.molecular_weight / 500.0) as f32,
        d.heavy_atoms as f32 / 50.0,
        d.carbons as f32 / 40.0,
        d.rotatable_bonds as f32 / 15.0,
        d.hbond_donors as f32 / 6.0,
        d.hbond_acceptors as f32 / 12.0,
        (d.logp / 6.0) as f32,
        (d.tpsa / 150.0) as f32,
        d.ring_count as f32 / 7.0,
        d.fsp3 as f32,
        (1.0 / (1.0 + dfdock_w_rot() * d.rotatable_bonds as f64)) as f32,
        (d.radius_of_gyration / 8.0) as f32,
    ]
}

/// Vina's rotor penalty weight (`dfdock::vina::W_ROT`), duplicated here
/// so the surrogate crate does not depend on the dock crate for one
/// constant; pinned by a cross-crate test in `dfhts`.
fn dfdock_w_rot() -> f64 {
    0.05846
}

/// Materializes compound `index`, fingerprints it (fingerprints and all
/// but one descriptor read topology only; radius of gyration reads the
/// deterministic conformer) and returns the content hash of the
/// canonical fingerprint bytes plus the feature row (0/1 bits followed
/// by the [`descriptor_row`] channels).
pub fn featurize_compound(
    cfg: &FingerprintConfig,
    library: Library,
    index: u64,
    campaign_seed: u64,
) -> (u64, Vec<f32>) {
    let compound = Compound::materialize_topology(library, index, campaign_seed);
    let fp = Fingerprint::compute(cfg, &compound.mol);
    dftrace::counter_add("surrogate.featurized", 1);
    let mut row = featurize(&fp);
    row.extend_from_slice(&descriptor_row(&Descriptors::compute(&compound.mol)));
    (fingerprint_content_hash(&fp), row)
}

/// fnv1a64 digest of a fingerprint's canonical bytes — the
/// content-addressed half of the surrogate score-cache key (the other
/// half is the snapshot generation).
pub fn fingerprint_content_hash(fp: &Fingerprint) -> u64 {
    let mut bytes = Vec::new();
    fp.canonical_bytes(&mut bytes);
    fnv1a64(&bytes)
}

/// fnv1a64 digest of a snapshot's DFWT encoding — the identity of a set
/// of trained weights, journaled per epoch by the active-learning driver.
pub fn snapshot_hash(snap: &ParamSnapshot) -> u64 {
    fnv1a64(&encode_snapshot(snap))
}

/// FNV-1a over a byte slice (same constants as the checkpoint/cache
/// digests elsewhere in the workspace).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: usize, bits: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                let mut r = vec![0.0; bits];
                for (j, slot) in r.iter_mut().enumerate() {
                    if (i * 31 + j * 7) % 13 == 0 {
                        *slot = 1.0;
                    }
                }
                r
            })
            .collect()
    }

    #[test]
    fn two_builds_of_the_same_config_are_bit_identical() {
        let cfg = SurrogateConfig::tiny(9);
        let (m1, p1) = cfg.build();
        let (m2, p2) = cfg.build();
        let x = rows(5, m1.in_dim());
        assert_eq!(m1.predict(&p1, &x), m2.predict(&p2, &x));
        // A different seed changes the weights (and so the predictions).
        let (m3, p3) = SurrogateConfig::tiny(10).build();
        assert_ne!(m1.predict(&p1, &x), m3.predict(&p3, &x));
    }

    #[test]
    fn prediction_is_chunking_and_lane_invariant() {
        let cfg = SurrogateConfig::tiny(3);
        let (model, ps) = cfg.build();
        let x = rows(17, model.in_dim());
        let whole = model.predict(&ps, &x);
        assert_eq!(whole.len(), 17);
        let mut narrow = model.clone();
        narrow.batch = 3;
        assert_eq!(narrow.predict(&ps, &x), whole, "chunking must not change bits");
        let pooled = dfpool::Pool::new(4).install(|| model.predict(&ps, &x));
        assert_eq!(pooled, whole, "lane count must not change bits");
    }

    #[test]
    fn featurize_matches_the_bit_accessor() {
        let cfg = FingerprintConfig { radius: 2, bits: 256 };
        let compound = Compound::materialize_topology(Library::Chembl, 42, 7);
        let fp = Fingerprint::compute(&cfg, &compound.mol);
        let row = featurize(&fp);
        assert_eq!(row.len(), 256);
        for (i, &v) in row.iter().enumerate() {
            assert_eq!(v == 1.0, fp.bit(i), "bit {i}");
        }
        assert_eq!(row.iter().filter(|&&v| v == 1.0).count() as u32, fp.count_ones());
    }

    #[test]
    fn content_hash_distinguishes_compounds_and_snapshot_hash_weights() {
        let fpc = FingerprintConfig { radius: 2, bits: 256 };
        let (h1, _) = featurize_compound(&fpc, Library::Chembl, 1, 7);
        let (h2, _) = featurize_compound(&fpc, Library::Chembl, 2, 7);
        assert_ne!(h1, h2);
        let (h1b, _) = featurize_compound(&fpc, Library::Chembl, 1, 7);
        assert_eq!(h1, h1b);

        let cfg = SurrogateConfig::tiny(1);
        let (_, ps_a) = cfg.build();
        let (_, ps_b) = SurrogateConfig::tiny(2).build();
        assert_ne!(snapshot_hash(&ps_a.snapshot()), snapshot_hash(&ps_b.snapshot()));
        assert_eq!(snapshot_hash(&ps_a.snapshot()), snapshot_hash(&ps_a.snapshot()));
    }
}
