//! Admission control: bounded queues, backpressure and the degradation
//! ladder.
//!
//! Every request is admitted at the best tier the current queue depth
//! allows: full fusion while the service keeps up, the SG-CNN head alone
//! once the queue builds, the fingerprint-MLP surrogate when the model
//! lanes are saturated, the Vina empirical score past that, the
//! ligand-only desirability score when even the Vina band is full, and an
//! outright shed once the hard capacity bound is reached. Depth is the
//! only input, so admission decisions are exactly reproducible from the
//! admission sequence — and queue growth is bounded by construction
//! (`queue_capacity` is a hard ceiling, not a target).

use crate::request::Tier;
use serde::{Deserialize, Serialize};

/// Depth thresholds of the degradation ladder. Bands are half-open: a
/// request arriving at depth `d` runs at full fusion while
/// `d < full_max_depth`, at the SG-CNN head while `d < sg_max_depth`, at
/// the surrogate tier while `d < surrogate_max_depth`, at the Vina tier
/// while `d < vina_max_depth`, at the ligand-only tier while
/// `d < queue_capacity`, and is shed at or beyond `queue_capacity`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LadderConfig {
    /// Depth below which requests get the full fusion model.
    pub full_max_depth: usize,
    /// Depth below which requests get the SG-CNN head.
    pub sg_max_depth: usize,
    /// Depth below which requests get the fingerprint-MLP surrogate.
    pub surrogate_max_depth: usize,
    /// Depth below which requests get the Vina empirical score; between
    /// here and `queue_capacity` they get the ligand-only tier.
    pub vina_max_depth: usize,
    /// Hard queue bound: at or beyond this depth requests are shed.
    pub queue_capacity: usize,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            full_max_depth: 16,
            sg_max_depth: 32,
            surrogate_max_depth: 40,
            vina_max_depth: 48,
            queue_capacity: 64,
        }
    }
}

/// What admission decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Admit at the given ladder tier.
    Admit(Tier),
    /// Reject: the hard queue bound is reached.
    Shed,
}

/// The (stateless) admission controller.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionController {
    cfg: LadderConfig,
}

impl AdmissionController {
    /// Validates the ladder's monotonicity and builds the controller.
    pub fn new(cfg: LadderConfig) -> AdmissionController {
        assert!(cfg.full_max_depth >= 1, "full tier needs a non-empty band");
        assert!(
            cfg.full_max_depth <= cfg.sg_max_depth
                && cfg.sg_max_depth <= cfg.surrogate_max_depth
                && cfg.surrogate_max_depth <= cfg.vina_max_depth
                && cfg.vina_max_depth <= cfg.queue_capacity,
            "ladder thresholds must be monotone: full {} <= sg {} <= surrogate {} <= vina {} <= \
             capacity {}",
            cfg.full_max_depth,
            cfg.sg_max_depth,
            cfg.surrogate_max_depth,
            cfg.vina_max_depth,
            cfg.queue_capacity
        );
        AdmissionController { cfg }
    }

    /// The configured thresholds.
    pub fn config(&self) -> LadderConfig {
        self.cfg
    }

    /// Decides the tier under a router-supplied depth **bias** (see
    /// `router::WatermarkConfig`): the shed check uses the *true* depth,
    /// then tier selection runs on `depth + bias` clamped just below the
    /// capacity bound — so a watermark bias can push a request down the
    /// ladder (degrade earlier) but can never turn an admit into a shed.
    pub fn decide_biased(&self, depth: usize, bias: usize) -> Decision {
        if depth >= self.cfg.queue_capacity {
            return Decision::Shed;
        }
        let biased = depth.saturating_add(bias).min(self.cfg.queue_capacity - 1);
        self.decide(biased)
    }

    /// Decides the tier for a request arriving at queue depth `depth`.
    pub fn decide(&self, depth: usize) -> Decision {
        if depth >= self.cfg.queue_capacity {
            Decision::Shed
        } else if depth < self.cfg.full_max_depth {
            Decision::Admit(Tier::FullFusion)
        } else if depth < self.cfg.sg_max_depth {
            Decision::Admit(Tier::SgHead)
        } else if depth < self.cfg.surrogate_max_depth {
            Decision::Admit(Tier::Surrogate)
        } else if depth < self.cfg.vina_max_depth {
            Decision::Admit(Tier::Vina)
        } else {
            Decision::Admit(Tier::LigandOnly)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_bands_are_half_open() {
        let a = AdmissionController::new(LadderConfig {
            full_max_depth: 2,
            sg_max_depth: 4,
            surrogate_max_depth: 6,
            vina_max_depth: 8,
            queue_capacity: 10,
        });
        assert_eq!(a.decide(0), Decision::Admit(Tier::FullFusion));
        assert_eq!(a.decide(1), Decision::Admit(Tier::FullFusion));
        assert_eq!(a.decide(2), Decision::Admit(Tier::SgHead));
        assert_eq!(a.decide(3), Decision::Admit(Tier::SgHead));
        assert_eq!(a.decide(4), Decision::Admit(Tier::Surrogate));
        assert_eq!(a.decide(5), Decision::Admit(Tier::Surrogate));
        assert_eq!(a.decide(6), Decision::Admit(Tier::Vina));
        assert_eq!(a.decide(7), Decision::Admit(Tier::Vina));
        assert_eq!(a.decide(8), Decision::Admit(Tier::LigandOnly));
        assert_eq!(a.decide(9), Decision::Admit(Tier::LigandOnly));
        assert_eq!(a.decide(10), Decision::Shed);
        assert_eq!(a.decide(1_000_000), Decision::Shed);
    }

    #[test]
    fn degenerate_ladder_with_one_tier() {
        // full == sg == surrogate == vina == capacity: full fusion or shed.
        let a = AdmissionController::new(LadderConfig {
            full_max_depth: 3,
            sg_max_depth: 3,
            surrogate_max_depth: 3,
            vina_max_depth: 3,
            queue_capacity: 3,
        });
        assert_eq!(a.decide(2), Decision::Admit(Tier::FullFusion));
        assert_eq!(a.decide(3), Decision::Shed);
    }

    #[test]
    fn bias_degrades_but_never_sheds() {
        let a = AdmissionController::new(LadderConfig {
            full_max_depth: 2,
            sg_max_depth: 4,
            surrogate_max_depth: 6,
            vina_max_depth: 8,
            queue_capacity: 10,
        });
        // Zero bias reduces to plain decide.
        for d in 0..12 {
            assert_eq!(a.decide_biased(d, 0), a.decide(d));
        }
        // Bias pushes down the ladder...
        assert_eq!(a.decide_biased(0, 3), Decision::Admit(Tier::SgHead));
        assert_eq!(a.decide_biased(1, 6), Decision::Admit(Tier::Vina));
        // ...but clamps at the deepest non-shed band, never shedding an
        // in-capacity request:
        assert_eq!(a.decide_biased(0, usize::MAX), Decision::Admit(Tier::LigandOnly));
        assert_eq!(a.decide_biased(9, 1), Decision::Admit(Tier::LigandOnly));
        // True depth at capacity still sheds regardless of bias.
        assert_eq!(a.decide_biased(10, 0), Decision::Shed);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_ladder_is_rejected() {
        AdmissionController::new(LadderConfig {
            full_max_depth: 10,
            sg_max_depth: 5,
            surrogate_max_depth: 12,
            vina_max_depth: 15,
            queue_capacity: 20,
        });
    }
}
