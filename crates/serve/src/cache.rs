//! Content-addressed LRU cache with hit/miss/eviction accounting.
//!
//! Keys are fnv1a64 digests of **canonical featurization bytes** (see
//! `MolGraph::canonical_bytes` and the voxel-bit hashing in the service),
//! so two requests share a cache line exactly when the model would see
//! identical inputs — renamed compounds, re-materialized molecules and
//! duplicate library entries all collapse onto one entry.
//!
//! The implementation is a slab-backed doubly-linked recency list plus a
//! `HashMap` index: O(1) lookup, insert and eviction, no iteration over
//! the map anywhere (map iteration order is nondeterministic; eviction
//! order must not be). Eviction order, and therefore every hit/miss
//! decision downstream, is a pure function of the operation sequence —
//! locked by `tests/cache_proptests.rs` against a reference model.

use std::collections::HashMap;

/// fnv1a64 over a byte slice — the cache's content-address digest.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_update(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continues an fnv1a64 digest over more bytes (for multi-part keys).
pub fn fnv1a64_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Monotonic cache accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries written (new keys only; overwrites count separately).
    pub insertions: u64,
    /// In-place overwrites of an existing key.
    pub updates: u64,
    /// Entries pushed out by capacity pressure.
    pub evictions: u64,
}

impl CacheStats {
    /// hits / (hits + misses); 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        dftrace::rate::mean(self.hits as f64, (self.hits + self.misses) as f64)
    }
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<V> {
    key: u64,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU map from 64-bit content digests to values.
#[derive(Debug)]
pub struct LruCache<V> {
    cap: usize,
    map: HashMap<u64, usize>,
    slots: Vec<Slot<V>>,
    free: Vec<usize>,
    /// Most-recently-used slot.
    head: usize,
    /// Least-recently-used slot (evicted first).
    tail: usize,
    stats: CacheStats,
}

impl<V> LruCache<V> {
    /// Creates a cache holding at most `capacity` entries (>= 1).
    pub fn new(capacity: usize) -> LruCache<V> {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        LruCache {
            cap: capacity,
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Accounting so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up `key`, bumping it to most-recently-used on a hit.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        match self.map.get(&key).copied() {
            Some(i) => {
                self.stats.hits += 1;
                self.unlink(i);
                self.push_front(i);
                Some(&self.slots[i].value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Checks for `key` without touching recency or accounting.
    pub fn peek(&self, key: u64) -> Option<&V> {
        self.map.get(&key).map(|&i| &self.slots[i].value)
    }

    /// Inserts (or overwrites) `key`, returning the evicted `(key, value)`
    /// if capacity pressure pushed the least-recently-used entry out.
    pub fn insert(&mut self, key: u64, value: V) -> Option<(u64, V)> {
        if let Some(&i) = self.map.get(&key) {
            self.stats.updates += 1;
            self.slots[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return None;
        }
        let evicted = if self.map.len() >= self.cap {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL, "full cache must have a tail");
            self.unlink(lru);
            let old_key = self.slots[lru].key;
            self.map.remove(&old_key);
            self.free.push(lru);
            self.stats.evictions += 1;
            Some((lru, old_key))
        } else {
            None
        };
        self.stats.insertions += 1;
        let slot = Slot { key, value, prev: NIL, next: NIL };
        let (i, old) = match self.free.pop() {
            Some(i) => {
                let old = std::mem::replace(&mut self.slots[i], slot);
                (i, Some(old.value))
            }
            None => {
                self.slots.push(slot);
                (self.slots.len() - 1, None)
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted.map(|(slot_idx, old_key)| {
            debug_assert_eq!(slot_idx, i, "evicted slot is reused immediately");
            (old_key, old.expect("evicted slot held a value"))
        })
    }

    /// Keys from most- to least-recently used (test/diagnostic helper).
    pub fn keys_by_recency(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            out.push(self.slots[i].key);
            i = self.slots[i].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        // Update-continuation equals one-shot hashing.
        assert_eq!(fnv1a64_update(fnv1a64(b"foo"), b"bar"), fnv1a64(b"foobar"));
    }

    #[test]
    fn hit_bumps_recency_and_counts() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get(1), Some(&"a"));
        // 1 is now MRU; inserting 3 evicts 2.
        let evicted = c.insert(3, "c");
        assert_eq!(evicted, Some((2, "b")));
        assert_eq!(c.get(2), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (1, 1, 3, 1));
    }

    #[test]
    fn overwrite_does_not_evict() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert!(c.insert(1, 11).is_none());
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Some(&11));
        assert_eq!(c.stats().updates, 1);
    }

    #[test]
    fn capacity_one_thrashes_correctly() {
        let mut c = LruCache::new(1);
        assert!(c.insert(1, 1).is_none());
        assert_eq!(c.insert(2, 2), Some((1, 1)));
        assert_eq!(c.insert(3, 3), Some((2, 2)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.keys_by_recency(), vec![3]);
    }

    #[test]
    fn peek_leaves_state_untouched() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.peek(1), Some(&"a"));
        // 1 was NOT bumped: inserting 3 still evicts it.
        assert_eq!(c.insert(3, "c"), Some((1, "a")));
        assert_eq!(c.stats().hits, 0);
    }
}
