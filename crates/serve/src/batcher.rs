//! Dynamic micro-batching on a virtual clock.
//!
//! A lane accumulates admitted requests and closes a batch on whichever
//! comes first: the lane reaching `max_batch` items, or the **oldest**
//! waiting item's deadline (`admitted_at + max_wait`) arriving. Both close
//! conditions are expressed in virtual ticks, so a batch's close time is a
//! pure function of the admission sequence — the executor can be called at
//! any real-time cadence without perturbing when (in virtual time) batches
//! formed, which is what the determinism lock relies on.

use crate::request::Ticks;
use std::collections::VecDeque;

/// Micro-batch close policy.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct BatcherConfig {
    /// Close as soon as this many items are waiting.
    pub max_batch: usize,
    /// Close `max_wait` ticks after the oldest item was admitted, even if
    /// the batch is short.
    pub max_wait: Ticks,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig { max_batch: 8, max_wait: 5_000 }
    }
}

/// One queued item plus its admission tick.
#[derive(Debug, Clone)]
struct Pending<T> {
    admitted_at: Ticks,
    item: T,
}

/// A closed micro-batch: when it closed (virtual) and its items.
#[derive(Debug)]
pub struct ClosedBatch<T> {
    /// Virtual tick at which the close condition held: the admission tick
    /// of the size-triggering item, or the oldest item's deadline.
    pub closed_at: Ticks,
    /// `(admitted_at, item)` pairs in admission order.
    pub items: Vec<(Ticks, T)>,
}

/// One batching lane.
#[derive(Debug)]
pub struct MicroBatcher<T> {
    cfg: BatcherConfig,
    pending: VecDeque<Pending<T>>,
}

impl<T> MicroBatcher<T> {
    /// Creates an empty lane. `max_batch` must be >= 1.
    pub fn new(cfg: BatcherConfig) -> MicroBatcher<T> {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        MicroBatcher { cfg, pending: VecDeque::new() }
    }

    /// Items waiting in the lane.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Admits an item at tick `now`.
    pub fn push(&mut self, now: Ticks, item: T) {
        self.pending.push_back(Pending { admitted_at: now, item });
    }

    /// The virtual tick at which the *next* batch closes, or `None` when
    /// the lane is empty: the admission tick of the `max_batch`-th item if
    /// the lane is already full enough, else the oldest item's deadline.
    pub fn next_close_at(&self) -> Option<Ticks> {
        let oldest = self.pending.front()?;
        if self.pending.len() >= self.cfg.max_batch {
            // The batch closed the moment its size-triggering item arrived.
            return Some(self.pending[self.cfg.max_batch - 1].admitted_at);
        }
        Some(oldest.admitted_at.saturating_add(self.cfg.max_wait))
    }

    /// Closes and returns the next batch if its close condition has been
    /// reached by `now`. Call in a loop: with more than `max_batch` items
    /// waiting, several batches may be due.
    pub fn take_due(&mut self, now: Ticks) -> Option<ClosedBatch<T>> {
        let closed_at = self.next_close_at().filter(|&t| t <= now)?;
        let take = self.pending.len().min(self.cfg.max_batch);
        let items = self.pending.drain(..take).map(|p| (p.admitted_at, p.item)).collect();
        Some(ClosedBatch { closed_at, items })
    }

    /// Force-closes everything still waiting (end-of-run drain), in
    /// `max_batch`-sized chunks, all stamped `closed_at = now`.
    pub fn flush(&mut self, now: Ticks) -> Vec<ClosedBatch<T>> {
        let mut out = Vec::new();
        while !self.pending.is_empty() {
            let take = self.pending.len().min(self.cfg.max_batch);
            let items: Vec<_> =
                self.pending.drain(..take).map(|p| (p.admitted_at, p.item)).collect();
            out.push(ClosedBatch { closed_at: now, items });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane(max_batch: usize, max_wait: Ticks) -> MicroBatcher<u32> {
        MicroBatcher::new(BatcherConfig { max_batch, max_wait })
    }

    #[test]
    fn closes_on_size_at_the_triggering_items_tick() {
        let mut b = lane(3, 1_000);
        b.push(10, 1);
        b.push(20, 2);
        assert_eq!(b.next_close_at(), Some(1_010), "deadline of the oldest");
        b.push(30, 3);
        assert_eq!(b.next_close_at(), Some(30), "filled at the third item");
        // Even if the executor only looks much later, the close time is
        // the virtual fill tick, not the observation tick.
        let batch = b.take_due(500).expect("due");
        assert_eq!(batch.closed_at, 30);
        assert_eq!(batch.items.len(), 3);
        assert!(b.is_empty());
    }

    #[test]
    fn closes_on_deadline_when_short() {
        let mut b = lane(8, 1_000);
        b.push(100, 1);
        b.push(400, 2);
        assert!(b.take_due(1_099).is_none(), "deadline not reached");
        let batch = b.take_due(1_100).expect("oldest deadline passed");
        assert_eq!(batch.closed_at, 1_100);
        assert_eq!(batch.items.len(), 2);
    }

    #[test]
    fn backlog_yields_multiple_due_batches() {
        let mut b = lane(2, 10);
        for t in 0..5u64 {
            b.push(t, t as u32);
        }
        let first = b.take_due(100).expect("first");
        assert_eq!(first.closed_at, 1, "second item filled the first batch");
        let second = b.take_due(100).expect("second");
        assert_eq!(second.closed_at, 3);
        let third = b.take_due(100).expect("deadline batch of one");
        assert_eq!(third.closed_at, 14, "t=4 admission + max_wait");
        assert_eq!(third.items.len(), 1);
        assert!(b.take_due(100).is_none());
    }

    #[test]
    fn flush_drains_in_chunks() {
        let mut b = lane(2, 1_000_000);
        for t in 0..5u64 {
            b.push(t, t as u32);
        }
        let batches = b.flush(42);
        assert_eq!(batches.len(), 3);
        assert!(batches.iter().all(|x| x.closed_at == 42));
        assert_eq!(batches.iter().map(|x| x.items.len()).sum::<usize>(), 5);
        assert!(b.is_empty());
    }
}
