//! Request/response types and the virtual time base.
//!
//! The service never reads a wall clock: every timestamp is a **virtual
//! tick** supplied by the caller (the traffic simulator during tests and
//! benches, a monotonic µs counter in the threaded front-end). One tick is
//! defined as one virtual microsecond, so latency histograms recorded in
//! ticks read directly against the wall-clock µs conventions of `dftrace`.

use dfchem::genmol::CompoundId;
use dfchem::pocket::TargetSite;
use serde::{Deserialize, Serialize};

/// Virtual time, in ticks (one tick = one virtual microsecond).
pub type Ticks = u64;

/// Ticks per virtual second.
pub const TICKS_PER_SEC: u64 = 1_000_000;

/// One score request: which compound against which target pocket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScoreRequest {
    /// Caller-assigned id, echoed in the response.
    pub id: u64,
    /// The compound to score (materialized deterministically from its id).
    pub compound: CompoundId,
    /// The target pocket to score against.
    pub target: TargetSite,
}

/// The degradation ladder's scoring tiers, best first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Full fusion model: 3D-CNN + SG-CNN + fusion layers.
    FullFusion,
    /// SG-CNN head only (no voxelization, no 3D convolution).
    SgHead,
    /// Fingerprint-MLP docking surrogate (`dfsurrogate`): topology-only
    /// featurization, two or three tiny GEMMs, no pocket geometry. Sits
    /// between the learned model lanes and the physics fallback.
    Surrogate,
    /// Vina empirical score (no featurization, no weights).
    Vina,
    /// Ligand-only desirability score (no pocket at all): descriptors +
    /// fingerprint via `dfchem::ligand_score`. The deepest non-shed rung.
    LigandOnly,
}

impl Tier {
    /// All scoring tiers, best first.
    pub const ALL: [Tier; 5] =
        [Tier::FullFusion, Tier::SgHead, Tier::Surrogate, Tier::Vina, Tier::LigandOnly];

    /// Short identifier used in metric names and reports.
    pub fn tag(self) -> &'static str {
        match self {
            Tier::FullFusion => "full",
            Tier::SgHead => "sg_head",
            Tier::Surrogate => "surrogate",
            Tier::Vina => "vina",
            Tier::LigandOnly => "ligand_only",
        }
    }
}

/// A completed scoring, with its virtual-time accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoreResponse {
    /// Echo of [`ScoreRequest::id`].
    pub request_id: u64,
    /// Echo of the scored compound.
    pub compound: CompoundId,
    /// Echo of the target.
    pub target: TargetSite,
    /// Predicted binding affinity (tier-dependent scale).
    pub score: f32,
    /// Which ladder tier produced the score.
    pub tier: Tier,
    /// True when the score came out of the content-addressed cache.
    pub cache_hit: bool,
    /// Model-snapshot generation that produced the score (0 = initial
    /// weights; Vina responses echo the generation current at admission;
    /// surrogate responses carry the *surrogate* registry's generation).
    pub generation: u64,
    /// Tick at which the request was admitted.
    pub admitted_at: Ticks,
    /// Tick at which its micro-batch began executing.
    pub started_at: Ticks,
    /// Tick at which the score became available.
    pub completed_at: Ticks,
}

impl ScoreResponse {
    /// Admission → batch start (ticks).
    pub fn queue_wait(&self) -> Ticks {
        self.started_at.saturating_sub(self.admitted_at)
    }

    /// Admission → completion (ticks).
    pub fn e2e(&self) -> Ticks {
        self.completed_at.saturating_sub(self.admitted_at)
    }
}

/// What [`crate::ScoreService::submit`] did with a request.
#[derive(Debug, Clone)]
pub enum SubmitOutcome {
    /// Answered immediately: a score-cache hit, or one of the inline
    /// tiers (Vina, ligand-only).
    Completed(ScoreResponse),
    /// Queued into a micro-batch at the given tier; the response surfaces
    /// from a later [`crate::ScoreService::advance`].
    Enqueued(Tier),
    /// Load-shed: every queue past its bound. `depth` is the queue depth
    /// that triggered the shed.
    Shed {
        /// Queue depth observed at admission.
        depth: usize,
    },
}
