//! dfserve: online fusion-model scoring as a deterministic service.
//!
//! The screening pipeline scores compounds in huge offline campaigns; this
//! crate serves the same trained [`FusionModel`](dffusion::FusionModel)
//! *online* — score requests (compound + target pocket) arrive one at a
//! time and are answered with dynamically-formed micro-batches. The design
//! constraints mirror the rest of the workspace:
//!
//! * **Deterministic.** The service core is a virtual-clock state machine
//!   ([`ScoreService`]): timestamps are caller-supplied ticks, batching
//!   and shedding are pure functions of the admission sequence, and model
//!   compute rides `dfpool`'s bit-deterministic primitives. Same seed ⇒
//!   bit-identical scores and shed decisions at any worker count, with
//!   tracing on or off.
//! * **Bounded.** Admission runs a degradation ladder
//!   ([`AdmissionController`]): full fusion while the queue is shallow,
//!   the SG-CNN head alone as depth builds, the Vina empirical score near
//!   saturation, and a hard shed at `queue_capacity` — queue growth is
//!   bounded by construction.
//! * **Cached.** Scores and featurizations live in content-addressed LRU
//!   caches ([`LruCache`]): keys are fnv1a64 digests of canonical
//!   featurization bytes mixed with the scoring tier and the live weight
//!   generation, so a hot-swap ([`SnapshotRegistry::publish`])
//!   invalidates stale scores by missing instead of flushing.
//! * **Observable.** Queue waits, end-to-end latencies and batch sizes
//!   flow into `dftrace` histograms; admissions, sheds, per-tier
//!   completions and cache traffic into counters — all write-only, so
//!   traced and untraced runs stay bit-identical.
//!
//! * **Sharded.** [`Fleet`] replicates the state machine N ways behind a
//!   deterministic consistent-hash router ([`router`]): canonical
//!   compound bytes hash onto a virtual-node ring, each shard keeps its
//!   own caches (still invalidated by the shared snapshot generations),
//!   a down shard fails over to its ring successors under the offline
//!   scheduler's deterministic retry/backoff, and per-shard depth
//!   watermarks feed the ladder so a hot shard degrades before it sheds.
//!
//! Offered load for tests and benches comes from the seeded traffic
//! simulator in [`sim`]: open-loop Poisson arrivals (overload shape,
//! optionally Zipf-skewed popularity, single-instance or fleet-wide with
//! a shard-failure fault plan) and closed-loop think-time clients
//! (nominal shape), both on the virtual clock. A wall-clock threaded
//! front-end ([`spawn_server`]) wraps the state machine behind a bounded
//! channel for interactive use.

#![warn(missing_docs)]

pub mod admission;
pub mod batcher;
pub mod cache;
pub mod fleet;
pub mod registry;
pub mod request;
pub mod router;
pub mod service;
pub mod sim;

pub use admission::{AdmissionController, Decision, LadderConfig};
pub use batcher::{BatcherConfig, ClosedBatch, MicroBatcher};
pub use cache::{fnv1a64, fnv1a64_update, CacheStats, LruCache};
pub use fleet::{Fleet, FleetConfig, FleetOutcome, FleetStats};
pub use registry::{Generation, ModelSpec, SnapshotRegistry};
pub use request::{ScoreRequest, ScoreResponse, SubmitOutcome, Ticks, Tier, TICKS_PER_SEC};
pub use router::{routing_key, HashRing, KeyCache, WatermarkConfig, DEFAULT_VNODES};
pub use service::{
    spawn_server, CostModel, ScoreService, ServeConfig, ServerHandle, ServiceStats, TimedRequest,
};
pub use sim::{
    run_closed_loop, run_fleet_open_loop, run_open_loop, FaultEvent, FaultPlan, FleetSimReport,
    SimReport, TrafficConfig, ZipfConfig,
};
