//! The sharded, replicated serving fleet: N [`ScoreService`] replicas
//! behind a deterministic consistent-hash router.
//!
//! One `ScoreService` is a single batcher and a single cache — throughput
//! is capped and one fault takes the whole service down. [`Fleet`] runs
//! `replicas` independent state machines behind a [`HashRing`]: every
//! request is content-routed to its **home shard** (fnv1a64 of the
//! compound's canonical fingerprint bytes, memoized in a [`KeyCache`]),
//! so each shard's score/feature caches only ever see their own key
//! range — per-shard caches that stay warm because the ring moves ~K/N
//! keys on membership change, and that are invalidated exactly like the
//! single-instance caches: replicas **share** the fusion and surrogate
//! snapshot registries, whose generations are mixed into every score-cache
//! key, so a hot-swap re-keys all shards at once without a flush.
//!
//! **Failover** reuses the deterministic retry/backoff discipline of the
//! offline scheduler (`dfhts::retry_backoff`): a submit that finds its
//! home shard down schedules a re-issue at `now + backoff(request, 1)`
//! virtual ticks; the attempt-th re-issue targets the attempt-th ring
//! successor of the key, and the budget (`max_reissues`) bounds how long
//! a request can chase a dying fleet before it is counted as
//! `failover_shed`. Kill is flush-and-discard: the replica drains its
//! lanes (the computed responses are *lost in flight*) but keeps its warm
//! caches, so a restored replica rejoins as a warm standby.
//!
//! **Admission** composes with the existing degradation ladder through
//! per-shard depth watermarks ([`WatermarkConfig`]): a shard past its
//! watermark receives submits with a depth bias, so it degrades to
//! cheaper tiers *before* its own ladder would, and sheds no earlier
//! than the unbiased ladder ever would.
//!
//! Everything runs on the virtual clock: same seed + same replica count
//! ⇒ bit-identical scores, shed decisions and failover counts, and every
//! score is bit-identical to a single-instance run (locked by
//! `tests/fleet_determinism.rs`). Real model compute inside each replica
//! runs on whatever `dfpool` pool is installed, exactly as in the
//! single-instance service; bulk routing-key hashing fans out on the same
//! pool via the order-preserving `parallel_map`.

use crate::request::{ScoreRequest, ScoreResponse, SubmitOutcome, Ticks, Tier};
use crate::router::{HashRing, KeyCache, WatermarkConfig, DEFAULT_VNODES};
use crate::service::{ScoreService, ServeConfig, ServiceStats};
use crate::{AdmissionController, SnapshotRegistry};
use dfchem::genmol::CompoundId;
use dfsurrogate::SurrogateRegistry;
use serde::Serialize;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Duration;

/// Fleet topology + failover + router-admission configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-replica service configuration (every replica is identical).
    pub serve: ServeConfig,
    /// Number of `ScoreService` replicas (>= 1).
    pub replicas: usize,
    /// Virtual nodes per replica on the ring.
    pub vnodes_per_replica: usize,
    /// Per-shard depth watermarks for router-level admission.
    pub watermark: WatermarkConfig,
    /// Backoff base for failover re-issues, in virtual ticks.
    pub retry_base: Ticks,
    /// Backoff cap for failover re-issues, in virtual ticks.
    pub retry_max: Ticks,
    /// Re-issue budget per request; exhausting it counts as
    /// `failover_shed`.
    pub max_reissues: u32,
}

impl FleetConfig {
    /// A small deterministic fleet for tests and benches: `replicas`
    /// copies of [`ServeConfig::tiny`], watermark admission off (tests
    /// that exercise it set [`FleetConfig::watermark`] explicitly).
    pub fn tiny(campaign_seed: u64, replicas: usize) -> FleetConfig {
        FleetConfig {
            serve: ServeConfig::tiny(campaign_seed),
            replicas,
            vnodes_per_replica: DEFAULT_VNODES,
            watermark: WatermarkConfig::disabled(),
            retry_base: 2_000,
            retry_max: 50_000,
            max_reissues: 5,
        }
    }
}

/// What the fleet router did with a submitted request.
#[derive(Debug, Clone)]
pub enum FleetOutcome {
    /// The home (or failover-target) shard answered inline.
    Completed(ScoreResponse),
    /// Queued on `shard` at `tier`; the response surfaces from a later
    /// [`Fleet::advance`] / [`Fleet::flush`].
    Enqueued {
        /// Replica that accepted the request.
        shard: u32,
        /// Ladder tier it was admitted at.
        tier: Tier,
    },
    /// The shard's ladder shed the request at its capacity bound.
    Shed {
        /// Replica whose ladder shed.
        shard: u32,
        /// Queue depth observed at admission.
        depth: usize,
    },
    /// The home shard is down; a failover re-issue is scheduled for tick
    /// `at` against the next ring successor.
    Deferred {
        /// The (down) home replica.
        shard: u32,
        /// Virtual tick of the scheduled re-issue.
        at: Ticks,
    },
}

/// Monotonic router-level accounting (per-shard ladder accounting lives
/// in each replica's own [`ServiceStats`]).
#[derive(Debug, Clone, Default, Serialize)]
pub struct FleetStats {
    /// Submits delivered to a shard (first issues and re-issues).
    pub routed: u64,
    /// Submits delivered to their home shard (no failover involved).
    pub home_routed: u64,
    /// Failover re-issues scheduled.
    pub reissues: u64,
    /// Requests dropped after exhausting the re-issue budget.
    pub failover_shed: u64,
    /// Submits where the watermark bias changed the admitted tier.
    pub degraded: u64,
    /// Responses discarded because their replica was killed while they
    /// were still in flight.
    pub lost_in_flight: u64,
    /// Ladder sheds observed across all shards (true-depth sheds; the
    /// watermark never adds to these).
    pub shed: u64,
    /// Submits delivered per shard (first issues and re-issues).
    pub per_shard_routed: Vec<u64>,
    /// Home-key assignments per shard (counted at routing time, whether
    /// or not the home shard was up) — the cross-shard balance signal.
    pub per_shard_home: Vec<u64>,
}

/// One replica: an independent `ScoreService` plus liveness.
struct Shard {
    svc: ScoreService,
    up: bool,
}

/// A scheduled failover re-issue. Ordered by `(due, seq)` so the heap
/// replays in exactly the order decisions were made.
#[derive(Debug)]
struct Reissue {
    due: Ticks,
    seq: u64,
    attempt: u32,
    key: u64,
    req: ScoreRequest,
}

impl PartialEq for Reissue {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}
impl Eq for Reissue {}
impl PartialOrd for Reissue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Reissue {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-due first.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// The sharded serving fleet (see module docs).
pub struct Fleet {
    cfg: FleetConfig,
    ring: HashRing,
    shards: Vec<Shard>,
    keys: KeyCache,
    admission: AdmissionController,
    pending: BinaryHeap<Reissue>,
    seq: u64,
    ready: Vec<ScoreResponse>,
    stats: FleetStats,
}

impl Fleet {
    /// Builds the fleet: fresh shared registries, `replicas` identical
    /// replicas, an empty key cache.
    pub fn new(cfg: FleetConfig) -> Fleet {
        Fleet::with_key_cache(cfg, KeyCache::new())
    }

    /// [`Fleet::new`] with a pre-warmed routing-key cache (bench ladders
    /// share one across rungs so key hashing is paid once).
    pub fn with_key_cache(cfg: FleetConfig, keys: KeyCache) -> Fleet {
        assert!(cfg.replicas >= 1, "a fleet needs at least one replica");
        let registry = Arc::new(SnapshotRegistry::new(cfg.serve.spec.clone()));
        let surrogate = Arc::new(SurrogateRegistry::new(cfg.serve.surrogate.clone()));
        let shards: Vec<Shard> = (0..cfg.replicas)
            .map(|_| Shard {
                svc: ScoreService::with_registries(
                    cfg.serve.clone(),
                    registry.clone(),
                    surrogate.clone(),
                ),
                up: true,
            })
            .collect();
        let members: Vec<u32> = (0..cfg.replicas as u32).collect();
        let ring = HashRing::new(&members, cfg.vnodes_per_replica);
        let admission = AdmissionController::new(cfg.serve.ladder);
        dftrace::gauge_set("serve.router.up_replicas", cfg.replicas as f64);
        Fleet {
            ring,
            shards,
            keys,
            admission,
            pending: BinaryHeap::new(),
            seq: 0,
            ready: Vec::new(),
            stats: FleetStats {
                per_shard_routed: vec![0; cfg.replicas],
                per_shard_home: vec![0; cfg.replicas],
                ..FleetStats::default()
            },
            cfg,
        }
    }

    /// Number of configured replicas (up or down).
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the fleet has no replicas (never: `new` asserts >= 1).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Replicas currently up.
    pub fn up_count(&self) -> usize {
        self.shards.iter().filter(|s| s.up).count()
    }

    /// Router-level accounting so far.
    pub fn stats(&self) -> &FleetStats {
        &self.stats
    }

    /// One replica's own service accounting.
    pub fn shard_stats(&self, shard: u32) -> ServiceStats {
        self.shards[shard as usize].svc.stats()
    }

    /// Direct access to one replica (determinism locks read reference
    /// scores and cache stats through this).
    pub fn shard_mut(&mut self, shard: u32) -> &mut ScoreService {
        &mut self.shards[shard as usize].svc
    }

    /// The shared fusion-weight registry (publish here to hot-swap every
    /// replica at once; the new generation re-keys all per-shard caches).
    pub fn registry(&self) -> &Arc<SnapshotRegistry> {
        self.shards[0].svc.registry()
    }

    /// The shared surrogate registry (same fleet-wide re-key semantics).
    pub fn surrogate_registry(&self) -> &Arc<SurrogateRegistry> {
        self.shards[0].svc.surrogate_registry()
    }

    /// Routing-key cache accounting: `(hits, misses)`.
    pub fn key_cache_stats(&self) -> (u64, u64) {
        self.keys.stats()
    }

    /// Every memoized routing-key entry, sorted by compound id — feed to
    /// [`KeyCache::from_entries`] + [`Fleet::with_key_cache`] so a bench
    /// ladder pays canonical-bytes hashing once across rungs (valid only
    /// for the same campaign seed).
    pub fn key_entries(&self) -> Vec<(CompoundId, u64)> {
        self.keys.entries()
    }

    /// Bulk-hashes routing keys for `ids` (deduplicated internally) on
    /// the installed `dfpool` pool, so later submits hit the memo.
    pub fn prewarm_keys(&mut self, ids: &[CompoundId]) {
        let _ = self.keys.bulk_keys(ids, self.cfg.serve.campaign_seed);
    }

    /// The home shard a compound routes to right now.
    pub fn home_shard(&mut self, id: CompoundId) -> u32 {
        let key = self.keys.key(id, self.cfg.serve.campaign_seed);
        self.ring.route(key).expect("fleet ring is non-empty")
    }

    /// Marks `replica` down: its lanes are force-drained, every response
    /// still in flight is discarded (`lost_in_flight`), and its warm
    /// caches are retained (warm-standby semantics). Requests routed to
    /// it fail over to ring successors until [`Fleet::restore`].
    pub fn kill(&mut self, replica: u32) {
        let shard = &mut self.shards[replica as usize];
        if !shard.up {
            return;
        }
        shard.up = false;
        let t = shard.svc.now();
        let lost = shard.svc.flush(t);
        self.stats.lost_in_flight += lost.len() as u64;
        dftrace::counter_add("serve.router.lost_in_flight", lost.len() as u64);
        dftrace::counter_add("serve.router.kills", 1);
        dftrace::gauge_set("serve.router.up_replicas", self.up_count() as f64);
    }

    /// Marks `replica` up again. Its caches are still warm; its virtual
    /// clock may have run ahead during the kill-time drain, in which case
    /// new submits clamp forward to it.
    pub fn restore(&mut self, replica: u32) {
        let shard = &mut self.shards[replica as usize];
        if shard.up {
            return;
        }
        shard.up = true;
        dftrace::counter_add("serve.router.restores", 1);
        dftrace::gauge_set("serve.router.up_replicas", self.up_count() as f64);
    }

    /// Routes and submits one request at tick `now`. Down-home requests
    /// are deferred to a scheduled failover re-issue (driven by
    /// [`Fleet::advance`] / [`Fleet::flush`]), which is also where the
    /// responses of queued submits surface.
    pub fn submit(&mut self, now: Ticks, req: ScoreRequest) -> FleetOutcome {
        let _span = dftrace::span("serve.router.route");
        let key = self.keys.key(req.compound, self.cfg.serve.campaign_seed);
        let home = self.ring.route(key).expect("fleet ring is non-empty");
        self.stats.per_shard_home[home as usize] += 1;
        if self.shards[home as usize].up {
            self.stats.home_routed += 1;
            let outcome = self.deliver(home, now, req);
            self.record_outcome(home, outcome)
        } else {
            self.schedule_reissue(now, 1, key, req)
        }
    }

    /// Advances virtual time: fires due failover re-issues (in `(due,
    /// seq)` order, each at its own due tick), advances every live
    /// replica, and returns all responses that have completed.
    pub fn advance(&mut self, now: Ticks) -> Vec<ScoreResponse> {
        self.fire_due_reissues(now);
        let mut out = std::mem::take(&mut self.ready);
        for shard in &mut self.shards {
            if shard.up && now >= shard.svc.now() {
                out.extend(shard.svc.advance(now));
            }
        }
        out
    }

    /// End-of-trace drain: runs the re-issue heap dry (entries past `now`
    /// fire at their own due ticks), then flushes every live replica.
    /// Returns the remaining responses.
    pub fn flush(&mut self, now: Ticks) -> Vec<ScoreResponse> {
        while let Some(r) = self.pending.pop() {
            self.fire_reissue(r);
        }
        let mut out = std::mem::take(&mut self.ready);
        for shard in &mut self.shards {
            if shard.up {
                let t = now.max(shard.svc.now());
                out.extend(shard.svc.flush(t));
            }
        }
        out
    }

    /// Delivers one request to `shard` at tick `t` (clamped forward to
    /// the shard's clock), applying the watermark bias.
    fn deliver(&mut self, shard: u32, t: Ticks, req: ScoreRequest) -> SubmitOutcome {
        let idx = shard as usize;
        let t = t.max(self.shards[idx].svc.now());
        let drained = self.shards[idx].svc.advance(t);
        self.ready.extend(drained);
        let depth = self.shards[idx].svc.depth();
        let bias = self.cfg.watermark.bias(depth);
        if bias > 0 && self.admission.decide(depth) != self.admission.decide_biased(depth, bias) {
            self.stats.degraded += 1;
            dftrace::counter_add("serve.router.degraded", 1);
        }
        self.stats.routed += 1;
        self.stats.per_shard_routed[idx] += 1;
        dftrace::counter_add("serve.router.routed", 1);
        if dftrace::enabled() {
            // Dynamic name: only pay the format when tracing is on.
            dftrace::counter_add(&format!("serve.router.shard.{idx}.routed"), 1);
        }
        self.shards[idx].svc.submit_with_bias(t, req, bias)
    }

    /// Books a failover re-issue for `attempt` (1 = first re-issue) and
    /// returns the deferred outcome; exhausting the budget sheds.
    fn schedule_reissue(
        &mut self,
        now: Ticks,
        attempt: u32,
        key: u64,
        req: ScoreRequest,
    ) -> FleetOutcome {
        if attempt > self.cfg.max_reissues {
            self.stats.failover_shed += 1;
            dftrace::counter_add("serve.router.failover_shed", 1);
            let home = self.ring.route(key).expect("fleet ring is non-empty");
            return FleetOutcome::Shed { shard: home, depth: usize::MAX };
        }
        let due = now + self.backoff_ticks(req.id, attempt);
        self.seq += 1;
        self.pending.push(Reissue { due, seq: self.seq, attempt, key, req });
        self.stats.reissues += 1;
        dftrace::counter_add("serve.router.reissues", 1);
        let home = self.ring.route(key).expect("fleet ring is non-empty");
        FleetOutcome::Deferred { shard: home, at: due }
    }

    /// Fires every pending re-issue due by `now`.
    fn fire_due_reissues(&mut self, now: Ticks) {
        while self.pending.peek().is_some_and(|r| r.due <= now) {
            let r = self.pending.pop().expect("peeked");
            self.fire_reissue(r);
        }
    }

    /// Fires one re-issue: the attempt-th ring successor of the key gets
    /// it if up, otherwise the next attempt is scheduled (or the budget
    /// sheds it).
    fn fire_reissue(&mut self, r: Reissue) {
        let order = self.ring.successors(r.key);
        let target = order[r.attempt as usize % order.len()];
        if self.shards[target as usize].up {
            let outcome = self.deliver(target, r.due, r.req);
            let fo = self.record_outcome(target, outcome);
            if let FleetOutcome::Completed(resp) = fo {
                self.ready.push(resp);
            }
        } else {
            let _ = self.schedule_reissue(r.due, r.attempt + 1, r.key, r.req);
        }
    }

    /// Translates a shard's submit outcome, folding shard-level sheds
    /// into the router accounting.
    fn record_outcome(&mut self, shard: u32, outcome: SubmitOutcome) -> FleetOutcome {
        match outcome {
            SubmitOutcome::Completed(resp) => FleetOutcome::Completed(resp),
            SubmitOutcome::Enqueued(tier) => FleetOutcome::Enqueued { shard, tier },
            SubmitOutcome::Shed { depth } => {
                self.stats.shed += 1;
                FleetOutcome::Shed { shard, depth }
            }
        }
    }

    /// Deterministic failover backoff in virtual ticks (PR-3's retry
    /// discipline, mapped tick-for-µs onto the virtual clock).
    fn backoff_ticks(&self, job_id: u64, attempt: u32) -> Ticks {
        dfhts::retry_backoff(
            Duration::from_micros(self.cfg.retry_base),
            Duration::from_micros(self.cfg.retry_max),
            job_id,
            attempt,
        )
        .as_micros() as Ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfchem::genmol::Library;
    use dfchem::pocket::TargetSite;

    fn req(id: u64, index: u64) -> ScoreRequest {
        ScoreRequest {
            id,
            compound: CompoundId { library: Library::Chembl, index },
            target: TargetSite::Protease1,
        }
    }

    #[test]
    fn single_replica_fleet_mirrors_plain_service() {
        let mut fleet = Fleet::new(FleetConfig::tiny(3, 1));
        let mut single = ScoreService::with_registries(
            ServeConfig::tiny(3),
            fleet.registry().clone(),
            fleet.surrogate_registry().clone(),
        );
        let mut fleet_responses = Vec::new();
        let mut single_responses = Vec::new();
        for i in 0..40u64 {
            let t = i * 500;
            fleet_responses.extend(fleet.advance(t));
            single_responses.extend(single.advance(t));
            let r = req(i, i % 7);
            if let FleetOutcome::Completed(resp) = fleet.submit(t, r) {
                fleet_responses.push(resp);
            }
            if let SubmitOutcome::Completed(resp) = single.submit(t, r) {
                single_responses.push(resp);
            }
        }
        fleet_responses.extend(fleet.flush(40 * 500));
        single_responses.extend(single.flush(40 * 500));
        let norm = |v: &mut Vec<ScoreResponse>| {
            v.sort_by_key(|r| (r.completed_at, r.request_id));
        };
        norm(&mut fleet_responses);
        norm(&mut single_responses);
        assert_eq!(fleet_responses, single_responses);
    }

    #[test]
    fn down_home_shard_fails_over_to_a_successor() {
        let mut fleet = Fleet::new(FleetConfig::tiny(5, 3));
        let r = req(1, 11);
        let home = fleet.home_shard(r.compound);
        fleet.kill(home);
        let outcome = fleet.submit(0, r);
        let due = match outcome {
            FleetOutcome::Deferred { shard, at } => {
                assert_eq!(shard, home);
                at
            }
            other => panic!("expected Deferred, got {other:?}"),
        };
        assert!(due > 0, "backoff must be positive");
        // Firing the re-issue delivers to an up successor and the request
        // completes by flush.
        let responses = fleet.flush(due);
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].request_id, 1);
        assert_eq!(fleet.stats().reissues, 1);
        assert_eq!(fleet.stats().failover_shed, 0);
        assert!(fleet.stats().per_shard_routed[home as usize] == 0);
    }

    #[test]
    fn all_replicas_down_exhausts_the_budget() {
        let mut fleet = Fleet::new(FleetConfig::tiny(5, 2));
        fleet.kill(0);
        fleet.kill(1);
        let _ = fleet.submit(0, req(1, 3));
        let responses = fleet.flush(0);
        assert!(responses.is_empty());
        assert_eq!(fleet.stats().failover_shed, 1);
        assert_eq!(fleet.stats().reissues, fleet.stats().reissues.min(5));
        assert_eq!(fleet.stats().routed, 0);
    }

    #[test]
    fn restore_rejoins_with_warm_caches() {
        let mut fleet = Fleet::new(FleetConfig::tiny(5, 2));
        let r = req(1, 4);
        let home = fleet.home_shard(r.compound);
        // Score once (warms the home shard's caches), drain, kill, restore.
        let _ = fleet.submit(0, r);
        let _ = fleet.flush(0);
        fleet.kill(home);
        fleet.restore(home);
        let before = fleet.shard_stats(home).submit_hits;
        let t = fleet.shard_mut(home).now();
        let _ = fleet.submit(t, ScoreRequest { id: 2, ..r });
        let _ = fleet.flush(t);
        assert!(
            fleet.shard_stats(home).submit_hits > before,
            "restored replica should answer from its warm score cache"
        );
    }

    #[test]
    fn watermark_degrades_before_shedding() {
        let mut cfg = FleetConfig::tiny(5, 1);
        cfg.watermark = WatermarkConfig { degrade_depth: 2, bias_per_excess: 4 };
        let mut fleet = Fleet::new(cfg);
        // Back-to-back submits at one tick build depth fast; the watermark
        // must start degrading tiers while depth is far below capacity.
        for i in 0..12u64 {
            let _ = fleet.submit(0, req(i, i));
        }
        assert!(fleet.stats().degraded > 0, "watermark bias never changed a tier");
        assert_eq!(fleet.stats().shed, 0, "bias must degrade, not shed");
        let _ = fleet.flush(0);
    }
}
