//! Model-snapshot registry with hot-swap generations.
//!
//! The registry owns the **weights** of the serving model as an immutable
//! [`ParamStore`] behind an `Arc`, stamped with a monotonically increasing
//! generation number. Publishing a new snapshot (from a training run's
//! `ParamSnapshot`, a binary `DFWT` buffer, or a file) validates it
//! against the model architecture and swaps the `Arc` — in-flight batches
//! keep scoring against the generation they started with, later batches
//! pick up the new one, and nothing is ever mutated in place. Score-cache
//! keys mix the generation in, so a swap naturally invalidates stale
//! scores by missing instead of requiring a flush.

use dfchem::featurize::{GraphConfig, VoxelConfig};
use dffusion::config::{Cnn3dConfig, FusionConfig, FusionKind, SgCnnConfig};
use dffusion::FusionModel;
use dftensor::params::{ParamSnapshot, ParamStore};
use dftensor::serialize::decode_snapshot;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Everything needed to (re)build the serving model architecture and its
/// featurization, so a snapshot can be validated before it goes live.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Fusion variant and layer sizing.
    pub fusion: FusionConfig,
    /// SG-CNN head sizing.
    pub sgcnn: SgCnnConfig,
    /// 3D-CNN head sizing.
    pub cnn3d: Cnn3dConfig,
    /// Voxelization the 3D-CNN was trained against.
    pub voxel: VoxelConfig,
    /// Graph featurization the SG-CNN was trained against.
    pub graph: GraphConfig,
    /// Weight-initialization seed (generation 0 serves these weights).
    pub seed: u64,
}

impl ModelSpec {
    /// A CPU-tractable spec for tests and benches.
    pub fn tiny(seed: u64) -> ModelSpec {
        let sgcnn = SgCnnConfig {
            covalent_gather_width: 6,
            noncovalent_gather_width: 8,
            covalent_k: 1,
            noncovalent_k: 1,
            ..SgCnnConfig::table2()
        };
        // The graph featurization must match what the SG-CNN was built for.
        let graph = sgcnn.graph_config();
        ModelSpec {
            fusion: FusionConfig {
                num_dense_nodes: 8,
                ..FusionConfig::small(FusionKind::Coherent)
            },
            sgcnn,
            cnn3d: Cnn3dConfig {
                conv_filters_1: 4,
                conv_filters_2: 6,
                num_dense_nodes: 8,
                ..Cnn3dConfig::table3()
            },
            voxel: VoxelConfig { grid_dim: 8, resolution: 2.0 },
            graph,
            seed,
        }
    }

    /// Builds the model structure and its freshly-initialized parameters.
    pub fn build(&self) -> (FusionModel, ParamStore) {
        let mut ps = ParamStore::new();
        let model = FusionModel::new(
            &self.fusion,
            &self.sgcnn,
            &self.cnn3d,
            &self.voxel,
            &mut ps,
            self.seed,
        );
        (model, ps)
    }
}

/// One immutable published weight set.
#[derive(Debug, Clone)]
pub struct Generation {
    /// Monotonic generation number (0 = the spec's initial weights).
    pub generation: u64,
    /// The weights themselves.
    pub params: Arc<ParamStore>,
}

/// The hot-swap registry. Cheap to share (`Arc<SnapshotRegistry>`):
/// producers publish from any thread while the serving loop reads.
#[derive(Debug)]
pub struct SnapshotRegistry {
    spec: ModelSpec,
    current: Mutex<Generation>,
    next_gen: AtomicU64,
}

impl SnapshotRegistry {
    /// Builds the registry; generation 0 is the spec's initial weights.
    pub fn new(spec: ModelSpec) -> SnapshotRegistry {
        let (_, ps) = spec.build();
        SnapshotRegistry {
            spec,
            current: Mutex::new(Generation { generation: 0, params: Arc::new(ps) }),
            next_gen: AtomicU64::new(1),
        }
    }

    /// The architecture this registry validates snapshots against.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The live generation (clone of the `Arc`, not the weights).
    pub fn current(&self) -> Generation {
        self.current.lock().clone()
    }

    /// Validates `snap` against the model architecture (names, shapes,
    /// order) and swaps it in as the next generation. Returns the new
    /// generation number.
    pub fn publish(&self, snap: &ParamSnapshot) -> Result<u64, String> {
        // Restore into a freshly-built store: exactly the mismatch checks
        // ParamStore::restore performs, against the real architecture.
        let (_, mut staged) = self.spec.build();
        staged.restore(snap)?;
        let generation = self.next_gen.fetch_add(1, Ordering::Relaxed);
        *self.current.lock() = Generation { generation, params: Arc::new(staged) };
        dftrace::counter_add("serve.registry.swaps", 1);
        Ok(generation)
    }

    /// Publishes from a binary `DFWT` snapshot buffer.
    pub fn publish_bytes(&self, bytes: &[u8]) -> Result<u64, String> {
        let snap = decode_snapshot(bytes).map_err(|e| e.to_string())?;
        self.publish(&snap)
    }

    /// Publishes from a `DFWT` snapshot file on disk.
    pub fn publish_file(&self, path: impl AsRef<std::path::Path>) -> Result<u64, String> {
        let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
        self.publish_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftensor::serialize::encode_snapshot;

    #[test]
    fn generation_zero_serves_initial_weights() {
        let reg = SnapshotRegistry::new(ModelSpec::tiny(3));
        let g = reg.current();
        assert_eq!(g.generation, 0);
        let (_, fresh) = reg.spec().build();
        assert_eq!(g.params.num_scalars(), fresh.num_scalars());
    }

    #[test]
    fn publish_swaps_and_bumps_generation() {
        let reg = SnapshotRegistry::new(ModelSpec::tiny(3));
        let (_, mut ps) = reg.spec().build();
        // Perturb one weight so the swap is observable.
        let id = ps.iter().next().expect("model has parameters").0;
        ps.value_mut(id).map_inplace(|w| w + 1.0);
        let snap = ps.snapshot();
        assert_eq!(reg.publish(&snap).expect("valid snapshot"), 1);
        let live = reg.current();
        assert_eq!(live.generation, 1);
        assert_eq!(
            live.params.value(id).data()[0].to_bits(),
            ps.value(id).data()[0].to_bits(),
            "published weights must be served bit-exactly"
        );
        // The binary round trip publishes generation 2 with identical bits.
        assert_eq!(reg.publish_bytes(&encode_snapshot(&snap)).expect("dfwt"), 2);
        assert_eq!(
            reg.current().params.value(id).data()[0].to_bits(),
            ps.value(id).data()[0].to_bits()
        );
    }

    #[test]
    fn mismatched_snapshot_is_rejected_and_keeps_current() {
        let reg = SnapshotRegistry::new(ModelSpec::tiny(3));
        let mut other = ParamStore::new();
        other.add("rogue", dftensor::Tensor::zeros(&[2]));
        assert!(reg.publish(&other.snapshot()).is_err());
        assert_eq!(reg.current().generation, 0, "failed publish must not swap");
    }
}
