//! Consistent-hash shard routing for the dfserve fleet.
//!
//! A [`HashRing`] places every replica at `vnodes_per_replica` pseudo-random
//! positions (virtual nodes) on a 64-bit ring; a request's **routing key**
//! — fnv1a64 over the compound's canonical fingerprint bytes
//! ([`routing_key`], reusing `dfchem`'s canonical-bytes discipline) — maps
//! to the first virtual node clockwise from the key. Virtual nodes give the
//! two classical consistent-hashing properties the fleet relies on:
//!
//! * **Balance** — with enough virtual nodes per replica the arc lengths
//!   (and therefore the expected key share per replica) concentrate around
//!   `1/N`, locked by `tests/ring_proptests.rs`.
//! * **Minimal disruption** — adding a replica moves only the keys that
//!   now land on the new replica's arcs (~`K/(N+1)` of them); removing one
//!   moves only the removed replica's keys. No global reshuffle, so
//!   per-shard caches stay warm across fleet resizes.
//!
//! Routing keys are *content*-addressed: two ids that materialize to the
//! same topology hash identically, so duplicate library entries share a
//! home shard (and therefore one cache line fleet-wide). Because the key
//! is a pure function of the compound id, the fleet memoizes it in a
//! [`KeyCache`]; bulk lookups hash the uncached tail through `dfpool`'s
//! order-preserving `parallel_map`, which is what makes routing decisions
//! bit-identical at any router thread count.
//!
//! [`WatermarkConfig`] is the router half of admission control: per-shard
//! depth watermarks translate a hot shard's congestion into a depth *bias*
//! fed to the existing degradation ladder, so the shard degrades to
//! cheaper tiers **before** it ever reaches the shed bound.

use crate::cache::fnv1a64;
use dfchem::genmol::CompoundId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Default virtual nodes per replica: enough to keep the max/mean key
/// share within ~1.35x at 16 replicas (see `ring_proptests.rs`).
pub const DEFAULT_VNODES: usize = 64;

/// Domain-separation salt for ring positions.
const RING_SALT: u64 = 0x5E7E_4F1E_E7D1_5C00;

/// Position of one virtual node on the 64-bit ring: a pure function of
/// `(replica, vnode)` so every router instance agrees on the layout.
/// Positions go through `derive_seed` (SplitMix64 finalizer) — plain
/// FNV-1a of these short structured inputs clusters badly in the high
/// bits, and ring routing orders by the full 64-bit value.
fn vnode_position(replica: u32, vnode: u32) -> u64 {
    dftensor::rng::derive_seed(dftensor::rng::derive_seed(RING_SALT, replica as u64), vnode as u64)
}

/// A consistent-hash ring over replica ids with virtual nodes.
#[derive(Debug, Clone)]
pub struct HashRing {
    vnodes_per_replica: usize,
    /// `(position, replica)` sorted by position (replica breaks the
    /// astronomically unlikely position tie deterministically).
    points: Vec<(u64, u32)>,
    /// Live members, ascending.
    members: Vec<u32>,
}

impl HashRing {
    /// Builds a ring over `replicas` (deduplicated) with
    /// `vnodes_per_replica` virtual nodes each (>= 1).
    pub fn new(replicas: &[u32], vnodes_per_replica: usize) -> HashRing {
        assert!(vnodes_per_replica >= 1, "a replica needs at least one virtual node");
        let mut members: Vec<u32> = replicas.to_vec();
        members.sort_unstable();
        members.dedup();
        let mut ring = HashRing { vnodes_per_replica, points: Vec::new(), members: Vec::new() };
        for r in members {
            ring.add_replica(r);
        }
        ring
    }

    /// Live replica ids, ascending.
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// Number of live replicas.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Adds `replica` (no-op if already present). Only keys landing on the
    /// new replica's arcs move — everything else keeps its home shard.
    pub fn add_replica(&mut self, replica: u32) {
        if self.members.contains(&replica) {
            return;
        }
        self.members.push(replica);
        self.members.sort_unstable();
        for v in 0..self.vnodes_per_replica {
            let pos = vnode_position(replica, v as u32);
            let at = self.points.partition_point(|&p| p < (pos, replica));
            self.points.insert(at, (pos, replica));
        }
    }

    /// Removes `replica` (no-op if absent). Only its keys move, each to
    /// the ring successor of the arc it sat on.
    pub fn remove_replica(&mut self, replica: u32) {
        self.members.retain(|&r| r != replica);
        self.points.retain(|&(_, r)| r != replica);
    }

    /// Routes a 64-bit key to its home replica: the first virtual node at
    /// or clockwise of the key. `None` on an empty ring.
    pub fn route(&self, key: u64) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let at = self.points.partition_point(|&(pos, _)| pos < key);
        let (_, replica) = self.points[if at == self.points.len() { 0 } else { at }];
        Some(replica)
    }

    /// Every live replica in ring order starting from the key's home
    /// replica — the failover re-issue order. Distinct; length equals the
    /// member count.
    pub fn successors(&self, key: u64) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::with_capacity(self.members.len());
        if self.points.is_empty() {
            return out;
        }
        let start = self.points.partition_point(|&(pos, _)| pos < key);
        for i in 0..self.points.len() {
            let (_, replica) = self.points[(start + i) % self.points.len()];
            if !out.contains(&replica) {
                out.push(replica);
                if out.len() == self.members.len() {
                    break;
                }
            }
        }
        out
    }
}

/// The fleet's routing key for a compound: fnv1a64 over the canonical
/// bytes of its topology-only circular fingerprint
/// (`dfchem::Fingerprint::canonical_bytes`). Content-addressed — two ids
/// that materialize to the same topology share a key, so they share a
/// home shard and a cache line — and RNG-free, so the key is a pure
/// function of `(id, campaign_seed)`.
pub fn routing_key(id: CompoundId, campaign_seed: u64) -> u64 {
    let compound =
        dfchem::genmol::Compound::materialize_topology(id.library, id.index, campaign_seed);
    let fp = dfchem::Fingerprint::compute(&dfchem::FingerprintConfig::default(), &compound.mol);
    let mut bytes = Vec::new();
    fp.canonical_bytes(&mut bytes);
    // SplitMix64-finalized so keys spread over the full ring even when
    // canonical byte strings are short or structurally similar.
    dftensor::rng::derive_seed(fnv1a64(&bytes), RING_SALT)
}

/// Memoizes [`routing_key`] per compound id (the key is a pure function
/// of the id, so the memo is semantically transparent — it only avoids
/// re-materializing the topology on every request).
#[derive(Debug, Default)]
pub struct KeyCache {
    map: HashMap<CompoundId, u64>,
    hits: u64,
    misses: u64,
}

impl KeyCache {
    /// An empty cache.
    pub fn new() -> KeyCache {
        KeyCache::default()
    }

    /// Rebuilds a cache from precomputed `(id, key)` entries (e.g. shared
    /// across several fleet instances in a bench ladder).
    pub fn from_entries(entries: &[(CompoundId, u64)]) -> KeyCache {
        KeyCache { map: entries.iter().copied().collect(), hits: 0, misses: 0 }
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Every memoized `(id, key)` pair, sorted by id — feed to
    /// [`KeyCache::from_entries`] to share hashing work across fleet
    /// instances (keys are only valid for the same campaign seed).
    pub fn entries(&self) -> Vec<(CompoundId, u64)> {
        let mut out: Vec<(CompoundId, u64)> = self.map.iter().map(|(&k, &v)| (k, v)).collect();
        out.sort_unstable_by_key(|&(id, _)| id);
        out
    }

    /// The routing key for `id`, computing and memoizing it on a miss.
    pub fn key(&mut self, id: CompoundId, campaign_seed: u64) -> u64 {
        match self.map.get(&id) {
            Some(&k) => {
                self.hits += 1;
                k
            }
            None => {
                self.misses += 1;
                let k = routing_key(id, campaign_seed);
                self.map.insert(id, k);
                k
            }
        }
    }

    /// Bulk lookup: hashes the uncached tail of `ids` in parallel on the
    /// current `dfpool` pool (order-preserving `parallel_map`, so the
    /// result — and the memo contents — are bit-identical at any router
    /// thread count), then answers every id from the memo.
    pub fn bulk_keys(&mut self, ids: &[CompoundId], campaign_seed: u64) -> Vec<u64> {
        let _span = dftrace::span("serve.router.hash_keys");
        let mut missing: Vec<CompoundId> = Vec::new();
        for &id in ids {
            if !self.map.contains_key(&id) && !missing.contains(&id) {
                missing.push(id);
            }
        }
        if !missing.is_empty() {
            let pool = dfpool::current();
            let keys =
                pool.parallel_map(missing.len(), 16, |i| routing_key(missing[i], campaign_seed));
            self.misses += missing.len() as u64;
            for (&id, &k) in missing.iter().zip(keys.iter()) {
                self.map.insert(id, k);
            }
        }
        ids.iter()
            .map(|id| {
                let k = *self.map.get(id).expect("filled above");
                self.hits += 1;
                k
            })
            .collect()
    }
}

/// Router-side admission control: per-shard depth watermarks feeding the
/// shard's existing degradation ladder.
///
/// When a shard's queue depth reaches `degrade_depth`, the router submits
/// with a depth **bias** of `bias_per_excess` per unit of depth beyond
/// the watermark. The biased depth pushes the ladder toward cheaper tiers
/// earlier than the shard's own thresholds would — a hot shard starts
/// answering from the inline tiers while real depth is still well below
/// the shed bound, instead of queueing model work until it sheds. The
/// bias can only ever *degrade* (the shed decision is always taken on the
/// true depth — see `AdmissionController::decide_biased`), so watermark
/// routing never rejects a request the plain ladder would have admitted.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WatermarkConfig {
    /// Shard depth at which the router starts biasing the ladder.
    pub degrade_depth: usize,
    /// Bias added per unit of depth beyond the watermark.
    pub bias_per_excess: usize,
}

impl WatermarkConfig {
    /// A watermark that never biases (router admission disabled).
    pub fn disabled() -> WatermarkConfig {
        WatermarkConfig { degrade_depth: usize::MAX, bias_per_excess: 0 }
    }

    /// The ladder bias for a shard currently at `depth`.
    pub fn bias(&self, depth: usize) -> usize {
        depth.saturating_sub(self.degrade_depth).saturating_mul(self.bias_per_excess)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfchem::genmol::Library;

    #[test]
    fn route_is_deterministic_and_in_members() {
        let ring = HashRing::new(&[0, 1, 2, 3], 16);
        for key in [0u64, 1, u64::MAX, 0xDEAD_BEEF, 1 << 63] {
            let r = ring.route(key).expect("non-empty ring");
            assert!(ring.members().contains(&r));
            assert_eq!(ring.route(key), Some(r), "routing must be stable");
        }
        assert!(HashRing::new(&[], 8).route(42).is_none());
    }

    #[test]
    fn successors_cover_all_members_distinctly() {
        let ring = HashRing::new(&[0, 1, 2, 3, 4], 8);
        let succ = ring.successors(0x1234_5678_9ABC_DEF0);
        assert_eq!(succ.len(), 5);
        let mut sorted = succ.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        assert_eq!(succ[0], ring.route(0x1234_5678_9ABC_DEF0).unwrap());
    }

    #[test]
    fn add_remove_round_trips_the_layout() {
        let mut ring = HashRing::new(&[0, 1, 2], 32);
        let reference = HashRing::new(&[0, 1, 2], 32);
        ring.add_replica(3);
        ring.remove_replica(3);
        let keys: Vec<u64> = (0..500).map(|i| fnv1a64(&(i as u64).to_le_bytes())).collect();
        for &k in &keys {
            assert_eq!(ring.route(k), reference.route(k));
        }
    }

    #[test]
    fn watermark_bias_kicks_in_past_the_watermark() {
        let w = WatermarkConfig { degrade_depth: 10, bias_per_excess: 3 };
        assert_eq!(w.bias(0), 0);
        assert_eq!(w.bias(10), 0);
        assert_eq!(w.bias(11), 3);
        assert_eq!(w.bias(14), 12);
        assert_eq!(WatermarkConfig::disabled().bias(usize::MAX), 0);
    }

    #[test]
    fn key_cache_memoizes_and_matches_direct_hashing() {
        let id = CompoundId { library: Library::Chembl, index: 7 };
        let direct = routing_key(id, 11);
        let mut cache = KeyCache::new();
        assert_eq!(cache.key(id, 11), direct);
        assert_eq!(cache.key(id, 11), direct);
        assert_eq!(cache.stats(), (1, 1));
        let bulk = cache.bulk_keys(&[id, id], 11);
        assert_eq!(bulk, vec![direct, direct]);
    }
}
