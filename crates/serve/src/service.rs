//! The scoring service: admission, micro-batching, caching, degradation
//! and virtual-time execution, all in one deterministic state machine.
//!
//! [`ScoreService`] is single-owner and synchronous: callers feed it
//! `(tick, request)` pairs via [`ScoreService::submit`] and pump completed
//! responses out with [`ScoreService::advance`]. All queueing, batching
//! and shedding behavior is a pure function of that admission sequence —
//! the wall clock never enters the picture, which is what lets the
//! determinism-lock tests demand bit-identical scores *and* identical shed
//! decisions across worker-thread counts and trace on/off.
//!
//! Server occupancy is modeled with a virtual cost model: each executed
//! batch occupies the single virtual server for `base + n·per_item` ticks
//! starting at `max(closed_at, busy_until)`. Items in flight count toward
//! the ladder's queue depth until their batch's completion tick is
//! reached, so overload shows up as depth, depth drives the degradation
//! ladder, and the hard `queue_capacity` bound keeps growth bounded by
//! construction.
//!
//! The wall-clock threaded front-end ([`spawn_server`]) wraps this state
//! machine behind a bounded channel served by a dedicated dispatcher
//! thread; intra-batch model compute runs on a `dfpool` pool, whose
//! deterministic `parallel_map` keeps scores independent of worker count.

use crate::admission::{AdmissionController, Decision, LadderConfig};
use crate::batcher::{BatcherConfig, ClosedBatch, MicroBatcher};
use crate::cache::{fnv1a64, fnv1a64_update, CacheStats, LruCache};
use crate::registry::{ModelSpec, SnapshotRegistry};
use crate::request::{ScoreRequest, ScoreResponse, SubmitOutcome, Ticks, Tier};
use dfchem::featurize::{build_graph, voxelize, MolGraph};
use dfchem::genmol::Compound;
use dfchem::pocket::{BindingPocket, TargetSite};
use dffusion::{score_batch_fusion, score_batch_sg_head, FusionModel};
use dfsurrogate::{SurrogateConfig, SurrogateRegistry};
use dftensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// Virtual execution costs, in ticks, of each scoring path.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed cost of launching a full-fusion batch.
    pub full_base: Ticks,
    /// Per-item cost inside a full-fusion batch.
    pub full_per_item: Ticks,
    /// Fixed cost of launching an SG-head batch.
    pub sg_base: Ticks,
    /// Per-item cost inside an SG-head batch.
    pub sg_per_item: Ticks,
    /// Cost of one surrogate evaluation (topology materialization +
    /// fingerprint + MLP forward for a single compound, no pocket — and no
    /// batch amortization, unlike `sg_per_item`). Runs inline like Vina
    /// and occupies its ladder band until its completion tick.
    pub surrogate_cost: Ticks,
    /// Cost of one Vina evaluation. Vina runs beside the model server
    /// (its response returns inline), but each evaluation counts toward
    /// queue depth until its completion tick — the fallback band has
    /// finite capacity too, which is what makes the shed bound reachable.
    pub vina_cost: Ticks,
    /// Cost of one ligand-only evaluation (descriptors + fingerprint, no
    /// pocket). Runs inline like Vina and occupies the deepest non-shed
    /// band of the ladder until its completion tick.
    pub ligand_cost: Ticks,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            full_base: 2_000,
            full_per_item: 800,
            sg_base: 400,
            sg_per_item: 150,
            surrogate_cost: 300,
            vina_cost: 1_000,
            ligand_cost: 500,
        }
    }
}

/// Full service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Model architecture + featurization + initial weights.
    pub spec: ModelSpec,
    /// Surrogate-tier architecture + featurization + init seed.
    pub surrogate: SurrogateConfig,
    /// Micro-batch close policy (shared by both model lanes).
    pub batcher: BatcherConfig,
    /// Degradation-ladder depth thresholds.
    pub ladder: LadderConfig,
    /// Virtual execution costs.
    pub cost: CostModel,
    /// Capacity of the featurization cache (entries).
    pub feature_cache: usize,
    /// Capacity of the score cache (entries).
    pub score_cache: usize,
    /// Campaign seed: pockets and compounds materialize under it.
    pub campaign_seed: u64,
}

impl ServeConfig {
    /// A small deterministic configuration for tests and benches.
    pub fn tiny(campaign_seed: u64) -> ServeConfig {
        ServeConfig {
            spec: ModelSpec::tiny(campaign_seed),
            surrogate: SurrogateConfig::tiny(campaign_seed),
            batcher: BatcherConfig { max_batch: 4, max_wait: 2_000 },
            ladder: LadderConfig {
                full_max_depth: 8,
                sg_max_depth: 16,
                surrogate_max_depth: 18,
                vina_max_depth: 20,
                queue_capacity: 24,
            },
            cost: CostModel::default(),
            feature_cache: 64,
            score_cache: 256,
            campaign_seed,
        }
    }
}

/// Monotonic service-level accounting.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Requests admitted at any tier.
    pub admitted: u64,
    /// Requests shed at the capacity bound.
    pub shed: u64,
    /// Completions per tier, indexed like [`Tier::ALL`].
    pub per_tier: [u64; 5],
    /// Responses produced (cache hits included).
    pub completed: u64,
    /// Score-cache hits answered at submit time.
    pub submit_hits: u64,
    /// Model batches executed.
    pub batches: u64,
    /// Registry hot-swaps observed by the executor.
    pub swaps_observed: u64,
}

impl ServiceStats {
    /// shed / (admitted + shed); 0 when nothing arrived.
    pub fn shed_rate(&self) -> f64 {
        dftrace::rate::mean(self.shed as f64, (self.admitted + self.shed) as f64)
    }
}

/// What sits in a model lane waiting for its micro-batch to close.
#[derive(Debug, Clone)]
struct QueuedItem {
    id: u64,
    compound: dfchem::genmol::CompoundId,
    target: TargetSite,
    /// fnv1a64 of the canonical featurization bytes.
    content_hash: u64,
    graph: Arc<MolGraph>,
    /// Present only on the full-fusion lane.
    voxel: Option<Arc<Tensor>>,
}

/// A batch the virtual server has started but not yet completed.
#[derive(Debug)]
struct Inflight {
    completes_at: Ticks,
    responses: Vec<ScoreResponse>,
}

/// Featurization-cache entry: the expensive artifacts for one
/// (compound, target) pair plus the content digest of the graph.
#[derive(Debug, Clone)]
struct Features {
    graph: Arc<MolGraph>,
    voxel: Option<Arc<Tensor>>,
    content_hash: u64,
}

/// The deterministic scoring service.
pub struct ScoreService {
    cfg: ServeConfig,
    registry: Arc<SnapshotRegistry>,
    /// Hot-swap registry of the surrogate tier's weights (its generation
    /// is mixed into the surrogate score-cache keys).
    surrogate: Arc<SurrogateRegistry>,
    model: FusionModel,
    admission: AdmissionController,
    full_lane: MicroBatcher<QueuedItem>,
    sg_lane: MicroBatcher<QueuedItem>,
    /// (compound, target) identity → featurization artifacts.
    feature_cache: LruCache<Features>,
    /// (content hash, tier, generation) → score.
    score_cache: LruCache<f32>,
    /// Pockets for each [`TargetSite::ALL`] entry, generated once.
    pockets: Vec<BindingPocket>,
    now: Ticks,
    busy_until: Ticks,
    inflight: VecDeque<Inflight>,
    /// Completion ticks of Vina evaluations still occupying the fallback
    /// band (responses were already returned inline; these only hold
    /// queue depth until they retire).
    vina_inflight: VecDeque<Ticks>,
    /// Completion ticks of surrogate evaluations still occupying their
    /// ladder band, same retirement rule as `vina_inflight`.
    surrogate_inflight: VecDeque<Ticks>,
    /// Completion ticks of ligand-only evaluations still occupying the
    /// deepest non-shed band, same retirement rule as `vina_inflight`.
    ligand_inflight: VecDeque<Ticks>,
    ready: VecDeque<ScoreResponse>,
    last_generation: u64,
    stats: ServiceStats,
}

impl ScoreService {
    /// Builds the service around a shared snapshot registry (the
    /// surrogate tier gets a private registry at generation 0; use
    /// [`ScoreService::with_registries`] to share one with a campaign).
    pub fn new(cfg: ServeConfig, registry: Arc<SnapshotRegistry>) -> ScoreService {
        let surrogate = Arc::new(SurrogateRegistry::new(cfg.surrogate.clone()));
        ScoreService::with_registries(cfg, registry, surrogate)
    }

    /// Builds the service around shared fusion *and* surrogate registries
    /// — the campaign's active-learning driver publishes retrained
    /// surrogate weights into the latter and this service picks them up
    /// on the next surrogate-tier evaluation.
    pub fn with_registries(
        cfg: ServeConfig,
        registry: Arc<SnapshotRegistry>,
        surrogate: Arc<SurrogateRegistry>,
    ) -> ScoreService {
        let (model, _) = registry.spec().build();
        let pockets = TargetSite::ALL
            .iter()
            .map(|&t| BindingPocket::generate(t, cfg.campaign_seed))
            .collect();
        let last_generation = registry.current().generation;
        ScoreService {
            admission: AdmissionController::new(cfg.ladder),
            full_lane: MicroBatcher::new(cfg.batcher),
            sg_lane: MicroBatcher::new(cfg.batcher),
            feature_cache: LruCache::new(cfg.feature_cache),
            score_cache: LruCache::new(cfg.score_cache),
            pockets,
            now: 0,
            busy_until: 0,
            inflight: VecDeque::new(),
            vina_inflight: VecDeque::new(),
            surrogate_inflight: VecDeque::new(),
            ligand_inflight: VecDeque::new(),
            ready: VecDeque::new(),
            last_generation,
            stats: ServiceStats::default(),
            model,
            registry,
            surrogate,
            cfg,
        }
    }

    /// Convenience constructor: a private registry at generation 0.
    pub fn with_fresh_registry(cfg: ServeConfig) -> ScoreService {
        let registry = Arc::new(SnapshotRegistry::new(cfg.spec.clone()));
        ScoreService::new(cfg, registry)
    }

    /// The registry this service scores against (publish here to hot-swap).
    pub fn registry(&self) -> &Arc<SnapshotRegistry> {
        &self.registry
    }

    /// The surrogate-tier registry (publish retrained surrogate weights
    /// here to hot-swap; the new generation re-keys the score cache).
    pub fn surrogate_registry(&self) -> &Arc<SurrogateRegistry> {
        &self.surrogate
    }

    /// Accounting so far.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Featurization-cache accounting.
    pub fn feature_cache_stats(&self) -> CacheStats {
        self.feature_cache.stats()
    }

    /// Score-cache accounting.
    pub fn score_cache_stats(&self) -> CacheStats {
        self.score_cache.stats()
    }

    /// Queue depth the admission controller sees: lane backlogs plus
    /// everything in flight on the virtual server, plus surrogate, Vina
    /// and ligand-only evaluations still occupying their fallback bands.
    pub fn depth(&self) -> usize {
        let inflight: usize = self.inflight.iter().map(|b| b.responses.len()).sum();
        self.full_lane.len()
            + self.sg_lane.len()
            + inflight
            + self.surrogate_inflight.len()
            + self.vina_inflight.len()
            + self.ligand_inflight.len()
    }

    /// The current virtual tick (the latest tick the service has seen).
    pub fn now(&self) -> Ticks {
        self.now
    }

    /// The next virtual tick at which a batch closes or an in-flight
    /// batch completes, or `None` when no responses are pending. (Vina
    /// fallback occupancy is not an event: its responses return inline.)
    pub fn next_event(&self) -> Option<Ticks> {
        let mut next: Option<Ticks> = None;
        let mut consider = |t: Option<Ticks>| {
            if let Some(t) = t {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        consider(self.full_lane.next_close_at());
        consider(self.sg_lane.next_close_at());
        consider(self.inflight.front().map(|b| b.completes_at));
        next
    }

    /// Advances virtual time to `now` (monotonic), closing due batches,
    /// executing them on the virtual server and retiring completions.
    /// Returns every response whose completion tick has been reached.
    pub fn advance(&mut self, now: Ticks) -> Vec<ScoreResponse> {
        self.tick(now);
        self.drain_ready()
    }

    /// Submits one request at tick `now`. Cache hits and Vina-tier scores
    /// complete inline; model tiers enqueue into their lane. Shed requests
    /// get nothing but the outcome.
    pub fn submit(&mut self, now: Ticks, req: ScoreRequest) -> SubmitOutcome {
        self.submit_with_bias(now, req, 0)
    }

    /// [`ScoreService::submit`] with a router-supplied admission **bias**
    /// (`router::WatermarkConfig`): tier selection sees `depth + bias`
    /// (clamped below the shed bound), the shed decision sees the true
    /// depth — a hot shard degrades earlier but never sheds earlier.
    pub fn submit_with_bias(
        &mut self,
        now: Ticks,
        req: ScoreRequest,
        bias: usize,
    ) -> SubmitOutcome {
        self.tick(now);
        let depth = self.depth();
        dftrace::gauge_set("serve.queue_depth", depth as f64);
        let decision = self.admission.decide_biased(depth, bias);
        let tier = match decision {
            Decision::Shed => {
                self.stats.shed += 1;
                dftrace::counter_add("serve.shed", 1);
                return SubmitOutcome::Shed { depth };
            }
            Decision::Admit(tier) => tier,
        };
        self.stats.admitted += 1;
        dftrace::counter_add("serve.admitted", 1);
        let generation = self.registry.current().generation;

        if tier == Tier::Vina {
            // Inline fallback: no featurization, no weights, no server
            // occupancy. Identity-addressed cache (the molecule is a pure
            // function of its id, so identity equals content here).
            let key = vina_key(&req);
            let (score, cache_hit) = match self.score_cache.get(key).copied() {
                Some(s) => (s, true),
                None => {
                    let compound = self.materialize(req.compound);
                    let pocket = &self.pockets[target_index(req.target)];
                    let s = dfdock::vina_affinity(&compound.mol, pocket) as f32;
                    self.record_insert_score(key, s);
                    (s, false)
                }
            };
            let completed_at = if cache_hit { now } else { now + self.cfg.cost.vina_cost };
            let resp = ScoreResponse {
                request_id: req.id,
                compound: req.compound,
                target: req.target,
                score,
                tier,
                cache_hit,
                generation,
                admitted_at: now,
                started_at: now,
                completed_at,
            };
            if !cache_hit {
                // The evaluation occupies the fallback band until done.
                self.vina_inflight.push_back(completed_at);
            }
            self.complete(&resp);
            return SubmitOutcome::Completed(resp);
        }

        if tier == Tier::Surrogate {
            // Inline learned fallback: fingerprint + MLP forward, no
            // pocket geometry. The cache key is content-addressed (the
            // canonical fingerprint bytes) mixed with the *surrogate*
            // registry's snapshot generation, so a retrain hot-swap
            // invalidates stale surrogate scores by missing.
            let live = self.surrogate.current();
            let (content_hash, row) = dfsurrogate::featurize_compound(
                &self.surrogate.config().fingerprint,
                req.compound.library,
                req.compound.index,
                self.cfg.campaign_seed,
            );
            let key = score_key(content_hash, tier, live.generation);
            let (score, cache_hit) = match self.score_cache.get(key).copied() {
                Some(s) => (s, true),
                None => {
                    let s = self.surrogate.model().predict(&live.params, &[row])[0];
                    self.record_insert_score(key, s);
                    (s, false)
                }
            };
            let completed_at = if cache_hit { now } else { now + self.cfg.cost.surrogate_cost };
            let resp = ScoreResponse {
                request_id: req.id,
                compound: req.compound,
                target: req.target,
                score,
                tier,
                cache_hit,
                generation: live.generation,
                admitted_at: now,
                started_at: now,
                completed_at,
            };
            if !cache_hit {
                self.surrogate_inflight.push_back(completed_at);
            }
            self.complete(&resp);
            return SubmitOutcome::Completed(resp);
        }

        if tier == Tier::LigandOnly {
            // Inline target-free fallback: descriptors + fingerprint only.
            // The cache key ignores the target, so a compound scored for
            // one pocket answers ligand-only requests against any pocket.
            let key = ligand_key(req.compound);
            let (score, cache_hit) = match self.score_cache.get(key).copied() {
                Some(s) => (s, true),
                None => {
                    // Topology-only materialization: descriptors and
                    // fingerprints never read coordinates or charges, and
                    // skipping conformer relaxation keeps this inline tier
                    // cheap enough to absorb overload bursts.
                    let compound = Compound::materialize_topology(
                        req.compound.library,
                        req.compound.index,
                        self.cfg.campaign_seed,
                    );
                    let d = dfchem::Descriptors::compute(&compound.mol);
                    let fp = dfchem::Fingerprint::compute(
                        &dfchem::FingerprintConfig::default(),
                        &compound.mol,
                    );
                    let s = dfchem::ligand_score(&d, &fp) as f32;
                    self.record_insert_score(key, s);
                    (s, false)
                }
            };
            let completed_at = if cache_hit { now } else { now + self.cfg.cost.ligand_cost };
            let resp = ScoreResponse {
                request_id: req.id,
                compound: req.compound,
                target: req.target,
                score,
                tier,
                cache_hit,
                generation,
                admitted_at: now,
                started_at: now,
                completed_at,
            };
            if !cache_hit {
                self.ligand_inflight.push_back(completed_at);
            }
            self.complete(&resp);
            return SubmitOutcome::Completed(resp);
        }

        let features = self.featurize(req.compound, req.target, tier);
        let key = score_key(features.content_hash, tier, generation);
        if let Some(&score) = self.score_cache.get(key) {
            self.stats.submit_hits += 1;
            let resp = ScoreResponse {
                request_id: req.id,
                compound: req.compound,
                target: req.target,
                score,
                tier,
                cache_hit: true,
                generation,
                admitted_at: now,
                started_at: now,
                completed_at: now,
            };
            self.complete(&resp);
            return SubmitOutcome::Completed(resp);
        }

        let item = QueuedItem {
            id: req.id,
            compound: req.compound,
            target: req.target,
            content_hash: features.content_hash,
            graph: features.graph,
            voxel: if tier == Tier::FullFusion { features.voxel } else { None },
        };
        match tier {
            Tier::FullFusion => self.full_lane.push(now, item),
            Tier::SgHead => self.sg_lane.push(now, item),
            Tier::Surrogate | Tier::Vina | Tier::LigandOnly => {
                unreachable!("inline tiers handled above")
            }
        }
        SubmitOutcome::Enqueued(tier)
    }

    /// Force-closes both lanes at tick `now` (end-of-run drain) and runs
    /// virtual time forward until every in-flight batch has completed.
    /// Returns the remaining responses.
    pub fn flush(&mut self, now: Ticks) -> Vec<ScoreResponse> {
        self.tick(now);
        for batch in self.full_lane.flush(self.now) {
            self.execute(Tier::FullFusion, batch);
        }
        for batch in self.sg_lane.flush(self.now) {
            self.execute(Tier::SgHead, batch);
        }
        let drain_to = self
            .inflight
            .back()
            .map(|b| b.completes_at)
            .into_iter()
            .chain(self.vina_inflight.back().copied())
            .chain(self.surrogate_inflight.back().copied())
            .chain(self.ligand_inflight.back().copied())
            .max()
            .unwrap_or(self.now);
        self.tick(drain_to.max(self.now));
        debug_assert!(
            self.inflight.is_empty()
                && self.vina_inflight.is_empty()
                && self.surrogate_inflight.is_empty()
                && self.ligand_inflight.is_empty()
                && self.full_lane.is_empty()
                && self.sg_lane.is_empty()
        );
        self.drain_ready()
    }

    /// Moves virtual time forward, executing everything due on the way.
    fn tick(&mut self, now: Ticks) {
        assert!(now >= self.now, "virtual time must be monotonic: {} < {}", now, self.now);
        self.now = now;
        // Retire inline evaluations whose band occupancy has lapsed.
        while self.vina_inflight.front().is_some_and(|&t| t <= self.now) {
            self.vina_inflight.pop_front();
        }
        while self.surrogate_inflight.front().is_some_and(|&t| t <= self.now) {
            self.surrogate_inflight.pop_front();
        }
        while self.ligand_inflight.front().is_some_and(|&t| t <= self.now) {
            self.ligand_inflight.pop_front();
        }
        loop {
            // Retire in-flight batches that have completed by `now`.
            while self.inflight.front().is_some_and(|b| b.completes_at <= self.now) {
                let done = self.inflight.pop_front().expect("front checked");
                for resp in done.responses {
                    self.complete(&resp);
                    self.ready.push_back(resp);
                }
            }
            // Close the earliest due batch across both lanes; full lane
            // wins ties so the tie-break is deterministic by construction.
            let full_due = self.full_lane.next_close_at().filter(|&t| t <= self.now);
            let sg_due = self.sg_lane.next_close_at().filter(|&t| t <= self.now);
            let (tier, lane) = match (full_due, sg_due) {
                (Some(f), Some(s)) if s < f => (Tier::SgHead, &mut self.sg_lane),
                (Some(_), _) => (Tier::FullFusion, &mut self.full_lane),
                (None, Some(_)) => (Tier::SgHead, &mut self.sg_lane),
                (None, None) => break,
            };
            let batch = lane.take_due(self.now).expect("close time was due");
            self.execute(tier, batch);
        }
    }

    /// Runs one closed batch on the virtual server: real model compute
    /// now, virtual completion at `max(closed_at, busy_until) + cost`.
    fn execute(&mut self, tier: Tier, batch: ClosedBatch<QueuedItem>) {
        let n = batch.items.len();
        debug_assert!(n > 0, "lanes never close empty batches");
        let cost = match tier {
            Tier::FullFusion => self.cfg.cost.full_base + n as u64 * self.cfg.cost.full_per_item,
            Tier::SgHead => self.cfg.cost.sg_base + n as u64 * self.cfg.cost.sg_per_item,
            Tier::Surrogate | Tier::Vina | Tier::LigandOnly => {
                unreachable!("inline tiers never occupy the server")
            }
        };
        let started_at = batch.closed_at.max(self.busy_until);
        let completes_at = started_at + cost;
        self.busy_until = completes_at;
        self.stats.batches += 1;
        dftrace::counter_add("serve.batches", 1);
        dftrace::observe_us("serve.batch_size", n as u64);

        // Pick up the live generation; an observed change is a hot-swap.
        let live = self.registry.current();
        if live.generation != self.last_generation {
            self.stats.swaps_observed += 1;
            self.last_generation = live.generation;
        }

        // Exec-time cache pass: identical content admitted twice before the
        // first copy finished computes only once.
        let _span = dftrace::span("serve.batch_exec");
        let mut scores: Vec<Option<f32>> = Vec::with_capacity(n);
        let mut miss_idx: Vec<usize> = Vec::new();
        for (i, (_, item)) in batch.items.iter().enumerate() {
            let key = score_key(item.content_hash, tier, live.generation);
            match self.score_cache.get(key).copied() {
                Some(s) => scores.push(Some(s)),
                None => {
                    scores.push(None);
                    miss_idx.push(i);
                }
            }
        }
        if !miss_idx.is_empty() {
            let computed = match tier {
                Tier::FullFusion => {
                    let voxels: Vec<&Tensor> = miss_idx
                        .iter()
                        .map(|&i| {
                            batch.items[i].1.voxel.as_deref().expect("full lane carries voxels")
                        })
                        .collect();
                    let graphs: Vec<&MolGraph> =
                        miss_idx.iter().map(|&i| &*batch.items[i].1.graph).collect();
                    score_batch_fusion(&mut self.model, &live.params, &voxels, &graphs)
                }
                Tier::SgHead => {
                    let graphs: Vec<&MolGraph> =
                        miss_idx.iter().map(|&i| &*batch.items[i].1.graph).collect();
                    score_batch_sg_head(&mut self.model, &live.params, &graphs)
                }
                Tier::Surrogate | Tier::Vina | Tier::LigandOnly => unreachable!(),
            };
            for (&i, &s) in miss_idx.iter().zip(computed.iter()) {
                scores[i] = Some(s);
                let key = score_key(batch.items[i].1.content_hash, tier, live.generation);
                self.record_insert_score(key, s);
            }
        }

        let responses = batch
            .items
            .iter()
            .zip(scores)
            .map(|((admitted_at, item), score)| ScoreResponse {
                request_id: item.id,
                compound: item.compound,
                target: item.target,
                score: score.expect("every item scored"),
                tier,
                cache_hit: false,
                generation: live.generation,
                admitted_at: *admitted_at,
                started_at,
                completed_at: completes_at,
            })
            .collect();
        self.inflight.push_back(Inflight { completes_at, responses });
        debug_assert!(
            self.inflight
                .iter()
                .zip(self.inflight.iter().skip(1))
                .all(|(a, b)| a.completes_at <= b.completes_at),
            "single-server completion order is FIFO"
        );
    }

    /// Records one finished response into stats and trace.
    fn complete(&mut self, resp: &ScoreResponse) {
        self.stats.completed += 1;
        self.stats.per_tier[tier_index(resp.tier)] += 1;
        dftrace::counter_add(tier_counter(resp.tier), 1);
        dftrace::observe_us("serve.queue_wait_vus", resp.queue_wait());
        dftrace::observe_us("serve.e2e_vus", resp.e2e());
    }

    fn drain_ready(&mut self) -> Vec<ScoreResponse> {
        self.ready.drain(..).collect()
    }

    fn record_insert_score(&mut self, key: u64, score: f32) {
        if self.score_cache.insert(key, score).is_some() {
            dftrace::counter_add("serve.cache.score.evictions", 1);
        }
    }

    fn materialize(&self, id: dfchem::genmol::CompoundId) -> Compound {
        let mut c = Compound::materialize(id.library, id.index, self.cfg.campaign_seed);
        // Ligand prep: center on the pocket origin before featurization,
        // matching the training-time convention.
        let centroid = c.mol.centroid();
        c.mol.translate(centroid.scale(-1.0));
        c
    }

    /// Featurizes (or cache-hits) one (compound, target) pair. SG-head
    /// requests skip voxelization; if the pair was first seen by the SG
    /// lane, a later full-fusion request upgrades the entry in place.
    fn featurize(
        &mut self,
        id: dfchem::genmol::CompoundId,
        target: TargetSite,
        tier: Tier,
    ) -> Features {
        let need_voxel = tier == Tier::FullFusion;
        let key = feature_key(id, target);
        if let Some(f) = self.feature_cache.get(key) {
            if !need_voxel || f.voxel.is_some() {
                return f.clone();
            }
        }
        let had_graph = self.feature_cache.peek(key).map(|f| (f.graph.clone(), f.content_hash));
        let _span = dftrace::span("serve.featurize");
        let pocket = &self.pockets[target_index(target)];
        let (graph, content_hash, compound) = match had_graph {
            Some((g, h)) => (g, h, None),
            None => {
                let compound = self.materialize(id);
                let g = build_graph(&self.cfg.spec.graph, &compound.mol, pocket);
                let mut bytes = Vec::new();
                g.canonical_bytes(&mut bytes);
                (Arc::new(g), fnv1a64(&bytes), Some(compound))
            }
        };
        let voxel = if need_voxel {
            let compound = compound.unwrap_or_else(|| self.materialize(id));
            Some(Arc::new(voxelize(&self.cfg.spec.voxel, &compound.mol, pocket)))
        } else {
            None
        };
        let features = Features { graph, voxel, content_hash };
        if self.feature_cache.insert(key, features.clone()).is_some() {
            dftrace::counter_add("serve.cache.feature.evictions", 1);
        }
        features
    }

    /// Scores one (compound, target) pair at `tier` directly — no caches,
    /// no lanes, no virtual server, always against the live generation.
    /// This is the bit-identity oracle for the fleet determinism locks:
    /// every response a fleet (or single instance) produces must carry
    /// exactly these bits, because batched inference equals a batch of
    /// singles bit-exactly and cache entries are only ever the stored
    /// result of this same computation.
    pub fn reference_score(
        &mut self,
        compound: dfchem::genmol::CompoundId,
        target: TargetSite,
        tier: Tier,
    ) -> f32 {
        let pocket = &self.pockets[target_index(target)];
        match tier {
            Tier::FullFusion | Tier::SgHead => {
                let c = {
                    let mut c = Compound::materialize(
                        compound.library,
                        compound.index,
                        self.cfg.campaign_seed,
                    );
                    let centroid = c.mol.centroid();
                    c.mol.translate(centroid.scale(-1.0));
                    c
                };
                let graph = build_graph(&self.cfg.spec.graph, &c.mol, pocket);
                let live = self.registry.current();
                if tier == Tier::FullFusion {
                    let voxel = voxelize(&self.cfg.spec.voxel, &c.mol, pocket);
                    score_batch_fusion(&mut self.model, &live.params, &[&voxel], &[&graph])[0]
                } else {
                    score_batch_sg_head(&mut self.model, &live.params, &[&graph])[0]
                }
            }
            Tier::Surrogate => {
                let live = self.surrogate.current();
                let (_, row) = dfsurrogate::featurize_compound(
                    &self.surrogate.config().fingerprint,
                    compound.library,
                    compound.index,
                    self.cfg.campaign_seed,
                );
                self.surrogate.model().predict(&live.params, &[row])[0]
            }
            Tier::Vina => {
                let mut c =
                    Compound::materialize(compound.library, compound.index, self.cfg.campaign_seed);
                let centroid = c.mol.centroid();
                c.mol.translate(centroid.scale(-1.0));
                dfdock::vina_affinity(&c.mol, pocket) as f32
            }
            Tier::LigandOnly => {
                let c = Compound::materialize_topology(
                    compound.library,
                    compound.index,
                    self.cfg.campaign_seed,
                );
                let d = dfchem::Descriptors::compute(&c.mol);
                let fp =
                    dfchem::Fingerprint::compute(&dfchem::FingerprintConfig::default(), &c.mol);
                dfchem::ligand_score(&d, &fp) as f32
            }
        }
    }
}

/// Index of a tier in [`Tier::ALL`]-shaped arrays.
fn tier_index(tier: Tier) -> usize {
    match tier {
        Tier::FullFusion => 0,
        Tier::SgHead => 1,
        Tier::Surrogate => 2,
        Tier::Vina => 3,
        Tier::LigandOnly => 4,
    }
}

/// Per-tier completion counter name.
fn tier_counter(tier: Tier) -> &'static str {
    match tier {
        Tier::FullFusion => "serve.tier.full",
        Tier::SgHead => "serve.tier.sg_head",
        Tier::Surrogate => "serve.tier.surrogate",
        Tier::Vina => "serve.tier.vina",
        Tier::LigandOnly => "serve.tier.ligand_only",
    }
}

/// Index of a target in [`TargetSite::ALL`] (pocket array order).
fn target_index(target: TargetSite) -> usize {
    TargetSite::ALL.iter().position(|&t| t == target).expect("TargetSite::ALL covers every variant")
}

/// Identity key of a (compound, target) pair for the featurization cache.
fn feature_key(id: dfchem::genmol::CompoundId, target: TargetSite) -> u64 {
    let mut h = fnv1a64(id.library.tag().as_bytes());
    h = fnv1a64_update(h, &id.index.to_le_bytes());
    fnv1a64_update(h, &(target_index(target) as u64).to_le_bytes())
}

/// Score-cache key: content digest mixed with tier and weight generation,
/// so hot-swaps invalidate by missing instead of flushing.
fn score_key(content_hash: u64, tier: Tier, generation: u64) -> u64 {
    let mut h = fnv1a64_update(content_hash, tier.tag().as_bytes());
    h = fnv1a64_update(h, &generation.to_le_bytes());
    h
}

/// Identity key of a Vina-tier evaluation (featurization is bypassed).
fn vina_key(req: &ScoreRequest) -> u64 {
    fnv1a64_update(feature_key(req.compound, req.target), b"vina")
}

/// Identity key of a ligand-only evaluation: compound only — the score is
/// target-independent, so it is shared across pockets.
fn ligand_key(id: dfchem::genmol::CompoundId) -> u64 {
    let mut h = fnv1a64(id.library.tag().as_bytes());
    h = fnv1a64_update(h, &id.index.to_le_bytes());
    fnv1a64_update(h, b"ligand_only")
}

/// A request paired with the virtual tick it arrived at (threaded
/// front-end envelope).
#[derive(Debug, Clone, Copy)]
pub struct TimedRequest {
    /// Virtual arrival tick.
    pub at: Ticks,
    /// The request itself.
    pub request: ScoreRequest,
}

/// Handle to a running threaded front-end.
pub struct ServerHandle {
    /// Submit side: send `(tick, request)` envelopes. Bounded — senders
    /// block when the dispatcher falls behind (backpressure).
    pub requests: std::sync::mpsc::SyncSender<TimedRequest>,
    /// Outcome side: one [`SubmitOutcome`] per envelope, in order, with
    /// completed batch responses interleaved as they retire.
    pub completions: std::sync::mpsc::Receiver<ScoreResponse>,
    join: std::thread::JoinHandle<ServiceStats>,
}

impl ServerHandle {
    /// Closes the request side, drains the service and joins the
    /// dispatcher, returning its final accounting.
    pub fn shutdown(self) -> ServiceStats {
        drop(self.requests);
        self.join.join().expect("dispatcher panicked")
    }
}

/// Spawns the thread-based front-end: a dedicated dispatcher owns the
/// [`ScoreService`] state machine and pulls [`TimedRequest`] envelopes
/// from a bounded channel of depth `channel_bound` (senders block when it
/// fills — backpressure, not unbounded growth). Completed responses are
/// pushed to the returned receiver. Intra-batch compute inherits whatever
/// `dfpool` pool the dispatcher thread is installed into.
pub fn spawn_server(
    cfg: ServeConfig,
    registry: Arc<SnapshotRegistry>,
    channel_bound: usize,
    worker_threads: usize,
) -> ServerHandle {
    let (req_tx, req_rx) = std::sync::mpsc::sync_channel::<TimedRequest>(channel_bound);
    let (resp_tx, resp_rx) = std::sync::mpsc::channel::<ScoreResponse>();
    let join = std::thread::Builder::new()
        .name("dfserve-dispatch".into())
        .spawn(move || {
            let pool = dfpool::Pool::new(worker_threads);
            pool.install(|| {
                let mut svc = ScoreService::new(cfg, registry);
                let mut clock: Ticks = 0;
                while let Ok(env) = req_rx.recv() {
                    // Envelope ticks must be monotone; clamp stragglers so
                    // a misbehaving producer cannot wind time backwards.
                    clock = clock.max(env.at);
                    for resp in svc.advance(clock) {
                        let _ = resp_tx.send(resp);
                    }
                    match svc.submit(clock, env.request) {
                        SubmitOutcome::Completed(resp) => {
                            let _ = resp_tx.send(resp);
                        }
                        SubmitOutcome::Enqueued(_) | SubmitOutcome::Shed { .. } => {}
                    }
                }
                let end = svc.next_event().map_or(clock, |t| t.max(clock));
                for resp in svc.flush(end) {
                    let _ = resp_tx.send(resp);
                }
                svc.stats()
            })
        })
        .expect("spawn dispatcher");
    ServerHandle { requests: req_tx, completions: resp_rx, join }
}
