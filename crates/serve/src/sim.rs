//! Deterministic traffic simulator: seeded arrivals on the virtual clock.
//!
//! Two load shapes, both pure functions of their seed:
//!
//! * **Open loop** — requests arrive on an exponential (Poisson-process)
//!   interarrival schedule regardless of how the service is doing. This is
//!   the overload generator: shrink the mean interarrival below the
//!   service rate and the degradation ladder must engage.
//! * **Closed loop** — a fixed population of clients, each submitting,
//!   (virtually) waiting for its response, thinking, then submitting
//!   again. Offered load self-limits, which is the nominal-traffic shape.
//!
//! No wall time anywhere: interarrival draws come from a seeded
//! `StdRng`, timestamps are virtual ticks, and percentiles in the report
//! are exact (computed from the full latency vectors, not histogram
//! buckets), so a report is bit-reproducible across machines, worker
//! counts and trace on/off.

use crate::fleet::{Fleet, FleetOutcome};
use crate::request::{ScoreRequest, ScoreResponse, SubmitOutcome, Ticks, Tier, TICKS_PER_SEC};
use crate::service::ScoreService;
use dfchem::genmol::{CompoundId, Library};
use dfchem::pocket::TargetSite;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Seeded Zipf(s) popularity over a compound pool: rank `k` (0-based) is
/// drawn with probability proportional to `1/(k+1)^exponent`. Exponent 0
/// is uniform; ~1.0 is classic web-trace skew; >1 concentrates hard on a
/// few hot keys. Replaces the two-bucket hot/cold mix when present on
/// [`TrafficConfig::zipf`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ZipfConfig {
    /// Compound pool size (ranks `0..compounds`).
    pub compounds: u64,
    /// Skew exponent `s >= 0`.
    pub exponent: f64,
}

/// Shape of the simulated request population.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Seed for the arrival process and compound choices.
    pub seed: u64,
    /// Total requests to issue.
    pub requests: usize,
    /// Size of the "hot" compound pool (drawn with `hot_fraction`).
    pub hot_compounds: u64,
    /// Size of the "cold" compound pool.
    pub cold_compounds: u64,
    /// Probability a request draws from the hot pool (cache pressure dial).
    pub hot_fraction: f64,
    /// When set, compound popularity follows Zipf(`exponent`) over
    /// `compounds` ranks instead of the two-bucket mix. `None` (the
    /// default, and what configs serialized before this field existed
    /// decode to) keeps the two-bucket draw sequence bit-identical.
    pub zipf: Option<ZipfConfig>,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 0xD15EA5E,
            requests: 200,
            hot_compounds: 12,
            cold_compounds: 600,
            hot_fraction: 0.5,
            zipf: None,
        }
    }
}

/// Inverse-CDF Zipf sampler: one uniform draw walks a precomputed
/// cumulative weight table by binary search. Built once per run.
#[derive(Debug, Clone)]
struct ZipfSampler {
    /// `cumulative[k]` = sum of weights of ranks `0..=k`.
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    fn new(cfg: ZipfConfig) -> ZipfSampler {
        let n = cfg.compounds.max(1) as usize;
        assert!(cfg.exponent >= 0.0, "Zipf exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(cfg.exponent);
            cumulative.push(total);
        }
        ZipfSampler { cumulative }
    }

    fn draw(&self, rng: &mut StdRng) -> u64 {
        let total = *self.cumulative.last().expect("at least one rank");
        let u: f64 = rng.gen::<f64>() * total;
        self.cumulative.partition_point(|&c| c < u).min(self.cumulative.len() - 1) as u64
    }
}

/// Prepared popularity generator: either the legacy two-bucket mix
/// (draw-for-draw identical to the pre-Zipf implementation) or a Zipf
/// sampler.
#[derive(Debug, Clone)]
enum Popularity {
    TwoBucket { hot: u64, cold: u64, hot_fraction: f64 },
    Zipf(ZipfSampler),
}

impl Popularity {
    fn prepare(cfg: &TrafficConfig) -> Popularity {
        match cfg.zipf {
            Some(z) => Popularity::Zipf(ZipfSampler::new(z)),
            None => Popularity::TwoBucket {
                hot: cfg.hot_compounds.max(1),
                cold: cfg.cold_compounds.max(1),
                hot_fraction: cfg.hot_fraction,
            },
        }
    }

    /// Draws a compound index. The two-bucket arm performs exactly the
    /// RNG calls of the original implementation (`gen_bool` then one
    /// `gen_range`), so pre-Zipf configs replay bit-identically.
    fn draw(&self, rng: &mut StdRng) -> u64 {
        match self {
            Popularity::TwoBucket { hot, cold, hot_fraction } => {
                if rng.gen_bool(*hot_fraction) {
                    rng.gen_range(0..*hot)
                } else {
                    hot + rng.gen_range(0..*cold)
                }
            }
            Popularity::Zipf(sampler) => sampler.draw(rng),
        }
    }
}

/// What one simulation run produced, with exact (not bucketed) latency
/// percentiles over the completed responses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Requests issued (admitted + shed).
    pub issued: u64,
    /// Responses completed (inline + batched).
    pub completed: u64,
    /// Requests shed.
    pub shed: u64,
    /// shed / issued.
    pub shed_rate: f64,
    /// Completions per tier, [`Tier::ALL`] order.
    pub per_tier: [u64; 5],
    /// Responses answered from the score cache.
    pub cache_hits: u64,
    /// Virtual tick of the last completion.
    pub makespan_ticks: Ticks,
    /// Completions per virtual second.
    pub throughput_per_vsec: f64,
    /// Exact queue-wait percentiles in ticks: [p50, p95, p99].
    pub queue_wait_ticks: [Ticks; 3],
    /// Exact end-to-end percentiles in ticks: [p50, p95, p99].
    pub e2e_ticks: [Ticks; 3],
}

/// Exact percentile (nearest-rank) of an unsorted sample.
fn exact_percentile(sorted: &[Ticks], q: f64) -> Ticks {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn build_report(issued: u64, shed: u64, responses: &[ScoreResponse]) -> SimReport {
    let mut per_tier = [0u64; 5];
    let mut cache_hits = 0u64;
    let mut queue_waits: Vec<Ticks> = Vec::with_capacity(responses.len());
    let mut e2es: Vec<Ticks> = Vec::with_capacity(responses.len());
    let mut makespan: Ticks = 0;
    for r in responses {
        let t = Tier::ALL.iter().position(|&t| t == r.tier).expect("known tier");
        per_tier[t] += 1;
        cache_hits += r.cache_hit as u64;
        queue_waits.push(r.queue_wait());
        e2es.push(r.e2e());
        makespan = makespan.max(r.completed_at);
    }
    queue_waits.sort_unstable();
    e2es.sort_unstable();
    let virtual_secs = makespan as f64 / TICKS_PER_SEC as f64;
    SimReport {
        issued,
        completed: responses.len() as u64,
        shed,
        shed_rate: dftrace::rate::mean(shed as f64, issued as f64),
        per_tier,
        cache_hits,
        makespan_ticks: makespan,
        throughput_per_vsec: dftrace::rate::per_sec(responses.len() as f64, virtual_secs),
        queue_wait_ticks: [
            exact_percentile(&queue_waits, 0.50),
            exact_percentile(&queue_waits, 0.95),
            exact_percentile(&queue_waits, 0.99),
        ],
        e2e_ticks: [
            exact_percentile(&e2es, 0.50),
            exact_percentile(&e2es, 0.95),
            exact_percentile(&e2es, 0.99),
        ],
    }
}

/// Draws the next request: compound index from the prepared popularity
/// generator (two-bucket hot/cold or Zipf), uniform library and target.
/// Two-bucket pools keep indices disjoint so `hot_fraction` directly
/// controls the achievable cache hit rate.
fn next_request(rng: &mut StdRng, pop: &Popularity, id: u64) -> ScoreRequest {
    let index = pop.draw(rng);
    let library = Library::ALL[rng.gen_range(0..Library::ALL.len())];
    let target = TargetSite::ALL[rng.gen_range(0..TargetSite::ALL.len())];
    ScoreRequest { id, compound: CompoundId { library, index }, target }
}

/// Exponential interarrival draw (at least one tick so time advances).
fn exp_interarrival(rng: &mut StdRng, mean_ticks: f64) -> Ticks {
    let u: f64 = rng.gen();
    ((-(1.0_f64 - u).ln()) * mean_ticks).ceil().max(1.0) as Ticks
}

/// Open-loop run: Poisson arrivals with the given mean interarrival time
/// (ticks), oblivious to service state. Returns the report and every
/// completed response in completion order.
pub fn run_open_loop(
    svc: &mut ScoreService,
    cfg: &TrafficConfig,
    mean_interarrival_ticks: f64,
) -> (SimReport, Vec<ScoreResponse>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let pop = Popularity::prepare(cfg);
    let mut responses: Vec<ScoreResponse> = Vec::with_capacity(cfg.requests);
    let mut shed = 0u64;
    let mut t: Ticks = 0;
    for i in 0..cfg.requests {
        t += exp_interarrival(&mut rng, mean_interarrival_ticks);
        responses.extend(svc.advance(t));
        let req = next_request(&mut rng, &pop, i as u64);
        match svc.submit(t, req) {
            SubmitOutcome::Completed(r) => responses.push(r),
            SubmitOutcome::Enqueued(_) => {}
            SubmitOutcome::Shed { .. } => shed += 1,
        }
    }
    responses.extend(svc.flush(t));
    (build_report(cfg.requests as u64, shed, &responses), responses)
}

/// Closed-loop run: `clients` virtual clients, each waiting for its
/// response and then thinking `think_ticks` before the next submission.
/// Returns the report and every completed response in completion order.
pub fn run_closed_loop(
    svc: &mut ScoreService,
    cfg: &TrafficConfig,
    clients: usize,
    think_ticks: Ticks,
) -> (SimReport, Vec<ScoreResponse>) {
    assert!(clients >= 1, "closed loop needs at least one client");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let pop = Popularity::prepare(cfg);
    let mut responses: Vec<ScoreResponse> = Vec::with_capacity(cfg.requests);
    let mut shed = 0u64;
    // Min-heap of (arrival tick, client); the client id breaks tick ties
    // deterministically.
    let mut arrivals = std::collections::BinaryHeap::new();
    for c in 0..clients {
        // Stagger initial arrivals so clients do not start in lockstep.
        let t0 = exp_interarrival(&mut rng, think_ticks.max(1) as f64);
        arrivals.push(std::cmp::Reverse((t0, c as u64)));
    }
    let mut outstanding: HashMap<u64, u64> = HashMap::new();
    let mut issued = 0u64;

    let handle =
        |resps: Vec<ScoreResponse>,
         responses: &mut Vec<ScoreResponse>,
         outstanding: &mut HashMap<u64, u64>,
         arrivals: &mut std::collections::BinaryHeap<std::cmp::Reverse<(Ticks, u64)>>| {
            for r in resps {
                if let Some(client) = outstanding.remove(&r.request_id) {
                    arrivals.push(std::cmp::Reverse((r.completed_at + think_ticks, client)));
                }
                responses.push(r);
            }
        };

    while issued < cfg.requests as u64 {
        match arrivals.pop() {
            Some(std::cmp::Reverse((at, client))) => {
                // A retired response can schedule an arrival earlier than
                // the tick the service has already reached; clamp forward.
                let at = at.max(svc.now());
                let done = svc.advance(at);
                handle(done, &mut responses, &mut outstanding, &mut arrivals);
                let req = next_request(&mut rng, &pop, issued);
                issued += 1;
                match svc.submit(at, req) {
                    SubmitOutcome::Completed(r) => {
                        arrivals.push(std::cmp::Reverse((r.completed_at + think_ticks, client)));
                        responses.push(r);
                    }
                    SubmitOutcome::Enqueued(_) => {
                        outstanding.insert(req.id, client);
                    }
                    SubmitOutcome::Shed { .. } => {
                        shed += 1;
                        // Shed clients back off one think time and retry.
                        arrivals.push(std::cmp::Reverse((at + think_ticks, client)));
                    }
                }
            }
            None => {
                // Every client is blocked on an enqueued request: run the
                // service forward event by event (an event may be a batch
                // *close*, which releases nobody yet — `next_event` then
                // strictly increases until a completion surfaces, so this
                // branch always makes progress).
                let t = svc.next_event().expect("blocked clients imply pending service work");
                let done = svc.advance(t.max(svc.now()));
                handle(done, &mut responses, &mut outstanding, &mut arrivals);
            }
        }
    }
    let tail = svc.flush(svc.now());
    handle(tail, &mut responses, &mut outstanding, &mut arrivals);
    (build_report(issued, shed, &responses), responses)
}

/// One replica liveness flip in a [`FaultPlan`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Virtual tick the flip takes effect (applied before the first
    /// arrival at or past this tick).
    pub at: Ticks,
    /// Replica to flip.
    pub replica: u32,
    /// `true` restores the replica, `false` kills it.
    pub up: bool,
}

/// A deterministic shard-failure schedule for [`run_fleet_open_loop`]:
/// kill/restore events on the virtual clock, applied in `(at, replica)`
/// order interleaved with the arrival process.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled liveness flips.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Kill `replica` at `kill_at`, restore it at `restore_at`.
    pub fn kill_restore(replica: u32, kill_at: Ticks, restore_at: Ticks) -> FaultPlan {
        assert!(kill_at < restore_at, "restore must follow the kill");
        FaultPlan {
            events: vec![
                FaultEvent { at: kill_at, replica, up: false },
                FaultEvent { at: restore_at, replica, up: true },
            ],
        }
    }
}

/// What one fleet simulation produced: the single-instance report shape
/// plus router-level accounting and the determinism digest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetSimReport {
    /// Latency/throughput/tier accounting over the merged response
    /// stream (its `shed` counts ladder sheds *and* failover sheds).
    pub base: SimReport,
    /// Configured replicas.
    pub replicas: usize,
    /// Failover re-issues scheduled.
    pub reissues: u64,
    /// Requests dropped after exhausting the re-issue budget.
    pub failover_shed: u64,
    /// Responses lost to replica kills.
    pub lost_in_flight: u64,
    /// Submits the watermark bias degraded to a cheaper tier.
    pub degraded: u64,
    /// Submits delivered per shard (re-issues included).
    pub per_shard_routed: Vec<u64>,
    /// Home-key assignments per shard (the balance signal).
    pub per_shard_home: Vec<u64>,
    /// max/mean of `per_shard_home` (1.0 = perfectly balanced).
    pub balance_max_over_mean: f64,
    /// fnv1a64 over the merged response stream — `(request_id, score
    /// bits, tier, completed_at)` in `(completed_at, request_id)` order.
    /// Equal digests ⇒ bit-identical responses; the fleet determinism
    /// locks compare it across router thread counts and replica layouts.
    pub score_digest: u64,
}

/// Digest of a response stream already in merged order.
fn score_digest(responses: &[ScoreResponse]) -> u64 {
    let mut h = crate::cache::fnv1a64(b"serve.fleet/digest");
    for r in responses {
        h = crate::cache::fnv1a64_update(h, &r.request_id.to_le_bytes());
        h = crate::cache::fnv1a64_update(h, &r.score.to_bits().to_le_bytes());
        h = crate::cache::fnv1a64_update(h, r.tier.tag().as_bytes());
        h = crate::cache::fnv1a64_update(h, &r.completed_at.to_le_bytes());
    }
    h
}

/// Open-loop run against a [`Fleet`]: the same Poisson arrival process as
/// [`run_open_loop`] (bit-identical arrival ticks and request sequence
/// for the same `cfg`), with `faults` applied on the virtual clock.
/// Expects a fresh fleet (the report reads its cumulative router stats).
/// Returns the report and the responses merged across shards in
/// `(completed_at, request_id)` order.
pub fn run_fleet_open_loop(
    fleet: &mut Fleet,
    cfg: &TrafficConfig,
    mean_interarrival_ticks: f64,
    faults: &FaultPlan,
) -> (FleetSimReport, Vec<ScoreResponse>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let pop = Popularity::prepare(cfg);
    let mut events = faults.events.clone();
    events.sort_by_key(|e| (e.at, e.replica, e.up));
    let mut next_event = 0usize;
    let apply = |fleet: &mut Fleet, upto: Ticks, next_event: &mut usize| {
        while *next_event < events.len() && events[*next_event].at <= upto {
            let e = events[*next_event];
            *next_event += 1;
            if e.up {
                fleet.restore(e.replica);
            } else {
                fleet.kill(e.replica);
            }
        }
    };
    let mut responses: Vec<ScoreResponse> = Vec::with_capacity(cfg.requests);
    let mut ladder_shed = 0u64;
    let mut t: Ticks = 0;
    for i in 0..cfg.requests {
        t += exp_interarrival(&mut rng, mean_interarrival_ticks);
        apply(fleet, t, &mut next_event);
        responses.extend(fleet.advance(t));
        let req = next_request(&mut rng, &pop, i as u64);
        match fleet.submit(t, req) {
            FleetOutcome::Completed(r) => responses.push(r),
            FleetOutcome::Enqueued { .. } | FleetOutcome::Deferred { .. } => {}
            FleetOutcome::Shed { .. } => ladder_shed += 1,
        }
    }
    // Apply any trailing fault events (e.g. a restore scheduled past the
    // last arrival) so the drain sees the final topology.
    apply(fleet, Ticks::MAX, &mut next_event);
    responses.extend(fleet.flush(t));
    responses.sort_by_key(|r| (r.completed_at, r.request_id));

    let stats = fleet.stats().clone();
    // `ladder_shed` counted sheds returned synchronously by submit;
    // re-issued requests that hit a ladder shed or exhausted the failover
    // budget surface only in the router stats. `stats.shed` covers every
    // ladder shed (synchronous ones included), so total = stats.shed +
    // failover sheds.
    debug_assert!(stats.shed >= ladder_shed);
    let shed_total = stats.shed + stats.failover_shed;
    let base = build_report(cfg.requests as u64, shed_total, &responses);
    let mean_home =
        stats.per_shard_home.iter().sum::<u64>() as f64 / stats.per_shard_home.len() as f64;
    let max_home = stats.per_shard_home.iter().copied().max().unwrap_or(0) as f64;
    let report = FleetSimReport {
        base,
        replicas: fleet.len(),
        reissues: stats.reissues,
        failover_shed: stats.failover_shed,
        lost_in_flight: stats.lost_in_flight,
        degraded: stats.degraded,
        per_shard_routed: stats.per_shard_routed,
        per_shard_home: stats.per_shard_home,
        balance_max_over_mean: if mean_home > 0.0 { max_home / mean_home } else { 1.0 },
        score_digest: score_digest(&responses),
    };
    (report, responses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;

    #[test]
    fn exact_percentiles_nearest_rank() {
        let v: Vec<Ticks> = (1..=100).collect();
        assert_eq!(exact_percentile(&v, 0.50), 50);
        assert_eq!(exact_percentile(&v, 0.95), 95);
        assert_eq!(exact_percentile(&v, 0.99), 99);
        assert_eq!(exact_percentile(&[7], 0.99), 7);
        assert_eq!(exact_percentile(&[], 0.5), 0);
    }

    #[test]
    fn open_loop_under_light_load_sheds_nothing() {
        let mut svc = ScoreService::with_fresh_registry(ServeConfig::tiny(11));
        let cfg = TrafficConfig { requests: 40, ..TrafficConfig::default() };
        let (report, responses) = run_open_loop(&mut svc, &cfg, 8_000.0);
        assert_eq!(report.issued, 40);
        assert_eq!(report.shed, 0);
        assert_eq!(report.completed, 40);
        assert_eq!(responses.len(), 40);
        assert!(report.per_tier[0] > 0, "light load should run full fusion");
        assert!(report.throughput_per_vsec > 0.0);
    }

    #[test]
    fn two_bucket_draws_match_the_legacy_sequence() {
        // The pre-Zipf implementation drew gen_bool(hot_fraction) then one
        // gen_range per request; the refactor must keep configs without
        // `zipf` replaying that exact RNG sequence.
        let cfg = TrafficConfig::default();
        let pop = Popularity::prepare(&cfg);
        let mut rng_new = StdRng::seed_from_u64(99);
        let mut rng_legacy = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let new = pop.draw(&mut rng_new);
            let legacy = if rng_legacy.gen_bool(cfg.hot_fraction) {
                rng_legacy.gen_range(0..cfg.hot_compounds.max(1))
            } else {
                cfg.hot_compounds.max(1) + rng_legacy.gen_range(0..cfg.cold_compounds.max(1))
            };
            assert_eq!(new, legacy);
        }
    }

    #[test]
    fn traffic_config_without_zipf_field_still_decodes() {
        // Configs serialized before the `zipf` field existed must decode
        // (missing field -> None) and keep two-bucket behavior.
        let legacy = r#"{"seed":7,"requests":10,"hot_compounds":3,"cold_compounds":9,
                         "hot_fraction":0.25}"#;
        let cfg: TrafficConfig = serde_json::from_str(legacy).expect("legacy config decodes");
        assert_eq!(cfg.seed, 7);
        assert!(cfg.zipf.is_none());
    }

    #[test]
    fn zipf_sampler_is_seeded_skewed_and_in_range() {
        let cfg = ZipfConfig { compounds: 100, exponent: 1.2 };
        let sampler = ZipfSampler::new(cfg);
        let draw_seq = |seed: u64| -> Vec<u64> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..2_000).map(|_| sampler.draw(&mut rng)).collect()
        };
        let a = draw_seq(42);
        assert_eq!(a, draw_seq(42), "same seed must replay the same ranks");
        assert!(a.iter().all(|&k| k < 100), "ranks stay inside the pool");
        let count = |k: u64| a.iter().filter(|&&x| x == k).count();
        assert!(
            count(0) > 10 * count(50).max(1) / 2,
            "rank 0 must dominate deep ranks under s=1.2 (got {} vs {})",
            count(0),
            count(50)
        );
    }

    #[test]
    fn fleet_open_loop_one_replica_matches_single_instance() {
        use crate::fleet::FleetConfig;
        let cfg = TrafficConfig { requests: 60, ..TrafficConfig::default() };
        let mut fleet = Fleet::new(FleetConfig::tiny(21, 1));
        let (fleet_report, fleet_responses) =
            run_fleet_open_loop(&mut fleet, &cfg, 2_000.0, &FaultPlan::none());
        let mut svc = ScoreService::with_registries(
            ServeConfig::tiny(21),
            fleet.registry().clone(),
            fleet.surrogate_registry().clone(),
        );
        let (single_report, mut single_responses) = run_open_loop(&mut svc, &cfg, 2_000.0);
        single_responses.sort_by_key(|r| (r.completed_at, r.request_id));
        assert_eq!(fleet_responses, single_responses);
        assert_eq!(fleet_report.base.shed, single_report.shed);
        assert_eq!(fleet_report.score_digest, score_digest(&single_responses));
    }

    #[test]
    fn fleet_open_loop_with_faults_stays_accounted() {
        use crate::fleet::FleetConfig;
        let cfg = TrafficConfig { requests: 120, ..TrafficConfig::default() };
        let mut fleet = Fleet::new(FleetConfig::tiny(22, 3));
        let faults = FaultPlan::kill_restore(1, 20_000, 90_000);
        let (report, responses) = run_fleet_open_loop(&mut fleet, &cfg, 1_500.0, &faults);
        // Every issued request is accounted for: completed, shed (ladder
        // or failover) or lost to the kill.
        assert_eq!(
            report.base.completed + report.base.shed + report.lost_in_flight,
            report.base.issued
        );
        assert_eq!(responses.len() as u64, report.base.completed);
        // Replaying the same seed and fault plan is bit-identical.
        let mut fleet2 = Fleet::new(FleetConfig::tiny(22, 3));
        let (report2, _) = run_fleet_open_loop(&mut fleet2, &cfg, 1_500.0, &faults);
        assert_eq!(report.score_digest, report2.score_digest);
        assert_eq!(report.reissues, report2.reissues);
        assert_eq!(report.failover_shed, report2.failover_shed);
    }

    #[test]
    fn closed_loop_completes_every_issued_request() {
        let mut svc = ScoreService::with_fresh_registry(ServeConfig::tiny(12));
        let cfg = TrafficConfig { requests: 30, ..TrafficConfig::default() };
        let (report, responses) = run_closed_loop(&mut svc, &cfg, 4, 3_000);
        assert_eq!(report.issued, 30);
        assert_eq!(report.completed + report.shed, 30);
        assert_eq!(responses.len() as u64, report.completed);
        // Closed-loop offered load self-limits: no shedding at 4 clients.
        assert_eq!(report.shed, 0);
    }
}
