//! Deterministic traffic simulator: seeded arrivals on the virtual clock.
//!
//! Two load shapes, both pure functions of their seed:
//!
//! * **Open loop** — requests arrive on an exponential (Poisson-process)
//!   interarrival schedule regardless of how the service is doing. This is
//!   the overload generator: shrink the mean interarrival below the
//!   service rate and the degradation ladder must engage.
//! * **Closed loop** — a fixed population of clients, each submitting,
//!   (virtually) waiting for its response, thinking, then submitting
//!   again. Offered load self-limits, which is the nominal-traffic shape.
//!
//! No wall time anywhere: interarrival draws come from a seeded
//! `StdRng`, timestamps are virtual ticks, and percentiles in the report
//! are exact (computed from the full latency vectors, not histogram
//! buckets), so a report is bit-reproducible across machines, worker
//! counts and trace on/off.

use crate::request::{ScoreRequest, ScoreResponse, SubmitOutcome, Ticks, Tier, TICKS_PER_SEC};
use crate::service::ScoreService;
use dfchem::genmol::{CompoundId, Library};
use dfchem::pocket::TargetSite;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Shape of the simulated request population.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Seed for the arrival process and compound choices.
    pub seed: u64,
    /// Total requests to issue.
    pub requests: usize,
    /// Size of the "hot" compound pool (drawn with `hot_fraction`).
    pub hot_compounds: u64,
    /// Size of the "cold" compound pool.
    pub cold_compounds: u64,
    /// Probability a request draws from the hot pool (cache pressure dial).
    pub hot_fraction: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 0xD15EA5E,
            requests: 200,
            hot_compounds: 12,
            cold_compounds: 600,
            hot_fraction: 0.5,
        }
    }
}

/// What one simulation run produced, with exact (not bucketed) latency
/// percentiles over the completed responses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Requests issued (admitted + shed).
    pub issued: u64,
    /// Responses completed (inline + batched).
    pub completed: u64,
    /// Requests shed.
    pub shed: u64,
    /// shed / issued.
    pub shed_rate: f64,
    /// Completions per tier, [`Tier::ALL`] order.
    pub per_tier: [u64; 5],
    /// Responses answered from the score cache.
    pub cache_hits: u64,
    /// Virtual tick of the last completion.
    pub makespan_ticks: Ticks,
    /// Completions per virtual second.
    pub throughput_per_vsec: f64,
    /// Exact queue-wait percentiles in ticks: [p50, p95, p99].
    pub queue_wait_ticks: [Ticks; 3],
    /// Exact end-to-end percentiles in ticks: [p50, p95, p99].
    pub e2e_ticks: [Ticks; 3],
}

/// Exact percentile (nearest-rank) of an unsorted sample.
fn exact_percentile(sorted: &[Ticks], q: f64) -> Ticks {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn build_report(issued: u64, shed: u64, responses: &[ScoreResponse]) -> SimReport {
    let mut per_tier = [0u64; 5];
    let mut cache_hits = 0u64;
    let mut queue_waits: Vec<Ticks> = Vec::with_capacity(responses.len());
    let mut e2es: Vec<Ticks> = Vec::with_capacity(responses.len());
    let mut makespan: Ticks = 0;
    for r in responses {
        let t = Tier::ALL.iter().position(|&t| t == r.tier).expect("known tier");
        per_tier[t] += 1;
        cache_hits += r.cache_hit as u64;
        queue_waits.push(r.queue_wait());
        e2es.push(r.e2e());
        makespan = makespan.max(r.completed_at);
    }
    queue_waits.sort_unstable();
    e2es.sort_unstable();
    let virtual_secs = makespan as f64 / TICKS_PER_SEC as f64;
    SimReport {
        issued,
        completed: responses.len() as u64,
        shed,
        shed_rate: dftrace::rate::mean(shed as f64, issued as f64),
        per_tier,
        cache_hits,
        makespan_ticks: makespan,
        throughput_per_vsec: dftrace::rate::per_sec(responses.len() as f64, virtual_secs),
        queue_wait_ticks: [
            exact_percentile(&queue_waits, 0.50),
            exact_percentile(&queue_waits, 0.95),
            exact_percentile(&queue_waits, 0.99),
        ],
        e2e_ticks: [
            exact_percentile(&e2es, 0.50),
            exact_percentile(&e2es, 0.95),
            exact_percentile(&e2es, 0.99),
        ],
    }
}

/// Draws the next request: hot/cold compound pool, uniform library and
/// target. Compound indices are disjoint between pools so `hot_fraction`
/// directly controls the achievable cache hit rate.
fn next_request(rng: &mut StdRng, cfg: &TrafficConfig, id: u64) -> ScoreRequest {
    let hot = cfg.hot_compounds.max(1);
    let cold = cfg.cold_compounds.max(1);
    let index = if rng.gen_bool(cfg.hot_fraction) {
        rng.gen_range(0..hot)
    } else {
        hot + rng.gen_range(0..cold)
    };
    let library = Library::ALL[rng.gen_range(0..Library::ALL.len())];
    let target = TargetSite::ALL[rng.gen_range(0..TargetSite::ALL.len())];
    ScoreRequest { id, compound: CompoundId { library, index }, target }
}

/// Exponential interarrival draw (at least one tick so time advances).
fn exp_interarrival(rng: &mut StdRng, mean_ticks: f64) -> Ticks {
    let u: f64 = rng.gen();
    ((-(1.0_f64 - u).ln()) * mean_ticks).ceil().max(1.0) as Ticks
}

/// Open-loop run: Poisson arrivals with the given mean interarrival time
/// (ticks), oblivious to service state. Returns the report and every
/// completed response in completion order.
pub fn run_open_loop(
    svc: &mut ScoreService,
    cfg: &TrafficConfig,
    mean_interarrival_ticks: f64,
) -> (SimReport, Vec<ScoreResponse>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut responses: Vec<ScoreResponse> = Vec::with_capacity(cfg.requests);
    let mut shed = 0u64;
    let mut t: Ticks = 0;
    for i in 0..cfg.requests {
        t += exp_interarrival(&mut rng, mean_interarrival_ticks);
        responses.extend(svc.advance(t));
        let req = next_request(&mut rng, cfg, i as u64);
        match svc.submit(t, req) {
            SubmitOutcome::Completed(r) => responses.push(r),
            SubmitOutcome::Enqueued(_) => {}
            SubmitOutcome::Shed { .. } => shed += 1,
        }
    }
    responses.extend(svc.flush(t));
    (build_report(cfg.requests as u64, shed, &responses), responses)
}

/// Closed-loop run: `clients` virtual clients, each waiting for its
/// response and then thinking `think_ticks` before the next submission.
/// Returns the report and every completed response in completion order.
pub fn run_closed_loop(
    svc: &mut ScoreService,
    cfg: &TrafficConfig,
    clients: usize,
    think_ticks: Ticks,
) -> (SimReport, Vec<ScoreResponse>) {
    assert!(clients >= 1, "closed loop needs at least one client");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut responses: Vec<ScoreResponse> = Vec::with_capacity(cfg.requests);
    let mut shed = 0u64;
    // Min-heap of (arrival tick, client); the client id breaks tick ties
    // deterministically.
    let mut arrivals = std::collections::BinaryHeap::new();
    for c in 0..clients {
        // Stagger initial arrivals so clients do not start in lockstep.
        let t0 = exp_interarrival(&mut rng, think_ticks.max(1) as f64);
        arrivals.push(std::cmp::Reverse((t0, c as u64)));
    }
    let mut outstanding: HashMap<u64, u64> = HashMap::new();
    let mut issued = 0u64;

    let handle =
        |resps: Vec<ScoreResponse>,
         responses: &mut Vec<ScoreResponse>,
         outstanding: &mut HashMap<u64, u64>,
         arrivals: &mut std::collections::BinaryHeap<std::cmp::Reverse<(Ticks, u64)>>| {
            for r in resps {
                if let Some(client) = outstanding.remove(&r.request_id) {
                    arrivals.push(std::cmp::Reverse((r.completed_at + think_ticks, client)));
                }
                responses.push(r);
            }
        };

    while issued < cfg.requests as u64 {
        match arrivals.pop() {
            Some(std::cmp::Reverse((at, client))) => {
                // A retired response can schedule an arrival earlier than
                // the tick the service has already reached; clamp forward.
                let at = at.max(svc.now());
                let done = svc.advance(at);
                handle(done, &mut responses, &mut outstanding, &mut arrivals);
                let req = next_request(&mut rng, cfg, issued);
                issued += 1;
                match svc.submit(at, req) {
                    SubmitOutcome::Completed(r) => {
                        arrivals.push(std::cmp::Reverse((r.completed_at + think_ticks, client)));
                        responses.push(r);
                    }
                    SubmitOutcome::Enqueued(_) => {
                        outstanding.insert(req.id, client);
                    }
                    SubmitOutcome::Shed { .. } => {
                        shed += 1;
                        // Shed clients back off one think time and retry.
                        arrivals.push(std::cmp::Reverse((at + think_ticks, client)));
                    }
                }
            }
            None => {
                // Every client is blocked on an enqueued request: run the
                // service forward event by event (an event may be a batch
                // *close*, which releases nobody yet — `next_event` then
                // strictly increases until a completion surfaces, so this
                // branch always makes progress).
                let t = svc.next_event().expect("blocked clients imply pending service work");
                let done = svc.advance(t.max(svc.now()));
                handle(done, &mut responses, &mut outstanding, &mut arrivals);
            }
        }
    }
    let tail = svc.flush(svc.now());
    handle(tail, &mut responses, &mut outstanding, &mut arrivals);
    (build_report(issued, shed, &responses), responses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;

    #[test]
    fn exact_percentiles_nearest_rank() {
        let v: Vec<Ticks> = (1..=100).collect();
        assert_eq!(exact_percentile(&v, 0.50), 50);
        assert_eq!(exact_percentile(&v, 0.95), 95);
        assert_eq!(exact_percentile(&v, 0.99), 99);
        assert_eq!(exact_percentile(&[7], 0.99), 7);
        assert_eq!(exact_percentile(&[], 0.5), 0);
    }

    #[test]
    fn open_loop_under_light_load_sheds_nothing() {
        let mut svc = ScoreService::with_fresh_registry(ServeConfig::tiny(11));
        let cfg = TrafficConfig { requests: 40, ..TrafficConfig::default() };
        let (report, responses) = run_open_loop(&mut svc, &cfg, 8_000.0);
        assert_eq!(report.issued, 40);
        assert_eq!(report.shed, 0);
        assert_eq!(report.completed, 40);
        assert_eq!(responses.len(), 40);
        assert!(report.per_tier[0] > 0, "light load should run full fusion");
        assert!(report.throughput_per_vsec > 0.0);
    }

    #[test]
    fn closed_loop_completes_every_issued_request() {
        let mut svc = ScoreService::with_fresh_registry(ServeConfig::tiny(12));
        let cfg = TrafficConfig { requests: 30, ..TrafficConfig::default() };
        let (report, responses) = run_closed_loop(&mut svc, &cfg, 4, 3_000);
        assert_eq!(report.issued, 30);
        assert_eq!(report.completed + report.shed, 30);
        assert_eq!(responses.len() as u64, report.completed);
        // Closed-loop offered load self-limits: no shedding at 4 clients.
        assert_eq!(report.shed, 0);
    }
}
