//! Property tests for the consistent-hash ring.
//!
//! Three contracts back the fleet's routing guarantees:
//!
//! * **Balance** — with `DEFAULT_VNODES` virtual nodes per replica, the
//!   busiest shard's key share stays within a constant factor of the
//!   mean across shard counts.
//! * **Minimal disruption** — adding a replica only moves keys *onto*
//!   the new replica; removing one only moves keys *off* it (everything
//!   else keeps its home shard, which is what keeps per-shard caches
//!   warm across fleet resizes), and the moved fraction is ~K/N.
//! * **Thread-count determinism** — bulk routing-key hashing through
//!   `dfpool::parallel_map` produces bit-identical keys (and therefore
//!   identical routes) at 1/2/4/8 router threads.

use dfchem::genmol::{CompoundId, Library};
use dfserve::{HashRing, KeyCache, DEFAULT_VNODES};
use dftensor::rng::derive_seed;
use proptest::prelude::*;

/// A spread-out deterministic key population (SplitMix64-mixed indices,
/// matching how real routing keys are finalized — see
/// `dfserve::routing_key` — so keys cover the whole ring).
fn keys(n: usize, salt: u64) -> Vec<u64> {
    (0..n as u64).map(|i| derive_seed(salt, i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn key_balance_is_bounded_across_shard_counts(
        salt in 0u64..1_000_000_000,
        replicas in 2usize..=16,
    ) {
        let members: Vec<u32> = (0..replicas as u32).collect();
        let ring = HashRing::new(&members, DEFAULT_VNODES);
        let ks = keys(4_000, salt);
        let mut counts = vec![0u64; replicas];
        for &k in &ks {
            counts[ring.route(k).unwrap() as usize] += 1;
        }
        let mean = ks.len() as f64 / replicas as f64;
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        // 64 vnodes/replica keeps the arc-length spread modest; 1.75x /
        // 0.4x are loose enough to be flake-free at 16 shards yet tight
        // enough to catch a broken ring (a single-vnode ring routinely
        // exceeds 2.5x).
        prop_assert!(max <= mean * 1.75, "hottest shard {max} vs mean {mean}");
        prop_assert!(min >= mean * 0.40, "coldest shard {min} vs mean {mean}");
    }

    #[test]
    fn replica_add_and_remove_move_only_their_keys(
        salt in 0u64..1_000_000_000,
        replicas in 2usize..=12,
    ) {
        let members: Vec<u32> = (0..replicas as u32).collect();
        let before = HashRing::new(&members, DEFAULT_VNODES);
        let ks = keys(3_000, salt);

        // Add a replica: a key either keeps its route or moves to the
        // newcomer — never to a third shard.
        let newcomer = replicas as u32;
        let mut grown = before.clone();
        grown.add_replica(newcomer);
        let mut moved_on_add = 0usize;
        for &k in &ks {
            let old = before.route(k).unwrap();
            let new = grown.route(k).unwrap();
            if old != new {
                prop_assert_eq!(new, newcomer, "key moved to a shard that did not change");
                moved_on_add += 1;
            }
        }
        // Expected share: K/(N+1). Allow 3x slack for arc-length variance.
        let expected = ks.len() / (replicas + 1);
        prop_assert!(moved_on_add <= expected * 3, "{moved_on_add} moved, expected ~{expected}");
        prop_assert!(moved_on_add > 0, "a new replica must take some keys");

        // Remove a replica: only its keys move, each to some survivor.
        let victim = (salt % replicas as u64) as u32;
        let mut shrunk = before.clone();
        shrunk.remove_replica(victim);
        let mut moved_on_remove = 0usize;
        for &k in &ks {
            let old = before.route(k).unwrap();
            let new = shrunk.route(k).unwrap();
            if old != new {
                prop_assert_eq!(old, victim, "a key moved off an unchanged shard");
                moved_on_remove += 1;
            } else {
                prop_assert!(new != victim, "removed replica still owns keys");
            }
        }
        let expected = ks.len() / replicas;
        prop_assert!(
            moved_on_remove <= expected * 3,
            "{moved_on_remove} moved, expected ~{expected}"
        );

        // Round trip: add back what was removed restores every route.
        let mut restored = shrunk.clone();
        restored.add_replica(victim);
        for &k in &ks {
            prop_assert_eq!(restored.route(k), before.route(k));
        }
    }

    #[test]
    fn successors_start_at_home_and_cover_members(
        salt in 0u64..1_000_000_000,
        replicas in 1usize..=8,
    ) {
        let members: Vec<u32> = (0..replicas as u32).collect();
        let ring = HashRing::new(&members, DEFAULT_VNODES);
        for &k in keys(50, salt).iter() {
            let succ = ring.successors(k);
            prop_assert_eq!(succ.len(), replicas);
            prop_assert_eq!(succ[0], ring.route(k).unwrap());
            let mut sorted = succ.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, members.clone());
        }
    }
}

/// Serial (not proptest) because it installs fixed-size pools: the bulk
/// key-hashing path must be bit-identical at every router thread count.
#[test]
fn bulk_routing_keys_are_identical_across_1_2_4_8_threads() {
    let ids: Vec<CompoundId> = (0..48u64)
        .map(|i| CompoundId { library: Library::ALL[i as usize % Library::ALL.len()], index: i })
        .collect();
    let seed = 77u64;
    let baseline = dfpool::Pool::new(1).install(|| {
        let mut cache = KeyCache::new();
        cache.bulk_keys(&ids, seed)
    });
    let ring = HashRing::new(&[0, 1, 2, 3], DEFAULT_VNODES);
    let baseline_routes: Vec<u32> = baseline.iter().map(|&k| ring.route(k).unwrap()).collect();
    for threads in [2usize, 4, 8] {
        let run = dfpool::Pool::new(threads).install(|| {
            let mut cache = KeyCache::new();
            cache.bulk_keys(&ids, seed)
        });
        assert_eq!(run, baseline, "routing keys diverged at {threads} threads");
        let routes: Vec<u32> = run.iter().map(|&k| ring.route(k).unwrap()).collect();
        assert_eq!(routes, baseline_routes, "routes diverged at {threads} threads");
    }
}
