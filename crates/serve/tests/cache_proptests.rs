//! Property tests locking the LRU cache against a reference model.
//!
//! The reference is a deliberately naive `Vec`-backed LRU (O(n) per op):
//! easy to audit, obviously correct. The slab-and-list implementation must
//! match it operation for operation — same hits, same evictions, same
//! recency order — under arbitrary interleavings of inserts and lookups.

use dfserve::cache::LruCache;
use proptest::prelude::*;

/// Naive reference LRU: front of the Vec is most-recently-used.
struct RefLru {
    cap: usize,
    entries: Vec<(u64, u32)>,
}

impl RefLru {
    fn new(cap: usize) -> RefLru {
        RefLru { cap, entries: Vec::new() }
    }

    fn get(&mut self, key: u64) -> Option<u32> {
        let pos = self.entries.iter().position(|&(k, _)| k == key)?;
        let e = self.entries.remove(pos);
        let v = e.1;
        self.entries.insert(0, e);
        Some(v)
    }

    fn insert(&mut self, key: u64, value: u32) -> Option<(u64, u32)> {
        if let Some(pos) = self.entries.iter().position(|&(k, _)| k == key) {
            self.entries.remove(pos);
            self.entries.insert(0, (key, value));
            return None;
        }
        let evicted =
            if self.entries.len() >= self.cap { Some(self.entries.pop().unwrap()) } else { None };
        self.entries.insert(0, (key, value));
        evicted
    }

    fn keys(&self) -> Vec<u64> {
        self.entries.iter().map(|&(k, _)| k).collect()
    }
}

/// Decodes one raw draw into a cache operation. Keys live in a 24-wide
/// domain so collisions (hits, overwrites) actually happen; odd draws are
/// lookups, even draws are inserts carrying the draw itself as the value.
enum Op {
    Get(u64),
    Insert(u64, u32),
}

fn decode(raw: u64) -> Op {
    let key = (raw >> 1) % 24;
    if raw & 1 == 1 {
        Op::Get(key)
    } else {
        Op::Insert(key, (raw >> 5) as u32)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lru_matches_reference_model(
        cap in 1usize..9,
        raw_ops in proptest::collection::vec(0u64..1_000_000, 0..120),
    ) {
        let mut real = LruCache::new(cap);
        let mut model = RefLru::new(cap);
        let mut lookups = 0u64;
        for raw in raw_ops {
            match decode(raw) {
                Op::Get(k) => {
                    lookups += 1;
                    prop_assert_eq!(real.get(k).copied(), model.get(k));
                }
                Op::Insert(k, v) => {
                    prop_assert_eq!(real.insert(k, v), model.insert(k, v));
                }
            }
            // Capacity is never exceeded, at any intermediate point.
            prop_assert!(real.len() <= real.capacity());
            // Recency (and therefore future eviction) order matches.
            prop_assert_eq!(real.keys_by_recency(), model.keys());
        }
        let s = real.stats();
        // Every lookup is accounted exactly once.
        prop_assert_eq!(s.hits + s.misses, lookups);
        // Entries in the cache = insertions that have not been evicted.
        prop_assert_eq!(s.insertions - s.evictions, real.len() as u64);
    }
}
