//! The fleet determinism locks.
//!
//! Four contracts, mirroring (and extending) the single-instance lock in
//! `determinism.rs`:
//!
//! 1. **Replay** — one Zipf-skewed overload profile with a shard-failure
//!    fault matrix and watermark admission, replayed under every
//!    combination of router thread count (1, 2, 4) and tracing (off,
//!    on), must produce bit-identical scores, tiers, timestamps, shed
//!    decisions, failover counts and per-shard routing.
//! 2. **Single-instance equivalence** — a 1-replica fleet (watermark
//!    off, no faults) is byte-for-byte the plain `ScoreService` under
//!    the same traffic.
//! 3. **Score bit-identity** — every fleet response under faults carries
//!    exactly the bits of `ScoreService::reference_score` (the
//!    cache-free, batch-free oracle): sharding, batch composition,
//!    caching and failover may change *when* and *where* a score is
//!    computed, never its value.
//! 4. **Fleet-wide hot-swap** — publishing a new weight generation into
//!    the shared registry re-keys every shard's score cache at once.
//!
//! Serial `#[test]`s where `dftrace::set_enabled` (global) is toggled.

use dfserve::{
    run_fleet_open_loop, run_open_loop, FaultEvent, FaultPlan, Fleet, FleetConfig, ScoreService,
    ServeConfig, SubmitOutcome, Tier, TrafficConfig, WatermarkConfig, ZipfConfig,
};

/// Skewed overload traffic: Zipf(1.1) over 500 compounds, arrivals fast
/// enough to queue, degrade, and exercise failover under the fault plan.
fn traffic() -> TrafficConfig {
    TrafficConfig {
        seed: 5,
        requests: 300,
        zipf: Some(ZipfConfig { compounds: 500, exponent: 1.1 }),
        ..TrafficConfig::default()
    }
}

fn fleet_config() -> FleetConfig {
    let mut cfg = FleetConfig::tiny(31, 4);
    cfg.watermark = WatermarkConfig { degrade_depth: 10, bias_per_excess: 2 };
    cfg
}

/// Overlapping kill/restore windows on two replicas.
fn faults() -> FaultPlan {
    FaultPlan {
        events: vec![
            FaultEvent { at: 6_000, replica: 2, up: false },
            FaultEvent { at: 12_000, replica: 0, up: false },
            FaultEvent { at: 20_000, replica: 2, up: true },
            FaultEvent { at: 28_000, replica: 0, up: true },
        ],
    }
}

/// Everything observable about one fleet replay, bit-exact.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    /// (request id, tier tag, score bits, admitted, completed, cache hit)
    /// in merged `(completed_at, request_id)` order.
    responses: Vec<(u64, &'static str, u32, u64, u64, bool)>,
    score_digest: u64,
    reissues: u64,
    failover_shed: u64,
    lost_in_flight: u64,
    degraded: u64,
    shed: u64,
    per_shard_routed: Vec<u64>,
    per_shard_home: Vec<u64>,
}

fn replay() -> Fingerprint {
    let mut fleet = Fleet::new(fleet_config());
    let (report, responses) = run_fleet_open_loop(&mut fleet, &traffic(), 120.0, &faults());
    Fingerprint {
        responses: responses
            .iter()
            .map(|r| {
                (
                    r.request_id,
                    r.tier.tag(),
                    r.score.to_bits(),
                    r.admitted_at,
                    r.completed_at,
                    r.cache_hit,
                )
            })
            .collect(),
        score_digest: report.score_digest,
        reissues: report.reissues,
        failover_shed: report.failover_shed,
        lost_in_flight: report.lost_in_flight,
        degraded: report.degraded,
        shed: report.base.shed,
        per_shard_routed: report.per_shard_routed,
        per_shard_home: report.per_shard_home,
    }
}

#[test]
fn fleet_replay_is_bit_identical_across_threads_and_tracing() {
    let trace_was_on = dftrace::enabled();
    let baseline = dfpool::Pool::new(1).install(replay);
    // The profile must actually exercise the interesting paths.
    assert!(baseline.reissues > 0, "fault plan never triggered failover");
    assert!(baseline.lost_in_flight > 0, "kills never caught work in flight");
    assert!(baseline.degraded > 0, "watermark never degraded a tier");
    assert!(baseline.responses.len() > 100);
    for threads in [1usize, 2, 4] {
        for trace in [false, true] {
            dftrace::set_enabled(trace);
            let run = dfpool::Pool::new(threads).install(replay);
            assert_eq!(run, baseline, "fleet replay diverged at {threads} threads, trace={trace}");
        }
    }
    dftrace::set_enabled(trace_was_on);
}

#[test]
fn one_replica_fleet_equals_single_instance_under_overload() {
    let cfg = TrafficConfig { seed: 9, requests: 200, ..TrafficConfig::default() };
    let mut fleet = Fleet::new(FleetConfig::tiny(41, 1));
    let (fleet_report, fleet_responses) =
        run_fleet_open_loop(&mut fleet, &cfg, 100.0, &FaultPlan::none());
    let mut single = ScoreService::with_registries(
        ServeConfig::tiny(41),
        fleet.registry().clone(),
        fleet.surrogate_registry().clone(),
    );
    let (single_report, mut single_responses) = run_open_loop(&mut single, &cfg, 100.0);
    single_responses.sort_by_key(|r| (r.completed_at, r.request_id));
    assert!(single_report.shed > 0, "overload profile must shed");
    assert_eq!(fleet_responses, single_responses, "fleet(1) must equal the plain service");
    assert_eq!(fleet_report.base.shed, single_report.shed);
    assert_eq!(fleet_report.base.per_tier, single_report.per_tier);
}

#[test]
fn fleet_scores_under_faults_match_the_reference_oracle() {
    let mut fleet = Fleet::new(fleet_config());
    let (_, responses) = run_fleet_open_loop(&mut fleet, &traffic(), 120.0, &faults());
    // A cache-free oracle sharing the fleet's registries (generation 0
    // throughout: no hot-swaps in this profile).
    let mut oracle = ScoreService::with_registries(
        ServeConfig::tiny(31),
        fleet.registry().clone(),
        fleet.surrogate_registry().clone(),
    );
    let mut checked = std::collections::HashSet::new();
    for r in &responses {
        // Each distinct (compound, target, tier) computes once.
        if checked.insert((r.compound, r.target, r.tier)) {
            let expect = oracle.reference_score(r.compound, r.target, r.tier);
            assert_eq!(
                r.score.to_bits(),
                expect.to_bits(),
                "response {} (tier {}) diverged from the reference oracle",
                r.request_id,
                r.tier.tag()
            );
        }
    }
    assert!(checked.len() > 50, "oracle check must cover a meaningful population");
}

#[test]
fn hot_swap_rekeys_every_shard_at_once() {
    let mut fleet = Fleet::new(FleetConfig::tiny(51, 3));
    // Warm two shards with full-fusion scores at generation 0.
    let reqs: Vec<_> = (0..3u64)
        .map(|i| dfserve::ScoreRequest {
            id: i,
            compound: dfchem::genmol::CompoundId {
                library: dfchem::genmol::Library::ALL[i as usize % 2],
                index: i,
            },
            target: dfchem::pocket::TargetSite::Protease1,
        })
        .collect();
    let mut first = Vec::new();
    for (i, &r) in reqs.iter().enumerate() {
        let _ = fleet.submit(i as u64 * 10_000, r);
    }
    first.extend(fleet.flush(100_000));
    assert_eq!(first.len(), reqs.len());
    assert!(first.iter().all(|r| r.generation == 0 && r.tier == Tier::FullFusion));

    // Publish perturbed weights into the shared registry.
    let registry = fleet.registry().clone();
    let (_, mut ps) = registry.spec().build();
    for (_, entry) in ps.iter_mut() {
        entry.value.map_inplace(|w| w + 0.05);
    }
    assert_eq!(registry.publish(&ps.snapshot()).expect("valid"), 1);

    // Resubmit the same requests: every shard must miss (generation 1 in
    // the key) and produce a different score.
    let t0 = 200_000u64;
    for (i, &r) in reqs.iter().enumerate() {
        match fleet.submit(t0 + i as u64 * 10_000, r) {
            dfserve::FleetOutcome::Enqueued { .. } => {}
            other => panic!("expected a cache miss enqueue after the swap, got {other:?}"),
        }
    }
    let swapped = fleet.flush(400_000);
    assert_eq!(swapped.len(), reqs.len());
    for (new, old) in swapped.iter().zip(first.iter()) {
        assert_eq!(new.generation, 1);
        assert!(!new.cache_hit);
        assert_ne!(new.score.to_bits(), old.score.to_bits(), "new weights, new score");
    }
}

/// The plain single-service path still works with `submit` delegating to
/// `submit_with_bias` (regression guard for the satellite refactor).
#[test]
fn plain_submit_is_submit_with_zero_bias() {
    let mut a = ScoreService::with_fresh_registry(ServeConfig::tiny(61));
    let mut b = ScoreService::with_fresh_registry(ServeConfig::tiny(61));
    for i in 0..30u64 {
        let req = dfserve::ScoreRequest {
            id: i,
            compound: dfchem::genmol::CompoundId {
                library: dfchem::genmol::Library::ALL[0],
                index: i % 5,
            },
            target: dfchem::pocket::TargetSite::Spike1,
        };
        let t = i * 300;
        let ra = a.submit(t, req);
        let rb = b.submit_with_bias(t, req, 0);
        match (ra, rb) {
            (SubmitOutcome::Completed(x), SubmitOutcome::Completed(y)) => assert_eq!(x, y),
            (SubmitOutcome::Enqueued(x), SubmitOutcome::Enqueued(y)) => assert_eq!(x, y),
            (SubmitOutcome::Shed { depth: x }, SubmitOutcome::Shed { depth: y }) => {
                assert_eq!(x, y)
            }
            (x, y) => panic!("outcomes diverged: {x:?} vs {y:?}"),
        }
    }
    let fa = a.flush(30 * 300);
    let fb = b.flush(30 * 300);
    assert_eq!(fa, fb);
}
