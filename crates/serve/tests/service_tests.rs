//! Service-level behavior tests: the degradation ladder under overload,
//! weight hot-swaps, and the threaded front-end.

use dfchem::genmol::{CompoundId, Library};
use dfchem::pocket::TargetSite;
use dfserve::{
    spawn_server, ScoreRequest, ScoreService, ServeConfig, SubmitOutcome, Tier, TimedRequest,
};
use std::sync::Arc;

fn request(i: u64) -> ScoreRequest {
    ScoreRequest {
        id: i,
        compound: CompoundId { library: Library::ALL[(i % 4) as usize], index: i },
        target: TargetSite::ALL[(i % 4) as usize],
    }
}

#[test]
fn overload_degrades_through_the_ladder_without_unbounded_growth() {
    let cfg = ServeConfig::tiny(31);
    let capacity = cfg.ladder.queue_capacity;
    let mut svc = ScoreService::with_fresh_registry(cfg);
    // Requests every 100 ticks against a service that needs ~1000 ticks
    // per item: a 10x overload.
    let mut enqueued_tiers = Vec::new();
    let mut shed = 0u64;
    let mut responses = Vec::new();
    for i in 0..120u64 {
        let t = 100 * (i + 1);
        responses.extend(svc.advance(t));
        match svc.submit(t, request(i)) {
            SubmitOutcome::Completed(r) => responses.push(r),
            SubmitOutcome::Enqueued(tier) => enqueued_tiers.push(tier),
            SubmitOutcome::Shed { depth } => {
                shed += 1;
                assert!(depth >= capacity, "shed below the capacity bound");
            }
        }
        // The hard bound: depth never exceeds queue_capacity, ever.
        assert!(
            svc.depth() <= capacity,
            "queue depth {} exceeded capacity {} at t={}",
            svc.depth(),
            capacity,
            t
        );
    }
    responses.extend(svc.flush(100 * 121));

    // The ladder actually engaged: every tier produced completions and
    // the capacity bound actually shed.
    let stats = svc.stats();
    assert!(shed > 0, "10x overload must shed");
    assert_eq!(stats.shed, shed);
    for (i, tier) in Tier::ALL.iter().enumerate() {
        assert!(stats.per_tier[i] > 0, "tier {} never completed under overload", tier.tag());
    }
    // Everything admitted was answered exactly once after the drain.
    assert_eq!(stats.admitted, 120 - shed);
    assert_eq!(responses.len() as u64, stats.admitted);
    assert_eq!(svc.depth(), 0, "flush must fully drain the service");
    assert!(svc.next_event().is_none());
}

#[test]
fn hot_swap_changes_scores_and_invalidates_cached_entries() {
    let mut svc = ScoreService::with_fresh_registry(ServeConfig::tiny(32));
    let req = request(0);

    // Score once at generation 0 (lightly loaded: full-fusion tier).
    assert!(matches!(svc.submit(1_000, req), SubmitOutcome::Enqueued(Tier::FullFusion)));
    let first = svc.flush(10_000).pop().expect("one response");
    assert_eq!(first.generation, 0);
    assert!(!first.cache_hit);

    // Same request again: served from the score cache, same generation.
    let cached = match svc.submit(20_000, req) {
        SubmitOutcome::Completed(r) => r,
        other => panic!("expected inline cache hit, got {other:?}"),
    };
    assert!(cached.cache_hit);
    assert_eq!(cached.score.to_bits(), first.score.to_bits());

    // Publish perturbed weights: every parameter shifted by +0.05.
    let registry = Arc::clone(svc.registry());
    let (_, mut ps) = registry.spec().build();
    for (_, entry) in ps.iter_mut() {
        entry.value.map_inplace(|w| w + 0.05);
    }
    assert_eq!(registry.publish(&ps.snapshot()).expect("valid"), 1);

    // Same request after the swap: cache key now carries generation 1, so
    // the old score misses and the new weights produce a new score.
    assert!(matches!(svc.submit(30_000, req), SubmitOutcome::Enqueued(Tier::FullFusion)));
    let swapped = svc.flush(40_000).pop().expect("one response");
    assert_eq!(swapped.generation, 1);
    assert!(!swapped.cache_hit, "generation bump must invalidate");
    assert_ne!(
        swapped.score.to_bits(),
        first.score.to_bits(),
        "perturbed weights must change the score"
    );
    assert_eq!(svc.stats().swaps_observed, 1);
}

#[test]
fn threaded_front_end_answers_every_request() {
    let cfg = ServeConfig::tiny(33);
    let registry = Arc::new(dfserve::SnapshotRegistry::new(cfg.spec.clone()));
    let handle = spawn_server(cfg, registry, 8, 2);
    for i in 0..12u64 {
        // Light load: arrivals every 8000 virtual µs.
        handle
            .requests
            .send(TimedRequest { at: 8_000 * (i + 1), request: request(i) })
            .expect("dispatcher alive");
    }
    let stats = handle.shutdown();
    assert_eq!(stats.admitted, 12);
    assert_eq!(stats.shed, 0, "light load must not shed");
    assert_eq!(stats.completed, 12);
}

#[test]
fn surrogate_then_vina_complete_inline_when_model_lanes_saturate() {
    let cfg = ServeConfig::tiny(34);
    let sg_max = cfg.ladder.sg_max_depth;
    let surrogate_max = cfg.ladder.surrogate_max_depth;
    let vina_max = cfg.ladder.vina_max_depth;
    let mut svc = ScoreService::with_fresh_registry(cfg);
    // Pack the lanes at a single tick so depth climbs past the SG band
    // and through the surrogate band, stopping at the vina band's
    // ceiling. Inline completions must arrive in band order: surrogate
    // first, vina after.
    let mut inline_tiers = Vec::new();
    for i in 0..vina_max as u64 {
        if let SubmitOutcome::Completed(r) = svc.submit(5, request(i)) {
            assert!(
                r.tier == Tier::Surrogate || r.tier == Tier::Vina,
                "only surrogate and vina complete inline here, got {:?}",
                r.tier
            );
            assert!(r.completed_at > r.admitted_at);
            inline_tiers.push(r.tier);
        }
    }
    let surrogate_count = inline_tiers.iter().filter(|&&t| t == Tier::Surrogate).count();
    let vina_count = inline_tiers.iter().filter(|&&t| t == Tier::Vina).count();
    assert_eq!(
        surrogate_count,
        surrogate_max - sg_max,
        "the surrogate band is exactly [sg_max_depth, surrogate_max_depth)"
    );
    assert_eq!(
        vina_count,
        vina_max - surrogate_max,
        "the vina band is exactly [surrogate_max_depth, vina_max_depth)"
    );
    let first_vina = inline_tiers.iter().position(|&t| t == Tier::Vina).expect("vina engaged");
    assert!(
        inline_tiers[..first_vina].iter().all(|&t| t == Tier::Surrogate),
        "a single-tick burst walks the ladder in band order"
    );
    svc.flush(1_000_000);
    assert_eq!(svc.depth(), 0);
}

#[test]
fn ligand_only_tier_engages_between_vina_and_shed() {
    let cfg = ServeConfig::tiny(35);
    let vina_max = cfg.ladder.vina_max_depth;
    let capacity = cfg.ladder.queue_capacity;
    let mut svc = ScoreService::with_fresh_registry(cfg);
    // Pack everything at one tick: depth climbs through every band and
    // the tail of the burst must land in the ligand-only band, then shed.
    let mut ligand = Vec::new();
    let mut shed = 0u64;
    for i in 0..(capacity as u64 + 4) {
        match svc.submit(5, request(i)) {
            SubmitOutcome::Completed(r) if r.tier == Tier::LigandOnly => ligand.push(r),
            SubmitOutcome::Shed { depth } => {
                shed += 1;
                assert!(depth >= capacity);
            }
            _ => {}
        }
    }
    assert_eq!(
        ligand.len(),
        capacity - vina_max,
        "the ligand band is exactly [vina_max_depth, queue_capacity)"
    );
    assert_eq!(shed, 4, "past the capacity bound every request sheds");
    for r in &ligand {
        assert!(r.completed_at > r.admitted_at, "inline evaluation still takes virtual time");
        assert!(r.score.is_finite());
        assert!((-12.5..=-2.9).contains(&(r.score as f64)), "ligand score {} out of band", r.score);
    }
    // The ligand-only score is target-independent: the same compound
    // against a different pocket is a cache hit with an identical score.
    let probe = ligand[0];
    let mut svc2 = ScoreService::with_fresh_registry(ServeConfig::tiny(35));
    let mut seed_req = request(probe.request_id);
    let mut alt_req = seed_req;
    alt_req.target = TargetSite::ALL[(probe.request_id as usize + 1) % 4];
    alt_req.id = 9_999;
    // Drive svc2 into the ligand band the same way, then re-ask.
    for i in 0..(vina_max as u64 + 1) {
        let _ = svc2.submit(5, request(i));
    }
    seed_req.id = 9_998;
    let first = match svc2.submit(5, seed_req) {
        SubmitOutcome::Completed(r) => r,
        other => panic!("expected inline ligand completion, got {other:?}"),
    };
    assert_eq!(first.tier, Tier::LigandOnly);
    let second = match svc2.submit(5, alt_req) {
        SubmitOutcome::Completed(r) => r,
        other => panic!("expected inline ligand completion, got {other:?}"),
    };
    assert_eq!(second.tier, Tier::LigandOnly);
    assert!(second.cache_hit, "same compound, different target: ligand cache must hit");
    assert_eq!(first.score.to_bits(), second.score.to_bits());
    svc.flush(1_000_000);
    assert_eq!(svc.depth(), 0);
}
