//! The serving determinism lock.
//!
//! One seeded traffic profile is replayed against a fresh service under
//! every combination of worker-thread count (1, 2, 4) and tracing state
//! (off, on). Every replay must produce bit-identical scores, identical
//! tiers, identical shed decisions and identical virtual timestamps —
//! the service contract that makes production incidents replayable.
//!
//! Kept as a single serial `#[test]`: `dftrace::set_enabled` is global
//! state, so the trace-toggling sweep must not interleave with itself.

use dfserve::{run_open_loop, ScoreService, ServeConfig, TrafficConfig};

/// Everything observable about one replay, bit-exact.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    /// (request id, tier tag, score bits, admitted, completed, cache hit)
    /// sorted by request id.
    responses: Vec<(u64, &'static str, u32, u64, u64, bool)>,
    /// Request ids that were shed (= issued ids minus completed ids).
    shed_ids: Vec<u64>,
    issued: u64,
    batches: u64,
}

fn replay() -> Fingerprint {
    let mut svc = ScoreService::with_fresh_registry(ServeConfig::tiny(21));
    let traffic = TrafficConfig { seed: 99, requests: 80, ..TrafficConfig::default() };
    // Mean interarrival of 100 ticks against a ~1000-tick-per-item service:
    // enough pressure to queue, degrade and shed, so the lock covers every
    // admission path, not just the happy one.
    let (report, responses) = run_open_loop(&mut svc, &traffic, 100.0);
    let mut resp: Vec<_> = responses
        .iter()
        .map(|r| {
            (
                r.request_id,
                r.tier.tag(),
                r.score.to_bits(),
                r.admitted_at,
                r.completed_at,
                r.cache_hit,
            )
        })
        .collect();
    resp.sort_unstable_by_key(|&(id, ..)| id);
    let completed: std::collections::HashSet<u64> = resp.iter().map(|&(id, ..)| id).collect();
    let shed_ids: Vec<u64> = (0..report.issued).filter(|id| !completed.contains(id)).collect();
    assert_eq!(shed_ids.len() as u64, report.shed);
    Fingerprint { responses: resp, shed_ids, issued: report.issued, batches: svc.stats().batches }
}

#[test]
fn replay_is_bit_identical_across_threads_and_tracing() {
    let trace_was_on = dftrace::enabled();
    let baseline = dfpool::Pool::new(1).install(replay);
    assert!(!baseline.shed_ids.is_empty(), "profile must exercise shedding");
    assert!(baseline.responses.len() > baseline.shed_ids.len());
    for threads in [1usize, 2, 4] {
        for trace in [false, true] {
            dftrace::set_enabled(trace);
            let run = dfpool::Pool::new(threads).install(replay);
            assert_eq!(run, baseline, "replay diverged at {threads} threads, trace={trace}");
        }
    }
    dftrace::set_enabled(trace_was_on);
}
