//! Gaussian-process regression for the PB2 bandit.
//!
//! PB2 (Parker-Holder et al. 2020) frames hyper-parameter selection as GP
//! bandit optimization of a *time-varying* function: the reward surface
//! drifts as training progresses, so older observations are down-weighted.
//! The kernel here is the product of a squared-exponential kernel over
//! unit-cube configurations and a geometric forgetting kernel over the
//! interval index: `k((t,x),(t',x')) = σ² · exp(-‖x-x'‖²/2ℓ²) · λ^{|t-t'|}`.

/// GP hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct GpConfig {
    /// Signal variance σ².
    pub signal_variance: f64,
    /// Squared-exponential length scale ℓ.
    pub length_scale: f64,
    /// Observation noise variance added on the diagonal.
    pub noise: f64,
    /// Time-forgetting factor λ ∈ (0, 1]; 1 = stationary.
    pub time_decay: f64,
}

impl Default for GpConfig {
    fn default() -> Self {
        Self { signal_variance: 1.0, length_scale: 0.35, noise: 1e-2, time_decay: 0.9 }
    }
}

/// One observation: interval index, unit-cube config, objective value.
#[derive(Debug, Clone)]
pub struct Observation {
    pub t: usize,
    pub x: Vec<f64>,
    pub y: f64,
}

/// A fitted GP posterior over the time-varying objective.
pub struct Gp {
    cfg: GpConfig,
    obs: Vec<Observation>,
    /// Cholesky factor of K + σₙ²I (lower triangular, row major).
    chol: Vec<f64>,
    /// α = (K + σₙ²I)⁻¹ (y - mean).
    alpha: Vec<f64>,
    mean: f64,
    n: usize,
}

impl Gp {
    /// Fits the GP to observations (exact inference via Cholesky).
    pub fn fit(cfg: GpConfig, obs: Vec<Observation>) -> Gp {
        let n = obs.len();
        assert!(n > 0, "cannot fit a GP to zero observations");
        let mean = obs.iter().map(|o| o.y).sum::<f64>() / n as f64;
        let mut k = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let v = kernel(&cfg, &obs[i], &obs[j]);
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
            k[i * n + i] += cfg.noise;
        }
        let chol = cholesky(&k, n).expect("kernel matrix must be positive definite");
        let resid: Vec<f64> = obs.iter().map(|o| o.y - mean).collect();
        let alpha = chol_solve(&chol, n, &resid);
        Gp { cfg, obs, chol, alpha, mean, n }
    }

    /// Posterior mean and variance at a query point.
    pub fn predict(&self, t: usize, x: &[f64]) -> (f64, f64) {
        let q = Observation { t, x: x.to_vec(), y: 0.0 };
        let kstar: Vec<f64> = self.obs.iter().map(|o| kernel(&self.cfg, &q, o)).collect();
        let mean = self.mean + kstar.iter().zip(&self.alpha).map(|(k, a)| k * a).sum::<f64>();
        // v = L⁻¹ k*; var = k** - vᵀv
        let v = forward_substitute(&self.chol, self.n, &kstar);
        let kss = self.cfg.signal_variance;
        let var = (kss - v.iter().map(|x| x * x).sum::<f64>()).max(1e-12);
        (mean, var)
    }

    /// Upper-confidence-bound acquisition (for maximization).
    pub fn ucb(&self, t: usize, x: &[f64], beta: f64) -> f64 {
        let (m, v) = self.predict(t, x);
        m + beta * v.sqrt()
    }
}

fn kernel(cfg: &GpConfig, a: &Observation, b: &Observation) -> f64 {
    let d2: f64 = a.x.iter().zip(&b.x).map(|(p, q)| (p - q) * (p - q)).sum();
    let se = (-d2 / (2.0 * cfg.length_scale * cfg.length_scale)).exp();
    let dt = a.t.abs_diff(b.t) as f64;
    cfg.signal_variance * se * cfg.time_decay.powf(dt)
}

/// Dense Cholesky factorization (lower triangular); `None` if not PD.
fn cholesky(k: &[f64], n: usize) -> Option<Vec<f64>> {
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut s = k[i * n + j];
            for p in 0..j {
                s -= l[i * n + p] * l[j * n + p];
            }
            if i == j {
                if s <= 0.0 {
                    return None;
                }
                l[i * n + i] = s.sqrt();
            } else {
                l[i * n + j] = s / l[j * n + j];
            }
        }
    }
    Some(l)
}

/// Solves L z = b.
fn forward_substitute(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    let mut z = vec![0.0f64; n];
    for i in 0..n {
        let mut s = b[i];
        for j in 0..i {
            s -= l[i * n + j] * z[j];
        }
        z[i] = s / l[i * n + i];
    }
    z
}

/// Solves (L Lᵀ) α = b.
fn chol_solve(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    let z = forward_substitute(l, n, b);
    // Back substitution with Lᵀ.
    let mut a = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut s = z[i];
        for j in (i + 1)..n {
            s -= l[j * n + i] * a[j];
        }
        a[i] = s / l[i * n + i];
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(points: &[(usize, f64, f64)]) -> Vec<Observation> {
        points.iter().map(|&(t, x, y)| Observation { t, x: vec![x], y }).collect()
    }

    #[test]
    fn interpolates_training_points() {
        let data = obs(&[(0, 0.1, 1.0), (0, 0.5, 3.0), (0, 0.9, 2.0)]);
        let gp = Gp::fit(GpConfig { noise: 1e-6, ..Default::default() }, data);
        for (x, y) in [(0.1, 1.0), (0.5, 3.0), (0.9, 2.0)] {
            let (m, v) = gp.predict(0, &[x]);
            assert!((m - y).abs() < 0.05, "at {x}: mean {m} vs {y}");
            assert!(v < 0.05, "low variance at observed points, got {v}");
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let gp = Gp::fit(GpConfig::default(), obs(&[(0, 0.5, 1.0)]));
        let (_, near) = gp.predict(0, &[0.5]);
        let (_, far) = gp.predict(0, &[0.0]);
        assert!(far > near, "far {far} should exceed near {near}");
    }

    #[test]
    fn reverts_to_prior_mean_far_away() {
        let data = obs(&[(0, 0.2, 5.0), (0, 0.3, 5.2)]);
        let gp = Gp::fit(GpConfig { length_scale: 0.05, ..Default::default() }, data);
        let (m, _) = gp.predict(0, &[0.99]);
        assert!((m - 5.1).abs() < 0.2, "prior mean is the data mean: {m}");
    }

    #[test]
    fn time_decay_discounts_stale_observations() {
        // Same x, contradictory y at t=0 and t=10; prediction at t=10
        // should side with the recent value.
        let data = obs(&[(0, 0.5, 0.0), (10, 0.5, 4.0)]);
        let gp = Gp::fit(GpConfig { noise: 1e-4, time_decay: 0.7, ..Default::default() }, data);
        let (m, _) = gp.predict(10, &[0.5]);
        assert!(m > 3.0, "recent observation must dominate, got {m}");
    }

    #[test]
    fn ucb_prefers_uncertain_regions_at_equal_mean() {
        let gp =
            Gp::fit(GpConfig { length_scale: 0.1, ..Default::default() }, obs(&[(0, 0.5, 1.0)]));
        let at_data = gp.ucb(0, &[0.5], 2.0);
        let away = gp.ucb(0, &[0.05], 2.0);
        // Mean decays toward the prior (1.0 = data mean) but variance grows;
        // with equal means UCB must rank the unexplored point higher.
        assert!(away > at_data - 1.0, "sanity");
        let (m_near, v_near) = gp.predict(0, &[0.5]);
        let (m_far, v_far) = gp.predict(0, &[0.05]);
        assert!((m_near - m_far).abs() < 1.0);
        assert!(v_far > v_near);
    }

    #[test]
    fn cholesky_rejects_non_pd() {
        let k = vec![1.0, 2.0, 2.0, 1.0]; // indefinite
        assert!(cholesky(&k, 2).is_none());
    }

    #[test]
    fn solve_matches_direct_inverse_on_small_system() {
        // K = [[2,1],[1,2]], b = [1, 0] → α = [2/3, -1/3]
        let k = vec![2.0, 1.0, 1.0, 2.0];
        let l = cholesky(&k, 2).unwrap();
        let a = chol_solve(&l, 2, &[1.0, 0.0]);
        assert!((a[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((a[1] + 1.0 / 3.0).abs() < 1e-12);
    }
}
