//! `dfhpo` — distributed, genetic hyper-parameter optimization.
//!
//! Replaces Ray/RayTune + PB2 for the reproduction: a [`space::Space`] of
//! named hyper-parameters (Table 1 value kinds), a time-varying Gaussian
//! process ([`gp`]) and the Population-Based Bandits scheduler ([`pb2`])
//! with parallel trial execution, quantile-gated exploit/explore and
//! LSF-style checkpoint/resume.

pub mod gp;
pub mod pb2;
pub mod pbt;
pub mod space;

pub use gp::{Gp, GpConfig, Observation};
pub use pb2::{Pb2, Pb2Config, Pb2Result, Trainable, TrainableFactory, TrialRecord};
pub use pbt::Pbt;
pub use space::{ConfigValues, Dim, Range, Space};
