//! `dfhpo` — distributed, genetic hyper-parameter optimization.
//!
//! Replaces Ray/RayTune + PB2 for the reproduction: a [`space::Space`] of
//! named hyper-parameters (Table 1 value kinds), a time-varying Gaussian
//! process ([`gp`]) and the Population-Based Bandits scheduler ([`pb2`])
//! with parallel trial execution, quantile-gated exploit/explore and
//! LSF-style checkpoint/resume.
//!
//! Trials execute concurrently on the global `dfpool` runtime
//! (`DFPOOL_THREADS`) and a search is bit-reproducible from its seed:
//! exploit/explore decisions, GP fits and checkpoints do not depend on
//! scheduling order. Trial workloads that touch instrumented crates
//! (training, docking) surface their telemetry under `DFTRACE=1` like any
//! other caller; see `docs/OBSERVABILITY.md`.

pub mod gp;
pub mod pb2;
pub mod pbt;
pub mod space;

pub use gp::{Gp, GpConfig, Observation};
pub use pb2::{Pb2, Pb2Config, Pb2Result, Trainable, TrainableFactory, TrialRecord};
pub use pbt::Pbt;
pub use space::{ConfigValues, Dim, Range, Space};
