//! Plain Population-Based Training (Jaderberg et al. 2017) — the baseline
//! PB2 improves upon.
//!
//! The paper cites PB2 as "a leading population-based EA ... improved by
//! formulating hyper-parameter optimization as a GP bandit optimization"
//! (§2.2). This module implements the predecessor so the two explore
//! strategies can be compared on equal footing: PBT's explore step
//! *perturbs* the exploited configuration by random multiplicative factors
//! (continuous dims) and random resampling (categorical dims) instead of
//! maximizing a GP acquisition.

use crate::pb2::{Pb2Config, Pb2Result, TrainableFactory, TrialRecord};
use crate::space::{ConfigValues, Range, Space};
use dftensor::rng::{derive_seed, rng};
use rand::Rng;

/// Classic PBT scheduler sharing PB2's population mechanics (same config
/// type, quantile gating and checkpointed exploitation) but with
/// perturbation-based exploration.
pub struct Pbt {
    pub config: Pb2Config,
    pub space: Space,
    /// Multiplicative perturbation factors for continuous dimensions
    /// (PBT's classic 0.8 / 1.2).
    pub perturb_factors: (f64, f64),
}

impl Pbt {
    pub fn new(config: Pb2Config, space: Space) -> Pbt {
        assert!(config.population >= 2, "population must be at least 2");
        Pbt { config, space, perturb_factors: (0.8, 1.2) }
    }

    /// PBT's explore: multiply continuous values by a random factor and
    /// clamp into range; resample categoricals with the configured
    /// probability.
    fn explore(&self, base: &ConfigValues, r: &mut impl Rng) -> ConfigValues {
        let mut out = self.space.resample_categoricals(base, self.config.categorical_mutation, r);
        for dim in &self.space.dims {
            match &dim.range {
                Range::Uniform { lo, hi } => {
                    let f = if r.gen::<bool>() {
                        self.perturb_factors.0
                    } else {
                        self.perturb_factors.1
                    };
                    let v = (out[&dim.name] * f).clamp(*lo, *hi);
                    out.insert(dim.name.clone(), v);
                }
                Range::LogUniform { lo, hi } => {
                    let f = if r.gen::<bool>() {
                        self.perturb_factors.0
                    } else {
                        self.perturb_factors.1
                    };
                    let v = (out[&dim.name] * f).clamp(*lo, *hi);
                    out.insert(dim.name.clone(), v);
                }
                _ => {}
            }
        }
        out
    }

    /// Runs the optimization; result shape matches [`crate::pb2::Pb2`] so
    /// harnesses can compare the two directly.
    pub fn run(&self, factory: &dyn TrainableFactory) -> Pb2Result {
        let cfg = &self.config;
        let mut seed_rng = rng(derive_seed(cfg.seed, 0x9B7));
        struct Trial {
            trainable: Box<dyn crate::pb2::Trainable>,
            config: ConfigValues,
            last_objective: f64,
            checkpoint: Vec<u8>,
        }
        let mut trials: Vec<Trial> = (0..cfg.population)
            .map(|i| {
                let c = self.space.sample(&mut seed_rng);
                let trainable = factory.build(i, &c);
                let checkpoint = trainable.save();
                Trial { trainable, config: c, last_objective: f64::INFINITY, checkpoint }
            })
            .collect();
        let mut history = Vec::new();

        for interval in 0..cfg.intervals {
            // Sequential stepping keeps this baseline simple; the PB2
            // implementation demonstrates the parallel path.
            for (i, t) in trials.iter_mut().enumerate() {
                t.last_objective = t.trainable.step(&t.config);
                t.checkpoint = t.trainable.save();
                history.push(TrialRecord {
                    trial: i,
                    interval,
                    config: t.config.clone(),
                    objective: t.last_objective,
                    exploited_from: None,
                });
            }
            if interval + 1 == cfg.intervals {
                break;
            }
            // Quantile gate + exploit/explore.
            let mut order: Vec<usize> = (0..trials.len()).collect();
            order.sort_by(|&a, &b| {
                trials[a]
                    .last_objective
                    .partial_cmp(&trials[b].last_objective)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let n_top =
                (((trials.len() as f64) * cfg.quantile).ceil() as usize).clamp(1, trials.len() - 1);
            let (top, bottom) = order.split_at(n_top);
            let mut r = rng(derive_seed(cfg.seed, 0xB7 ^ interval as u64));
            for &loser in bottom {
                let donor = top[r.gen_range(0..top.len())];
                let donor_ckpt = trials[donor].checkpoint.clone();
                let donor_cfg = trials[donor].config.clone();
                trials[loser].trainable.restore(&donor_ckpt);
                trials[loser].checkpoint = donor_ckpt;
                trials[loser].config = self.explore(&donor_cfg, &mut r);
                if let Some(rec) = history
                    .iter_mut()
                    .rev()
                    .find(|rec| rec.trial == loser && rec.interval == interval)
                {
                    rec.exploited_from = Some(donor);
                }
            }
        }

        let (best_trial, best) = trials
            .iter()
            .enumerate()
            .min_by(|a, b| {
                a.1.last_objective
                    .partial_cmp(&b.1.last_objective)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty population");
        Pb2Result {
            best_config: best.config.clone(),
            best_objective: best.last_objective,
            best_trial,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pb2::Trainable;

    struct Quadratic {
        steps: usize,
    }

    impl Trainable for Quadratic {
        fn step(&mut self, config: &ConfigValues) -> f64 {
            self.steps += 1;
            let x = config["x"];
            (x - 0.7) * (x - 0.7) + 1.0 / (1.0 + self.steps as f64)
        }
        fn save(&self) -> Vec<u8> {
            self.steps.to_le_bytes().to_vec()
        }
        fn restore(&mut self, ckpt: &[u8]) {
            self.steps = usize::from_le_bytes(ckpt.try_into().unwrap());
        }
    }

    fn space() -> Space {
        Space::new(vec![("x", Range::Uniform { lo: 0.0, hi: 1.0 })])
    }

    fn factory() -> impl TrainableFactory {
        |_i: usize, _c: &ConfigValues| Box::new(Quadratic { steps: 0 }) as Box<dyn Trainable>
    }

    #[test]
    fn pbt_optimizes_the_quadratic() {
        let pbt = Pbt::new(
            Pb2Config { population: 8, intervals: 8, seed: 2, ..Default::default() },
            space(),
        );
        let result = pbt.run(&factory());
        assert!((result.best_config["x"] - 0.7).abs() < 0.25, "best x {}", result.best_config["x"]);
        let exploits = result.history.iter().filter(|r| r.exploited_from.is_some()).count();
        assert!(exploits > 0);
    }

    #[test]
    fn pbt_is_deterministic() {
        let mk = || {
            Pbt::new(
                Pb2Config { population: 5, intervals: 4, seed: 8, ..Default::default() },
                space(),
            )
            .run(&factory())
        };
        assert_eq!(mk().best_config, mk().best_config);
    }

    #[test]
    fn explore_clamps_to_range() {
        let pbt = Pbt::new(Pb2Config::default(), space());
        let mut r = dftensor::rng::rng(1);
        let mut base = ConfigValues::new();
        base.insert("x".into(), 0.99);
        for _ in 0..50 {
            let e = pbt.explore(&base, &mut r);
            assert!((0.0..=1.0).contains(&e["x"]));
        }
    }

    #[test]
    fn pb2_matches_or_beats_pbt_on_the_synthetic_objective() {
        // Not a strict theorem at this scale, but with the same budget the
        // GP-guided explorer should not be substantially worse.
        let cfg = Pb2Config { population: 8, intervals: 8, seed: 13, ..Default::default() };
        let pb2 = crate::pb2::Pb2::new(cfg.clone(), space()).run(&factory());
        let pbt = Pbt::new(cfg, space()).run(&factory());
        assert!(
            pb2.best_objective < pbt.best_objective + 0.1,
            "pb2 {} vs pbt {}",
            pb2.best_objective,
            pbt.best_objective
        );
    }
}
