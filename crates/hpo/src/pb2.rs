//! Population-Based Bandits (PB2) — the paper's distributed, genetic
//! hyper-parameter optimization (§3.2).
//!
//! The procedure follows the paper's description exactly: a population of
//! randomly initialized hyper-parameter hypotheses trains in parallel;
//! every time a trial reaches the perturbation interval `t_ready`, its
//! performance is compared with the population quantile λ%. Trials above
//! the quantile continue; under-performers clone a top performer's model
//! state (**exploit**) and receive a new configuration from a parallel
//! GP-bandit optimization over the time-varying objective (**explore**).
//!
//! Trials checkpoint at every interval, which doubles as the LSF-style
//! pause/reschedule/resume capability the paper needed on Lassen:
//! [`Pb2::run_with_interruption`] exercises that path.

use crate::gp::{Gp, GpConfig, Observation};
use crate::space::{ConfigValues, Space};
use dftensor::rng::{derive_seed, rng};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A trainable trial under PB2 control. Implementations train a real
/// model for one perturbation interval per `step` call and must support
/// checkpoint save/restore so exploitation can copy state across trials.
pub trait Trainable: Send {
    /// Trains for one perturbation interval (`t_ready` epochs) under the
    /// given configuration, returning the objective (validation MSE —
    /// lower is better).
    fn step(&mut self, config: &ConfigValues) -> f64;
    /// Serializes the full training state.
    fn save(&self) -> Vec<u8>;
    /// Restores state produced by `save` (possibly from another trial).
    fn restore(&mut self, checkpoint: &[u8]);
}

/// Builds fresh trials; called once per population slot.
pub trait TrainableFactory: Sync {
    fn build(&self, trial_index: usize, config: &ConfigValues) -> Box<dyn Trainable>;
}

impl<F> TrainableFactory for F
where
    F: Fn(usize, &ConfigValues) -> Box<dyn Trainable> + Sync,
{
    fn build(&self, trial_index: usize, config: &ConfigValues) -> Box<dyn Trainable> {
        self(trial_index, config)
    }
}

/// PB2 configuration. The paper ran λ% = 0.5 and `t_ready` = 100 epochs on
/// populations of 90–270 trials; defaults here are scaled down.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pb2Config {
    pub population: usize,
    /// Quantile fraction λ: trials below this fraction exploit+explore.
    pub quantile: f64,
    /// Number of perturbation intervals to run (each interval = one
    /// `Trainable::step`, i.e. `t_ready` epochs inside the trainable).
    pub intervals: usize,
    /// UCB exploration coefficient for the GP bandit.
    pub ucb_beta: f64,
    /// Probability of resampling each categorical dimension on explore.
    pub categorical_mutation: f64,
    /// Worker threads stepping trials in parallel.
    pub threads: usize,
    pub seed: u64,
    pub gp: GpDefaults,
}

/// Serializable subset of [`GpConfig`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GpDefaults {
    pub length_scale: f64,
    pub time_decay: f64,
}

impl Default for Pb2Config {
    fn default() -> Self {
        Self {
            population: 8,
            quantile: 0.5,
            intervals: 5,
            ucb_beta: 1.5,
            categorical_mutation: 0.25,
            threads: 4,
            seed: 0,
            gp: GpDefaults { length_scale: 0.35, time_decay: 0.9 },
        }
    }
}

/// Per-trial, per-interval record of the optimization schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialRecord {
    pub trial: usize,
    pub interval: usize,
    pub config: ConfigValues,
    pub objective: f64,
    /// Whether this trial exploited (cloned) another at the end of the
    /// interval.
    pub exploited_from: Option<usize>,
}

/// Result of a PB2 run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pb2Result {
    pub best_config: ConfigValues,
    pub best_objective: f64,
    pub best_trial: usize,
    /// Full schedule: every (trial, interval) evaluation.
    pub history: Vec<TrialRecord>,
}

/// The PB2 optimizer.
pub struct Pb2 {
    pub config: Pb2Config,
    pub space: Space,
}

struct TrialState {
    trainable: Box<dyn Trainable>,
    config: ConfigValues,
    last_objective: f64,
    checkpoint: Vec<u8>,
}

impl Pb2 {
    pub fn new(config: Pb2Config, space: Space) -> Pb2 {
        assert!(config.population >= 2, "population must be at least 2");
        assert!((0.0..1.0).contains(&config.quantile), "quantile in [0,1)");
        Pb2 { config, space }
    }

    /// Runs the full optimization.
    pub fn run(&self, factory: &dyn TrainableFactory) -> Pb2Result {
        self.run_inner(factory, None)
    }

    /// Runs the optimization, simulating an LSF max-runtime interruption:
    /// after `interrupt_after` intervals every trial is torn down and
    /// rebuilt from its checkpoint before the run continues. The result
    /// must match an uninterrupted run.
    pub fn run_with_interruption(
        &self,
        factory: &dyn TrainableFactory,
        interrupt_after: usize,
    ) -> Pb2Result {
        self.run_inner(factory, Some(interrupt_after))
    }

    fn run_inner(&self, factory: &dyn TrainableFactory, interrupt: Option<usize>) -> Pb2Result {
        let cfg = &self.config;
        let mut seed_rng = rng(derive_seed(cfg.seed, 0x9B2u64));
        let mut trials: Vec<TrialState> = (0..cfg.population)
            .map(|i| {
                let c = self.space.sample(&mut seed_rng);
                let trainable = factory.build(i, &c);
                let checkpoint = trainable.save();
                TrialState { trainable, config: c, last_objective: f64::INFINITY, checkpoint }
            })
            .collect();

        let mut history: Vec<TrialRecord> = Vec::new();
        let mut gp_data: Vec<Observation> = Vec::new();

        for interval in 0..cfg.intervals {
            // Simulated scheduler interruption: rebuild all trials from
            // their checkpoints.
            if interrupt == Some(interval) {
                for (i, t) in trials.iter_mut().enumerate() {
                    let mut rebuilt = factory.build(i, &t.config);
                    rebuilt.restore(&t.checkpoint);
                    t.trainable = rebuilt;
                }
            }

            // --- Parallel training step across the population. ---
            self.parallel_step(&mut trials);

            for (i, t) in trials.iter_mut().enumerate() {
                t.checkpoint = t.trainable.save();
                gp_data.push(Observation {
                    t: interval,
                    x: self.space.to_unit(&t.config),
                    // GP maximizes; objective is minimized.
                    y: -t.last_objective,
                });
                history.push(TrialRecord {
                    trial: i,
                    interval,
                    config: t.config.clone(),
                    objective: t.last_objective,
                    exploited_from: None,
                });
            }

            // --- Exploit / explore for the bottom (1-λ) fraction. ---
            if interval + 1 < cfg.intervals {
                self.exploit_explore(&mut trials, &gp_data, interval, &mut history);
            }
        }

        let (best_trial, best) = trials
            .iter()
            .enumerate()
            .min_by(|a, b| {
                a.1.last_objective
                    .partial_cmp(&b.1.last_objective)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty population");
        Pb2Result {
            best_config: best.config.clone(),
            best_objective: best.last_objective,
            best_trial,
            history,
        }
    }

    /// Steps every trial once, across the worker pool.
    fn parallel_step(&self, trials: &mut [TrialState]) {
        let threads = self.config.threads.max(1);
        crossbeam::thread::scope(|s| {
            // Hand out disjoint chunks to workers.
            let chunk = trials.len().div_ceil(threads);
            for batch in trials.chunks_mut(chunk) {
                s.spawn(move |_| {
                    for t in batch {
                        t.last_objective = t.trainable.step(&t.config);
                    }
                });
            }
        })
        .expect("PB2 worker panicked");
    }

    fn exploit_explore(
        &self,
        trials: &mut [TrialState],
        gp_data: &[Observation],
        interval: usize,
        history: &mut [TrialRecord],
    ) {
        let cfg = &self.config;
        let mut order: Vec<usize> = (0..trials.len()).collect();
        order.sort_by(|&a, &b| {
            trials[a]
                .last_objective
                .partial_cmp(&trials[b].last_objective)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let n_top = ((trials.len() as f64) * cfg.quantile).ceil() as usize;
        let n_top = n_top.clamp(1, trials.len() - 1);
        let top: Vec<usize> = order[..n_top].to_vec();
        let bottom: Vec<usize> = order[n_top..].to_vec();

        // Fit the time-varying GP once per perturbation round.
        let gp = Gp::fit(
            GpConfig {
                length_scale: cfg.gp.length_scale,
                time_decay: cfg.gp.time_decay,
                ..GpConfig::default()
            },
            gp_data.to_vec(),
        );

        let mut r = rng(derive_seed(cfg.seed, 0xE7 ^ interval as u64));
        for &loser in &bottom {
            // Exploit: clone a random top performer's weights and config.
            let donor = top[r.gen_range(0..top.len())];
            let donor_ckpt = trials[donor].checkpoint.clone();
            let donor_cfg = trials[donor].config.clone();
            trials[loser].trainable.restore(&donor_ckpt);
            trials[loser].checkpoint = donor_ckpt;

            // Explore: GP-UCB over candidates near the donor plus fresh
            // samples; categorical dims mutate independently.
            let base =
                self.space.resample_categoricals(&donor_cfg, cfg.categorical_mutation, &mut r);
            let mut best_cfg = base.clone();
            let mut best_ucb = f64::NEG_INFINITY;
            for k in 0..32 {
                let cand = if k % 4 == 0 {
                    self.space.sample(&mut r)
                } else {
                    // Jitter the donor in unit space.
                    let mut u = self.space.to_unit(&base);
                    for v in &mut u {
                        *v = (*v + dftensor::rng::normal_with(&mut r, 0.0, 0.15)).clamp(0.0, 1.0);
                    }
                    self.space.from_unit(&u)
                };
                let score = gp.ucb(interval + 1, &self.space.to_unit(&cand), cfg.ucb_beta);
                if score > best_ucb {
                    best_ucb = score;
                    best_cfg = cand;
                }
            }
            trials[loser].config = best_cfg;
            // Mark the exploitation in this interval's record.
            if let Some(rec) =
                history.iter_mut().rev().find(|rec| rec.trial == loser && rec.interval == interval)
            {
                rec.exploited_from = Some(donor);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Range;
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// A synthetic trainable whose objective improves with training time
    /// and depends on the config: objective = (x - 0.7)² + 1/(1+steps).
    struct Quadratic {
        steps: usize,
    }

    impl Trainable for Quadratic {
        fn step(&mut self, config: &ConfigValues) -> f64 {
            self.steps += 1;
            let x = config["x"];
            (x - 0.7) * (x - 0.7) + 1.0 / (1.0 + self.steps as f64)
        }
        fn save(&self) -> Vec<u8> {
            self.steps.to_le_bytes().to_vec()
        }
        fn restore(&mut self, ckpt: &[u8]) {
            self.steps = usize::from_le_bytes(ckpt.try_into().expect("8-byte checkpoint"));
        }
    }

    fn space() -> Space {
        Space::new(vec![("x", Range::Uniform { lo: 0.0, hi: 1.0 }), ("flag", Range::Bool)])
    }

    fn factory() -> impl TrainableFactory {
        |_i: usize, _c: &ConfigValues| Box::new(Quadratic { steps: 0 }) as Box<dyn Trainable>
    }

    #[test]
    fn pb2_improves_over_random_initialization() {
        let pb2 = Pb2::new(
            Pb2Config { population: 8, intervals: 6, seed: 3, ..Default::default() },
            space(),
        );
        let result = pb2.run(&factory());
        // The optimum x = 0.7 gives objective → 1/(1+steps). With 6
        // intervals the best trial should be close to it.
        assert!(
            (result.best_config["x"] - 0.7).abs() < 0.2,
            "best x {} should approach 0.7",
            result.best_config["x"]
        );
        // History covers population × intervals evaluations.
        assert_eq!(result.history.len(), 8 * 6);
    }

    #[test]
    fn exploitation_happens_and_copies_training_state() {
        let pb2 = Pb2::new(
            Pb2Config { population: 6, intervals: 4, seed: 1, ..Default::default() },
            space(),
        );
        let result = pb2.run(&factory());
        let exploits = result.history.iter().filter(|r| r.exploited_from.is_some()).count();
        assert!(exploits > 0, "bottom-quantile trials must exploit");
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            Pb2::new(
                Pb2Config {
                    population: 6,
                    intervals: 4,
                    seed: 9,
                    threads: 3,
                    ..Default::default()
                },
                space(),
            )
            .run(&factory())
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.best_objective, b.best_objective);
        assert_eq!(a.best_config, b.best_config);
    }

    #[test]
    fn interruption_resume_matches_uninterrupted_run() {
        let cfg = Pb2Config { population: 6, intervals: 5, seed: 4, ..Default::default() };
        let plain = Pb2::new(cfg.clone(), space()).run(&factory());
        let interrupted = Pb2::new(cfg, space()).run_with_interruption(&factory(), 2);
        assert_eq!(plain.best_objective, interrupted.best_objective);
        assert_eq!(plain.best_config, interrupted.best_config);
    }

    #[test]
    fn all_trials_step_every_interval() {
        let counter = Arc::new(Mutex::new(0usize));
        struct Counting {
            steps: usize,
            counter: Arc<Mutex<usize>>,
        }
        impl Trainable for Counting {
            fn step(&mut self, _c: &ConfigValues) -> f64 {
                *self.counter.lock() += 1;
                self.steps += 1;
                1.0 / (1.0 + self.steps as f64)
            }
            fn save(&self) -> Vec<u8> {
                self.steps.to_le_bytes().to_vec()
            }
            fn restore(&mut self, ckpt: &[u8]) {
                self.steps = usize::from_le_bytes(ckpt.try_into().unwrap());
            }
        }
        let c2 = Arc::clone(&counter);
        let f = move |_i: usize, _c: &ConfigValues| {
            Box::new(Counting { steps: 0, counter: Arc::clone(&c2) }) as Box<dyn Trainable>
        };
        let pb2 = Pb2::new(
            Pb2Config { population: 5, intervals: 3, seed: 2, ..Default::default() },
            space(),
        );
        pb2.run(&f);
        assert_eq!(*counter.lock(), 15);
    }

    #[test]
    #[should_panic(expected = "population must be at least 2")]
    fn tiny_population_rejected() {
        Pb2::new(Pb2Config { population: 1, ..Default::default() }, space());
    }
}
