//! Hyper-parameter spaces: named dimensions over booleans, discrete
//! choices and (log-)uniform continuous ranges — the value kinds appearing
//! in the paper's Table 1.

use dftensor::rng::{log_uniform, uniform};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A concrete hyper-parameter assignment. Everything is carried as `f64`
/// (booleans as 0/1, choices by value) so the GP can embed configs.
pub type ConfigValues = BTreeMap<String, f64>;

/// Admissible values of one dimension.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Range {
    Bool,
    Choice(Vec<f64>),
    Uniform { lo: f64, hi: f64 },
    LogUniform { lo: f64, hi: f64 },
}

/// One named dimension.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dim {
    pub name: String,
    pub range: Range,
}

/// A search space.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct Space {
    pub dims: Vec<Dim>,
}

impl Space {
    pub fn new(dims: Vec<(&str, Range)>) -> Space {
        Space {
            dims: dims.into_iter().map(|(n, r)| Dim { name: n.to_string(), range: r }).collect(),
        }
    }

    /// Samples a uniformly random configuration.
    pub fn sample(&self, rng: &mut impl Rng) -> ConfigValues {
        self.dims
            .iter()
            .map(|d| {
                let v = match &d.range {
                    Range::Bool => {
                        if rng.gen::<bool>() {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    Range::Choice(opts) => opts[rng.gen_range(0..opts.len())],
                    Range::Uniform { lo, hi } => uniform(rng, *lo, *hi),
                    Range::LogUniform { lo, hi } => log_uniform(rng, *lo, *hi),
                };
                (d.name.clone(), v)
            })
            .collect()
    }

    /// Clamps/snap a raw vector back into the space, returning a valid
    /// config (used after GP-bandit suggestions in continuous coordinates).
    pub fn from_unit(&self, unit: &[f64]) -> ConfigValues {
        assert_eq!(unit.len(), self.dims.len(), "unit vector dimension mismatch");
        self.dims
            .iter()
            .zip(unit)
            .map(|(d, &u)| {
                let u = u.clamp(0.0, 1.0);
                let v = match &d.range {
                    Range::Bool => {
                        if u >= 0.5 {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    Range::Choice(opts) => {
                        let idx =
                            ((u * opts.len() as f64) as usize).min(opts.len().saturating_sub(1));
                        opts[idx]
                    }
                    Range::Uniform { lo, hi } => lo + u * (hi - lo),
                    Range::LogUniform { lo, hi } => (lo.ln() + u * (hi.ln() - lo.ln())).exp(),
                };
                (d.name.clone(), v)
            })
            .collect()
    }

    /// Embeds a config into the unit hypercube (GP coordinates).
    pub fn to_unit(&self, cfg: &ConfigValues) -> Vec<f64> {
        self.dims
            .iter()
            .map(|d| {
                let v = *cfg.get(&d.name).unwrap_or_else(|| panic!("missing dim {}", d.name));
                match &d.range {
                    Range::Bool => v,
                    Range::Choice(opts) => {
                        let idx = opts.iter().position(|&o| (o - v).abs() < 1e-12).unwrap_or(0);
                        (idx as f64 + 0.5) / opts.len() as f64
                    }
                    Range::Uniform { lo, hi } => ((v - lo) / (hi - lo)).clamp(0.0, 1.0),
                    Range::LogUniform { lo, hi } => {
                        ((v.ln() - lo.ln()) / (hi.ln() - lo.ln())).clamp(0.0, 1.0)
                    }
                }
            })
            .collect()
    }

    /// Mutation used by the explore step for categorical dimensions: with
    /// probability `p` resample the dimension; continuous dimensions are
    /// left to the GP bandit.
    pub fn resample_categoricals(
        &self,
        cfg: &ConfigValues,
        p: f64,
        rng: &mut impl Rng,
    ) -> ConfigValues {
        let mut out = cfg.clone();
        for d in &self.dims {
            let categorical = matches!(d.range, Range::Bool | Range::Choice(_));
            if categorical && rng.gen::<f64>() < p {
                let fresh = self.sample(rng);
                out.insert(d.name.clone(), fresh[&d.name]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftensor::rng::rng;

    fn demo() -> Space {
        Space::new(vec![
            ("flag", Range::Bool),
            ("width", Range::Choice(vec![8.0, 16.0, 32.0])),
            ("dropout", Range::Uniform { lo: 0.0, hi: 0.5 }),
            ("lr", Range::LogUniform { lo: 1e-6, hi: 1e-2 }),
        ])
    }

    #[test]
    fn samples_stay_in_range() {
        let s = demo();
        let mut r = rng(1);
        for _ in 0..200 {
            let c = s.sample(&mut r);
            assert!(c["flag"] == 0.0 || c["flag"] == 1.0);
            assert!([8.0, 16.0, 32.0].contains(&c["width"]));
            assert!((0.0..=0.5).contains(&c["dropout"]));
            assert!((1e-6..=1e-2).contains(&c["lr"]));
        }
    }

    #[test]
    fn unit_round_trip_is_close() {
        let s = demo();
        let mut r = rng(2);
        for _ in 0..50 {
            let c = s.sample(&mut r);
            let u = s.to_unit(&c);
            assert!(u.iter().all(|&x| (0.0..=1.0).contains(&x)));
            let back = s.from_unit(&u);
            assert_eq!(back["width"], c["width"], "choice dims reproduce exactly");
            assert!((back["dropout"] - c["dropout"]).abs() < 1e-9);
            // Log dims round-trip in log space.
            assert!((back["lr"].ln() - c["lr"].ln()).abs() < 1e-9);
        }
    }

    #[test]
    fn log_uniform_explores_decades() {
        let s = Space::new(vec![("lr", Range::LogUniform { lo: 1e-6, hi: 1e-2 })]);
        let mut r = rng(3);
        let samples: Vec<f64> = (0..500).map(|_| s.sample(&mut r)["lr"]).collect();
        let below_1e4 = samples.iter().filter(|&&v| v < 1e-4).count();
        // Log-uniform puts half the mass below the geometric midpoint.
        assert!((below_1e4 as f64 / 500.0 - 0.5).abs() < 0.1);
    }

    #[test]
    fn resample_categoricals_touches_only_categoricals() {
        let s = demo();
        let mut r = rng(4);
        let c = s.sample(&mut r);
        let m = s.resample_categoricals(&c, 1.0, &mut r);
        assert_eq!(m["dropout"], c["dropout"]);
        assert_eq!(m["lr"], c["lr"]);
    }
}
