//! `dfmetrics` — evaluation metrics for the Deep Fusion reproduction.
//!
//! Regression metrics cover the paper's Table 6 (RMSE, MAE, R², Pearson,
//! Spearman); classification metrics cover Figures 2 and 5 and Table 8
//! (precision/recall curves, F1, Cohen's κ, average precision).

pub mod bootstrap;
pub mod classification;
pub mod regression;

pub use bootstrap::{pearson_ci, spearman_ci, ConfidenceInterval};
pub use classification::{best_kappa, Confusion, PrCurve, PrPoint};
pub use regression::{mae, pearson, r2, ranks, rmse, spearman, RegressionReport};
