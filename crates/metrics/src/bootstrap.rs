//! Bootstrap confidence intervals for correlation statistics.
//!
//! The paper's Table 8 correlations are computed over small (>1%-binder)
//! subsets — 20–30 positives per target — where point estimates are
//! fragile ("the interpretation of near-zero correlation coefficients is
//! unavailing"). Resampling CIs make that fragility quantitative, and the
//! `table8` harness reports them alongside the point estimates.

use crate::regression::{pearson, spearman};

/// A two-sided percentile confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    pub estimate: f64,
    pub lo: f64,
    pub hi: f64,
    /// Nominal coverage (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Whether the interval excludes zero (a "significant" correlation in
    /// the loose bootstrap sense).
    pub fn excludes_zero(&self) -> bool {
        self.lo > 0.0 || self.hi < 0.0
    }
}

/// Deterministic xorshift for resampling (no external RNG needed here and
/// results stay reproducible across platforms).
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

fn bootstrap_statistic(
    a: &[f64],
    b: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
    stat: impl Fn(&[f64], &[f64]) -> f64,
) -> ConfidenceInterval {
    assert_eq!(a.len(), b.len(), "paired inputs required");
    assert!((0.0..1.0).contains(&level) && level > 0.5, "level in (0.5, 1)");
    let estimate = stat(a, b);
    let n = a.len();
    if n < 3 {
        return ConfidenceInterval { estimate, lo: -1.0, hi: 1.0, level };
    }
    let mut state = seed | 1;
    let mut stats = Vec::with_capacity(resamples);
    let mut ra = vec![0.0; n];
    let mut rb = vec![0.0; n];
    for _ in 0..resamples {
        for i in 0..n {
            let j = (xorshift(&mut state) % n as u64) as usize;
            ra[i] = a[j];
            rb[i] = b[j];
        }
        stats.push(stat(&ra, &rb));
    }
    stats.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let alpha = (1.0 - level) / 2.0;
    ConfidenceInterval {
        estimate,
        lo: percentile(&stats, alpha),
        hi: percentile(&stats, 1.0 - alpha),
        level,
    }
}

/// Percentile-bootstrap CI for the Pearson correlation.
pub fn pearson_ci(
    a: &[f64],
    b: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
) -> ConfidenceInterval {
    bootstrap_statistic(a, b, resamples, level, seed, pearson)
}

/// Percentile-bootstrap CI for the Spearman correlation.
pub fn spearman_ci(
    a: &[f64],
    b: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
) -> ConfidenceInterval {
    bootstrap_statistic(a, b, resamples, level, seed, spearman)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize, noise: f64) -> (Vec<f64>, Vec<f64>) {
        let mut state = 42u64;
        let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let b: Vec<f64> = a
            .iter()
            .map(|&x| x + noise * ((xorshift(&mut state) % 1000) as f64 / 1000.0 - 0.5))
            .collect();
        (a, b)
    }

    #[test]
    fn strong_correlation_has_tight_interval_excluding_zero() {
        let (a, b) = linear_data(80, 5.0);
        let ci = pearson_ci(&a, &b, 500, 0.95, 7);
        assert!(ci.estimate > 0.9);
        assert!(ci.excludes_zero());
        assert!(ci.hi - ci.lo < 0.2, "tight interval expected, got [{}, {}]", ci.lo, ci.hi);
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
    }

    #[test]
    fn small_noise_samples_have_wide_intervals_containing_zero() {
        // 12 weakly-correlated points (|r| ≈ 0.13 by construction): the CI
        // must be wide and straddle zero.
        let a: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let b: Vec<f64> = vec![1.0, -1.0, 2.0, -2.0, 3.0, -3.0, 4.0, -4.0, 5.0, -5.0, 6.0, -6.0];
        let ci = pearson_ci(&a, &b, 500, 0.95, 11);
        assert!(!ci.excludes_zero(), "noise must not be 'significant': [{}, {}]", ci.lo, ci.hi);
        assert!(ci.hi - ci.lo > 0.4, "small-n interval should be wide");
    }

    #[test]
    fn spearman_ci_is_monotone_invariant() {
        let (a, b) = linear_data(50, 2.0);
        let exp_b: Vec<f64> = b.iter().map(|x| (x / 20.0).exp()).collect();
        let c1 = spearman_ci(&a, &b, 300, 0.9, 3);
        let c2 = spearman_ci(&a, &exp_b, 300, 0.9, 3);
        assert!((c1.estimate - c2.estimate).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, b) = linear_data(30, 10.0);
        let c1 = pearson_ci(&a, &b, 200, 0.95, 5);
        let c2 = pearson_ci(&a, &b, 200, 0.95, 5);
        assert_eq!(c1, c2);
        let c3 = pearson_ci(&a, &b, 200, 0.95, 6);
        assert!(c1.lo != c3.lo || c1.hi != c3.hi);
    }

    #[test]
    fn tiny_inputs_degrade_gracefully() {
        let ci = pearson_ci(&[1.0, 2.0], &[2.0, 1.0], 100, 0.95, 1);
        assert_eq!((ci.lo, ci.hi), (-1.0, 1.0));
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert!((percentile(&v, 0.5) - 2.5).abs() < 1e-12);
    }
}
