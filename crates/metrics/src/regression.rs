//! Regression metrics used in the paper's Table 6 (RMSE, MAE, R², Pearson
//! and Spearman correlation on the PDBbind core set).

/// Root mean squared error.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    check(pred, truth);
    if pred.is_empty() {
        return 0.0;
    }
    let s: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    (s / pred.len() as f64).sqrt()
}

/// Mean absolute error.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    check(pred, truth);
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter().zip(truth).map(|(p, t)| (p - t).abs()).sum::<f64>() / pred.len() as f64
}

/// Coefficient of determination R² = 1 - SS_res / SS_tot.
///
/// Returns `f64::NEG_INFINITY`-free values: when the truth is constant
/// (SS_tot == 0) the convention here is 0.0 for imperfect predictions and
/// 1.0 for perfect ones.
pub fn r2(pred: &[f64], truth: &[f64]) -> f64 {
    check(pred, truth);
    if pred.is_empty() {
        return 0.0;
    }
    let mean_t: f64 = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_res: f64 = pred.iter().zip(truth).map(|(p, t)| (t - p) * (t - p)).sum();
    let ss_tot: f64 = truth.iter().map(|t| (t - mean_t) * (t - mean_t)).sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Pearson correlation coefficient; 0.0 when either input is constant.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    check(a, b);
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        let dx = x - ma;
        let dy = y - mb;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Spearman rank correlation (Pearson on average-ranked data, so ties are
/// handled with midranks).
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    check(a, b);
    pearson(&ranks(a), &ranks(b))
}

/// Midrank transform: ties receive the average of the ranks they span.
pub fn ranks(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| x[i].partial_cmp(&x[j]).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && x[order[j + 1]] == x[order[i]] {
            j += 1;
        }
        // Average 1-based rank over the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

fn check(a: &[f64], b: &[f64]) {
    assert_eq!(
        a.len(),
        b.len(),
        "metric inputs must have equal length: {} vs {}",
        a.len(),
        b.len()
    );
}

/// Bundle of all Table 6 regression metrics for one model/dataset pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressionReport {
    pub rmse: f64,
    pub mae: f64,
    pub r2: f64,
    pub pearson: f64,
    pub spearman: f64,
}

impl RegressionReport {
    /// Computes every regression metric at once.
    pub fn compute(pred: &[f64], truth: &[f64]) -> Self {
        Self {
            rmse: rmse(pred, truth),
            mae: mae(pred, truth),
            r2: r2(pred, truth),
            pearson: pearson(pred, truth),
            spearman: spearman(pred, truth),
        }
    }
}

impl std::fmt::Display for RegressionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RMSE {:.3}  MAE {:.3}  R2 {:.3}  Pearson {:.3}  Spearman {:.3}",
            self.rmse, self.mae, self.r2, self.pearson, self.spearman
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let t = [1.0, 2.0, 3.0];
        let r = RegressionReport::compute(&t, &t);
        assert_eq!(r.rmse, 0.0);
        assert_eq!(r.mae, 0.0);
        assert_eq!(r.r2, 1.0);
        assert!((r.pearson - 1.0).abs() < 1e-12);
        assert!((r.spearman - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_rmse_mae() {
        let p = [1.0, 2.0];
        let t = [0.0, 4.0];
        assert!((rmse(&p, &t) - (2.5f64).sqrt()).abs() < 1e-12);
        assert!((mae(&p, &t) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn pearson_sign_and_invariance() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = b.iter().map(|x| -x).collect();
        assert!((pearson(&a, &neg) + 1.0).abs() < 1e-12);
        // Affine invariance.
        let affine: Vec<f64> = b.iter().map(|x| 3.0 * x + 7.0).collect();
        assert!((pearson(&a, &affine) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_inputs_yield_zero_correlation() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(spearman(&[2.0, 2.0], &[1.0, 5.0]), 0.0);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let a = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let b: Vec<f64> = a.iter().map(|x| x.exp()).collect();
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        // Pearson is < 1 on the same data.
        assert!(pearson(&a, &b) < 1.0);
    }

    #[test]
    fn ranks_handle_ties_with_midranks() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn r2_constant_truth_convention() {
        assert_eq!(r2(&[1.0, 1.0], &[2.0, 2.0]), 0.0);
        assert_eq!(r2(&[2.0, 2.0], &[2.0, 2.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        rmse(&[1.0], &[1.0, 2.0]);
    }
}
