//! Binary-classification metrics for the paper's Figures 2 and 5:
//! precision/recall curves, F1 scores and Cohen's kappa against a random
//! classifier baseline.

/// One point on a precision/recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Score threshold generating this point (predict positive if
    /// `score >= threshold`).
    pub threshold: f64,
    pub precision: f64,
    pub recall: f64,
    /// F1 at this operating point (0 when precision+recall == 0).
    pub f1: f64,
}

/// A full precision/recall curve with summary statistics.
#[derive(Debug, Clone)]
pub struct PrCurve {
    /// Points ordered by decreasing threshold (increasing recall).
    pub points: Vec<PrPoint>,
    /// Fraction of positives in the data — the precision of a random
    /// classifier, drawn as the horizontal dashed line in Figures 2/5.
    pub baseline_precision: f64,
    /// Area under the curve (average precision, computed as the step-wise
    /// sum of precision · Δrecall).
    pub average_precision: f64,
}

impl PrCurve {
    /// Builds the curve from scores (higher = more positive) and boolean
    /// labels. Every distinct score is used as a threshold.
    pub fn compute(scores: &[f64], labels: &[bool]) -> PrCurve {
        assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
        assert!(!scores.is_empty(), "PR curve of empty data");
        let total_pos = labels.iter().filter(|&&l| l).count();
        assert!(total_pos > 0, "PR curve requires at least one positive");
        let n = scores.len();
        let mut order: Vec<usize> = (0..n).collect();
        // Descending score order.
        order.sort_by(|&i, &j| {
            scores[j].partial_cmp(&scores[i]).unwrap_or(std::cmp::Ordering::Equal)
        });

        let mut points = Vec::new();
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut ap = 0.0f64;
        let mut prev_recall = 0.0f64;
        let mut k = 0usize;
        while k < n {
            // Advance through all items tied at this score so thresholds
            // between tied scores are never used.
            let score = scores[order[k]];
            while k < n && scores[order[k]] == score {
                if labels[order[k]] {
                    tp += 1;
                } else {
                    fp += 1;
                }
                k += 1;
            }
            let precision = tp as f64 / (tp + fp) as f64;
            let recall = tp as f64 / total_pos as f64;
            let f1 = if precision + recall > 0.0 {
                2.0 * precision * recall / (precision + recall)
            } else {
                0.0
            };
            ap += precision * (recall - prev_recall);
            prev_recall = recall;
            points.push(PrPoint { threshold: score, precision, recall, f1 });
        }
        PrCurve { points, baseline_precision: total_pos as f64 / n as f64, average_precision: ap }
    }

    /// The operating point with maximal F1.
    pub fn best_f1(&self) -> PrPoint {
        *self
            .points
            .iter()
            .max_by(|a, b| a.f1.partial_cmp(&b.f1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("curve has at least one point")
    }

    /// Serializes the curve as CSV rows `threshold,precision,recall,f1`.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("threshold,precision,recall,f1\n");
        for p in &self.points {
            s.push_str(&format!(
                "{:.6},{:.6},{:.6},{:.6}\n",
                p.threshold, p.precision, p.recall, p.f1
            ));
        }
        s
    }
}

/// Confusion-matrix counts for a fixed threshold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    pub tp: usize,
    pub fp: usize,
    pub tn: usize,
    pub fn_: usize,
}

impl Confusion {
    /// Counts outcomes predicting positive when `score >= threshold`.
    pub fn at_threshold(scores: &[f64], labels: &[bool], threshold: f64) -> Self {
        assert_eq!(scores.len(), labels.len());
        let mut c = Confusion::default();
        for (&s, &l) in scores.iter().zip(labels) {
            match (s >= threshold, l) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// Cohen's kappa (Equation 2 of the paper): agreement above chance,
    /// where the chance term uses the marginal frequencies of both the
    /// classifier and the data. A random classifier achieves κ = 0.
    pub fn cohens_kappa(&self) -> f64 {
        let n = self.total() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let po = self.accuracy();
        let pred_pos = (self.tp + self.fp) as f64 / n;
        let actual_pos = (self.tp + self.fn_) as f64 / n;
        let pe = pred_pos * actual_pos + (1.0 - pred_pos) * (1.0 - actual_pos);
        if (1.0 - pe).abs() < 1e-12 {
            return 0.0;
        }
        (po - pe) / (1.0 - pe)
    }
}

/// Maximum Cohen's kappa over all candidate thresholds (the paper reports
/// per-model κ; scanning thresholds mirrors its per-curve evaluation).
pub fn best_kappa(scores: &[f64], labels: &[bool]) -> f64 {
    let mut thresholds: Vec<f64> = scores.to_vec();
    thresholds.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    thresholds.dedup();
    thresholds
        .iter()
        .map(|&t| Confusion::at_threshold(scores, labels, t).cohens_kappa())
        .fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier_curve() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        let c = PrCurve::compute(&scores, &labels);
        let best = c.best_f1();
        assert_eq!(best.f1, 1.0);
        assert!((c.average_precision - 1.0).abs() < 1e-12);
        assert_eq!(c.baseline_precision, 0.5);
    }

    #[test]
    fn random_scores_approach_baseline_precision() {
        // Deterministic pseudo-random scores independent of labels.
        let n = 2000;
        let scores: Vec<f64> =
            (0..n).map(|i| ((i * 2654435761u64 as usize) % 1000) as f64).collect();
        let labels: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect(); // 25% positive
        let c = PrCurve::compute(&scores, &labels);
        assert!((c.average_precision - 0.25).abs() < 0.05, "ap {}", c.average_precision);
    }

    #[test]
    fn curve_recall_is_monotone() {
        let scores = [0.3, 0.5, 0.5, 0.9, 0.1, 0.7];
        let labels = [false, true, false, true, true, false];
        let c = PrCurve::compute(&scores, &labels);
        for w in c.points.windows(2) {
            assert!(w[1].recall >= w[0].recall);
            assert!(w[1].threshold <= w[0].threshold);
        }
        // Last point has recall 1 (threshold at min score includes all).
        assert!((c.points.last().unwrap().recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_hand_computed() {
        let scores = [0.9, 0.6, 0.4, 0.1];
        let labels = [true, false, true, false];
        let c = Confusion::at_threshold(&scores, &labels, 0.5);
        assert_eq!(c, Confusion { tp: 1, fp: 1, tn: 1, fn_: 1 });
        assert_eq!(c.accuracy(), 0.5);
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.recall(), 0.5);
        assert_eq!(c.f1(), 0.5);
    }

    #[test]
    fn kappa_zero_for_constant_classifier_positive_for_skill() {
        let labels = [true, true, false, false, false, false];
        // Constant classifier: predicts everything positive.
        let constant = [1.0; 6];
        let k0 = Confusion::at_threshold(&constant, &labels, 0.5).cohens_kappa();
        assert!(k0.abs() < 1e-12, "constant classifier kappa {k0}");
        // Skilled classifier.
        let skilled = [0.9, 0.8, 0.3, 0.2, 0.4, 0.1];
        let k1 = Confusion::at_threshold(&skilled, &labels, 0.5).cohens_kappa();
        assert!(k1 > 0.9, "skilled kappa {k1}");
    }

    #[test]
    fn best_kappa_scans_thresholds() {
        let labels = [true, false, true, false];
        let scores = [0.8, 0.4, 0.7, 0.3];
        assert!((best_kappa(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let c = PrCurve::compute(&[0.9, 0.1], &[true, false]);
        let csv = c.to_csv();
        assert!(csv.starts_with("threshold,precision,recall,f1\n"));
        assert_eq!(csv.lines().count(), 1 + c.points.len());
    }

    #[test]
    #[should_panic(expected = "at least one positive")]
    fn pr_requires_positives() {
        PrCurve::compute(&[0.5], &[false]);
    }
}
