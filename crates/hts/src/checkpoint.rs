//! Campaign durability: a crash-safe checkpoint manifest.
//!
//! The paper's pipeline was "tailored for fault tolerance" (§4.2) because
//! at Lassen scale node deaths and broken pipes are routine. The
//! [`scheduler`](crate::scheduler) already reschedules failed *jobs*; this
//! module makes the *driver* itself restartable. Every terminal job event
//! (completed or abandoned) is journaled to an append-only manifest file,
//! and [`resume_campaign`](crate::scheduler::resume_campaign) replays the
//! journal to skip finished work, producing a result set bit-identical to
//! an uninterrupted run.
//!
//! ## Manifest format
//!
//! ```text
//! [magic "DFCP" | version u32]
//! repeated entries:
//!   [payload_len u32][fnv1a64(payload) u64][payload bytes (JSON ManifestEntry)]
//! ```
//!
//! Crash-safety contract:
//!
//! * every entry is `sync_data`ed before [`CheckpointWriter::append`]
//!   returns, so a journaled job survives a driver kill at any later point;
//! * a driver killed *mid-append* leaves a torn tail — on load the first
//!   frame that is truncated or fails its checksum ends the parse, the
//!   tail is dropped, and reopening for append truncates the file back to
//!   the last good entry so new entries stay parseable;
//! * a manifest whose header is unreadable is rejected with
//!   [`CheckpointError::Corrupt`], never a panic.
//!
//! Completed entries do not journal the records themselves — those already
//! live in the job's (atomically written) rank `.dfh5` files. A
//! [`JobSummary`] records the file list, record count, fault log and
//! timing; [`reconstruct_output`] reads the rank files back and re-derives
//! the exact allgather record order, so a restored [`JobOutput`] is
//! bit-identical to the one the crashed run held in memory.
//!
//! Journaled specs carry their [`TaskClass`](crate::job::TaskClass) tag,
//! so a heterogeneous campaign resumes each job onto the lane (and the
//! class-scaled fault stream) it originally ran under. Manifests written
//! before task classes existed have no `class` key; those specs decode as
//! `Dock` — the only class such campaigns ran — and resume bit-identically.

use crate::h5lite::{read_file, H5Error, ScoreRecord};
use crate::job::{JobConfig, JobOutput, JobSpec, JobTiming};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"DFCP";
const VERSION: u32 = 1;
/// Upper bound on one entry's payload; anything larger is treated as a
/// torn/corrupt frame rather than an allocation request.
const MAX_ENTRY_BYTES: usize = 64 << 20;

/// Errors from checkpoint I/O and restore.
#[derive(Debug)]
pub enum CheckpointError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The manifest header or an entry body is unreadable.
    Corrupt(String),
    /// A journaled job's rank files no longer match the journal.
    Restore(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "checkpoint manifest corrupt: {m}"),
            CheckpointError::Restore(m) => write!(f, "checkpoint restore failed: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// What a completed job left behind, sufficient to rebuild its
/// [`JobOutput`] from disk without re-running it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSummary {
    /// Total gathered records (across all rank files).
    pub records: usize,
    /// The job's rank output files, as written (already renamed into
    /// place atomically, so their presence implies they are complete).
    pub files: Vec<PathBuf>,
    /// Faults the job logged while running.
    pub faults: Vec<crate::fault::FaultEvent>,
    /// Rank-file writes that were re-issued after a broken pipe.
    pub write_retries: usize,
    /// Wall-clock phase breakdown of the original run.
    pub timing: JobTiming,
}

/// Active-learning epoch state journaled by
/// [`run_active_campaign`](crate::active::run_active_campaign) after each
/// retrain + hot-swap. The expensive state (docking labels) lives in the
/// same manifest's job entries; this entry pins the *cheap but
/// order-sensitive* state — which compounds the epoch selected and the
/// exact weights it published — so a resumed campaign can recompute the
/// epoch and assert bit-identity instead of silently diverging.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochState {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// Surrogate-registry generation published by this epoch's hot-swap.
    pub generation: u64,
    /// `dfsurrogate::snapshot_hash` of the weights that epoch published.
    pub snapshot_hash: u64,
    /// Size of the cumulative labeled pool after this epoch's docking.
    pub labeled: u64,
    /// Compound indices this epoch routed into the dock stage, ascending.
    pub docked: Vec<u64>,
}

/// One journaled terminal job event (or epoch marker).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ManifestEntry {
    /// The job finished; its records are on disk in `summary.files`.
    Completed {
        /// The job's spec as executed.
        spec: JobSpec,
        /// Where its output landed and what it contained.
        summary: JobSummary,
    },
    /// The job exhausted its attempts (spec carries the final attempt).
    Abandoned {
        /// The abandoned job's final-attempt spec.
        spec: JobSpec,
    },
    /// An active-learning epoch finished retraining and hot-swapped its
    /// surrogate; not a job event (`job_id()` is `None`).
    Epoch {
        /// The epoch's published state.
        state: EpochState,
    },
}

impl ManifestEntry {
    /// The job this entry journals, or `None` for non-job entries
    /// (epoch markers).
    pub fn job_id(&self) -> Option<u64> {
        match self {
            ManifestEntry::Completed { spec, .. } | ManifestEntry::Abandoned { spec } => {
                Some(spec.job_id)
            }
            ManifestEntry::Epoch { .. } => None,
        }
    }
}

/// FNV-1a 64-bit, the frame checksum. Not cryptographic — it only needs
/// to catch torn writes and bit rot.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A manifest parsed back from disk.
#[derive(Debug)]
pub struct LoadedManifest {
    /// Every intact journaled entry, in write order.
    pub entries: Vec<ManifestEntry>,
    /// Byte offset of the end of the last good entry (header included).
    pub valid_len: u64,
    /// Torn-tail bytes dropped after `valid_len` (0 for a clean file).
    pub dropped_bytes: u64,
}

/// Parses a manifest, dropping any torn tail. Fails only if the header
/// itself is unreadable or an intact frame carries a payload that does
/// not decode (real corruption, not a crash artifact).
pub fn load_manifest(path: impl AsRef<Path>) -> Result<LoadedManifest, CheckpointError> {
    let mut raw = Vec::new();
    std::fs::File::open(&path)?.read_to_end(&mut raw)?;
    if raw.len() < 8 {
        return Err(CheckpointError::Corrupt("file shorter than header".into()));
    }
    if &raw[..4] != MAGIC {
        return Err(CheckpointError::Corrupt("bad magic".into()));
    }
    let version = u32::from_le_bytes(raw[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(CheckpointError::Corrupt(format!("unsupported version {version}")));
    }
    let mut entries = Vec::new();
    let mut pos = 8usize;
    // Frame header: payload length + checksum. Anything short of a
    // full, checksum-valid frame is a torn tail from a mid-append
    // crash: stop parsing and drop it.
    while let Some(frame) = raw.get(pos..pos + 12) {
        let len = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes")) as usize;
        let sum = u64::from_le_bytes(frame[4..12].try_into().expect("8 bytes"));
        if len > MAX_ENTRY_BYTES {
            break;
        }
        let Some(payload) = raw.get(pos + 12..pos + 12 + len) else { break };
        if fnv1a64(payload) != sum {
            break;
        }
        // The frame is intact, so a payload that fails to decode is real
        // corruption (or a format skew), not a torn write.
        let text = std::str::from_utf8(payload)
            .map_err(|_| CheckpointError::Corrupt("entry payload not utf8".into()))?;
        let entry: ManifestEntry = serde_json::from_str(text)
            .map_err(|e| CheckpointError::Corrupt(format!("entry does not decode: {e}")))?;
        entries.push(entry);
        pos += 12 + len;
    }
    Ok(LoadedManifest { entries, valid_len: pos as u64, dropped_bytes: (raw.len() - pos) as u64 })
}

/// Appends terminal job events to a manifest, fsyncing each entry.
pub struct CheckpointWriter {
    file: std::fs::File,
    path: PathBuf,
}

impl CheckpointWriter {
    /// Creates a fresh manifest (truncating any existing file) and syncs
    /// the header.
    pub fn create(path: impl AsRef<Path>) -> Result<CheckpointWriter, CheckpointError> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = std::fs::File::create(&path)?;
        file.write_all(MAGIC)?;
        file.write_all(&VERSION.to_le_bytes())?;
        file.sync_all()?;
        Ok(CheckpointWriter { file, path: path.as_ref().to_path_buf() })
    }

    /// Opens an existing manifest for append (creating it if absent),
    /// returning the journaled entries. A torn tail is truncated away so
    /// subsequent appends remain parseable.
    pub fn open_or_create(
        path: impl AsRef<Path>,
    ) -> Result<(CheckpointWriter, LoadedManifest), CheckpointError> {
        let path = path.as_ref();
        if !path.exists() {
            let w = Self::create(path)?;
            return Ok((w, LoadedManifest { entries: Vec::new(), valid_len: 8, dropped_bytes: 0 }));
        }
        let loaded = load_manifest(path)?;
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        if loaded.dropped_bytes > 0 {
            dftrace::counter_add("hts.checkpoint_torn_tails", 1);
            file.set_len(loaded.valid_len)?;
            file.sync_all()?;
        }
        let mut file = file;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok((CheckpointWriter { file, path: path.to_path_buf() }, loaded))
    }

    /// Manifest location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Journals one entry and fsyncs it. On return the entry is durable:
    /// a driver crash at any later point will replay it on resume.
    pub fn append(&mut self, entry: &ManifestEntry) -> Result<(), CheckpointError> {
        let payload = serde_json::to_string(entry)
            .map_err(|e| CheckpointError::Corrupt(format!("entry does not encode: {e}")))?;
        let payload = payload.as_bytes();
        let mut frame = Vec::with_capacity(12 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        // One write_all per frame keeps the torn-tail window to a single
        // frame; sync_data makes the entry durable before the scheduler
        // publishes the job as done.
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        dftrace::counter_add("hts.checkpoint_appends", 1);
        Ok(())
    }
}

/// Summarizes a completed job for the journal.
pub fn summarize(out: &JobOutput) -> JobSummary {
    JobSummary {
        records: out.records.len(),
        files: out.files.clone(),
        faults: out.faults.clone(),
        write_retries: out.write_retries,
        timing: out.timing,
    }
}

/// Rebuilds a completed job's [`JobOutput`] from its journaled summary
/// and on-disk rank files.
///
/// The rank files jointly hold every gathered record exactly once
/// (partitioned by `compound_index % num_ranks`), but in file order, not
/// the allgather order the live run returned. The allgather concatenates
/// rank contributions in rank order, and rank `r` scores compounds
/// `first + r, first + r + num_ranks, …` ascending — so sorting by
/// `((index - first) % num_ranks, index, pose_rank)` re-derives the exact
/// live ordering and the restored output is bit-identical.
///
/// Fails (so the caller can fall back to re-running the job) if any rank
/// file is missing/corrupt or the record count disagrees with the journal.
pub fn reconstruct_output(
    cfg: &JobConfig,
    spec: &JobSpec,
    summary: &JobSummary,
) -> Result<JobOutput, CheckpointError> {
    let mut records: Vec<ScoreRecord> = Vec::with_capacity(summary.records);
    for path in &summary.files {
        let chunks = read_file(path).map_err(|e| match e {
            H5Error::Io(e) => CheckpointError::Restore(format!("{}: {e}", path.display())),
            H5Error::Corrupt(m) => CheckpointError::Restore(format!("{}: {m}", path.display())),
        })?;
        for (_, mut chunk) in chunks {
            records.append(&mut chunk);
        }
    }
    if records.len() != summary.records {
        return Err(CheckpointError::Restore(format!(
            "job {}: rank files hold {} records, journal says {}",
            spec.job_id,
            records.len(),
            summary.records
        )));
    }
    let num_ranks = cfg.num_ranks().max(1) as u64;
    records.sort_by_key(|r| {
        let lane = r.compound.index.wrapping_sub(spec.first_compound) % num_ranks;
        (lane, r.compound.index, r.pose_rank)
    });
    Ok(JobOutput {
        job_id: spec.job_id,
        records,
        files: summary.files.clone(),
        faults: summary.faults.clone(),
        timing: summary.timing,
        write_retries: summary.write_retries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultEvent;
    use dfchem::genmol::Library;
    use dfchem::pocket::TargetSite;
    use std::time::Duration;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dfckpt_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn spec(job_id: u64) -> JobSpec {
        JobSpec {
            job_id,
            target: TargetSite::Spike1,
            library: Library::EnamineVirtual,
            first_compound: job_id * 8,
            num_compounds: 8,
            campaign_seed: 4,
            class: crate::job::TaskClass::Dock,
            attempt: 0,
        }
    }

    fn entry(job_id: u64) -> ManifestEntry {
        ManifestEntry::Completed {
            spec: spec(job_id),
            summary: JobSummary {
                records: 3,
                files: vec![PathBuf::from(format!("/tmp/job{job_id}.dfh5"))],
                faults: vec![FaultEvent::BadMetadata { compound_index: 1 }],
                write_retries: 0,
                timing: JobTiming {
                    startup: Duration::from_millis(1),
                    evaluate: Duration::from_millis(2),
                    output: Duration::from_millis(3),
                    poses_evaluated: 3,
                },
            },
        }
    }

    #[test]
    fn entries_round_trip() {
        let dir = tmpdir("rt");
        let path = dir.join("manifest.dfcp");
        let mut w = CheckpointWriter::create(&path).unwrap();
        w.append(&entry(0)).unwrap();
        w.append(&ManifestEntry::Abandoned { spec: spec(1) }).unwrap();
        w.append(&entry(2)).unwrap();
        drop(w);
        let loaded = load_manifest(&path).unwrap();
        assert_eq!(loaded.dropped_bytes, 0);
        assert_eq!(loaded.entries.len(), 3);
        assert_eq!(
            loaded.entries.iter().map(ManifestEntry::job_id).collect::<Vec<_>>(),
            vec![Some(0), Some(1), Some(2)]
        );
        assert!(matches!(loaded.entries[1], ManifestEntry::Abandoned { .. }));
        match &loaded.entries[0] {
            ManifestEntry::Completed { spec, summary } => {
                assert_eq!(spec.job_id, 0);
                assert_eq!(summary.records, 3);
                assert_eq!(summary.faults.len(), 1);
            }
            other => panic!("unexpected entry {other:?}"),
        }
        std::fs::remove_dir_all(dir).ok();
    }

    /// Epoch markers journal beside job entries, round-trip exactly, and
    /// are invisible to job-id indexing (the scheduler's resume path).
    #[test]
    fn epoch_entries_round_trip_and_carry_no_job_id() {
        let dir = tmpdir("epoch");
        let path = dir.join("manifest.dfcp");
        let state = EpochState {
            epoch: 1,
            generation: 2,
            snapshot_hash: 0xDEAD_BEEF_CAFE_F00D,
            labeled: 40,
            docked: vec![3, 7, 19],
        };
        let mut w = CheckpointWriter::create(&path).unwrap();
        w.append(&entry(0)).unwrap();
        w.append(&ManifestEntry::Epoch { state: state.clone() }).unwrap();
        w.append(&entry(1)).unwrap();
        drop(w);
        let loaded = load_manifest(&path).unwrap();
        assert_eq!(loaded.entries.len(), 3);
        assert_eq!(loaded.entries[1].job_id(), None);
        match &loaded.entries[1] {
            ManifestEntry::Epoch { state: s } => assert_eq!(*s, state),
            other => panic!("unexpected entry {other:?}"),
        }
        std::fs::remove_dir_all(dir).ok();
    }

    /// A manifest entry journaled before task classes existed has no
    /// `class` key; its spec must decode as `Dock`, keeping pre-class
    /// manifests resumable bit for bit.
    #[test]
    fn pre_class_manifest_entries_decode_as_dock() {
        use crate::job::TaskClass;
        let modern = serde_json::to_string(&ManifestEntry::Abandoned { spec: spec(7) }).unwrap();
        assert!(modern.contains("\"class\""), "modern entries journal the class tag: {modern}");
        // Strip the class key the way an old driver simply never wrote it.
        let legacy = modern.replace("\"class\":\"dock\",", "");
        assert!(!legacy.contains("class"), "stripped: {legacy}");
        let entry: ManifestEntry = serde_json::from_str(&legacy).unwrap();
        match entry {
            ManifestEntry::Abandoned { spec } => {
                assert_eq!(spec.class, TaskClass::Dock);
                assert_eq!(spec.job_id, 7);
            }
            other => panic!("unexpected entry {other:?}"),
        }
    }

    #[test]
    fn torn_tail_is_dropped_on_load_and_truncated_on_reopen() {
        let dir = tmpdir("torn");
        let path = dir.join("manifest.dfcp");
        let mut w = CheckpointWriter::create(&path).unwrap();
        w.append(&entry(0)).unwrap();
        w.append(&entry(1)).unwrap();
        drop(w);
        let good_len = std::fs::metadata(&path).unwrap().len();
        // Crash mid-append: a frame header promising more bytes than were
        // written.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&500u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(b"partial payl");
        std::fs::write(&path, &bytes).unwrap();

        let loaded = load_manifest(&path).unwrap();
        assert_eq!(loaded.entries.len(), 2, "good prefix survives");
        assert_eq!(loaded.valid_len, good_len);
        assert!(loaded.dropped_bytes > 0);

        // Reopen-for-append truncates the torn bytes and new entries are
        // readable.
        let (mut w, reloaded) = CheckpointWriter::open_or_create(&path).unwrap();
        assert_eq!(reloaded.entries.len(), 2);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len);
        w.append(&entry(2)).unwrap();
        drop(w);
        let final_load = load_manifest(&path).unwrap();
        assert_eq!(final_load.entries.len(), 3);
        assert_eq!(final_load.dropped_bytes, 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn checksum_mismatch_ends_the_parse() {
        let dir = tmpdir("sum");
        let path = dir.join("manifest.dfcp");
        let mut w = CheckpointWriter::create(&path).unwrap();
        w.append(&entry(0)).unwrap();
        let good_len = std::fs::metadata(&path).unwrap().len() as usize;
        w.append(&entry(1)).unwrap();
        drop(w);
        // Flip a payload byte of the second entry.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[good_len + 14] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let loaded = load_manifest(&path).unwrap();
        assert_eq!(loaded.entries.len(), 1, "entry after the flip is dropped");
        assert_eq!(loaded.valid_len as usize, good_len);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corrupt_header_is_an_error_not_a_panic() {
        let dir = tmpdir("hdr");
        let bad_magic = dir.join("bad.dfcp");
        std::fs::write(&bad_magic, b"NOPE0000rest").unwrap();
        assert!(matches!(load_manifest(&bad_magic), Err(CheckpointError::Corrupt(_))));
        let short = dir.join("short.dfcp");
        std::fs::write(&short, b"DF").unwrap();
        assert!(matches!(load_manifest(&short), Err(CheckpointError::Corrupt(_))));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn open_or_create_starts_empty_manifests() {
        let dir = tmpdir("fresh");
        let path = dir.join("manifest.dfcp");
        let (w, loaded) = CheckpointWriter::open_or_create(&path).unwrap();
        assert!(loaded.entries.is_empty());
        drop(w);
        assert!(load_manifest(&path).unwrap().entries.is_empty());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn giant_frame_length_is_treated_as_torn_not_allocated() {
        let dir = tmpdir("giant");
        let path = dir.join("manifest.dfcp");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let loaded = load_manifest(&path).unwrap();
        assert!(loaded.entries.is_empty());
        assert!(loaded.dropped_bytes > 0);
        std::fs::remove_dir_all(dir).ok();
    }
}
