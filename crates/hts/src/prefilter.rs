//! Campaign prefilter: the ligand-only triage stage ahead of docking.
//!
//! The paper's funnel spends its budget on expensive fusion-model
//! rescoring; this stage is the cheap outermost ring. It streams a
//! generated library through `dfchem`'s `filter → fingerprint → score`
//! pipeline (bounded memory, bit-deterministic across lane counts) and
//! produces a ranked shortlist plus the per-rule rejection accounting
//! that documents the funnel (`docs/CHEMISTRY.md`).
//!
//! Campaign jobs evaluate **contiguous** compound ranges
//! ([`crate::job::JobSpec`]), so the shortlist is bridged to job
//! assignment by coalescing selected indices into contiguous runs
//! ([`PrefilterOutcome::selection_ranges`]); each run maps onto one
//! `JobSpec { first_compound, num_compounds }`. Dense shortlists
//! coalesce into huge runs, so runs are split at a
//! `max_compounds_per_job` cap into *balanced* pieces — otherwise a
//! 300k-compound contiguous selection would become one straggler job
//! that serializes the whole campaign tail.
//! [`PrefilterOutcome::job_specs`] goes one step further and emits
//! ready-to-schedule dock-class [`crate::job::JobSpec`]s.

use crate::job::{JobSpec, TaskClass};
use dfchem::genmol::{Compound, Library};
use dfchem::pocket::TargetSite;
use dfchem::screen::{screen_library, FunnelStats, RankedCompound, ScreenConfig};
use dfchem::RejectionTally;
use serde::{Deserialize, Serialize};

/// Coalesces sorted-deduplicated selected indices into contiguous
/// ascending `(first_compound, num_compounds)` runs, splitting runs
/// longer than `max_compounds_per_job` (0 = unbounded) into balanced
/// pieces whose lengths differ by at most one.
///
/// This is the single range-splitting implementation behind both
/// [`PrefilterOutcome::selection_ranges`] (rule-filter shortlists) and
/// the active-learning driver's per-epoch dock assignments
/// ([`crate::active`]) — the two funnels must never disagree on how a
/// shortlist becomes jobs.
pub fn coalesce_ranges(mut indices: Vec<u64>, max_compounds_per_job: u64) -> Vec<(u64, u64)> {
    indices.sort_unstable();
    indices.dedup();
    let mut runs: Vec<(u64, u64)> = Vec::new();
    for i in indices {
        match runs.last_mut() {
            Some((first, len)) if *first + *len == i => *len += 1,
            _ => runs.push((i, 1)),
        }
    }
    if max_compounds_per_job == 0 {
        return runs;
    }
    let cap = max_compounds_per_job;
    let mut ranges = Vec::with_capacity(runs.len());
    for (first, len) in runs {
        if len <= cap {
            ranges.push((first, len));
            continue;
        }
        let pieces = len.div_ceil(cap);
        let base = len / pieces;
        let extra = len % pieces; // the first `extra` pieces get +1
        let mut off = 0;
        for p in 0..pieces {
            let n = base + u64::from(p < extra);
            ranges.push((first + off, n));
            off += n;
        }
    }
    ranges
}

/// Configuration of the prefilter stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefilterConfig {
    /// The underlying streaming screen (library, filter, fingerprints,
    /// chunking, hit threshold).
    pub screen: ScreenConfig,
    /// How many ranked survivors to carry into the docking stage.
    pub select: usize,
}

impl PrefilterConfig {
    /// A ZINC-druglike prefilter selecting the best `select` of
    /// `num_compounds` compounds.
    pub fn new(library: Library, num_compounds: u64, campaign_seed: u64, select: usize) -> Self {
        let mut screen = ScreenConfig::new(library, num_compounds, campaign_seed);
        screen.top_k = select;
        PrefilterConfig { screen, select }
    }
}

/// What the prefilter stage produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefilterOutcome {
    /// Per-stage funnel counts of the ligand-only screen.
    pub funnel: FunnelStats,
    /// Per-rule rejection accounting for the drug-likeness gate.
    pub tally: RejectionTally,
    /// The ranked shortlist, best (most negative) ligand score first.
    pub shortlist: Vec<RankedCompound>,
}

impl PrefilterOutcome {
    /// Shortlist indices coalesced into contiguous, ascending
    /// `(first_compound, num_compounds)` runs — the shape
    /// [`crate::job::JobSpec`] assigns to ranks. Adjacent selected
    /// indices merge into one run; isolated ones become runs of length 1.
    ///
    /// Runs longer than `max_compounds_per_job` (0 = unbounded) are split
    /// into balanced pieces whose lengths differ by at most one, rather
    /// than cap-sized pieces plus a short remainder: a dense 1000-index
    /// run under a cap of 300 becomes 250+250+250+250, not
    /// 300+300+300+100, so no job in the campaign tail is a straggler.
    pub fn selection_ranges(&self, max_compounds_per_job: u64) -> Vec<(u64, u64)> {
        coalesce_ranges(self.shortlist.iter().map(|r| r.index).collect(), max_compounds_per_job)
    }

    /// Turns the shortlist into ready-to-schedule dock-class
    /// [`JobSpec`]s: one per [`selection_ranges`](Self::selection_ranges)
    /// run (capped at `max_compounds_per_job`), round-robin over
    /// `targets`, with sequential job ids starting at `first_job_id`.
    pub fn job_specs(
        &self,
        targets: &[TargetSite],
        library: Library,
        campaign_seed: u64,
        first_job_id: u64,
        max_compounds_per_job: u64,
    ) -> Vec<JobSpec> {
        self.selection_ranges(max_compounds_per_job)
            .into_iter()
            .enumerate()
            .map(|(i, (first_compound, num_compounds))| JobSpec {
                job_id: first_job_id + i as u64,
                target: targets[i % targets.len()],
                library,
                first_compound,
                num_compounds,
                campaign_seed,
                class: TaskClass::Dock,
                attempt: 0,
            })
            .collect()
    }

    /// Fraction of the library the docking stage still has to look at:
    /// `selected / evaluated` (0 when nothing was evaluated).
    pub fn reduction(&self) -> f64 {
        dftrace::rate::mean(self.shortlist.len() as f64, self.funnel.evaluated as f64)
    }
}

/// Sorts by (score ascending, index ascending) and truncates to `k` —
/// more negative is stronger throughout the funnel.
fn rank_truncate(top: &mut Vec<RankedCompound>, k: usize) {
    top.sort_by(|a, b| {
        a.score.partial_cmp(&b.score).expect("scores are finite").then(a.index.cmp(&b.index))
    });
    top.truncate(k);
}

/// Runs the prefilter stage: streams the library, tallies the funnel and
/// returns the ranked shortlist. Deterministic for a fixed config at any
/// `dfpool` lane count. Emits `hts.prefilter.*` counters and inherits
/// the `chem.filter.*` / `chem.fp.*` instrumentation of the underlying
/// pipeline.
///
/// This is the rule-filter instantiation of the shared shortlist path:
/// an arbitrary scorer (e.g. the `dfsurrogate` model) plugs into the
/// identical funnel via [`run_prefilter_with`], and both feed the same
/// [`PrefilterOutcome::selection_ranges`] / [`coalesce_ranges`] bridge
/// into job specs.
pub fn run_prefilter(cfg: &PrefilterConfig) -> PrefilterOutcome {
    let _span = dftrace::span("hts.prefilter");
    let outcome = screen_library(&cfg.screen);
    let mut shortlist = outcome.top;
    rank_truncate(&mut shortlist, cfg.select);
    dftrace::counter_add("hts.prefilter.evaluated", outcome.funnel.evaluated);
    dftrace::counter_add("hts.prefilter.survivors", outcome.funnel.passed_filter);
    dftrace::counter_add("hts.prefilter.selected", shortlist.len() as u64);
    PrefilterOutcome { funnel: outcome.funnel, tally: outcome.tally, shortlist }
}

/// Runs the prefilter stage with an **injected scorer** instead of the
/// built-in rule filter + ligand score: any `Fn(&Compound) -> Option<f32>`
/// where `None` rejects the compound and `Some(score)` admits it (more
/// negative = stronger, as everywhere in the funnel).
///
/// Streams the library in `cfg.screen.chunk_size` chunks on the current
/// [`dfpool`] pool and folds serially in index order, so the outcome is
/// bit-identical at any lane count (the scorer must be a pure function of
/// the compound). The shortlist, funnel counts and range-splitting bridge
/// are shared with [`run_prefilter`] — this is how the surrogate tier
/// re-ranks a library through the exact selection machinery the rule
/// filter uses. The rejection tally carries aggregate counts only: an
/// opaque scorer cannot attribute rejections to individual rules, so
/// `per_rule` stays empty.
pub fn run_prefilter_with<S>(cfg: &PrefilterConfig, scorer: S) -> PrefilterOutcome
where
    S: Fn(&Compound) -> Option<f32> + Sync,
{
    let _span = dftrace::span("hts.prefilter");
    let pool = dfpool::current();
    let scfg = &cfg.screen;
    let mut funnel = FunnelStats::default();
    let mut tally = RejectionTally { evaluated: 0, passed: 0, rejected: 0, per_rule: Vec::new() };
    let mut top: Vec<RankedCompound> = Vec::with_capacity(cfg.select.saturating_mul(2).max(2));
    let mut start = 0u64;
    while start < scfg.num_compounds {
        let len = (scfg.num_compounds - start).min(scfg.chunk_size as u64) as usize;
        let scored: Vec<Option<f32>> = pool.parallel_map(len, 64, |i| {
            let c =
                Compound::materialize_topology(scfg.library, start + i as u64, scfg.campaign_seed);
            scorer(&c)
        });
        // Serial index-order fold: deterministic regardless of lanes.
        let mut passed = 0u64;
        for (i, s) in scored.iter().enumerate() {
            let Some(score) = s else { continue };
            let score = f64::from(*score);
            passed += 1;
            if score <= scfg.hit_threshold {
                funnel.hits += 1;
            }
            top.push(RankedCompound { index: start + i as u64, score });
            if top.len() >= cfg.select.max(1) * 2 {
                rank_truncate(&mut top, cfg.select);
            }
        }
        funnel.evaluated += len as u64;
        funnel.passed_filter += passed;
        funnel.fingerprinted += passed;
        funnel.chunks += 1;
        tally.evaluated += len as u64;
        tally.passed += passed;
        tally.rejected += len as u64 - passed;
        start += len as u64;
    }
    rank_truncate(&mut top, cfg.select);
    dftrace::counter_add("hts.prefilter.evaluated", funnel.evaluated);
    dftrace::counter_add("hts.prefilter.survivors", funnel.passed_filter);
    dftrace::counter_add("hts.prefilter.selected", top.len() as u64);
    PrefilterOutcome { funnel, tally, shortlist: top }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PrefilterConfig {
        let mut cfg = PrefilterConfig::new(Library::Chembl, 600, 17, 24);
        cfg.screen.chunk_size = 128;
        cfg
    }

    #[test]
    fn prefilter_selects_at_most_the_requested_count() {
        let out = run_prefilter(&tiny());
        assert!(out.shortlist.len() <= 24);
        assert!(!out.shortlist.is_empty(), "a druglike generator must yield survivors");
        assert_eq!(out.funnel.evaluated, 600);
        assert!(out.reduction() <= 1.0 && out.reduction() > 0.0);
        for w in out.shortlist.windows(2) {
            assert!(w[0].score <= w[1].score, "shortlist must be ranked best first");
        }
    }

    #[test]
    fn selection_ranges_cover_exactly_the_shortlist() {
        let out = run_prefilter(&tiny());
        let ranges = out.selection_ranges(0);
        let total: u64 = ranges.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, out.shortlist.len() as u64);
        // Uncapped ranges are ascending, non-overlapping, non-adjacent
        // (adjacent runs would have been merged).
        for w in ranges.windows(2) {
            assert!(w[0].0 + w[0].1 < w[1].0);
        }
        // Every shortlist index is covered by exactly one range.
        for r in &out.shortlist {
            let covering = ranges.iter().filter(|&&(f, n)| r.index >= f && r.index < f + n).count();
            assert_eq!(covering, 1, "index {} covered {} times", r.index, covering);
        }
    }

    /// The dense-shortlist fix: a contiguous run splits at the cap into
    /// balanced pieces instead of one mega-job (or cap-sized pieces plus
    /// a straggler remainder).
    #[test]
    fn dense_runs_split_at_the_cap_into_balanced_jobs() {
        // A fully dense shortlist: indices 100..1100 — one 1000-long run.
        let out = PrefilterOutcome {
            funnel: FunnelStats::default(),
            tally: RejectionTally { evaluated: 0, passed: 0, rejected: 0, per_rule: Vec::new() },
            shortlist: (100..1100).map(|i| RankedCompound { index: i, score: -1.0 }).collect(),
        };
        assert_eq!(out.selection_ranges(0), vec![(100, 1000)], "uncapped: one mega-run");
        let capped = out.selection_ranges(300);
        assert_eq!(capped, vec![(100, 250), (350, 250), (600, 250), (850, 250)]);
        // Cap larger than the run leaves it alone; cap of 1 fully splits.
        assert_eq!(out.selection_ranges(1000), vec![(100, 1000)]);
        assert_eq!(out.selection_ranges(1).len(), 1000);
        // Balanced: piece lengths differ by at most one.
        let pieces = out.selection_ranges(7);
        let (lo, hi) =
            pieces.iter().fold((u64::MAX, 0), |(lo, hi), &(_, n)| (lo.min(n), hi.max(n)));
        assert!(hi - lo <= 1, "pieces unbalanced: {lo}..{hi}");
        assert_eq!(pieces.iter().map(|&(_, n)| n).sum::<u64>(), 1000);
    }

    #[test]
    fn job_specs_wrap_capped_ranges_round_robin() {
        let out = PrefilterOutcome {
            funnel: FunnelStats::default(),
            tally: RejectionTally { evaluated: 0, passed: 0, rejected: 0, per_rule: Vec::new() },
            shortlist: (0..500u64).map(|i| RankedCompound { index: i, score: -1.0 }).collect(),
        };
        let specs = out.job_specs(&TargetSite::ALL, Library::Chembl, 7, 10, 100);
        assert_eq!(specs.len(), 5);
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.job_id, 10 + i as u64);
            assert_eq!(s.target, TargetSite::ALL[i % TargetSite::ALL.len()]);
            assert_eq!(s.num_compounds, 100);
            assert_eq!(s.class, TaskClass::Dock);
            assert_eq!(s.attempt, 0);
        }
        // The specs tile the shortlist exactly.
        assert_eq!(specs.iter().map(|s| s.num_compounds).sum::<u64>(), 500);
    }

    #[test]
    fn prefilter_is_lane_count_invariant() {
        let cfg = tiny();
        let serial = dfpool::Pool::new(1).install(|| run_prefilter(&cfg));
        let pooled = dfpool::Pool::new(4).install(|| run_prefilter(&cfg));
        assert_eq!(serial.shortlist, pooled.shortlist);
        assert_eq!(serial.tally, pooled.tally);
        assert_eq!(serial.funnel, pooled.funnel);
    }

    /// An injected scorer rides the same shortlist machinery: ranked
    /// ascending, truncated at `select`, rejections counted, and the
    /// outcome lane-count- and chunk-size-invariant.
    #[test]
    fn injected_scorer_shares_the_shortlist_path() {
        let cfg = tiny();
        // A deterministic synthetic scorer: reject every third compound,
        // score the rest by a hash-ish function of the index.
        let scorer = |c: &Compound| -> Option<f32> {
            if c.id.index.is_multiple_of(3) {
                return None;
            }
            Some(-((c.id.index * 7919 % 601) as f32) / 50.0)
        };
        let out = run_prefilter_with(&cfg, scorer);
        assert_eq!(out.funnel.evaluated, 600);
        assert_eq!(out.funnel.passed_filter, 400, "every third of 600 rejected");
        assert_eq!(out.tally.rejected, 200);
        assert!(out.tally.per_rule.is_empty(), "opaque scorers have no per-rule attribution");
        assert_eq!(out.shortlist.len(), 24);
        for w in out.shortlist.windows(2) {
            assert!(
                (w[0].score, w[0].index) <= (w[1].score, w[1].index),
                "shortlist ranked ascending with index tiebreak"
            );
        }
        // The shared bridge into job shapes works off this outcome too.
        let ranges = out.selection_ranges(4);
        assert_eq!(ranges.iter().map(|&(_, n)| n).sum::<u64>(), 24);

        let serial = dfpool::Pool::new(1).install(|| run_prefilter_with(&cfg, scorer));
        let pooled = dfpool::Pool::new(4).install(|| run_prefilter_with(&cfg, scorer));
        assert_eq!(serial.shortlist, pooled.shortlist);
        assert_eq!(serial.funnel, pooled.funnel);
        let mut ragged = tiny();
        ragged.screen.chunk_size = 37;
        let r = run_prefilter_with(&ragged, scorer);
        assert_eq!(r.shortlist, out.shortlist, "chunking must not change the shortlist");
    }

    /// `coalesce_ranges` is the shared splitter: duplicates collapse,
    /// adjacency merges, and balanced capping matches the method form.
    #[test]
    fn coalesce_ranges_dedupes_and_balances() {
        assert_eq!(coalesce_ranges(vec![5, 3, 4, 4, 9], 0), vec![(3, 3), (9, 1)]);
        let capped = coalesce_ranges((100..1100).collect(), 300);
        assert_eq!(capped, vec![(100, 250), (350, 250), (600, 250), (850, 250)]);
        assert_eq!(coalesce_ranges(Vec::new(), 8), Vec::new());
    }
}
