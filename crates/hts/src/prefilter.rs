//! Campaign prefilter: the ligand-only triage stage ahead of docking.
//!
//! The paper's funnel spends its budget on expensive fusion-model
//! rescoring; this stage is the cheap outermost ring. It streams a
//! generated library through `dfchem`'s `filter → fingerprint → score`
//! pipeline (bounded memory, bit-deterministic across lane counts) and
//! produces a ranked shortlist plus the per-rule rejection accounting
//! that documents the funnel (`docs/CHEMISTRY.md`).
//!
//! Campaign jobs evaluate **contiguous** compound ranges
//! ([`crate::job::JobSpec`]), so the shortlist is bridged to job
//! assignment by coalescing selected indices into contiguous runs
//! ([`PrefilterOutcome::selection_ranges`]); each run maps onto one
//! `JobSpec { first_compound, num_compounds }`.

use dfchem::genmol::Library;
use dfchem::screen::{screen_library, FunnelStats, RankedCompound, ScreenConfig};
use dfchem::RejectionTally;
use serde::{Deserialize, Serialize};

/// Configuration of the prefilter stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefilterConfig {
    /// The underlying streaming screen (library, filter, fingerprints,
    /// chunking, hit threshold).
    pub screen: ScreenConfig,
    /// How many ranked survivors to carry into the docking stage.
    pub select: usize,
}

impl PrefilterConfig {
    /// A ZINC-druglike prefilter selecting the best `select` of
    /// `num_compounds` compounds.
    pub fn new(library: Library, num_compounds: u64, campaign_seed: u64, select: usize) -> Self {
        let mut screen = ScreenConfig::new(library, num_compounds, campaign_seed);
        screen.top_k = select;
        PrefilterConfig { screen, select }
    }
}

/// What the prefilter stage produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefilterOutcome {
    /// Per-stage funnel counts of the ligand-only screen.
    pub funnel: FunnelStats,
    /// Per-rule rejection accounting for the drug-likeness gate.
    pub tally: RejectionTally,
    /// The ranked shortlist, best (most negative) ligand score first.
    pub shortlist: Vec<RankedCompound>,
}

impl PrefilterOutcome {
    /// Shortlist indices coalesced into contiguous, ascending
    /// `(first_compound, num_compounds)` runs — the shape
    /// [`crate::job::JobSpec`] assigns to ranks. Adjacent selected
    /// indices merge into one run; isolated ones become runs of length 1.
    pub fn selection_ranges(&self) -> Vec<(u64, u64)> {
        let mut indices: Vec<u64> = self.shortlist.iter().map(|r| r.index).collect();
        indices.sort_unstable();
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for i in indices {
            match ranges.last_mut() {
                Some((first, len)) if *first + *len == i => *len += 1,
                _ => ranges.push((i, 1)),
            }
        }
        ranges
    }

    /// Fraction of the library the docking stage still has to look at:
    /// `selected / evaluated` (0 when nothing was evaluated).
    pub fn reduction(&self) -> f64 {
        dftrace::rate::mean(self.shortlist.len() as f64, self.funnel.evaluated as f64)
    }
}

/// Runs the prefilter stage: streams the library, tallies the funnel and
/// returns the ranked shortlist. Deterministic for a fixed config at any
/// `dfpool` lane count. Emits `hts.prefilter.*` counters and inherits
/// the `chem.filter.*` / `chem.fp.*` instrumentation of the underlying
/// pipeline.
pub fn run_prefilter(cfg: &PrefilterConfig) -> PrefilterOutcome {
    let _span = dftrace::span("hts.prefilter");
    let outcome = screen_library(&cfg.screen);
    let mut shortlist = outcome.top;
    shortlist.truncate(cfg.select);
    dftrace::counter_add("hts.prefilter.evaluated", outcome.funnel.evaluated);
    dftrace::counter_add("hts.prefilter.survivors", outcome.funnel.passed_filter);
    dftrace::counter_add("hts.prefilter.selected", shortlist.len() as u64);
    PrefilterOutcome { funnel: outcome.funnel, tally: outcome.tally, shortlist }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PrefilterConfig {
        let mut cfg = PrefilterConfig::new(Library::Chembl, 600, 17, 24);
        cfg.screen.chunk_size = 128;
        cfg
    }

    #[test]
    fn prefilter_selects_at_most_the_requested_count() {
        let out = run_prefilter(&tiny());
        assert!(out.shortlist.len() <= 24);
        assert!(!out.shortlist.is_empty(), "a druglike generator must yield survivors");
        assert_eq!(out.funnel.evaluated, 600);
        assert!(out.reduction() <= 1.0 && out.reduction() > 0.0);
        for w in out.shortlist.windows(2) {
            assert!(w[0].score <= w[1].score, "shortlist must be ranked best first");
        }
    }

    #[test]
    fn selection_ranges_cover_exactly_the_shortlist() {
        let out = run_prefilter(&tiny());
        let ranges = out.selection_ranges();
        let total: u64 = ranges.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, out.shortlist.len() as u64);
        // Ranges are ascending, non-overlapping, non-adjacent (adjacent
        // runs would have been merged).
        for w in ranges.windows(2) {
            assert!(w[0].0 + w[0].1 < w[1].0);
        }
        // Every shortlist index is covered by exactly one range.
        for r in &out.shortlist {
            let covering = ranges.iter().filter(|&&(f, n)| r.index >= f && r.index < f + n).count();
            assert_eq!(covering, 1, "index {} covered {} times", r.index, covering);
        }
    }

    #[test]
    fn prefilter_is_lane_count_invariant() {
        let cfg = tiny();
        let serial = dfpool::Pool::new(1).install(|| run_prefilter(&cfg));
        let pooled = dfpool::Pool::new(4).install(|| run_prefilter(&cfg));
        assert_eq!(serial.shortlist, pooled.shortlist);
        assert_eq!(serial.tally, pooled.tally);
        assert_eq!(serial.funnel, pooled.funnel);
    }
}
