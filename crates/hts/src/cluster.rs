//! Simulated cluster description (Lassen, §3.2).
//!
//! Captures the resource shapes the paper schedules against: Lassen nodes
//! (44 Power9 cores, 4 × 16 GB V100, 256 GB RAM) and the "rank" unit used
//! for both training and screening (1 GPU + 10 cores + 64 GB). These feed
//! the admission checks of job configuration and the peak-scale arithmetic
//! of Table 7.

use serde::{Deserialize, Serialize};

/// One compute node's resources.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// CPU cores per node.
    pub cpu_cores: usize,
    /// GPUs per node.
    pub gpus: usize,
    /// GPU memory per GPU (GB).
    pub gpu_memory_gb: f64,
    /// Host memory per node (GB).
    pub memory_gb: f64,
}

/// A homogeneous cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Node count.
    pub nodes: usize,
    /// Per-node resources (homogeneous).
    pub node: NodeSpec,
}

/// The paper's rank unit: 1 GPU, 10 CPU cores, 64 GB memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankSpec {
    /// GPUs per rank.
    pub gpus: usize,
    /// CPU cores per rank.
    pub cpu_cores: usize,
    /// Host memory per rank (GB).
    pub memory_gb: f64,
    /// Parallel data-loader workers per rank (training: 24; screening: 12).
    pub data_workers: usize,
}

impl ClusterSpec {
    /// LLNL Lassen: 792 nodes of 44 Power9 cores + 4 V100-16GB + 256 GB.
    pub fn lassen() -> ClusterSpec {
        ClusterSpec {
            nodes: 792,
            node: NodeSpec { cpu_cores: 44, gpus: 4, gpu_memory_gb: 16.0, memory_gb: 256.0 },
        }
    }

    /// Maximum ranks per node given a rank shape.
    pub fn ranks_per_node(&self, rank: &RankSpec) -> usize {
        let by_gpu = self.node.gpus.checked_div(rank.gpus).unwrap_or(usize::MAX);
        let by_cpu = self.node.cpu_cores / rank.cpu_cores.max(1);
        let by_mem = (self.node.memory_gb / rank.memory_gb.max(1e-9)) as usize;
        by_gpu.min(by_cpu).min(by_mem)
    }

    /// Total ranks the cluster can host.
    pub fn total_ranks(&self, rank: &RankSpec) -> usize {
        self.nodes * self.ranks_per_node(rank)
    }

    /// How many `nodes_per_job`-node jobs fit in an allotment of `nodes`.
    pub fn jobs_in_allotment(nodes: usize, nodes_per_job: usize) -> usize {
        nodes / nodes_per_job.max(1)
    }
}

impl RankSpec {
    /// The screening rank of §3.2/§4.2.
    pub fn screening() -> RankSpec {
        RankSpec { gpus: 1, cpu_cores: 10, memory_gb: 64.0, data_workers: 12 }
    }

    /// The training rank of §3.2 (24 data workers).
    pub fn training() -> RankSpec {
        RankSpec { gpus: 1, cpu_cores: 10, memory_gb: 64.0, data_workers: 24 }
    }
}

/// Memory model of a screening rank: model residency + batch staging.
/// The paper: the Coherent Fusion model occupies 1.5 GB of GPU memory; the
/// rest holds a 56-pose batch.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GpuMemoryModel {
    /// Resident model footprint (GB).
    pub model_gb: f64,
    /// Additional GPU memory per batched pose (GB).
    pub per_pose_gb: f64,
}

impl Default for GpuMemoryModel {
    fn default() -> Self {
        // 14.5 GB of headroom / 56 poses ≈ 0.259 GB per staged pose.
        Self { model_gb: 1.5, per_pose_gb: (16.0 - 1.5) / 56.0 }
    }
}

impl GpuMemoryModel {
    /// Largest batch that fits alongside the model.
    pub fn max_batch(&self, gpu_memory_gb: f64) -> usize {
        // Epsilon guards the exact-fit case against float truncation.
        ((gpu_memory_gb - self.model_gb).max(0.0) / self.per_pose_gb + 1e-9) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lassen_hosts_four_screening_ranks_per_node() {
        let c = ClusterSpec::lassen();
        assert_eq!(c.ranks_per_node(&RankSpec::screening()), 4);
        assert_eq!(c.total_ranks(&RankSpec::screening()), 792 * 4);
    }

    #[test]
    fn rank_shape_is_gpu_limited_not_cpu_limited() {
        let c = ClusterSpec::lassen();
        let r = RankSpec::screening();
        assert!(c.node.cpu_cores / r.cpu_cores >= c.node.gpus, "CPU is not the binding limit");
        assert_eq!((c.node.memory_gb / r.memory_gb) as usize, 4);
    }

    #[test]
    fn peak_allotment_matches_paper() {
        // 500 nodes at 4 nodes/job = 125 parallel jobs.
        assert_eq!(ClusterSpec::jobs_in_allotment(500, 4), 125);
    }

    #[test]
    fn gpu_memory_model_reproduces_batch_of_56() {
        let m = GpuMemoryModel::default();
        assert_eq!(m.max_batch(16.0), 56);
        // A hypothetical 32 GB GPU would roughly double the batch.
        assert!(m.max_batch(32.0) > 100);
    }
}
