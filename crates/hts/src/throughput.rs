//! Throughput accounting and the Lassen performance model behind Table 7
//! and the §4.2 speedup comparison.
//!
//! Two layers:
//!
//! * **measured** — real wall-clock rates from jobs run by this crate on
//!   the host CPU;
//! * **modeled** — the paper's Lassen constants (20 min startup, 280 min
//!   evaluation over 2 M poses on 16 V100 ranks, 6.5 min output; peak
//!   allotment of 125 parallel jobs on 500 nodes). A *V100-equivalence
//!   factor* maps measured CPU rank throughput onto the modeled GPU rank,
//!   making the Table 7 reproduction explicit about what is measured and
//!   what is calibrated.
//!
//! Every rate here goes through [`dftrace::rate`] — the same arithmetic
//! the tracer's run report uses — so the Table 7 reproduction and a
//! `RUN_TRACE.json` can never disagree about how compounds/s is computed.

use serde::{Deserialize, Serialize};

/// Lassen/V100 campaign constants reported in §4.2 and Table 7.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LassenModel {
    /// Job startup phase (minutes).
    pub startup_min: f64,
    /// Job evaluation phase (minutes).
    pub eval_min: f64,
    /// Job output phase (minutes).
    pub output_min: f64,
    /// Poses one job evaluates.
    pub poses_per_job: u64,
    /// Nodes per job (paper: 4).
    pub nodes_per_job: usize,
    /// Ranks per node (paper: 4).
    pub ranks_per_node: usize,
    /// Peak parallel jobs (500 nodes / 4 nodes per job).
    pub peak_jobs: usize,
    /// Docked poses generated per compound (10 → compounds = poses/10).
    pub poses_per_compound: u64,
}

impl Default for LassenModel {
    fn default() -> Self {
        Self {
            startup_min: 20.0,
            eval_min: 280.0,
            output_min: 6.5,
            poses_per_job: 2_000_000,
            nodes_per_job: 4,
            ranks_per_node: 4,
            peak_jobs: 125,
            poses_per_compound: 10,
        }
    }
}

impl LassenModel {
    /// Total single-job runtime in minutes (paper: ≈ 5.1 h).
    pub fn total_min(&self) -> f64 {
        self.startup_min + self.eval_min + self.output_min
    }

    /// Single-job poses/second over the full lifetime (paper: 108).
    pub fn poses_per_sec_single(&self) -> f64 {
        dftrace::rate::per_sec(self.poses_per_job as f64, self.total_min() * 60.0)
    }

    /// Single-job poses/hour (paper: 338,800).
    pub fn poses_per_hour_single(&self) -> f64 {
        self.poses_per_sec_single() * 3600.0
    }

    /// Single-job compounds/hour (paper: 33,880).
    pub fn compounds_per_hour_single(&self) -> f64 {
        dftrace::rate::compounds_from_poses(
            self.poses_per_hour_single(),
            self.poses_per_compound as f64,
        )
    }

    /// Peak poses/second with `peak_jobs` concurrent jobs (paper: 13,594).
    pub fn poses_per_sec_peak(&self) -> f64 {
        self.poses_per_sec_single() * self.peak_jobs as f64
    }

    /// Peak poses/hour (paper: 48,600,000).
    pub fn poses_per_hour_peak(&self) -> f64 {
        self.poses_per_sec_peak() * 3600.0
    }

    /// Peak compounds/hour (paper: 4,860,000 — "nearly 5 million").
    pub fn compounds_per_hour_peak(&self) -> f64 {
        dftrace::rate::compounds_from_poses(
            self.poses_per_hour_peak(),
            self.poses_per_compound as f64,
        )
    }

    /// Evaluation-phase poses/second of a single V100 rank.
    pub fn eval_poses_per_sec_per_rank(&self) -> f64 {
        let ranks = (self.nodes_per_job * self.ranks_per_node) as f64;
        dftrace::rate::per_sec(self.poses_per_job as f64 / ranks, self.eval_min * 60.0)
    }

    /// How many of our measured ranks equal one modeled V100 rank.
    pub fn v100_equivalence(&self, measured_rank_poses_per_sec: f64) -> f64 {
        self.eval_poses_per_sec_per_rank() / measured_rank_poses_per_sec.max(1e-12)
    }

    /// Renders the Table 7 rows (single job vs peak).
    pub fn table7(&self) -> Vec<Table7Row> {
        let row = |metric: &str, single: String, peak: String| Table7Row {
            metric: metric.to_string(),
            single_job: single,
            peak,
        };
        vec![
            row("Avg. Startup", format!("{:.0} min.", self.startup_min), "\"".into()),
            row("Avg. Evaluation", format!("{:.0} min.", self.eval_min), "\"".into()),
            row("Avg. File Output", format!("{:.1} min.", self.output_min), "\"".into()),
            row(
                "Poses per sec.",
                format!("{:.0}", self.poses_per_sec_single()),
                format!("{:.0}", self.poses_per_sec_peak()),
            ),
            row(
                "Poses per hour",
                format!("{:.0}", self.poses_per_hour_single()),
                format!("{:.0}", self.poses_per_hour_peak()),
            ),
            row(
                "Compounds per hour",
                format!("{:.0}", self.compounds_per_hour_single()),
                format!("{:.0}", self.compounds_per_hour_peak()),
            ),
        ]
    }
}

/// One rendered Table 7 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table7Row {
    /// Metric name (left column).
    pub metric: String,
    /// Value for one job.
    pub single_job: String,
    /// Value at peak allotment.
    pub peak: String,
}

/// §4.1/§4.2 scorer cost hierarchy and speedup comparison.
///
/// Paper reference points, per Lassen node: Vina ≈ 10 poses/s, MM/GBSA ≈
/// 0.067 poses/s, Fusion ≈ 27 poses/s (108 poses/s over 4 nodes) — i.e.
/// fusion is 2.7× Vina and 403× MM/GBSA.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SpeedupReport {
    /// Measured fusion throughput (poses/s).
    pub fusion_poses_per_sec: f64,
    /// Measured Vina throughput (poses/s).
    pub vina_poses_per_sec: f64,
    /// Measured MM/GBSA throughput (poses/s).
    pub mmgbsa_poses_per_sec: f64,
}

impl SpeedupReport {
    /// Fusion throughput relative to Vina.
    pub fn fusion_over_vina(&self) -> f64 {
        self.fusion_poses_per_sec / self.vina_poses_per_sec.max(1e-12)
    }

    /// Fusion throughput relative to MM/GBSA.
    pub fn fusion_over_mmgbsa(&self) -> f64 {
        self.fusion_poses_per_sec / self.mmgbsa_poses_per_sec.max(1e-12)
    }

    /// The paper's numbers as the reference instance.
    pub fn paper() -> SpeedupReport {
        SpeedupReport {
            fusion_poses_per_sec: 27.0,
            vina_poses_per_sec: 10.0,
            mmgbsa_poses_per_sec: 0.067,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_job_rates_match_table7() {
        let m = LassenModel::default();
        // Paper: 108 poses/s. (Its "338,800 poses per hour" row is
        // internally inconsistent — 108/s × 3600 = 388,800/h; we check the
        // consistent value and note the discrepancy in EXPERIMENTS.md.)
        assert!((m.poses_per_sec_single() - 108.0).abs() < 2.0, "{}", m.poses_per_sec_single());
        assert!((m.poses_per_hour_single() - 388_800.0).abs() / 388_800.0 < 0.02);
        assert!((m.compounds_per_hour_single() - 38_880.0).abs() / 38_880.0 < 0.02);
        // Total runtime ≈ 5.1 hours.
        assert!((m.total_min() / 60.0 - 5.1).abs() < 0.05);
    }

    #[test]
    fn peak_rates_match_table7() {
        let m = LassenModel::default();
        // Paper: 13,594 poses/s, 48.6M poses/h, 4.86M compounds/h.
        assert!((m.poses_per_sec_peak() - 13_594.0).abs() / 13_594.0 < 0.02);
        assert!((m.poses_per_hour_peak() - 48_600_000.0).abs() / 48_600_000.0 < 0.02);
        assert!((m.compounds_per_hour_peak() - 4_860_000.0).abs() / 4_860_000.0 < 0.02);
        // "throughput was increased more than 100 times"
        assert!(m.poses_per_sec_peak() / m.poses_per_sec_single() > 100.0);
    }

    #[test]
    fn per_rank_gpu_rate_is_consistent() {
        let m = LassenModel::default();
        // 2M poses / 280 min / 16 ranks ≈ 7.44 poses/s/rank.
        assert!((m.eval_poses_per_sec_per_rank() - 7.44).abs() < 0.05);
        // Equivalence factor: a CPU rank at 1 pose/s needs factor ≈ 7.44.
        assert!((m.v100_equivalence(1.0) - 7.44).abs() < 0.05);
    }

    #[test]
    fn paper_speedups_reproduce() {
        let s = SpeedupReport::paper();
        assert!((s.fusion_over_vina() - 2.7).abs() < 0.01);
        assert!((s.fusion_over_mmgbsa() - 403.0).abs() < 1.0);
    }

    #[test]
    fn table7_has_all_rows() {
        let rows = LassenModel::default().table7();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[3].metric, "Poses per sec.");
        // 2e6 poses / 306.5 min = 108.75/s; the paper truncates to 108.
        assert_eq!(rows[3].single_job, "109");
        assert_eq!(rows[3].peak, "13594");
    }
}
