//! MPI-style collectives over threads.
//!
//! The paper's evaluation jobs are 16-rank Horovod/MPI processes that use
//! `allgather` to compile results before parallel file writing (§4.2).
//! Here a rank is a thread; the [`Communicator`] provides `barrier` and
//! `allgather` with the same semantics: every rank contributes a vector
//! and every rank receives the concatenation in rank order.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// A fixed-size group of ranks.
pub struct Communicator<T: Clone + Send> {
    size: usize,
    state: Mutex<GatherState<T>>,
    cv: Condvar,
}

struct GatherState<T> {
    /// Contributions of the current round, by rank.
    slots: Vec<Option<Vec<T>>>,
    /// Completed round's result, kept until every rank has taken it.
    result: Option<Arc<Vec<T>>>,
    taken: usize,
    generation: u64,
}

impl<T: Clone + Send> Communicator<T> {
    /// Creates a communicator for `size` ranks.
    pub fn new(size: usize) -> Arc<Communicator<T>> {
        assert!(size >= 1, "communicator needs at least one rank");
        Arc::new(Communicator {
            size,
            state: Mutex::new(GatherState {
                slots: (0..size).map(|_| None).collect(),
                result: None,
                taken: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
        })
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Contributes this rank's data and returns the concatenation of all
    /// ranks' data in rank order. Blocks until every rank arrives. The
    /// communicator is reusable for successive rounds.
    pub fn allgather(&self, rank: usize, data: Vec<T>) -> Vec<T> {
        assert!(rank < self.size, "rank {rank} out of range ({} ranks)", self.size);
        // Time from arrival to holding the gathered result: for early ranks
        // this is dominated by waiting on stragglers, so the histogram's
        // spread is a direct straggler-skew signal.
        let arrival = (dftrace::enabled()).then(std::time::Instant::now);
        let mut st = self.state.lock();
        let my_generation = st.generation;
        // Wait for the previous round to fully drain (slow rank re-entry).
        while st.result.is_some() && st.generation == my_generation {
            self.cv.wait(&mut st);
        }
        assert!(st.slots[rank].is_none(), "rank {rank} gathered twice in one round");
        st.slots[rank] = Some(data);

        if st.slots.iter().all(|s| s.is_some()) {
            // Last rank in: assemble and publish.
            let mut all = Vec::new();
            for s in st.slots.iter_mut() {
                all.extend(s.take().expect("slot filled"));
            }
            st.result = Some(Arc::new(all));
            st.taken = 0;
            self.cv.notify_all();
        } else {
            while st.result.is_none() {
                self.cv.wait(&mut st);
            }
        }

        if let Some(arrival) = arrival {
            dftrace::observe_duration("hts.allgather_wait_us", arrival.elapsed());
            dftrace::counter_add("hts.allgathers", 1);
        }
        let out = st.result.as_ref().expect("result published").as_ref().clone();
        st.taken += 1;
        if st.taken == self.size {
            // Round complete: reset for reuse.
            st.result = None;
            st.generation += 1;
            self.cv.notify_all();
        }
        out
    }

    /// Synchronization barrier (an allgather of nothing).
    pub fn barrier(&self, rank: usize) {
        let _ = self.allgather(rank, Vec::new());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gathers_in_rank_order() {
        let comm = Communicator::new(4);
        let results: Vec<Vec<u32>> = crossbeam::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|rank| {
                    let comm = Arc::clone(&comm);
                    s.spawn(move |_| {
                        comm.allgather(rank, vec![rank as u32 * 10, rank as u32 * 10 + 1])
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        for r in &results {
            assert_eq!(r, &[0, 1, 10, 11, 20, 21, 30, 31]);
        }
    }

    #[test]
    fn unequal_contribution_sizes() {
        let comm = Communicator::new(3);
        let results: Vec<Vec<u8>> = crossbeam::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|rank| {
                    let comm = Arc::clone(&comm);
                    s.spawn(move |_| comm.allgather(rank, vec![rank as u8; rank]))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        for r in &results {
            assert_eq!(r, &[1u8, 2, 2]);
        }
    }

    #[test]
    fn communicator_is_reusable_across_rounds() {
        let comm = Communicator::new(2);
        crossbeam::scope(|s| {
            for rank in 0..2 {
                let comm = Arc::clone(&comm);
                s.spawn(move |_| {
                    for round in 0..5u64 {
                        let out = comm.allgather(rank, vec![round * 2 + rank as u64]);
                        assert_eq!(out, vec![round * 2, round * 2 + 1], "round {round}");
                    }
                });
            }
        })
        .unwrap();
    }

    #[test]
    fn single_rank_is_trivial() {
        let comm = Communicator::new(1);
        assert_eq!(comm.allgather(0, vec![7]), vec![7]);
        comm.barrier(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_rank_panics() {
        let comm: Arc<Communicator<u8>> = Communicator::new(2);
        comm.allgather(5, vec![]);
    }
}
