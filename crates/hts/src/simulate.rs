//! Discrete-event simulation of the full screening campaign on Lassen.
//!
//! The real campaign (§4) screened 500 M+ compounds — over 5 billion
//! docked poses — against four targets, as a stream of 4-node jobs under a
//! *time-varying node allotment*: "we regularly ran more than 10 at a
//! time", with scheduled windows where "the majority of Lassen nodes were
//! made available", peaking at 500 nodes (125 parallel jobs). Running that
//! volume for real is a supercomputer problem; simulating its schedule is
//! not. This module is an event-driven simulator over the calibrated
//! [`LassenModel`]: jobs with stochastic phase durations and failures flow
//! through allotment windows, producing the campaign-level quantities the
//! paper reports (total poses, wall time, peak and average throughput,
//! reschedule counts).

use crate::fault::FaultInjector;
use crate::job::TaskClass;
use crate::throughput::LassenModel;
use dftensor::rng::{derive_seed, normal_with, rng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One window of the allotment schedule: from `start_hours`, `nodes` are
/// available until the next window begins.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AllotmentWindow {
    /// Campaign hour the window opens at.
    pub start_hours: f64,
    /// Nodes available during the window.
    pub nodes: usize,
}

/// Campaign-level simulation input.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignSim {
    /// Throughput constants of the modeled machine.
    pub model: LassenModel,
    /// Total poses to evaluate (paper: ≥ 5e9 over four targets).
    pub total_poses: u64,
    /// Allotment schedule, sorted by `start_hours`; the last window runs
    /// until the campaign completes.
    pub schedule: Vec<AllotmentWindow>,
    /// Relative jitter (σ/µ) on each job's evaluation duration.
    pub duration_jitter: f64,
    /// Probability a job attempt fails and is rescheduled.
    pub p_job_failure: f64,
    /// Base retry backoff in hours (LSF re-queue latency). A failed job's
    /// retry only becomes eligible after the same deterministic
    /// exponential-backoff-with-jitter policy the live scheduler uses
    /// ([`crate::scheduler::retry_backoff`], capped at 16× the base).
    /// Zero re-queues immediately (the pre-backoff behaviour).
    pub retry_backoff_hours: f64,
    /// Relative weights for drawing each job's [`TaskClass`], in
    /// [`TaskClass::ALL`] order (filter, surrogate, dock, rescore). A
    /// job's duration scales by its class cost relative to dock, and its
    /// node-failure probability by the class's failure exposure. All
    /// zeros — which is also what a serialized pre-class `CampaignSim`
    /// decodes to — means every job is dock-class: the homogeneous
    /// campaigns of earlier revisions, bit for bit.
    pub class_mix: [f64; 4],
    /// Seed of the jitter/failure stream.
    pub seed: u64,
}

impl CampaignSim {
    /// The paper's campaign shape: 5 B poses, a baseline allotment of 10
    /// concurrent jobs (40 nodes) with periodic 500-node windows.
    pub fn paper_shape() -> CampaignSim {
        CampaignSim {
            model: LassenModel::default(),
            total_poses: 5_000_000_000,
            schedule: vec![
                AllotmentWindow { start_hours: 0.0, nodes: 40 },
                AllotmentWindow { start_hours: 24.0, nodes: 500 },
                AllotmentWindow { start_hours: 36.0, nodes: 40 },
                AllotmentWindow { start_hours: 72.0, nodes: 500 },
                AllotmentWindow { start_hours: 84.0, nodes: 40 },
            ],
            duration_jitter: 0.05,
            p_job_failure: 0.03,
            // ≈3 min before a failed job re-enters the LSF queue.
            retry_backoff_hours: 0.05,
            class_mix: [0.0; 4],
            seed: 0,
        }
    }

    /// The paper's shape extended to the heterogeneous funnel: most jobs
    /// are cheap ligand filters, a band of surrogate scorers, the dock
    /// core, and a fusion-rescore tail (the Clyde et al. funnel mix).
    pub fn heterogeneous_shape() -> CampaignSim {
        CampaignSim { class_mix: [0.55, 0.15, 0.20, 0.10], ..CampaignSim::paper_shape() }
    }

    /// Draws `job_id`'s class from `class_mix`, deterministically in the
    /// campaign seed. An all-zero mix is dock-only.
    pub fn class_of(&self, job_id: u64) -> TaskClass {
        let total: f64 = self.class_mix.iter().sum();
        if total <= 0.0 {
            return TaskClass::Dock;
        }
        let h = derive_seed(derive_seed(self.seed, 0xC1A55), job_id);
        let mut u = ((h >> 11) as f64 / (1u64 << 53) as f64) * total;
        for (i, &w) in self.class_mix.iter().enumerate() {
            u -= w;
            if u < 0.0 {
                return TaskClass::ALL[i];
            }
        }
        TaskClass::Rescore
    }

    fn nodes_at(&self, t_hours: f64) -> usize {
        let mut nodes = self.schedule.first().map(|w| w.nodes).unwrap_or(0);
        for w in &self.schedule {
            if w.start_hours <= t_hours {
                nodes = w.nodes;
            }
        }
        nodes
    }

    /// Next schedule boundary strictly after `t_hours`, if any.
    fn next_boundary(&self, t_hours: f64) -> Option<f64> {
        self.schedule
            .iter()
            .map(|w| w.start_hours)
            .filter(|&s| s > t_hours + 1e-12)
            .fold(None, |acc: Option<f64>, s| Some(acc.map_or(s, |a| a.min(s))))
    }
}

/// Simulation output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignSimReport {
    /// Poses evaluated (echo of the input).
    pub total_poses: u64,
    /// Jobs that completed.
    pub jobs_completed: u64,
    /// Failed attempts that were re-queued.
    pub jobs_rescheduled: u64,
    /// Simulated campaign duration in hours.
    pub wall_hours: f64,
    /// Mean throughput over the whole campaign (poses/s).
    pub mean_poses_per_sec: f64,
    /// Peak throughput over any wall-clock hour, by completion binning
    /// (poses/s). Note: completion bursts right after an allotment window
    /// opens can bin above the steady-state model peak — read this as
    /// "best observed hour", not sustained capacity.
    pub peak_poses_per_sec: f64,
    /// Utilization: fraction of allotted job slots that were busy.
    pub slot_utilization: f64,
    /// Completed jobs per [`TaskClass`], in [`TaskClass::ALL`] order.
    pub per_class_jobs: [u64; 4],
}

#[derive(Debug, PartialEq)]
struct Completion {
    /// Completion time in hours (ordered).
    t: f64,
    job_id: u64,
    failed: bool,
    poses: u64,
}

impl Eq for Completion {}
impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.t.partial_cmp(&other.t).unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// Runs the event-driven simulation to completion.
pub fn simulate_campaign(sim: &CampaignSim) -> CampaignSimReport {
    let model = &sim.model;
    let poses_per_job = model.poses_per_job;
    let total_jobs = sim.total_poses.div_ceil(poses_per_job);
    let nominal_hours = model.total_min() / 60.0;
    let injector = FaultInjector::new(crate::fault::FaultConfig {
        p_node_failure: sim.p_job_failure,
        seed: derive_seed(sim.seed, 0x51),
        ..Default::default()
    });
    let mut duration_rng = rng(derive_seed(sim.seed, 0xD0));

    let mut t = 0.0f64; // hours
    let mut next_job: u64 = 0;
    let mut attempts: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    // Failed jobs awaiting retry, as (ready_time_hours, job_id): a retry
    // may not launch before its backoff elapses.
    let mut pending_retries: Vec<(f64, u64)> = Vec::new();
    let mut running: BinaryHeap<Reverse<Completion>> = BinaryHeap::new();
    let mut completed_poses: u64 = 0;
    let mut jobs_completed: u64 = 0;
    let mut jobs_rescheduled: u64 = 0;
    let mut per_class_jobs = [0u64; 4];
    let mut busy_slot_hours = 0.0f64;
    let mut allotted_slot_hours = 0.0f64;
    let mut hourly: Vec<u64> = Vec::new(); // poses completed per wall hour

    let launch = |job_id: u64,
                  t: f64,
                  attempts: &mut std::collections::HashMap<u64, u32>,
                  running: &mut BinaryHeap<Reverse<Completion>>,
                  duration_rng: &mut rand::rngs::StdRng| {
        let attempt = *attempts.entry(job_id).or_insert(0);
        // Class heterogeneity: duration scales with the class's cost
        // relative to dock, node failures with its exposure. For
        // dock-class jobs both factors are exactly 1.0, reproducing the
        // homogeneous simulation bit for bit.
        let class = sim.class_of(job_id);
        let cost_scale = class.cost_weight() / TaskClass::Dock.cost_weight();
        let failed = (0..model.nodes_per_job)
            .any(|n| injector.node_fails_scaled(job_id, attempt, n, class.failure_exposure()));
        let jitter = 1.0 + normal_with(duration_rng, 0.0, sim.duration_jitter);
        // Failed attempts die partway through evaluation.
        let frac = if failed { 0.4 } else { 1.0 };
        let dur = (nominal_hours * cost_scale * jitter.max(0.2) * frac).max(0.05);
        running.push(Reverse(Completion {
            t: t + dur,
            job_id,
            failed,
            poses: if failed { 0 } else { poses_per_job },
        }));
    };

    // Earliest retry ready-time strictly in the future (retries already
    // eligible are launchable now and need no wake-up).
    let next_retry_ready = |pending: &[(f64, u64)], t: f64| -> Option<f64> {
        pending
            .iter()
            .map(|&(ready, _)| ready)
            .filter(|&r| r > t + 1e-12)
            .fold(None, |acc: Option<f64>, r| Some(acc.map_or(r, |a: f64| a.min(r))))
    };

    loop {
        // Fill free slots under the current allotment. Retries take
        // priority over fresh jobs but only once their backoff elapsed.
        let slots = sim.nodes_at(t) / model.nodes_per_job;
        while running.len() < slots {
            let ready_retry = pending_retries.iter().position(|&(ready, _)| ready <= t + 1e-12);
            let job_id = if let Some(i) = ready_retry {
                pending_retries.swap_remove(i).1
            } else if next_job < total_jobs {
                let j = next_job;
                next_job += 1;
                j
            } else {
                break;
            };
            launch(job_id, t, &mut attempts, &mut running, &mut duration_rng);
        }
        let Some(Reverse(head)) = running.peek() else {
            // Nothing running. If work remains but cannot launch yet —
            // the window is too small to host a job, or every pending
            // retry is still backing off — idle forward to whichever
            // comes first instead of silently abandoning the campaign.
            if next_job < total_jobs || !pending_retries.is_empty() {
                let boundary = sim.next_boundary(t);
                let ready = next_retry_ready(&pending_retries, t);
                let target = match (boundary, ready) {
                    (Some(b), Some(r)) => Some(b.min(r)),
                    (b, r) => b.or(r),
                };
                match target {
                    Some(next) => {
                        t = next;
                        continue;
                    }
                    None => break, // starved forever: report what completed
                }
            }
            break;
        };
        let head_t = head.t;

        // Advance to the earliest of: next completion, next schedule
        // change, or — when a slot is free to take it — the next retry
        // coming off backoff.
        let mut t_next = match sim.next_boundary(t) {
            Some(b) if b < head_t => b,
            _ => head_t,
        };
        if running.len() < slots {
            if let Some(r) = next_retry_ready(&pending_retries, t) {
                t_next = t_next.min(r);
            }
        }
        let dt = (t_next - t).max(0.0);
        busy_slot_hours += running.len() as f64 * dt;
        // When a window shrinks below the number of running jobs, those jobs
        // still hold their nodes — count what is actually held so the
        // utilization ratio stays in [0, 1].
        allotted_slot_hours += slots.max(running.len()) as f64 * dt;
        // Track hourly completions for the peak statistic.
        t = t_next;

        if (t - head_t).abs() < 1e-12 {
            let Reverse(done) = running.pop().expect("peeked");
            if done.failed {
                jobs_rescheduled += 1;
                let attempt = attempts.get_mut(&done.job_id).expect("launched");
                *attempt += 1;
                // The retry waits out the same deterministic backoff
                // policy the live scheduler applies (jitter derived from
                // (job_id, attempt), capped at 16× the base).
                let backoff = if sim.retry_backoff_hours > 0.0 {
                    let base = std::time::Duration::from_secs_f64(sim.retry_backoff_hours * 3600.0);
                    crate::scheduler::retry_backoff(
                        base,
                        base.saturating_mul(16),
                        done.job_id,
                        *attempt,
                    )
                    .as_secs_f64()
                        / 3600.0
                } else {
                    0.0
                };
                pending_retries.push((t + backoff, done.job_id));
            } else {
                completed_poses += done.poses;
                jobs_completed += 1;
                per_class_jobs[sim.class_of(done.job_id).lane()] += 1;
                let hour = t.floor() as usize;
                if hourly.len() <= hour {
                    hourly.resize(hour + 1, 0);
                }
                hourly[hour] += done.poses;
            }
        }
    }

    let wall_hours = t;
    let peak = hourly.iter().copied().max().unwrap_or(0) as f64 / 3600.0;
    CampaignSimReport {
        total_poses: completed_poses,
        jobs_completed,
        jobs_rescheduled,
        wall_hours,
        mean_poses_per_sec: dftrace::rate::per_sec(completed_poses as f64, wall_hours * 3600.0),
        peak_poses_per_sec: peak,
        slot_utilization: if allotted_slot_hours > 0.0 {
            busy_slot_hours / allotted_slot_hours
        } else {
            0.0
        },
        per_class_jobs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sim(nodes: usize, total_poses: u64) -> CampaignSim {
        CampaignSim {
            model: LassenModel::default(),
            total_poses,
            schedule: vec![AllotmentWindow { start_hours: 0.0, nodes }],
            duration_jitter: 0.0,
            p_job_failure: 0.0,
            seed: 1,
            retry_backoff_hours: 0.0,
            class_mix: [0.0; 4],
        }
    }

    #[test]
    fn completes_every_pose_exactly_once() {
        let sim = small_sim(40, 40_000_000); // 20 jobs over 10 slots
        let r = simulate_campaign(&sim);
        assert_eq!(r.total_poses, 40_000_000);
        assert_eq!(r.jobs_completed, 20);
        assert_eq!(r.jobs_rescheduled, 0);
        // 20 jobs / 10 slots × 5.1 h ≈ 10.2 h.
        assert!(
            (r.wall_hours - 2.0 * sim.model.total_min() / 60.0).abs() < 0.2,
            "{}",
            r.wall_hours
        );
        assert!(r.slot_utilization > 0.9);
    }

    #[test]
    fn doubling_the_allotment_halves_the_wall_time() {
        let a = simulate_campaign(&small_sim(40, 200_000_000));
        let b = simulate_campaign(&small_sim(80, 200_000_000));
        let ratio = a.wall_hours / b.wall_hours;
        assert!((ratio - 2.0).abs() < 0.25, "scaling ratio {ratio}");
    }

    #[test]
    fn failures_cost_time_but_not_poses() {
        let mut sim = small_sim(40, 100_000_000);
        sim.p_job_failure = 0.3;
        let r = simulate_campaign(&sim);
        assert_eq!(r.total_poses, 100_000_000, "every pose eventually evaluated");
        assert!(r.jobs_rescheduled > 0);
        let clean = simulate_campaign(&small_sim(40, 100_000_000));
        assert!(r.wall_hours > clean.wall_hours, "failures must cost wall time");
    }

    #[test]
    fn retry_backoff_costs_wall_time_but_not_poses() {
        let mut eager = small_sim(40, 100_000_000);
        eager.p_job_failure = 0.3;
        let mut patient = eager.clone();
        patient.retry_backoff_hours = 0.5;
        let a = simulate_campaign(&eager);
        let b = simulate_campaign(&patient);
        assert_eq!(a.jobs_rescheduled, b.jobs_rescheduled, "same fault draws");
        assert_eq!(b.total_poses, 100_000_000, "backoff delays work, never drops it");
        assert!(
            b.wall_hours > a.wall_hours,
            "waiting out backoff must cost wall time: {} vs {}",
            b.wall_hours,
            a.wall_hours
        );
    }

    #[test]
    fn peak_windows_raise_peak_throughput() {
        let mut sim = small_sim(40, 1_000_000_000);
        sim.schedule.push(AllotmentWindow { start_hours: 10.0, nodes: 500 });
        sim.schedule.push(AllotmentWindow { start_hours: 22.0, nodes: 40 });
        let r = simulate_campaign(&sim);
        let baseline = simulate_campaign(&small_sim(40, 1_000_000_000));
        assert!(r.wall_hours < baseline.wall_hours, "peak window must shorten the campaign");
        assert!(
            r.peak_poses_per_sec > baseline.peak_poses_per_sec * 2.0,
            "peak {} vs baseline {}",
            r.peak_poses_per_sec,
            baseline.peak_poses_per_sec
        );
    }

    #[test]
    fn paper_shape_runs_to_completion() {
        let mut sim = CampaignSim::paper_shape();
        // Shrink 20× to keep the test fast while preserving the shape.
        sim.total_poses /= 20;
        let r = simulate_campaign(&sim);
        assert_eq!(r.total_poses, sim.total_poses);
        assert!(r.wall_hours > 0.0 && r.wall_hours < 2000.0);
        // During the 500-node windows throughput approaches the modeled
        // 13.6k poses/s peak.
        assert!(r.peak_poses_per_sec > 5_000.0, "peak throughput {} too low", r.peak_poses_per_sec);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut sim = small_sim(40, 50_000_000);
        sim.p_job_failure = 0.2;
        sim.duration_jitter = 0.1;
        let a = simulate_campaign(&sim);
        let b = simulate_campaign(&sim);
        assert_eq!(a.wall_hours, b.wall_hours);
        assert_eq!(a.jobs_rescheduled, b.jobs_rescheduled);
    }

    /// An explicit dock-only mix must reproduce the zero-mix (legacy
    /// homogeneous) simulation bit for bit.
    #[test]
    fn dock_only_mix_is_bit_identical_to_homogeneous() {
        let mut legacy = small_sim(40, 100_000_000);
        legacy.p_job_failure = 0.25;
        legacy.duration_jitter = 0.1;
        let mut dock_only = legacy.clone();
        dock_only.class_mix = [0.0, 0.0, 1.0, 0.0];
        let a = simulate_campaign(&legacy);
        let b = simulate_campaign(&dock_only);
        assert_eq!(a.wall_hours, b.wall_hours);
        assert_eq!(a.jobs_rescheduled, b.jobs_rescheduled);
        assert_eq!(a.per_class_jobs, b.per_class_jobs);
        assert_eq!(a.per_class_jobs, [0, 0, a.jobs_completed, 0]);
    }

    #[test]
    fn heterogeneous_mix_populates_every_class() {
        let mut sim = small_sim(40, 400_000_000);
        sim.class_mix = [0.4, 0.2, 0.2, 0.2];
        let r = simulate_campaign(&sim);
        assert_eq!(r.total_poses, 400_000_000, "heterogeneity never drops work");
        assert!(r.per_class_jobs.iter().all(|&n| n > 0), "{:?}", r.per_class_jobs);
        assert_eq!(r.per_class_jobs.iter().sum::<u64>(), r.jobs_completed);
        // Class draws are deterministic in the seed.
        assert_eq!(sim.class_of(7), sim.class_of(7));
        // Cheap classes finish faster, so the mixed campaign cannot be
        // slower than an all-dock one over the same job count.
        let dock = simulate_campaign(&small_sim(40, 400_000_000));
        assert!(r.wall_hours <= dock.wall_hours + 1e-9);
    }

    #[test]
    fn heterogeneous_shape_runs_to_completion() {
        let mut sim = CampaignSim::heterogeneous_shape();
        sim.total_poses /= 20;
        let r = simulate_campaign(&sim);
        assert_eq!(r.total_poses, sim.total_poses);
        // The mix is mostly sub-dock classes: the funnel must complete
        // faster than the all-dock paper shape at the same pose count.
        let mut paper = CampaignSim::paper_shape();
        paper.total_poses /= 20;
        let p = simulate_campaign(&paper);
        assert!(r.wall_hours < p.wall_hours, "het {} !< dock {}", r.wall_hours, p.wall_hours);
    }
}
