//! Virtual-screening enrichment analysis.
//!
//! The economics of the paper's campaign hinge on enrichment: 500 M
//! compounds screened, 2.1e-6 % experimentally tested, 10.4% of those hit
//! — "the models have significant predictive power" (§5.3). This module
//! provides the standard metrics that quantify that claim: enrichment
//! factor at a screening fraction, hit-rate-vs-rank curves and the
//! top-k selection utilities the cost function feeds on.

use serde::{Deserialize, Serialize};

/// One screened item: a score (higher = predicted stronger) and whether it
/// is truly active.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScreenItem {
    /// Predicted score (higher = predicted stronger binder).
    pub score: f64,
    /// Ground-truth activity of the compound.
    pub active: bool,
}

/// Indices of the top-`k` items by score (descending, stable for ties).
pub fn top_k_indices(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// Enrichment factor at fraction `f`: (hit rate in the top f of the
/// ranking) / (overall hit rate). EF = 1 means no better than random;
/// the maximum is `1/max(f, base_rate)`.
pub fn enrichment_factor(items: &[ScreenItem], fraction: f64) -> f64 {
    assert!((0.0..=1.0).contains(&fraction) && fraction > 0.0, "fraction in (0,1]");
    let n = items.len();
    if n == 0 {
        return 0.0;
    }
    let total_active = items.iter().filter(|i| i.active).count();
    if total_active == 0 {
        return 0.0;
    }
    let k = ((n as f64) * fraction).ceil() as usize;
    let scores: Vec<f64> = items.iter().map(|i| i.score).collect();
    let top = top_k_indices(&scores, k);
    let top_active = top.iter().filter(|&&i| items[i].active).count();
    let top_rate = top_active as f64 / k as f64;
    let base_rate = total_active as f64 / n as f64;
    top_rate / base_rate
}

/// Hit-rate curve: cumulative fraction of actives recovered at each rank
/// (x = fraction screened, y = fraction of all actives found).
pub fn recovery_curve(items: &[ScreenItem]) -> Vec<(f64, f64)> {
    let n = items.len();
    let total_active = items.iter().filter(|i| i.active).count().max(1);
    let scores: Vec<f64> = items.iter().map(|i| i.score).collect();
    let order = top_k_indices(&scores, n);
    let mut found = 0usize;
    order
        .iter()
        .enumerate()
        .map(|(rank, &i)| {
            if items[i].active {
                found += 1;
            }
            ((rank + 1) as f64 / n as f64, found as f64 / total_active as f64)
        })
        .collect()
}

/// Area under the recovery curve (0.5 = random, 1.0 = perfect early
/// recovery) — the screening-world analogue of ROC-AUC.
pub fn recovery_auc(items: &[ScreenItem]) -> f64 {
    let curve = recovery_curve(items);
    let mut auc = 0.0;
    let mut prev = (0.0, 0.0);
    for &(x, y) in &curve {
        auc += (x - prev.0) * (y + prev.1) / 2.0;
        prev = (x, y);
    }
    auc
}

/// The paper's headline funnel arithmetic: what fraction was tested and
/// what hit rate the selection achieved.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FunnelReport {
    /// Compounds screened computationally.
    pub screened: u64,
    /// Compounds advanced to experimental testing.
    pub tested: u64,
    /// Experimentally confirmed hits.
    pub hits: u64,
}

impl FunnelReport {
    /// Paper: 500 M+ screened, 1042 tested, 108 hits at 33% inhibition.
    pub fn paper() -> FunnelReport {
        FunnelReport { screened: 500_000_000, tested: 1042, hits: 108 }
    }

    /// Fraction of the screen that was physically tested.
    pub fn tested_fraction(&self) -> f64 {
        self.tested as f64 / self.screened.max(1) as f64
    }

    /// Hit rate among tested compounds.
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / self.tested.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(scores: &[f64], actives: &[bool]) -> Vec<ScreenItem> {
        scores.iter().zip(actives).map(|(&score, &active)| ScreenItem { score, active }).collect()
    }

    #[test]
    fn perfect_ranking_maximizes_enrichment() {
        // 2 actives in 10, ranked on top: EF@0.2 = (2/2) / (2/10) = 5.
        let scores = [9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.0];
        let actives = [true, true, false, false, false, false, false, false, false, false];
        let ef = enrichment_factor(&items(&scores, &actives), 0.2);
        assert!((ef - 5.0).abs() < 1e-12);
        assert!((recovery_auc(&items(&scores, &actives)) - 0.95).abs() < 0.05);
    }

    #[test]
    fn random_ranking_gives_unit_enrichment_in_expectation() {
        // Deterministic interleaving ≈ uniform spread of actives.
        let n = 1000;
        let scores: Vec<f64> = (0..n).map(|i| (i * 7919 % n) as f64).collect();
        let actives: Vec<bool> = (0..n).map(|i| i % 10 == 0).collect();
        let ef = enrichment_factor(&items(&scores, &actives), 0.1);
        assert!((ef - 1.0).abs() < 0.4, "ef {ef}");
        let auc = recovery_auc(&items(&scores, &actives));
        assert!((auc - 0.5).abs() < 0.1, "auc {auc}");
    }

    #[test]
    fn anti_ranking_gives_zero_early_enrichment() {
        let scores = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let actives = [true, true, false, false, false, false, false, false, false, false];
        assert_eq!(enrichment_factor(&items(&scores, &actives), 0.2), 0.0);
    }

    #[test]
    fn top_k_is_stable_and_bounded() {
        let scores = [1.0, 3.0, 3.0, 2.0];
        assert_eq!(top_k_indices(&scores, 2), vec![1, 2], "ties keep index order");
        assert_eq!(top_k_indices(&scores, 10).len(), 4);
    }

    #[test]
    fn recovery_curve_ends_at_one() {
        let scores = [5.0, 1.0, 3.0];
        let actives = [false, true, true];
        let curve = recovery_curve(&items(&scores, &actives));
        assert_eq!(curve.len(), 3);
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_funnel_numbers() {
        let f = FunnelReport::paper();
        // §5.3 quotes "2.1e-6%"; 1042/5e8 = 2.08e-6 as a *fraction*, so
        // the paper's figure is the fraction mislabelled as a percent.
        assert!((f.tested_fraction() - 2.1e-6).abs() < 5e-8);
        assert!((f.hit_rate() - 0.104).abs() < 0.001);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert_eq!(enrichment_factor(&[], 0.5), 0.0);
        let no_actives = items(&[1.0, 2.0], &[false, false]);
        assert_eq!(enrichment_factor(&no_actives, 0.5), 0.0);
    }
}
